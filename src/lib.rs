//! # pushpull
//!
//! Facade crate for the executable reproduction of **“The Push/Pull Model
//! of Transactions”** (Koskinen & Parkinson, PLDI 2015). Re-exports the
//! workspace crates under one roof and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! * [`core`] — the PUSH/PULL machine, criteria, oracles (`pushpull-core`)
//! * [`spec`] — sequential specifications (`pushpull-spec`)
//! * [`ds`] — substrate data structures (`pushpull-ds`)
//! * [`tm`] — the §6/§7 algorithm classes (`pushpull-tm`)
//! * [`analysis`] — static criteria prover and program/pattern linter
//!   (`pushpull-analysis`)
//! * [`harness`] — schedulers, model checker, workloads (`pushpull-harness`)
//! * [`server`] — the transactional service front-end: session
//!   multiplexing and per-shard group commit (`pushpull-server`)
//!
//! ## Quick start
//!
//! ```
//! use pushpull::core::lang::Code;
//! use pushpull::core::serializability::check_machine;
//! use pushpull::harness::{run, RoundRobin};
//! use pushpull::spec::kvmap::{KvMap, MapMethod};
//! use pushpull::tm::{BoostingSystem, TmSystem};
//!
//! let mut sys = BoostingSystem::new(
//!     KvMap::new(),
//!     vec![
//!         vec![Code::method(MapMethod::Put(1, 10))],
//!         vec![Code::method(MapMethod::Put(2, 20))],
//!     ],
//! );
//! run(&mut sys, &mut RoundRobin, 10_000)?;
//! assert!(check_machine(sys.machine()).is_serializable());
//! # Ok::<(), pushpull::core::error::MachineError>(())
//! ```

pub use pushpull_analysis as analysis;
pub use pushpull_core as core;
pub use pushpull_ds as ds;
pub use pushpull_harness as harness;
pub use pushpull_server as server;
pub use pushpull_spec as spec;
pub use pushpull_tm as tm;
