//! Deterministic protocol checks for [`SnapCell`] — the seqlock-style
//! publication cell under the shard-log fast path.
//!
//! Two layers:
//!
//! 1. **Exhaustive interleaving model** (`model` module): a pure
//!    re-statement of the pin/validate protocol as an explicit state
//!    machine, with one writer (two publishes) and one reader, explored
//!    over *every* interleaving of their atomic steps. The invariant is
//!    the module-level soundness claim of `snapcell.rs`: a validated
//!    reader's borrow window never overlaps a writer store to the same
//!    slot, and the value it reads is exactly the one named by the
//!    packed word it validated. The model is tiny (hundreds of
//!    schedules), deterministic, and fails loudly if the protocol is
//!    ever weakened (e.g. dropping the re-validation load or the pin
//!    check before the slot store).
//!
//! 2. **Reentrancy edge tests** against the real [`SnapCell`]: nested
//!    reads pin slots while publishes cycle through the remainder,
//!    driving the cell into the all-pinned state where `publish` must
//!    *skip* (return `false`) rather than overwrite — and every pinned
//!    borrow must keep observing its own epoch's value throughout.
//!
//! The OS-thread race coverage for the same protocol lives in the
//! `snapcell.rs` unit stress test and in `loom_models.rs` (compiled
//! only under `--cfg loom`).

use pushpull_core::snapcell::SnapCell;

// ---------------------------------------------------------------------
// Layer 1: exhaustive interleaving model.
// ---------------------------------------------------------------------

mod model {
    /// Slots in the modelled cell; 2 keeps the schedule space tiny while
    /// still exercising retire-and-reuse (the real cell has 4).
    const SLOTS: usize = 2;

    /// Shared state: the atomics of the protocol, plus instrumentation.
    #[derive(Clone)]
    pub struct Cell {
        /// `(epoch << 1) | slot`, `0` = unpublished (mirrors `pack`).
        published: u64,
        /// Per-slot pin counts.
        pin: [u32; SLOTS],
        /// Per-slot stored value (`0` = never written).
        data: [u64; SLOTS],
        /// Instrumentation: is a validated reader currently borrowing
        /// slot `i`? Set between validation and unpin.
        borrowing: [bool; SLOTS],
    }

    fn pack(epoch: u64, slot: usize) -> u64 {
        (epoch << 1) | slot as u64
    }

    /// Writer step cursor: publish values 1 and 2, each split into its
    /// two reader-visible events — the slot write (the scan rides along:
    /// an unpublished slot's pin count can only be non-zero from *past*
    /// readers, never gain new pins, so scan-then-write cannot race a
    /// fresh pin) and the `published`-word store. The writer is
    /// mutex-serialized in the real cell, so no other writer interleaves;
    /// what the model varies is where the reader's steps land between
    /// these events.
    #[derive(Clone, Copy, PartialEq)]
    pub enum Writer {
        ToPublish(u64),
        ToStore { v: u64, slot: usize },
        Done,
    }

    /// Reader protocol steps, one atomic event each.
    #[derive(Clone, Copy, PartialEq)]
    pub enum Reader {
        LoadWord,
        Pin { word: u64 },
        Validate { word: u64 },
        ReadData { word: u64 },
        Unpin { slot: usize, outcome: Outcome },
        Done(Outcome),
    }

    #[derive(Clone, Copy, PartialEq, Debug)]
    pub enum Outcome {
        /// Validated and read `value` under packed word `word`.
        Read { word: u64, value: u64 },
        /// Fell back (unpublished or validation failed). Always legal.
        FellBack,
    }

    /// One schedule's full state.
    #[derive(Clone)]
    pub struct World {
        pub cell: Cell,
        pub writer: Writer,
        pub reader: Reader,
        /// Value published under epoch `e` lives at index `e - 1`.
        pub published_vals: Vec<u64>,
    }

    impl World {
        pub fn initial() -> Self {
            World {
                cell: Cell {
                    published: 0,
                    pin: [0; SLOTS],
                    data: [0; SLOTS],
                    borrowing: [false; SLOTS],
                },
                writer: Writer::ToPublish(1),
                reader: Reader::LoadWord,
                published_vals: Vec::new(),
            }
        }

        fn writer_next(v: u64) -> Writer {
            if v == 1 {
                Writer::ToPublish(2)
            } else {
                Writer::Done
            }
        }

        /// Advances the writer by one atomic step. Panics if the slot
        /// write would land in a slot a validated reader is borrowing —
        /// that is exactly the bug the pin check exists to prevent, so
        /// the model checks the check.
        pub fn step_writer(&mut self) {
            match self.writer {
                Writer::ToPublish(v) => {
                    let cur = self.cell.published;
                    let cur_slot = if cur == 0 {
                        usize::MAX
                    } else {
                        (cur & 1) as usize
                    };
                    for i in 0..SLOTS {
                        if i == cur_slot || self.cell.pin[i] != 0 {
                            continue;
                        }
                        assert!(
                            !self.cell.borrowing[i],
                            "writer wrote a slot a validated reader is borrowing"
                        );
                        self.cell.data[i] = v;
                        self.writer = Writer::ToStore { v, slot: i };
                        return;
                    }
                    // All candidate slots pinned: skip (legal; a skip
                    // ends the publish attempt).
                    self.writer = Self::writer_next(v);
                }
                Writer::ToStore { v, slot } => {
                    let epoch = self.cell.published >> 1;
                    self.cell.published = pack(epoch + 1, slot);
                    debug_assert_eq!(self.published_vals.len() as u64, epoch);
                    self.published_vals.push(v);
                    self.writer = Self::writer_next(v);
                }
                Writer::Done => {}
            }
        }

        /// Advances the reader by one atomic step.
        pub fn step_reader(&mut self) {
            self.reader = match self.reader {
                Reader::LoadWord => {
                    let word = self.cell.published;
                    if word == 0 {
                        Reader::Done(Outcome::FellBack)
                    } else {
                        Reader::Pin { word }
                    }
                }
                Reader::Pin { word } => {
                    self.cell.pin[(word & 1) as usize] += 1;
                    Reader::Validate { word }
                }
                Reader::Validate { word } => {
                    if self.cell.published == word {
                        self.cell.borrowing[(word & 1) as usize] = true;
                        Reader::ReadData { word }
                    } else {
                        // Validation failed: unpin and (model choice)
                        // give up — one attempt covers the invariant;
                        // retries only repeat it.
                        Reader::Unpin {
                            slot: (word & 1) as usize,
                            outcome: Outcome::FellBack,
                        }
                    }
                }
                Reader::ReadData { word } => {
                    let slot = (word & 1) as usize;
                    let value = self.cell.data[slot];
                    self.cell.borrowing[slot] = false;
                    Reader::Unpin {
                        slot,
                        outcome: Outcome::Read { word, value },
                    }
                }
                Reader::Unpin { slot, outcome } => {
                    self.cell.pin[slot] -= 1;
                    Reader::Done(outcome)
                }
                done @ Reader::Done(_) => done,
            };
        }

        pub fn writer_done(&self) -> bool {
            self.writer == Writer::Done
        }

        pub fn reader_done(&self) -> Option<Outcome> {
            match self.reader {
                Reader::Done(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Depth-first exploration of every interleaving; calls `on_done` on
    /// each completed schedule with the final world and the reader's
    /// outcome. Returns the number of completed schedules.
    pub fn explore(mut on_done: impl FnMut(&World, Outcome)) -> usize {
        fn dfs(w: World, on_done: &mut impl FnMut(&World, Outcome)) -> usize {
            if w.writer_done() {
                if let Some(outcome) = w.reader_done() {
                    on_done(&w, outcome);
                    return 1;
                }
            }
            let mut n = 0;
            if !w.writer_done() {
                let mut next = w.clone();
                next.step_writer();
                n += dfs(next, on_done);
            }
            if w.reader_done().is_none() {
                let mut next = w.clone();
                next.step_reader();
                n += dfs(next, on_done);
            }
            n
        }
        dfs(World::initial(), &mut on_done)
    }
}

#[test]
fn exhaustive_interleavings_never_tear_or_overlap() {
    // The writer publishes 1 then 2, each as a slot write followed by a
    // word store. Every interleaving must end with the reader either
    // falling back (always legal) or having read *exactly the value
    // published under the word it validated* — never the never-written
    // 0, never a torn in-between, and never the other epoch's value.
    // The `step_writer` assert fires inside `explore` if a slot write
    // ever overlaps a validated borrow.
    let mut reads = 0usize;
    let mut fallbacks = 0usize;
    let schedules = model::explore(|world, outcome| match outcome {
        model::Outcome::Read { word, value } => {
            let epoch = (word >> 1) as usize;
            assert!(epoch >= 1, "validated a never-published word {word}");
            assert_eq!(
                value,
                world.published_vals[epoch - 1],
                "reader under word {word} observed a value not published at its epoch"
            );
            reads += 1;
        }
        model::Outcome::FellBack => fallbacks += 1,
    });
    // The space is small but must be genuinely explored: both outcome
    // classes occur, across dozens of distinct schedules.
    assert!(schedules > 20, "only {schedules} schedules explored");
    assert!(reads > 0, "no schedule produced a validated read");
    assert!(fallbacks > 0, "no schedule produced a fallback");
}

// ---------------------------------------------------------------------
// Layer 2: reentrancy edges on the real cell.
// ---------------------------------------------------------------------

#[test]
fn all_pinned_publish_skips_instead_of_overwriting() {
    // Nested reads pin three distinct slots (each publish moves the
    // published word to a fresh slot, and the enclosing closures keep
    // their slots pinned). With 4 slots total — 3 pinned + 1 published
    // — the next publish has nowhere to go and must return `false`,
    // while every pinned borrow still sees its own value.
    let cell = SnapCell::new();
    assert!(cell.publish(10u64));
    let outer = cell.read(0, |&v1| {
        assert_eq!(v1, 10);
        assert!(cell.publish(20)); // slot 2 of 4
        let mid = cell.read(0, |&v2| {
            assert_eq!(v2, 20);
            assert!(cell.publish(30)); // slot 3 of 4
            let inner = cell.read(0, |&v3| {
                assert_eq!(v3, 30);
                assert!(cell.publish(40)); // last free slot
                                           // All four slots now published-or-pinned: skip.
                assert!(
                    !cell.publish(50),
                    "publish into an all-pinned cell must skip"
                );
                // The pinned borrows are untouched by the skip.
                assert_eq!(v3, 30);
                v3
            });
            assert_eq!(inner.value, Some(30));
            assert_eq!(v2, 20);
            v2
        });
        assert_eq!(mid.value, Some(20));
        assert_eq!(v1, 10);
        v1
    });
    assert_eq!(outer.value, Some(10));

    // Pins drained: publishing works again and readers see the newest.
    assert!(cell.publish(60));
    assert_eq!(cell.read(0, |&v| v).value, Some(60));
}

#[test]
fn pinned_borrow_is_immutable_across_publishes() {
    // A validated borrow must keep observing the exact value it
    // validated, no matter how many publishes retire its slot while the
    // borrow is live — the writer may only cycle through *other* slots.
    let cell = SnapCell::new();
    assert!(cell.publish(vec![7u64; 16]));
    let out = cell.read(0, |v: &Vec<u64>| {
        for round in 0..50u64 {
            cell.publish(vec![round; 16]);
            assert!(
                v.iter().all(|&x| x == 7),
                "pinned borrow mutated under publish round {round}"
            );
        }
        v.len()
    });
    assert_eq!(out.value, Some(16));
    // After the pin drains, the newest publish (49) is what readers get.
    assert_eq!(cell.read(0, |v: &Vec<u64>| v[0]).value, Some(49));
}
