//! First-class nested scopes: closed merge/abort, checkpoints, open
//! nesting with compensations, and the per-level oracle.

use pushpull_core::error::MachineError;
use pushpull_core::lang::Code;
use pushpull_core::machine::Machine;
use pushpull_core::serializability::{check_machine, check_machine_nested, compensation_restores};
use pushpull_core::toy::{counter_op, CounterMethod, StrictCounter, ToyCounter};
use pushpull_core::trace::Event;
use pushpull_core::ScopeKind;

fn inc() -> Code<CounterMethod> {
    Code::method(CounterMethod::Inc)
}

fn dec() -> Code<CounterMethod> {
    Code::method(CounterMethod::Dec)
}

fn get() -> Code<CounterMethod> {
    Code::method(CounterMethod::Get)
}

// ---------------------------------------------------------------------
// Closed nesting.
// ---------------------------------------------------------------------

#[test]
fn closed_scope_merges_into_parent() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), Code::seq(inc(), inc()))]);
    m.app_auto(t).unwrap();
    let base = m.begin_nested(t, ScopeKind::Closed).unwrap();
    assert_eq!(base, 1);
    assert_eq!(m.scope_depth(t).unwrap(), 1);
    m.app_auto(t).unwrap();
    m.commit_nested(t).unwrap();
    assert_eq!(m.scope_depth(t).unwrap(), 0);
    m.app_auto(t).unwrap();
    m.push_all_and_commit(t).unwrap();
    assert_eq!(m.committed_txns().len(), 1);
    assert_eq!(m.committed_txns()[0].ops.len(), 3);
    assert!(check_machine_nested(&m).is_serializable());
    let stats = m.nesting_stats();
    assert_eq!(stats.scopes_opened, 1);
    assert_eq!(stats.scopes_merged, 1);
}

#[test]
fn closed_scope_abort_rewinds_only_its_suffix() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), Code::choice(Code::Skip, inc()))]);
    m.app_auto(t).unwrap();
    m.begin_nested(t, ScopeKind::Closed).unwrap();
    m.app_method(t, &CounterMethod::Inc).unwrap();
    m.abort_nested(t).unwrap();
    // The first inc survives; the scoped inc is gone.
    assert_eq!(m.thread(t).unwrap().local().len(), 1);
    assert_eq!(m.scope_depth(t).unwrap(), 0);
    // The choice's skip branch still allows a commit.
    m.push_all_and_commit(t).unwrap();
    assert_eq!(m.committed_txns()[0].ops.len(), 1);
    assert!(check_machine_nested(&m).is_serializable());
    assert_eq!(m.nesting_stats().scopes_aborted, 1);
}

#[test]
fn scope_floor_blocks_unapp_below_base() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), inc())]);
    m.app_auto(t).unwrap();
    m.begin_nested(t, ScopeKind::Closed).unwrap();
    // Nothing applied inside the scope yet: UNAPP may not eat the
    // parent's entry.
    assert!(matches!(m.unapp(t), Err(MachineError::NothingToUnapply(_))));
    m.app_auto(t).unwrap();
    m.unapp(t).unwrap(); // the scoped entry itself is fine
    m.commit_nested(t).unwrap();
    m.app_auto(t).unwrap();
    m.push_all_and_commit(t).unwrap();
}

#[test]
fn commit_exits_remaining_closed_scopes() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), inc())]);
    m.app_auto(t).unwrap();
    m.begin_nested(t, ScopeKind::Closed).unwrap();
    m.app_auto(t).unwrap();
    // No explicit commit_nested: the top-level commit merges the frame.
    m.push_all_and_commit(t).unwrap();
    assert_eq!(m.committed_txns()[0].ops.len(), 2);
    assert!(check_machine_nested(&m).is_serializable());
}

#[test]
fn nested_scope_errors_without_a_scope() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![inc()]);
    assert!(matches!(m.commit_nested(t), Err(MachineError::NoScope(_))));
    assert!(matches!(m.abort_nested(t), Err(MachineError::NoScope(_))));
    assert!(matches!(
        m.abort_to_checkpoint(t, 0),
        Err(MachineError::NoScope(_))
    ));
}

// ---------------------------------------------------------------------
// Checkpoints (explicit closed markers).
// ---------------------------------------------------------------------

#[test]
fn checkpoint_partial_abort_salvages_prefix() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(
        inc(),
        Code::choice(Code::Skip, Code::seq(inc(), inc())),
    )]);
    m.app_auto(t).unwrap();
    let cp = m.begin_checkpoint(t).unwrap();
    m.app_method(t, &CounterMethod::Inc).unwrap();
    m.app_method(t, &CounterMethod::Inc).unwrap();
    m.abort_to_checkpoint(t, cp).unwrap();
    assert_eq!(m.thread(t).unwrap().local().len(), 1);
    assert_eq!(m.scope_depth(t).unwrap(), 0);
    m.push_all_and_commit(t).unwrap();
    assert_eq!(m.committed_txns()[0].ops.len(), 1);
}

#[test]
fn checkpoint_requires_matching_base() {
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), inc())]);
    m.app_auto(t).unwrap();
    let cp = m.begin_checkpoint(t).unwrap();
    assert_eq!(cp, 1);
    assert!(matches!(
        m.abort_to_checkpoint(t, 0),
        Err(MachineError::NoScope(_))
    ));
    m.abort_to_checkpoint(t, cp).unwrap();
}

// ---------------------------------------------------------------------
// Syntax-driven scopes: tx/otx redexes peel into frames.
// ---------------------------------------------------------------------

#[test]
fn flat_and_closed_nested_syntax_commit_identically() {
    // Same methods, one body flat, one wrapped in tx: commits, traces
    // and audits must be bit-identical.
    let flat_body = Code::seq(inc(), inc());
    let nested_body = Code::seq(inc(), Code::tx(inc()));

    let run = |body: Code<CounterMethod>| {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let t = m.add_thread(vec![body]);
        m.app_auto(t).unwrap();
        m.app_auto(t).unwrap();
        m.push_all_and_commit(t).unwrap();
        m
    };
    let a = run(flat_body);
    let b = run(nested_body);
    assert_eq!(a.trace().render(), b.trace().render());
    assert_eq!(a.committed_txns()[0].ops.len(), 2);
    assert_eq!(b.committed_txns()[0].ops.len(), 2);
    assert_eq!(a.audit().render(), b.audit().render());
    assert!(check_machine(&b).is_serializable());
}

// ---------------------------------------------------------------------
// Open nesting.
// ---------------------------------------------------------------------

#[test]
fn open_scope_commits_as_its_own_transaction() {
    let mut m = Machine::new(StrictCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), Code::seq(Code::otx(inc()), inc()))]);
    m.app_auto(t).unwrap(); // parent inc
    m.app_auto(t).unwrap(); // peels the otx, applies the child inc
    assert_eq!(m.scope_depth(t).unwrap(), 1);
    m.app_auto(t).unwrap(); // settles: open child commits, then parent inc
    assert_eq!(m.scope_depth(t).unwrap(), 0);
    // The child is already in the committed log; the parent is not.
    assert_eq!(m.committed_txns().len(), 1);
    assert_eq!(m.pending_compensations(t).unwrap(), 1);
    m.push_all_and_commit(t).unwrap();
    let txns = m.committed_txns();
    assert_eq!(txns.len(), 2);
    assert_eq!(txns[1].ops.len(), 2, "parent owns the two outer incs");
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    assert_eq!(report.txns_per_level, vec![1, 1]);
    assert_eq!(m.nesting_stats().open_commits, 1);
    assert_eq!(m.nesting_stats().compensations_replayed, 0);
}

#[test]
fn parent_abort_replays_compensation() {
    let mut m = Machine::new(StrictCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(Code::otx(inc()), inc())]);
    m.app_auto(t).unwrap(); // child inc inside the peeled otx
    m.app_auto(t).unwrap(); // open child commits; parent inc applies
    assert_eq!(m.committed_txns().len(), 1);
    m.abort_and_retry(t).unwrap();
    // The compensation (dec) committed as its own transaction.
    let txns = m.committed_txns();
    assert_eq!(txns.len(), 2);
    assert_eq!(txns[1].ops[0].method, CounterMethod::Dec);
    // Abstract state is back to 0: retry and complete.
    m.app_auto(t).unwrap();
    m.app_auto(t).unwrap();
    m.push_all_and_commit(t).unwrap();
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    assert_eq!(m.nesting_stats().compensations_replayed, 1);
    // Final committed projection: inc, dec, inc, inc — ends at 2.
    let final_states = m.global().committed_ops();
    assert_eq!(final_states.len(), 4);
}

#[test]
fn open_abort_before_commit_needs_no_compensation() {
    let mut m = Machine::new(StrictCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(Code::otx(inc()), inc())]);
    m.app_auto(t).unwrap(); // child inc applied, child not yet committed
    assert_eq!(m.scope_depth(t).unwrap(), 1);
    m.abort_and_retry(t).unwrap();
    assert_eq!(
        m.committed_txns().len(),
        0,
        "nothing committed, nothing to undo"
    );
    // The child's Begin is matched by an Abort in the trace.
    let aborts = m
        .trace()
        .iter()
        .filter(|e| matches!(e, Event::Abort { .. }))
        .count();
    assert_eq!(aborts, 2, "child and parent instances both abort");
    m.app_auto(t).unwrap();
    m.app_auto(t).unwrap();
    m.push_all_and_commit(t).unwrap();
    assert!(check_machine_nested(&m).is_serializable());
}

#[test]
fn non_invertible_open_scope_refuses_commit() {
    // ToyCounter's dec saturates, so it has no inverse: the open commit
    // must fail cleanly with NotInvertible.
    let mut m = Machine::new(ToyCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(Code::otx(dec()), inc())]);
    m.app_auto(t).unwrap(); // child dec applied
    let err = m.commit_nested(t).unwrap_err();
    assert!(matches!(err, MachineError::NotInvertible { .. }), "{err}");
    // The scope can still abort; the parent survives.
    m.abort_nested(t).unwrap();
    assert_eq!(m.scope_depth(t).unwrap(), 0);
}

#[test]
fn explicit_open_scope_round_trip() {
    let mut m = Machine::new(StrictCounter::with_bound(8));
    let t = m.add_thread(vec![Code::seq(inc(), Code::seq(inc(), get()))]);
    m.app_auto(t).unwrap();
    m.begin_nested(t, ScopeKind::Open).unwrap();
    m.app_method(t, &CounterMethod::Inc).unwrap();
    m.commit_nested(t).unwrap();
    assert_eq!(m.committed_txns().len(), 1);
    assert_eq!(m.pending_compensations(t).unwrap(), 1);
    // Parent reads 2: its own inc plus the committed child's.
    let op = m.app_method(t, &CounterMethod::Get).unwrap();
    let ops = m.thread(t).unwrap().local().ops();
    assert_eq!(ops.iter().find(|o| o.id == op).unwrap().ret, 2);
    m.push_all_and_commit(t).unwrap();
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
}

#[test]
fn strict_mode_gates_open_scopes_on_the_inverse_law() {
    use pushpull_core::certificate::SpecCertificate;
    use std::sync::Arc;

    let certified = |law: Option<bool>| SpecCertificate {
        spec_name: "strict-counter".into(),
        methods: vec!["inc".into(), "dec".into(), "get".into()],
        matrix: vec![Some(true); 9],
        footprints: vec![None, None, None],
        components: vec![0, 0, 0],
        obligations: vec![],
        inverse_law: law,
        shard_keys: 0,
        errors: 0,
        warnings: 0,
        notes: 0,
    };

    let mut m = Machine::new(StrictCounter::with_bound(8));
    m.set_require_certificate(true);
    let t = m.add_thread(vec![Code::seq(inc(), inc())]);
    m.app_auto(t).unwrap();

    // No certificate at all: refused.
    let err = m.begin_nested(t, ScopeKind::Open).unwrap_err();
    assert!(
        matches!(err, MachineError::OpenNestingUncertified(_)),
        "{err}"
    );
    // A valid certificate whose inverse law is unchecked: still refused.
    m.install_certificate(Some(Arc::new(certified(None))));
    assert!(m.begin_nested(t, ScopeKind::Open).is_err());
    assert!(
        m.arming_diagnostics()
            .iter()
            .any(|d| d.contains("inverse law")),
        "{:?}",
        m.arming_diagnostics()
    );
    // Closed nesting is not gated: no inverse machinery is involved.
    m.begin_nested(t, ScopeKind::Closed).unwrap();
    m.abort_nested(t).unwrap();
    // A proven inverse law opens the gate.
    m.install_certificate(Some(Arc::new(certified(Some(true)))));
    m.begin_nested(t, ScopeKind::Open).unwrap();
    m.app_auto(t).unwrap();
    m.commit_nested(t).unwrap();
    m.push_all_and_commit(t).unwrap();
    assert!(check_machine_nested(&m).is_serializable());
}

// ---------------------------------------------------------------------
// The per-level oracle's restoration law.
// ---------------------------------------------------------------------

#[test]
fn restoration_law_accepts_exact_inverses() {
    let spec = StrictCounter::with_bound(8);
    let child = vec![counter_op(0, CounterMethod::Inc, 0)];
    let comp = vec![counter_op(1, CounterMethod::Dec, 0)];
    assert!(compensation_restores(&spec, &child, &comp));
}

#[test]
fn restoration_law_rejects_saturating_undo() {
    // ToyCounter: dec saturates at 0, so inc does not undo it.
    let spec = ToyCounter::with_bound(8);
    let child = vec![counter_op(0, CounterMethod::Dec, 0)];
    let comp = vec![counter_op(1, CounterMethod::Inc, 0)];
    assert!(!compensation_restores(&spec, &child, &comp));
}
