//! Loom models of the two lock-free shard-log protocols: the seqlock
//! snapshot read (`snapcell.rs`) and the stamp-ordered append
//! (`global.rs`). Compiled **only** under `--cfg loom`, because `loom`
//! is deliberately not a dependency of the offline container build —
//! the CI loom job adds it on the runner:
//!
//! ```text
//! cargo add loom@0.7 --dev -p pushpull-core
//! RUSTFLAGS="--cfg loom" cargo test -p pushpull-core --test loom_models --release
//! ```
//!
//! `SnapCell` itself is built on `std` atomics (loom requires its own
//! atomic types to instrument orderings), so the model re-states the
//! protocol line-for-line on loom primitives — a miniature two-slot
//! cell whose `publish`/`read` mirror `snapcell.rs`. Loom then explores
//! every allowed interleaving *and memory ordering*, and its
//! instrumented `UnsafeCell` turns any reader/writer overlap on a slot
//! into a detected data race; the deterministic schedule enumeration of
//! the same protocol (without ordering exploration) lives in
//! `snapcell_model.rs` and runs in every normal CI pass.
#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

const SLOTS: usize = 2;

/// Two-slot restatement of `SnapCell` on loom primitives. Slot data is
/// a plain `u64` — loom's `UnsafeCell` already flags any concurrent
/// access, so the owning-type (`Vec`/`HashSet`) aspect of the real cell
/// adds nothing to the model.
struct MiniSnapCell {
    /// `(epoch << 1) | slot`, `0` = unpublished.
    published: AtomicU64,
    pins: [AtomicU32; SLOTS],
    data: [UnsafeCell<u64>; SLOTS],
}

// SAFETY: same argument as `SnapCell` — the pin/validate protocol keeps
// writer stores and validated reader loads disjoint per slot, and loom
// verifies exactly that claim on every explored schedule.
unsafe impl Sync for MiniSnapCell {}
unsafe impl Send for MiniSnapCell {}

fn pack(epoch: u64, slot: usize) -> u64 {
    (epoch << 1) | slot as u64
}

impl MiniSnapCell {
    fn new() -> Self {
        MiniSnapCell {
            published: AtomicU64::new(0),
            pins: [AtomicU32::new(0), AtomicU32::new(0)],
            data: [UnsafeCell::new(0), UnsafeCell::new(0)],
        }
    }

    /// Mirrors `SnapCell::publish`; the caller (one thread in these
    /// models) serializes publishes, as the shard mutex does in the
    /// machine.
    fn publish(&self, value: u64) -> bool {
        let cur = self.published.load(Ordering::SeqCst);
        let cur_slot = if cur == 0 {
            usize::MAX
        } else {
            (cur & 1) as usize
        };
        let epoch = cur >> 1;
        for i in 0..SLOTS {
            if i == cur_slot || self.pins[i].load(Ordering::SeqCst) != 0 {
                continue;
            }
            // Loom reports a data race here if any validated reader can
            // still be inside `with` on this slot.
            self.data[i].with_mut(|p| unsafe { *p = value });
            self.published.store(pack(epoch + 1, i), Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Mirrors `SnapCell::read`: load, pin, validate, borrow, unpin;
    /// bounded retry, `None` = mutex fallback.
    fn read(&self, retries: u64) -> Option<(u64, u64)> {
        let mut burned = 0;
        loop {
            let word = self.published.load(Ordering::SeqCst);
            if word == 0 {
                return None;
            }
            let slot = (word & 1) as usize;
            self.pins[slot].fetch_add(1, Ordering::SeqCst);
            if self.published.load(Ordering::SeqCst) == word {
                let value = self.data[slot].with(|p| unsafe { *p });
                self.pins[slot].fetch_sub(1, Ordering::SeqCst);
                return Some((word, value));
            }
            self.pins[slot].fetch_sub(1, Ordering::SeqCst);
            burned += 1;
            if burned > retries {
                return None;
            }
        }
    }
}

/// The seqlock prefix-read vs commit-writer race: a writer republishes
/// the snapshot (as CMT/PUSH do under the shard mutex) while a reader
/// runs the optimistic criteria path. Publishing value `e` under epoch
/// `e` makes the invariant checkable from the packed word alone: a
/// validated read must return exactly its epoch's value — never `0`
/// (torn/unwritten), never another epoch's.
#[test]
fn seqlock_prefix_read_never_tears_under_commit_writer() {
    loom::model(|| {
        let cell = Arc::new(MiniSnapCell::new());
        assert!(cell.publish(1));
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                if let Some((word, value)) = cell.read(1) {
                    assert_eq!(
                        value,
                        word >> 1,
                        "validated read returned another epoch's value"
                    );
                }
            })
        };
        assert!(cell.publish(2));
        reader.join().unwrap();
    });
}

/// Stamp-ordered append: concurrent appenders claim stamps from one
/// atomic counter (as `GlobalState::push_stamp` orders PUSHes without
/// holding the shard mutex across the criteria window). The claimed
/// stamps must be dense, unique, and monotone per thread — the
/// properties `entries_after` iteration relies on.
#[test]
fn stamp_ordered_append_is_dense_unique_and_monotone() {
    const PER_THREAD: usize = 2;
    loom::model(|| {
        let stamp = Arc::new(AtomicU64::new(0));
        let claims = Arc::new([
            AtomicU32::new(0),
            AtomicU32::new(0),
            AtomicU32::new(0),
            AtomicU32::new(0),
        ]);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let stamp = Arc::clone(&stamp);
            let claims = Arc::clone(&claims);
            handles.push(thread::spawn(move || {
                let mut mine = Vec::new();
                for _ in 0..PER_THREAD {
                    let s = stamp.fetch_add(1, Ordering::SeqCst);
                    claims[s as usize].fetch_add(1, Ordering::SeqCst);
                    mine.push(s);
                }
                assert!(mine.windows(2).all(|w| w[0] < w[1]), "stamps not monotone");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "stamp {i} not claimed once");
        }
    });
}
