//! First-class nested transaction scopes (§6.2 "checkpoints" and "open
//! nesting", and the Börger–Schewe multi-level transaction control
//! model).
//!
//! A [`crate::handle::TxnHandle`] carries a stack of [`ScopeFrame`]s
//! over its *flat* local log `L`: frame `k` owns the log suffix starting
//! at its `base_len`. Keeping `L` flat is what makes closed nesting
//! observationally free — every PUSH/PULL/CMT criterion evaluates the
//! same flat log a scope-free run would have produced, so flat and
//! closed-nested executions are bit-identical in commits, traces and
//! audit ledgers (the golden nesting suite pins this down).
//!
//! * A **closed** scope that commits simply *merges*: its frame pops and
//!   its entries become ordinary entries of the enclosing transaction.
//! * A **closed** scope that aborts rewinds only its own suffix (UNAPP /
//!   UNPUSH of just those entries) — the partial-abort/checkpoint
//!   mechanism, now shared with `CheckpointOptimistic`.
//! * An **open** scope commits *straight to `G`* as an independent
//!   transaction (PUSH + CMT of its suffix under its own [`TxnId`]) and
//!   registers a [`Compensation`] — the inverse program derived from the
//!   spec's [`crate::spec::SeqSpec::inverse`] oracle — in the enclosing
//!   scope's compensation set. If the enclosing transaction later
//!   aborts, the handle replays the registered compensations in reverse
//!   registration order as new top-level transactions, restoring the
//!   abstract state the committed children had changed.

use crate::lang::Code;
use crate::op::TxnId;
use crate::spec::SeqSpec;

/// The nesting discipline of a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKind {
    /// Closed nesting: the child's effects stay in the parent's local
    /// log; a child commit merges into the parent, a child abort rewinds
    /// only the child's suffix.
    Closed,
    /// Open nesting: the child commits to the shared log immediately as
    /// its own transaction; the parent holds a compensating inverse
    /// program to undo it if the parent aborts.
    Open,
}

/// How a scope came into being, which determines what happens to the
/// thread's code when the scope exits.
#[derive(Debug, Clone)]
pub(crate) enum ScopeOrigin<M> {
    /// Entered by peeling a syntactic `tx`/`otx` redex
    /// ([`Code::peel_scope`]): the thread's code was swapped to the
    /// scope body, and `cont` is restored on exit. `body` is kept for
    /// abort-retry reconstruction and the open child's committed record.
    Peeled {
        /// The scope body as peeled (for retry and the committed record).
        body: Code<M>,
        /// The code sequenced after the scope, restored on exit.
        cont: Code<M>,
    },
    /// Opened explicitly ([`crate::handle::TxnHandle::begin_nested`] /
    /// checkpoint markers): no code swap happened — the scope is a
    /// marker over the log suffix, and exit leaves the code alone.
    Explicit,
}

/// One entry of the scope stack: a nested transaction in flight.
#[derive(Debug)]
pub(crate) struct ScopeFrame<S: SeqSpec> {
    /// Closed or open nesting.
    pub(crate) kind: ScopeKind,
    /// Peeled from syntax or opened explicitly.
    pub(crate) origin: ScopeOrigin<S::Method>,
    /// `local.len()` at entry: entries `[base_len..]` belong to this
    /// scope (and, transitively, its children).
    pub(crate) base_len: usize,
    /// `stack.len()` at entry, truncated back on a scope abort.
    pub(crate) stack_len: usize,
    /// For open scopes, the child's own transaction id (operations
    /// applied inside carry it); unused for closed scopes.
    pub(crate) txn: Option<TxnId>,
}

// Manual Clone: the derive would demand `S: Clone`, but only the
// associated `Method` (already `Clone` by the `SeqSpec` bounds) is held.
impl<S: SeqSpec> Clone for ScopeFrame<S> {
    fn clone(&self) -> Self {
        Self {
            kind: self.kind,
            origin: self.origin.clone(),
            base_len: self.base_len,
            stack_len: self.stack_len,
            txn: self.txn,
        }
    }
}

/// A compensating transaction registered by a committed open-nested
/// child, pending until its enclosing scope resolves: discarded when the
/// encloser commits, replayed (most recent first) when it aborts.
#[derive(Debug)]
pub(crate) struct Compensation<S: SeqSpec> {
    /// The committed open-nested child this compensation undoes.
    pub(crate) undoes: TxnId,
    /// Height of the *enclosing* scope's frame stack at registration
    /// (0 = the root transaction). The compensation fires when the
    /// stack drops below this height through an abort.
    pub(crate) depth: usize,
    /// The inverse program in execution order (the child's state-changing
    /// operations inverted and reversed).
    pub(crate) ops: Vec<(S::Method, S::Ret)>,
}

impl<S: SeqSpec> Clone for Compensation<S> {
    fn clone(&self) -> Self {
        Self {
            undoes: self.undoes,
            depth: self.depth,
            ops: self.ops.clone(),
        }
    }
}

/// A snapshot of the machine-wide nesting counters (see
/// [`crate::machine::Machine::nesting_stats`]): scope traffic and
/// compensation activity, flowing through `SystemStats` → sweeps →
/// watchdog like the lock/seqlock/arena/transport tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NestingStats {
    /// Scopes entered (peeled, explicit, and checkpoint markers).
    pub scopes_opened: u64,
    /// Closed scopes merged into their parent on commit.
    pub scopes_merged: u64,
    /// Scopes aborted (their suffix rewound without killing the parent).
    pub scopes_aborted: u64,
    /// Open-nested children committed straight to `G`.
    pub open_commits: u64,
    /// Compensating transactions replayed by aborting parents.
    pub compensations_replayed: u64,
    /// Inverse operations derived by the undo oracle on abort paths
    /// (boosting's undo-log accounting and compensation planning).
    pub undo_inverses: u64,
}
