//! A tiny, dependency-free, seeded PRNG.
//!
//! Workload generation, fuzzing and benchmarks all need *reproducible*
//! randomness: the same seed must yield the same programs so that runs
//! are comparable across algorithms and across machines. An xorshift64
//! generator is more than enough for that — statistical quality only has
//! to beat "adversarially boring", not cryptography.

/// A seeded xorshift64 generator.
///
/// # Examples
///
/// ```
/// use pushpull_core::rng::Xorshift64;
/// let mut a = Xorshift64::new(42);
/// let mut b = Xorshift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a seed (0 is mapped to a fixed non-zero
    /// value — xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A value uniform in `lo..hi` (half-open; `hi > lo` required).
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.end > range.start, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// A value uniform in `0..n` as a `usize` (`n > 0` required).
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa: exact for every representable p in [0,1].
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xorshift64::new(7);
        let mut b = Xorshift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Xorshift64::new(3);
        for _ in 0..1000 {
            let v = r.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Xorshift64::new(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = Xorshift64::new(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
