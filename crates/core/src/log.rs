//! Local and global operation logs with their status flags (paper §4).
//!
//! The local log `L : list (op × l)` tags each operation with
//!
//! ```text
//! l ::= npshd c | pshd c | pld
//! ```
//!
//! where `npshd`/`pshd` additionally *save the code and stack that were
//! active when the entry was created*, so that `UNAPP` can rewind. The
//! global log `G : list (op × g)` tags operations with
//! `g ::= gUCmt | gCmt`.
//!
//! This module also provides the log combinators the rules are stated
//! with: the projections `⌊L⌋ₗ` and `⌊G⌋_g`, id-based membership, `G ∖ L`,
//! `L ⊆ G`, and the `cmt(G₁, L, G₂)` commit predicate.

use crate::lang::Code;
use crate::op::{Op, OpId};
use crate::smallvec::SmallVec;

/// Status flag of a local-log entry.
///
/// `NotPushed`/`Pushed` store the snapshot `(code, stack)` taken *before*
/// the operation was applied, exactly like the paper's `npshd c`/`pshd c`
/// annotations (we also save the stack, which the paper keeps in the rule
/// premises).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalFlag<M, R> {
    /// `npshd c`: applied locally, not yet in the global log.
    NotPushed {
        /// Code active before the APP that created this entry.
        saved_code: Code<M>,
        /// Stack (observation history) before the APP.
        saved_stack: Vec<(M, R)>,
    },
    /// `pshd c`: applied locally and present in the global log.
    Pushed {
        /// Code active before the APP that created this entry.
        saved_code: Code<M>,
        /// Stack (observation history) before the APP.
        saved_stack: Vec<(M, R)>,
    },
    /// `pld`: pulled from the global log (someone else's effect).
    Pulled,
}

impl<M, R> LocalFlag<M, R> {
    /// Is this entry `npshd`?
    pub fn is_not_pushed(&self) -> bool {
        matches!(self, LocalFlag::NotPushed { .. })
    }

    /// Is this entry `pshd`?
    pub fn is_pushed(&self) -> bool {
        matches!(self, LocalFlag::Pushed { .. })
    }

    /// Is this entry `pld`?
    pub fn is_pulled(&self) -> bool {
        matches!(self, LocalFlag::Pulled)
    }

    /// Is this entry an *own* operation (`npshd` or `pshd`, but not `pld`)?
    /// The paper writes this side condition as `pshd | npshd`.
    pub fn is_own(&self) -> bool {
        !self.is_pulled()
    }
}

/// One entry of a local log: an operation together with its flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalEntry<M, R> {
    /// The operation record.
    pub op: Op<M, R>,
    /// Its `npshd`/`pshd`/`pld` status.
    pub flag: LocalFlag<M, R>,
}

/// A thread-local operation log `L`.
///
/// Entries live inline (no heap allocation) until a transaction exceeds
/// [`LOCAL_INLINE`] operations — most transactions in the workloads
/// never spill, so APP/UNAPP stay allocation-free on the hot path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocalLog<M, R> {
    entries: SmallVec<LocalEntry<M, R>, LOCAL_INLINE>,
}

/// Operations a local log holds before spilling to the heap.
pub const LOCAL_INLINE: usize = 8;

impl<M: Clone, R: Clone> LocalLog<M, R> {
    /// Creates an empty local log.
    pub fn new() -> Self {
        Self {
            entries: SmallVec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in log order.
    pub fn iter(&self) -> std::slice::Iter<'_, LocalEntry<M, R>> {
        self.entries.iter()
    }

    /// The entries as a slice.
    pub fn entries(&self) -> &[LocalEntry<M, R>] {
        &self.entries
    }

    /// Appends an entry.
    pub fn push_entry(&mut self, entry: LocalEntry<M, R>) {
        self.entries.push(entry);
    }

    /// Removes and returns the last entry.
    pub fn pop_entry(&mut self) -> Option<LocalEntry<M, R>> {
        self.entries.pop()
    }

    /// Removes the entry with the given op id, returning it.
    pub fn remove_by_id(&mut self, id: OpId) -> Option<LocalEntry<M, R>> {
        let idx = self.entries.iter().position(|e| e.op.id == id)?;
        Some(self.entries.remove(idx))
    }

    /// Id-based membership (`op ∈ L` in the paper, equality lifted by id).
    pub fn contains_id(&self, id: OpId) -> bool {
        self.entries.iter().any(|e| e.op.id == id)
    }

    /// Finds an entry by op id.
    pub fn entry(&self, id: OpId) -> Option<&LocalEntry<M, R>> {
        self.entries.iter().find(|e| e.op.id == id)
    }

    /// Finds an entry mutably by op id.
    pub fn entry_mut(&mut self, id: OpId) -> Option<&mut LocalEntry<M, R>> {
        self.entries.iter_mut().find(|e| e.op.id == id)
    }

    /// Index of an entry by op id.
    pub fn position(&self, id: OpId) -> Option<usize> {
        self.entries.iter().position(|e| e.op.id == id)
    }

    /// The projection of *all* operations, in log order (`map fst L`).
    pub fn ops(&self) -> Vec<Op<M, R>> {
        self.entries.iter().map(|e| e.op.clone()).collect()
    }

    /// `⌊L⌋_npshd`: operations with flag `npshd`, in log order.
    pub fn not_pushed_ops(&self) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag.is_not_pushed())
            .map(|e| e.op.clone())
            .collect()
    }

    /// `⌊L⌋_pshd`: operations with flag `pshd`, in log order.
    pub fn pushed_ops(&self) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag.is_pushed())
            .map(|e| e.op.clone())
            .collect()
    }

    /// `⌊L⌋_pld`: operations with flag `pld`, in log order.
    pub fn pulled_ops(&self) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag.is_pulled())
            .map(|e| e.op.clone())
            .collect()
    }

    /// Own operations (`pshd | npshd`), in log order.
    pub fn own_ops(&self) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag.is_own())
            .map(|e| e.op.clone())
            .collect()
    }

    /// Are all own operations pushed (CMT criterion (ii), `L ⊆ G`)?
    pub fn fully_pushed(&self) -> bool {
        self.entries.iter().all(|e| !e.flag.is_not_pushed())
    }
}

impl<'a, M, R> IntoIterator for &'a LocalLog<M, R> {
    type Item = &'a LocalEntry<M, R>;
    type IntoIter = std::slice::Iter<'a, LocalEntry<M, R>>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Commit status of a global-log entry: `g ::= gUCmt | gCmt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalFlag {
    /// `gUCmt`: pushed by a transaction that has not committed.
    Uncommitted,
    /// `gCmt`: the owning transaction has committed.
    Committed,
}

/// One entry of the global log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalEntry<M, R> {
    /// The operation record (carries its owning [`TxnId`](crate::op::TxnId)).
    pub op: Op<M, R>,
    /// Commit status.
    pub flag: GlobalFlag,
}

/// The shared operation log `G`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlobalLog<M, R> {
    entries: Vec<GlobalEntry<M, R>>,
}

impl<M: Clone, R: Clone> GlobalLog<M, R> {
    /// Creates an empty global log.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Builds a log from entries already in order — how the sharded
    /// global state materializes a merged (commit-stamp-sorted) snapshot
    /// of `G`, and how shard rebuilds re-seed their segments.
    pub fn from_entries(entries: Vec<GlobalEntry<M, R>>) -> Self {
        Self { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in log order.
    pub fn iter(&self) -> std::slice::Iter<'_, GlobalEntry<M, R>> {
        self.entries.iter()
    }

    /// The entries as a slice.
    pub fn entries(&self) -> &[GlobalEntry<M, R>] {
        &self.entries
    }

    /// Appends an uncommitted entry (the effect of a PUSH).
    pub fn push_uncommitted(&mut self, op: Op<M, R>) {
        self.entries.push(GlobalEntry {
            op,
            flag: GlobalFlag::Uncommitted,
        });
    }

    /// Removes the entry with the given id (the effect of an UNPUSH),
    /// returning it.
    pub fn remove_by_id(&mut self, id: OpId) -> Option<GlobalEntry<M, R>> {
        let idx = self.entries.iter().position(|e| e.op.id == id)?;
        Some(self.entries.remove(idx))
    }

    /// Id-based membership (`op ∈ G`).
    pub fn contains_id(&self, id: OpId) -> bool {
        self.entries.iter().any(|e| e.op.id == id)
    }

    /// Finds an entry by op id.
    pub fn entry(&self, id: OpId) -> Option<&GlobalEntry<M, R>> {
        self.entries.iter().find(|e| e.op.id == id)
    }

    /// Index of an entry by op id.
    pub fn position(&self, id: OpId) -> Option<usize> {
        self.entries.iter().position(|e| e.op.id == id)
    }

    /// All operations in log order.
    pub fn ops(&self) -> Vec<Op<M, R>> {
        self.entries.iter().map(|e| e.op.clone()).collect()
    }

    /// `⌊G⌋_gUCmt`: uncommitted operations, in log order.
    pub fn uncommitted_ops(&self) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag == GlobalFlag::Uncommitted)
            .map(|e| e.op.clone())
            .collect()
    }

    /// `⌊G⌋_gCmt`: committed operations, in log order.
    pub fn committed_ops(&self) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag == GlobalFlag::Committed)
            .map(|e| e.op.clone())
            .collect()
    }

    /// `G ∖ L`: the global log with every operation appearing in `L`
    /// (by id) filtered out. Preserves the order of `G`.
    pub fn minus_local(&self, local: &LocalLog<M, R>) -> Vec<Op<M, R>> {
        self.entries
            .iter()
            .filter(|e| !local.contains_id(e.op.id))
            .map(|e| e.op.clone())
            .collect()
    }

    /// `L ⊆ G`: every operation of `local` (by id) occurs in `self`.
    pub fn contains_local(&self, local: &LocalLog<M, R>) -> bool {
        local.iter().all(|e| self.contains_id(e.op.id))
    }

    /// The `cmt(G₁, L, G₂)` predicate of Figure 5, applied in place: marks
    /// every entry of `self` whose op occurs in `local` as committed.
    ///
    /// Returns the ids that were flipped from `gUCmt` to `gCmt`.
    pub fn commit_local(&mut self, local: &LocalLog<M, R>) -> Vec<OpId> {
        let mut flipped = Vec::new();
        for e in &mut self.entries {
            if local.contains_id(e.op.id) && e.flag == GlobalFlag::Uncommitted {
                e.flag = GlobalFlag::Committed;
                flipped.push(e.op.id);
            }
        }
        flipped
    }

    /// Drops every *uncommitted* entry not owned by ops in `keep` (id set),
    /// the shared-log partial rewind `G ↺_L ``G` of Definition 5.2's
    /// premise. Committed entries are always retained.
    pub fn drop_uncommitted_except(&self, keep: &[OpId]) -> Vec<GlobalEntry<M, R>> {
        self.entries
            .iter()
            .filter(|e| e.flag == GlobalFlag::Committed || keep.contains(&e.op.id))
            .cloned()
            .collect()
    }
}

impl<'a, M, R> IntoIterator for &'a GlobalLog<M, R> {
    type Item = &'a GlobalEntry<M, R>;
    type IntoIter = std::slice::Iter<'a, GlobalEntry<M, R>>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpId, TxnId};
    use crate::toy::{CounterMethod, CounterOp};

    fn op(id: u64, txn: u64) -> CounterOp {
        Op::new(OpId(id), TxnId(txn), CounterMethod::Inc, 0)
    }

    fn npshd(id: u64, txn: u64) -> LocalEntry<CounterMethod, i64> {
        LocalEntry {
            op: op(id, txn),
            flag: LocalFlag::NotPushed {
                saved_code: Code::Skip,
                saved_stack: vec![],
            },
        }
    }

    fn pshd(id: u64, txn: u64) -> LocalEntry<CounterMethod, i64> {
        LocalEntry {
            op: op(id, txn),
            flag: LocalFlag::Pushed {
                saved_code: Code::Skip,
                saved_stack: vec![],
            },
        }
    }

    fn pld(id: u64, txn: u64) -> LocalEntry<CounterMethod, i64> {
        LocalEntry {
            op: op(id, txn),
            flag: LocalFlag::Pulled,
        }
    }

    #[test]
    fn projections_preserve_order_and_filter() {
        let mut l = LocalLog::new();
        l.push_entry(npshd(0, 1));
        l.push_entry(pshd(1, 1));
        l.push_entry(pld(2, 9));
        l.push_entry(npshd(3, 1));
        let np: Vec<u64> = l.not_pushed_ops().iter().map(|o| o.id.0).collect();
        assert_eq!(np, vec![0, 3]);
        let ps: Vec<u64> = l.pushed_ops().iter().map(|o| o.id.0).collect();
        assert_eq!(ps, vec![1]);
        let pl: Vec<u64> = l.pulled_ops().iter().map(|o| o.id.0).collect();
        assert_eq!(pl, vec![2]);
        let own: Vec<u64> = l.own_ops().iter().map(|o| o.id.0).collect();
        assert_eq!(own, vec![0, 1, 3]);
        assert!(!l.fully_pushed());
    }

    #[test]
    fn global_minus_local_filters_by_id() {
        let mut g = GlobalLog::new();
        g.push_uncommitted(op(0, 1));
        g.push_uncommitted(op(1, 2));
        g.push_uncommitted(op(2, 1));
        let mut l = LocalLog::new();
        l.push_entry(pshd(0, 1));
        l.push_entry(pshd(2, 1));
        let rest: Vec<u64> = g.minus_local(&l).iter().map(|o| o.id.0).collect();
        assert_eq!(rest, vec![1]);
    }

    #[test]
    fn commit_local_flips_only_own_entries() {
        let mut g = GlobalLog::new();
        g.push_uncommitted(op(0, 1));
        g.push_uncommitted(op(1, 2));
        let mut l = LocalLog::new();
        l.push_entry(pshd(0, 1));
        let flipped = g.commit_local(&l);
        assert_eq!(flipped, vec![OpId(0)]);
        assert_eq!(g.entry(OpId(0)).unwrap().flag, GlobalFlag::Committed);
        assert_eq!(g.entry(OpId(1)).unwrap().flag, GlobalFlag::Uncommitted);
        let committed: Vec<u64> = g.committed_ops().iter().map(|o| o.id.0).collect();
        assert_eq!(committed, vec![0]);
    }

    #[test]
    fn contains_local_requires_all_ids() {
        let mut g = GlobalLog::new();
        g.push_uncommitted(op(0, 1));
        let mut l = LocalLog::new();
        l.push_entry(pshd(0, 1));
        assert!(g.contains_local(&l));
        l.push_entry(npshd(5, 1));
        assert!(!g.contains_local(&l));
    }

    #[test]
    fn remove_by_id_preserves_surrounding_order() {
        let mut g = GlobalLog::new();
        for i in 0..4 {
            g.push_uncommitted(op(i, 1));
        }
        let removed = g.remove_by_id(OpId(2)).unwrap();
        assert_eq!(removed.op.id, OpId(2));
        let ids: Vec<u64> = g.ops().iter().map(|o| o.id.0).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        assert!(g.remove_by_id(OpId(2)).is_none());
    }

    #[test]
    fn drop_uncommitted_except_keeps_committed_and_listed() {
        let mut g = GlobalLog::new();
        g.push_uncommitted(op(0, 1));
        g.push_uncommitted(op(1, 2));
        g.push_uncommitted(op(2, 3));
        let mut l = LocalLog::new();
        l.push_entry(pshd(0, 1));
        g.commit_local(&l);
        let kept = g.drop_uncommitted_except(&[OpId(2)]);
        let ids: Vec<u64> = kept.iter().map(|e| e.op.id.0).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn local_remove_and_pop() {
        let mut l = LocalLog::new();
        l.push_entry(npshd(0, 1));
        l.push_entry(npshd(1, 1));
        assert_eq!(l.remove_by_id(OpId(0)).unwrap().op.id, OpId(0));
        assert_eq!(l.pop_entry().unwrap().op.id, OpId(1));
        assert!(l.is_empty());
        assert!(l.fully_pushed(), "vacuously true on empty log");
    }
}
