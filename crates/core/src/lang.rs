//! The generic transaction language of paper §3 (Example 1) and its
//! `step`/`fin` functions.
//!
//! ```text
//! c ::= c₁ + c₂ | c₁ ; c₂ | (c)* | skip | tx c | m
//! ```
//!
//! The paper abstracts the thread language behind two functions:
//!
//! * `step(c)`: the set of pairs `(m, c′)` such that `m` is a next
//!   reachable method in the reduction of `c`, with remaining code `c′`;
//! * `fin(c)`: true if `c` can reduce to `skip` without encountering a
//!   method call.
//!
//! [`Code::step`] and [`Code::fin`] implement exactly the equations of
//! Example 1. In `step`/`fin` nested transactions are flattened
//! (`step(tx c) = step(c)`), matching the paper's small-step semantics —
//! but the boundary is *not* lost: [`Code::peel_scope`] recovers the
//! leftmost `tx`/`otx` redex so [`crate::handle::TxnHandle`] can enter a
//! first-class nested scope (closed or open) before stepping into the
//! body. Drivers that never consult scopes keep the historical flattened
//! behaviour bit-for-bit.

use std::fmt;

use crate::scope::ScopeKind;

/// Code of the generic transaction language.
///
/// `M` is the method type of the sequential specification in use.
///
/// # Examples
///
/// ```
/// use pushpull_core::lang::Code;
/// // tx (skip ; (a + (m + n)) ; b) — one path reaches `n` with continuation `b`.
/// let c = Code::tx(Code::seq(
///     Code::Skip,
///     Code::seq(
///         Code::choice(Code::method("a"), Code::choice(Code::method("m"), Code::method("n"))),
///         Code::method("b"),
///     ),
/// ));
/// let steps = c.step();
/// assert!(steps.iter().any(|(m, k)| *m == "n" && k.step().iter().any(|(m2, _)| *m2 == "b")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Code<M> {
    /// The finished program.
    Skip,
    /// A method invocation `m`.
    Method(M),
    /// Sequential composition `c₁ ; c₂`.
    Seq(Box<Code<M>>, Box<Code<M>>),
    /// Nondeterministic choice `c₁ + c₂`.
    Choice(Box<Code<M>>, Box<Code<M>>),
    /// Nondeterministic looping `(c)*`.
    Star(Box<Code<M>>),
    /// A transaction `tx c`.
    Tx(Box<Code<M>>),
    /// An *open-nested* transaction `otx c` (§6.2 "open nesting"): its
    /// body commits to the shared log as an independent transaction the
    /// moment the scope finishes, registering compensating inverses in
    /// the enclosing transaction's compensation set. In `step`/`fin` it
    /// flattens exactly like [`Code::Tx`]; the open semantics engage
    /// only through [`Code::peel_scope`]-aware executors.
    OpenTx(Box<Code<M>>),
}

impl<M: Clone> Code<M> {
    /// Convenience constructor for [`Code::Method`].
    pub fn method(m: M) -> Self {
        Code::Method(m)
    }

    /// Convenience constructor for [`Code::Seq`].
    pub fn seq(a: Code<M>, b: Code<M>) -> Self {
        Code::Seq(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`Code::Choice`].
    pub fn choice(a: Code<M>, b: Code<M>) -> Self {
        Code::Choice(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`Code::Star`].
    pub fn star(a: Code<M>) -> Self {
        Code::Star(Box::new(a))
    }

    /// Convenience constructor for [`Code::Tx`].
    pub fn tx(a: Code<M>) -> Self {
        Code::Tx(Box::new(a))
    }

    /// Convenience constructor for [`Code::OpenTx`].
    pub fn otx(a: Code<M>) -> Self {
        Code::OpenTx(Box::new(a))
    }

    /// Sequences a list of codes: `seq_all([a, b, c]) = a ; (b ; c)`.
    /// An empty list yields `skip`.
    pub fn seq_all<I: IntoIterator<Item = Code<M>>>(parts: I) -> Self {
        let mut parts: Vec<Code<M>> = parts.into_iter().collect();
        match parts.pop() {
            None => Code::Skip,
            Some(mut acc) => {
                while let Some(prev) = parts.pop() {
                    acc = Code::seq(prev, acc);
                }
                acc
            }
        }
    }

    /// The `step` function of Example 1: every next reachable method `m`
    /// paired with its continuation.
    ///
    /// ```text
    /// step(skip)     = ∅
    /// step(c₁ ; c₂)  = (step(c₁) ; c₂) ∪ (fin(c₁) ; step(c₂))
    /// step(c₁ + c₂)  = step(c₁) ∪ step(c₂)
    /// step((c)*)     = step(c) ; (c)*
    /// step(tx c)     = step(c)
    /// step(m)        = {(m, skip)}
    /// ```
    ///
    /// The equations denote *sets*; nested `Choice`/`Star` can produce the
    /// same `(m, c′)` pair along several syntactic paths, so the result is
    /// deduplicated (first occurrence kept, order otherwise preserved).
    pub fn step(&self) -> Vec<(M, Code<M>)>
    where
        M: PartialEq,
    {
        let mut out = self.step_raw();
        let mut seen: Vec<(M, Code<M>)> = Vec::with_capacity(out.len());
        out.retain(|pair| {
            if seen.contains(pair) {
                false
            } else {
                seen.push(pair.clone());
                true
            }
        });
        out
    }

    fn step_raw(&self) -> Vec<(M, Code<M>)> {
        match self {
            Code::Skip => Vec::new(),
            Code::Method(m) => vec![(m.clone(), Code::Skip)],
            Code::Seq(c1, c2) => {
                let mut out: Vec<(M, Code<M>)> = c1
                    .step_raw()
                    .into_iter()
                    .map(|(m, k)| (m, Code::seq(k, (**c2).clone())))
                    .collect();
                if c1.fin() {
                    out.extend(c2.step_raw());
                }
                out
            }
            Code::Choice(c1, c2) => {
                let mut out = c1.step_raw();
                out.extend(c2.step_raw());
                out
            }
            Code::Star(c) => c
                .step_raw()
                .into_iter()
                .map(|(m, k)| (m, Code::seq(k, Code::star((**c).clone()))))
                .collect(),
            Code::Tx(c) | Code::OpenTx(c) => c.step_raw(),
        }
    }

    /// The `fin` predicate of Example 1: can `self` reduce to `skip`
    /// without encountering a method call?
    pub fn fin(&self) -> bool {
        match self {
            Code::Skip => true,
            Code::Method(_) => false,
            Code::Seq(c1, c2) => c1.fin() && c2.fin(),
            Code::Choice(c1, c2) => c1.fin() || c2.fin(),
            Code::Star(_) => true,
            Code::Tx(c) | Code::OpenTx(c) => c.fin(),
        }
    }

    /// Locates the leftmost nested-transaction redex along the `Seq`
    /// spine: the scope an executor should *enter* before stepping into
    /// its body. Returns `(kind, body, cont)` where `cont` is everything
    /// sequenced after the scope (`skip` when nothing is).
    ///
    /// Descent mirrors the `SEMI` congruence: through the left of `Seq`,
    /// and past a finished, step-free prefix into the right — so the
    /// peeled body's `step` options coincide with the flattened `step`
    /// options of the whole code whenever the body can still step.
    pub fn peel_scope(&self) -> Option<(ScopeKind, Code<M>, Code<M>)>
    where
        M: PartialEq,
    {
        match self {
            Code::Tx(b) => Some((ScopeKind::Closed, (**b).clone(), Code::Skip)),
            Code::OpenTx(b) => Some((ScopeKind::Open, (**b).clone(), Code::Skip)),
            Code::Seq(a, rest) => {
                if let Some((kind, body, cont)) = a.peel_scope() {
                    let cont = match cont {
                        Code::Skip => (**rest).clone(),
                        c => Code::seq(c, (**rest).clone()),
                    };
                    Some((kind, body, cont))
                } else if a.fin() && a.step_raw().is_empty() {
                    // `a` is semantically skip: the scope (if any) in
                    // `rest` is the leftmost redex.
                    rest.peel_scope()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Does any `otx` scope occur in `self`?
    pub fn has_open(&self) -> bool {
        match self {
            Code::Skip | Code::Method(_) => false,
            Code::Seq(a, b) | Code::Choice(a, b) => a.has_open() || b.has_open(),
            Code::Star(a) | Code::Tx(a) => a.has_open(),
            Code::OpenTx(_) => true,
        }
    }

    /// `self` with every `otx` subtree replaced by `skip`.
    ///
    /// An open-nested child commits as its *own* transaction, so the
    /// parent's committed record — the code the serializability oracle
    /// replays against the parent's own operations — must not demand the
    /// child's methods. For open-free code this is the identity.
    pub fn strip_open(&self) -> Code<M> {
        if !self.has_open() {
            return self.clone();
        }
        match self {
            Code::Skip => Code::Skip,
            Code::Method(m) => Code::Method(m.clone()),
            Code::Seq(a, b) => Code::seq(a.strip_open(), b.strip_open()),
            Code::Choice(a, b) => Code::choice(a.strip_open(), b.strip_open()),
            Code::Star(a) => Code::star(a.strip_open()),
            Code::Tx(a) => Code::tx(a.strip_open()),
            Code::OpenTx(_) => Code::Skip,
        }
    }

    /// All method names syntactically reachable in `self`, in first
    /// occurrence order.
    ///
    /// Used by the opacity refinement of §6.1: a transaction may safely
    /// PULL an uncommitted operation if every method it may still perform
    /// commutes with that operation.
    pub fn reachable_methods(&self) -> Vec<M>
    where
        M: PartialEq,
    {
        let mut out = Vec::new();
        self.collect_methods(&mut out);
        out
    }

    fn collect_methods(&self, out: &mut Vec<M>)
    where
        M: PartialEq,
    {
        match self {
            Code::Skip => {}
            Code::Method(m) => {
                if !out.contains(m) {
                    out.push(m.clone());
                }
            }
            Code::Seq(a, b) | Code::Choice(a, b) => {
                a.collect_methods(out);
                b.collect_methods(out);
            }
            Code::Star(a) | Code::Tx(a) | Code::OpenTx(a) => a.collect_methods(out),
        }
    }

    /// Number of grammar nodes, a convenient size measure for tests and
    /// random program generators.
    pub fn size(&self) -> usize {
        match self {
            Code::Skip | Code::Method(_) => 1,
            Code::Seq(a, b) | Code::Choice(a, b) => 1 + a.size() + b.size(),
            Code::Star(a) | Code::Tx(a) | Code::OpenTx(a) => 1 + a.size(),
        }
    }
}

impl<M: fmt::Display> fmt::Display for Code<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Code::Skip => write!(f, "skip"),
            Code::Method(m) => write!(f, "{m}"),
            Code::Seq(a, b) => write!(f, "({a} ; {b})"),
            Code::Choice(a, b) => write!(f, "({a} + {b})"),
            Code::Star(a) => write!(f, "({a})*"),
            Code::Tx(a) => write!(f, "tx {a}"),
            Code::OpenTx(a) => write!(f, "otx {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> Code<&str> {
        Code::method(s)
    }

    #[test]
    fn step_of_skip_is_empty() {
        assert!(Code::<&str>::Skip.step().is_empty());
    }

    #[test]
    fn step_of_method_is_singleton() {
        let steps = m("a").step();
        assert_eq!(steps, vec![("a", Code::Skip)]);
    }

    #[test]
    fn seq_steps_through_fin_prefix() {
        // (skip ; a): skip is fin, so `a` is a next step.
        let c = Code::seq(Code::Skip, m("a"));
        let names: Vec<&str> = c.step().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a"]);
    }

    #[test]
    fn choice_collects_both_branches() {
        let c = Code::choice(m("a"), m("b"));
        let mut names: Vec<&str> = c.step().into_iter().map(|(n, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn star_is_fin_and_loops() {
        let c = Code::star(m("a"));
        assert!(c.fin());
        let steps = c.step();
        assert_eq!(steps.len(), 1);
        let (name, k) = &steps[0];
        assert_eq!(*name, "a");
        // Continuation is skip ; (a)*, which can step to `a` again.
        assert!(k.step().iter().any(|(n, _)| *n == "a"));
    }

    #[test]
    fn example_1_from_paper() {
        // c = tx (skip ; (c1 + (m + n)) ; c2) — (n, c2) ∈ step(c).
        let c = Code::tx(Code::seq(
            Code::seq(
                Code::Skip,
                Code::choice(m("c1"), Code::choice(m("m"), m("n"))),
            ),
            m("c2"),
        ));
        let steps = c.step();
        let n_step = steps
            .iter()
            .find(|(name, _)| *name == "n")
            .expect("n reachable");
        // Continuation reduces to c2 (modulo skip-sequencing).
        let next: Vec<&str> = n_step.1.step().into_iter().map(|(n, _)| n).collect();
        assert_eq!(next, vec!["c2"]);
    }

    #[test]
    fn step_deduplicates_across_choice_and_star() {
        // (a + a): both branches reduce to the same (a, skip) pair.
        let c = Code::choice(m("a"), m("a"));
        assert_eq!(c.step(), vec![("a", Code::Skip)]);
        // ((a + a))*: the duplicate survives the Star continuation map
        // without dedup, since both copies get the same continuation.
        let c = Code::star(Code::choice(m("a"), m("a")));
        assert_eq!(c.step().len(), 1);
        // Nested: ((a ; b) + (a ; b)) + (a ; b) — one pair, not three.
        let ab = || Code::seq(m("a"), m("b"));
        let c = Code::choice(Code::choice(ab(), ab()), ab());
        assert_eq!(c.step().len(), 1);
        // Distinct continuations for the same method are NOT merged.
        let c = Code::choice(Code::seq(m("a"), m("b")), Code::seq(m("a"), m("c")));
        assert_eq!(c.step().len(), 2);
    }

    #[test]
    fn fin_equations() {
        assert!(Code::<&str>::Skip.fin());
        assert!(!m("a").fin());
        assert!(!Code::seq(Code::Skip, m("a")).fin());
        assert!(Code::<&str>::seq(Code::Skip, Code::Skip).fin());
        assert!(Code::choice(m("a"), Code::Skip).fin());
        assert!(Code::star(m("a")).fin());
        assert!(!Code::tx(m("a")).fin());
    }

    #[test]
    fn reachable_methods_dedups_in_order() {
        let c = Code::seq(m("a"), Code::choice(m("b"), Code::seq(m("a"), m("c"))));
        assert_eq!(c.reachable_methods(), vec!["a", "b", "c"]);
    }

    #[test]
    fn seq_all_builds_right_nested_seq() {
        let c = Code::seq_all(vec![m("a"), m("b"), m("c")]);
        assert_eq!(c.to_string(), "(a ; (b ; c))");
        assert_eq!(Code::<&str>::seq_all(vec![]), Code::Skip);
    }

    #[test]
    fn size_counts_nodes() {
        let c = Code::seq(m("a"), Code::star(m("b")));
        assert_eq!(c.size(), 4);
    }

    #[test]
    fn open_tx_flattens_like_tx_in_step_and_fin() {
        let c = Code::otx(Code::seq(m("a"), m("b")));
        let names: Vec<&str> = c.step().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a"]);
        assert!(!c.fin());
        assert!(Code::<&str>::otx(Code::Skip).fin());
        assert_eq!(c.to_string(), "otx (a ; b)");
    }

    #[test]
    fn peel_scope_finds_leftmost_redex_with_continuation() {
        // tx a ; b — peels to (Closed, a, b).
        let c = Code::seq(Code::tx(m("a")), m("b"));
        let (kind, body, cont) = c.peel_scope().expect("peelable");
        assert_eq!(kind, ScopeKind::Closed);
        assert_eq!(body, m("a"));
        assert_eq!(cont, m("b"));
        // otx inside a seq-spine with a skip prefix.
        let c = Code::seq(Code::Skip, Code::seq(Code::otx(m("x")), m("y")));
        let (kind, body, cont) = c.peel_scope().expect("peelable");
        assert_eq!(kind, ScopeKind::Open);
        assert_eq!(body, m("x"));
        assert_eq!(cont, m("y"));
        // A method prefix blocks peeling (the scope is not the redex yet).
        assert!(Code::seq(m("a"), Code::tx(m("b"))).peel_scope().is_none());
        // No scope at all.
        assert!(m("a").peel_scope().is_none());
    }

    #[test]
    fn peel_scope_nested_tx_peels_outermost_first() {
        let c = Code::tx(Code::seq(Code::tx(m("a")), m("b")));
        let (kind, body, cont) = c.peel_scope().expect("peelable");
        assert_eq!(kind, ScopeKind::Closed);
        assert_eq!(cont, Code::Skip);
        // The body itself peels again (the inner scope).
        let (k2, b2, c2) = body.peel_scope().expect("inner peels");
        assert_eq!(k2, ScopeKind::Closed);
        assert_eq!(b2, m("a"));
        assert_eq!(c2, m("b"));
    }

    #[test]
    fn strip_open_replaces_otx_with_skip() {
        let c = Code::seq(m("a"), Code::seq(Code::otx(m("x")), m("b")));
        assert!(c.has_open());
        let stripped = c.strip_open();
        assert!(!stripped.has_open());
        assert_eq!(stripped.reachable_methods(), vec!["a", "b"]);
        // Open-free code round-trips identically.
        let flat = Code::tx(Code::seq(m("a"), m("b")));
        assert_eq!(flat.strip_open(), flat);
    }
}
