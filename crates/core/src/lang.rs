//! The generic transaction language of paper §3 (Example 1) and its
//! `step`/`fin` functions.
//!
//! ```text
//! c ::= c₁ + c₂ | c₁ ; c₂ | (c)* | skip | tx c | m
//! ```
//!
//! The paper abstracts the thread language behind two functions:
//!
//! * `step(c)`: the set of pairs `(m, c′)` such that `m` is a next
//!   reachable method in the reduction of `c`, with remaining code `c′`;
//! * `fin(c)`: true if `c` can reduce to `skip` without encountering a
//!   method call.
//!
//! [`Code::step`] and [`Code::fin`] implement exactly the equations of
//! Example 1. Nested transactions are flattened (`step(tx c) = step(c)`),
//! matching the paper, which ignores nesting.

use std::fmt;

/// Code of the generic transaction language.
///
/// `M` is the method type of the sequential specification in use.
///
/// # Examples
///
/// ```
/// use pushpull_core::lang::Code;
/// // tx (skip ; (a + (m + n)) ; b) — one path reaches `n` with continuation `b`.
/// let c = Code::tx(Code::seq(
///     Code::Skip,
///     Code::seq(
///         Code::choice(Code::method("a"), Code::choice(Code::method("m"), Code::method("n"))),
///         Code::method("b"),
///     ),
/// ));
/// let steps = c.step();
/// assert!(steps.iter().any(|(m, k)| *m == "n" && k.step().iter().any(|(m2, _)| *m2 == "b")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Code<M> {
    /// The finished program.
    Skip,
    /// A method invocation `m`.
    Method(M),
    /// Sequential composition `c₁ ; c₂`.
    Seq(Box<Code<M>>, Box<Code<M>>),
    /// Nondeterministic choice `c₁ + c₂`.
    Choice(Box<Code<M>>, Box<Code<M>>),
    /// Nondeterministic looping `(c)*`.
    Star(Box<Code<M>>),
    /// A transaction `tx c`.
    Tx(Box<Code<M>>),
}

impl<M: Clone> Code<M> {
    /// Convenience constructor for [`Code::Method`].
    pub fn method(m: M) -> Self {
        Code::Method(m)
    }

    /// Convenience constructor for [`Code::Seq`].
    pub fn seq(a: Code<M>, b: Code<M>) -> Self {
        Code::Seq(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`Code::Choice`].
    pub fn choice(a: Code<M>, b: Code<M>) -> Self {
        Code::Choice(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`Code::Star`].
    pub fn star(a: Code<M>) -> Self {
        Code::Star(Box::new(a))
    }

    /// Convenience constructor for [`Code::Tx`].
    pub fn tx(a: Code<M>) -> Self {
        Code::Tx(Box::new(a))
    }

    /// Sequences a list of codes: `seq_all([a, b, c]) = a ; (b ; c)`.
    /// An empty list yields `skip`.
    pub fn seq_all<I: IntoIterator<Item = Code<M>>>(parts: I) -> Self {
        let mut parts: Vec<Code<M>> = parts.into_iter().collect();
        match parts.pop() {
            None => Code::Skip,
            Some(mut acc) => {
                while let Some(prev) = parts.pop() {
                    acc = Code::seq(prev, acc);
                }
                acc
            }
        }
    }

    /// The `step` function of Example 1: every next reachable method `m`
    /// paired with its continuation.
    ///
    /// ```text
    /// step(skip)     = ∅
    /// step(c₁ ; c₂)  = (step(c₁) ; c₂) ∪ (fin(c₁) ; step(c₂))
    /// step(c₁ + c₂)  = step(c₁) ∪ step(c₂)
    /// step((c)*)     = step(c) ; (c)*
    /// step(tx c)     = step(c)
    /// step(m)        = {(m, skip)}
    /// ```
    ///
    /// The equations denote *sets*; nested `Choice`/`Star` can produce the
    /// same `(m, c′)` pair along several syntactic paths, so the result is
    /// deduplicated (first occurrence kept, order otherwise preserved).
    pub fn step(&self) -> Vec<(M, Code<M>)>
    where
        M: PartialEq,
    {
        let mut out = self.step_raw();
        let mut seen: Vec<(M, Code<M>)> = Vec::with_capacity(out.len());
        out.retain(|pair| {
            if seen.contains(pair) {
                false
            } else {
                seen.push(pair.clone());
                true
            }
        });
        out
    }

    fn step_raw(&self) -> Vec<(M, Code<M>)> {
        match self {
            Code::Skip => Vec::new(),
            Code::Method(m) => vec![(m.clone(), Code::Skip)],
            Code::Seq(c1, c2) => {
                let mut out: Vec<(M, Code<M>)> = c1
                    .step_raw()
                    .into_iter()
                    .map(|(m, k)| (m, Code::seq(k, (**c2).clone())))
                    .collect();
                if c1.fin() {
                    out.extend(c2.step_raw());
                }
                out
            }
            Code::Choice(c1, c2) => {
                let mut out = c1.step_raw();
                out.extend(c2.step_raw());
                out
            }
            Code::Star(c) => c
                .step_raw()
                .into_iter()
                .map(|(m, k)| (m, Code::seq(k, Code::star((**c).clone()))))
                .collect(),
            Code::Tx(c) => c.step_raw(),
        }
    }

    /// The `fin` predicate of Example 1: can `self` reduce to `skip`
    /// without encountering a method call?
    pub fn fin(&self) -> bool {
        match self {
            Code::Skip => true,
            Code::Method(_) => false,
            Code::Seq(c1, c2) => c1.fin() && c2.fin(),
            Code::Choice(c1, c2) => c1.fin() || c2.fin(),
            Code::Star(_) => true,
            Code::Tx(c) => c.fin(),
        }
    }

    /// All method names syntactically reachable in `self`, in first
    /// occurrence order.
    ///
    /// Used by the opacity refinement of §6.1: a transaction may safely
    /// PULL an uncommitted operation if every method it may still perform
    /// commutes with that operation.
    pub fn reachable_methods(&self) -> Vec<M>
    where
        M: PartialEq,
    {
        let mut out = Vec::new();
        self.collect_methods(&mut out);
        out
    }

    fn collect_methods(&self, out: &mut Vec<M>)
    where
        M: PartialEq,
    {
        match self {
            Code::Skip => {}
            Code::Method(m) => {
                if !out.contains(m) {
                    out.push(m.clone());
                }
            }
            Code::Seq(a, b) | Code::Choice(a, b) => {
                a.collect_methods(out);
                b.collect_methods(out);
            }
            Code::Star(a) | Code::Tx(a) => a.collect_methods(out),
        }
    }

    /// Number of grammar nodes, a convenient size measure for tests and
    /// random program generators.
    pub fn size(&self) -> usize {
        match self {
            Code::Skip | Code::Method(_) => 1,
            Code::Seq(a, b) | Code::Choice(a, b) => 1 + a.size() + b.size(),
            Code::Star(a) | Code::Tx(a) => 1 + a.size(),
        }
    }
}

impl<M: fmt::Display> fmt::Display for Code<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Code::Skip => write!(f, "skip"),
            Code::Method(m) => write!(f, "{m}"),
            Code::Seq(a, b) => write!(f, "({a} ; {b})"),
            Code::Choice(a, b) => write!(f, "({a} + {b})"),
            Code::Star(a) => write!(f, "({a})*"),
            Code::Tx(a) => write!(f, "tx {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> Code<&str> {
        Code::method(s)
    }

    #[test]
    fn step_of_skip_is_empty() {
        assert!(Code::<&str>::Skip.step().is_empty());
    }

    #[test]
    fn step_of_method_is_singleton() {
        let steps = m("a").step();
        assert_eq!(steps, vec![("a", Code::Skip)]);
    }

    #[test]
    fn seq_steps_through_fin_prefix() {
        // (skip ; a): skip is fin, so `a` is a next step.
        let c = Code::seq(Code::Skip, m("a"));
        let names: Vec<&str> = c.step().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a"]);
    }

    #[test]
    fn choice_collects_both_branches() {
        let c = Code::choice(m("a"), m("b"));
        let mut names: Vec<&str> = c.step().into_iter().map(|(n, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn star_is_fin_and_loops() {
        let c = Code::star(m("a"));
        assert!(c.fin());
        let steps = c.step();
        assert_eq!(steps.len(), 1);
        let (name, k) = &steps[0];
        assert_eq!(*name, "a");
        // Continuation is skip ; (a)*, which can step to `a` again.
        assert!(k.step().iter().any(|(n, _)| *n == "a"));
    }

    #[test]
    fn example_1_from_paper() {
        // c = tx (skip ; (c1 + (m + n)) ; c2) — (n, c2) ∈ step(c).
        let c = Code::tx(Code::seq(
            Code::seq(
                Code::Skip,
                Code::choice(m("c1"), Code::choice(m("m"), m("n"))),
            ),
            m("c2"),
        ));
        let steps = c.step();
        let n_step = steps
            .iter()
            .find(|(name, _)| *name == "n")
            .expect("n reachable");
        // Continuation reduces to c2 (modulo skip-sequencing).
        let next: Vec<&str> = n_step.1.step().into_iter().map(|(n, _)| n).collect();
        assert_eq!(next, vec!["c2"]);
    }

    #[test]
    fn step_deduplicates_across_choice_and_star() {
        // (a + a): both branches reduce to the same (a, skip) pair.
        let c = Code::choice(m("a"), m("a"));
        assert_eq!(c.step(), vec![("a", Code::Skip)]);
        // ((a + a))*: the duplicate survives the Star continuation map
        // without dedup, since both copies get the same continuation.
        let c = Code::star(Code::choice(m("a"), m("a")));
        assert_eq!(c.step().len(), 1);
        // Nested: ((a ; b) + (a ; b)) + (a ; b) — one pair, not three.
        let ab = || Code::seq(m("a"), m("b"));
        let c = Code::choice(Code::choice(ab(), ab()), ab());
        assert_eq!(c.step().len(), 1);
        // Distinct continuations for the same method are NOT merged.
        let c = Code::choice(Code::seq(m("a"), m("b")), Code::seq(m("a"), m("c")));
        assert_eq!(c.step().len(), 2);
    }

    #[test]
    fn fin_equations() {
        assert!(Code::<&str>::Skip.fin());
        assert!(!m("a").fin());
        assert!(!Code::seq(Code::Skip, m("a")).fin());
        assert!(Code::<&str>::seq(Code::Skip, Code::Skip).fin());
        assert!(Code::choice(m("a"), Code::Skip).fin());
        assert!(Code::star(m("a")).fin());
        assert!(!Code::tx(m("a")).fin());
    }

    #[test]
    fn reachable_methods_dedups_in_order() {
        let c = Code::seq(m("a"), Code::choice(m("b"), Code::seq(m("a"), m("c"))));
        assert_eq!(c.reachable_methods(), vec!["a", "b", "c"]);
    }

    #[test]
    fn seq_all_builds_right_nested_seq() {
        let c = Code::seq_all(vec![m("a"), m("b"), m("c")]);
        assert_eq!(c.to_string(), "(a ; (b ; c))");
        assert_eq!(Code::<&str>::seq_all(vec![]), Code::Skip);
    }

    #[test]
    fn size_counts_nodes() {
        let c = Code::seq(m("a"), Code::star(m("b")));
        assert_eq!(c.size(), 4);
    }
}
