//! The shared-log precongruence `ℓ₁ ≼ ℓ₂` (paper Definition 3.1) and the
//! executable content of Lemmas 5.1–5.4.
//!
//! The paper defines `≼` coinductively: `ℓ₁ ≼ ℓ₂` iff `allowed ℓ₁ ⇒
//! allowed ℓ₂` and `ℓ₁·op ≼ ℓ₂·op` for *every* operation `op` — "there is
//! no sequence of observations we can make of ℓ₂ that we can't also make of
//! ℓ₁" (note the deliberate direction: all allowed extensions of ℓ₁ are
//! allowed extensions of ℓ₂).
//!
//! Two decidable checkers are provided:
//!
//! * [`precongruent_by_states`] — a *sound witness*: if the denotation of
//!   `ℓ₁` is included in the denotation of `ℓ₂` then every allowed
//!   extension of `ℓ₁` is an allowed extension of `ℓ₂`, hence `ℓ₁ ≼ ℓ₂`.
//!   (Incomplete in general: the paper notes unobservable state differences
//!   are also permitted; for the observationally-complete specs shipped in
//!   `pushpull-spec` the two coincide, which the test suites cross-check.)
//! * [`precongruent_bounded`] — unfolds the coinductive definition to a
//!   finite depth over a finite universe of candidate operations; a
//!   counterexample found this way *refutes* `≼` definitively.

use crate::op::Op;
use crate::spec::SeqSpec;

/// Sound witness for `ℓ₁ ≼ ℓ₂`: denotation inclusion `⟦ℓ₁⟧ ⊆ ⟦ℓ₂⟧`.
///
/// Returns `true` only when the precongruence definitely holds.
///
/// # Examples
///
/// ```
/// use pushpull_core::toy::{ToyCounter, CounterMethod, counter_op};
/// use pushpull_core::precongruence::precongruent_by_states;
/// let spec = ToyCounter::with_bound(4);
/// let inc_a = counter_op(0, CounterMethod::Inc, 0);
/// let inc_b = counter_op(1, CounterMethod::Inc, 1);
/// // Two increments in either order denote the same state:
/// let swapped = [counter_op(1, CounterMethod::Inc, 0), counter_op(0, CounterMethod::Inc, 1)];
/// assert!(precongruent_by_states(&spec, &[inc_a, inc_b], &swapped));
/// ```
pub fn precongruent_by_states<S: SeqSpec + ?Sized>(
    spec: &S,
    l1: &[Op<S::Method, S::Ret>],
    l2: &[Op<S::Method, S::Ret>],
) -> bool {
    let d1 = spec.denote(l1);
    if d1.is_empty() {
        // ¬allowed ℓ₁: the implication `allowed ℓ₁ ⇒ allowed ℓ₂` is vacuous,
        // and every extension of ℓ₁ is also disallowed, so ≼ holds.
        return true;
    }
    let d2 = spec.denote(l2);
    d1.is_subset(&d2)
}

/// Bounded unfolding of Definition 3.1 over the candidate operations
/// `universe`, to `depth` extension steps.
///
/// * A returned `false` is a genuine refutation of `ℓ₁ ≼ ℓ₂` (some allowed
///   extension of `ℓ₁` drawn from `universe` is not allowed of `ℓ₂`).
/// * A returned `true` means no counterexample exists within the bound.
pub fn precongruent_bounded<S: SeqSpec + ?Sized>(
    spec: &S,
    l1: &[Op<S::Method, S::Ret>],
    l2: &[Op<S::Method, S::Ret>],
    universe: &[Op<S::Method, S::Ret>],
    depth: usize,
) -> bool {
    let a1 = spec.allowed(l1);
    let a2 = spec.allowed(l2);
    if a1 && !a2 {
        return false;
    }
    if depth == 0 || !a1 {
        // Once ℓ₁ is disallowed every extension is too (prefix closure),
        // so no deeper counterexample can exist.
        return true;
    }
    for op in universe {
        let mut e1 = l1.to_vec();
        e1.push(op.clone());
        let mut e2 = l2.to_vec();
        e2.push(op.clone());
        if !precongruent_bounded(spec, &e1, &e2, universe, depth - 1) {
            return false;
        }
    }
    true
}

/// **Lemma 5.1** as an executable check on concrete data: if every
/// operation of `l2` moves across `op` (`l2 ◁ op`, pointwise) and
/// `allowed (l1·l2·op)`, then `allowed (l1·op)`.
///
/// Returns `None` when the hypotheses fail (the lemma says nothing), and
/// `Some(conclusion)` otherwise; property tests assert the result is never
/// `Some(false)`.
pub fn lemma_5_1_holds<S: SeqSpec + ?Sized>(
    spec: &S,
    l1: &[Op<S::Method, S::Ret>],
    l2: &[Op<S::Method, S::Ret>],
    op: &Op<S::Method, S::Ret>,
) -> Option<bool> {
    let hyp_movers = l2.iter().all(|o| spec.mover(o, op));
    let mut full = l1.to_vec();
    full.extend_from_slice(l2);
    full.push(op.clone());
    let hyp_allowed = spec.allowed(&full);
    if !(hyp_movers && hyp_allowed) {
        return None;
    }
    let mut short = l1.to_vec();
    short.push(op.clone());
    Some(spec.allowed(&short))
}

/// **Lemma 5.2** (transitivity of `≼`) checked through the state witness:
/// if `⟦a⟧ ⊆ ⟦b⟧` and `⟦b⟧ ⊆ ⟦c⟧` then `⟦a⟧ ⊆ ⟦c⟧`. Returns the conclusion
/// whenever the hypotheses hold.
pub fn lemma_5_2_holds<S: SeqSpec + ?Sized>(
    spec: &S,
    a: &[Op<S::Method, S::Ret>],
    b: &[Op<S::Method, S::Ret>],
    c: &[Op<S::Method, S::Ret>],
) -> Option<bool> {
    if precongruent_by_states(spec, a, b) && precongruent_by_states(spec, b, c) {
        Some(precongruent_by_states(spec, a, c))
    } else {
        None
    }
}

/// **Lemma 5.3** (precongruence over append): `ℓa ≼ ℓb ⇒ ℓa·ℓc ≼ ℓb·ℓc`,
/// checked through the state witness.
pub fn lemma_5_3_holds<S: SeqSpec + ?Sized>(
    spec: &S,
    a: &[Op<S::Method, S::Ret>],
    b: &[Op<S::Method, S::Ret>],
    c: &[Op<S::Method, S::Ret>],
) -> Option<bool> {
    if !precongruent_by_states(spec, a, b) {
        return None;
    }
    let mut ac = a.to_vec();
    ac.extend_from_slice(c);
    let mut bc = b.to_vec();
    bc.extend_from_slice(c);
    Some(precongruent_by_states(spec, &ac, &bc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{counter_op, CounterMethod, ToyCounter};

    fn inc(id: u64) -> crate::toy::CounterOp {
        counter_op(id, CounterMethod::Inc, 0)
    }
    fn get(id: u64, v: i64) -> crate::toy::CounterOp {
        counter_op(id, CounterMethod::Get, v)
    }

    #[test]
    fn reflexive() {
        let spec = ToyCounter::with_bound(4);
        let l = vec![inc(0), get(1, 1)];
        assert!(precongruent_by_states(&spec, &l, &l));
    }

    #[test]
    fn disallowed_lhs_is_precongruent_to_anything() {
        let spec = ToyCounter::with_bound(1);
        let bad = vec![inc(0), inc(1)]; // exceeds bound
        let any = vec![get(2, 0)];
        assert!(precongruent_by_states(&spec, &bad, &any));
        assert!(precongruent_bounded(&spec, &bad, &any, &[inc(9)], 3));
    }

    #[test]
    fn distinguishable_logs_are_not_precongruent() {
        let spec = ToyCounter::with_bound(4);
        let one = vec![inc(0)];
        let two = vec![inc(1), inc(2)];
        assert!(!precongruent_by_states(&spec, &one, &two));
        // A bounded observational check refutes it too: extend with get(=1).
        let universe = vec![get(10, 0), get(11, 1), get(12, 2), inc(13)];
        assert!(!precongruent_bounded(&spec, &one, &two, &universe, 2));
    }

    #[test]
    fn bounded_agrees_with_states_on_small_cases() {
        let spec = ToyCounter::with_bound(2);
        let mut universe: Vec<_> = (0..3)
            .map(|v| counter_op(100 + v as u64, CounterMethod::Get, v))
            .collect();
        universe.push(inc(200));
        let cases: Vec<Vec<crate::toy::CounterOp>> = vec![
            vec![],
            vec![inc(0)],
            vec![inc(0), inc(1)],
            vec![get(0, 0)],
            vec![inc(0), get(1, 1)],
        ];
        for l1 in &cases {
            for l2 in &cases {
                let by_states = precongruent_by_states(&spec, l1, l2);
                let bounded = precongruent_bounded(&spec, l1, l2, &universe, 3);
                // State inclusion is sound: whenever it says yes, bounded
                // search must find no counterexample.
                if by_states {
                    assert!(
                        bounded,
                        "state witness said ≼ but bounded refuted: {l1:?} vs {l2:?}"
                    );
                }
                // For the counter spec, gets make states observable, so the
                // two coincide on these cases.
                assert_eq!(by_states, bounded, "{l1:?} vs {l2:?}");
            }
        }
    }

    #[test]
    fn lemma_5_2_and_5_3_on_samples() {
        let spec = ToyCounter::with_bound(4);
        let a = vec![inc(0), inc(1)];
        let b = vec![inc(2), inc(3)];
        let c = vec![get(4, 2)];
        assert_eq!(lemma_5_2_holds(&spec, &a, &b, &a), Some(true));
        assert_eq!(lemma_5_3_holds(&spec, &a, &b, &c), Some(true));
    }

    #[test]
    fn lemma_5_1_on_samples() {
        let spec = ToyCounter::with_bound(8);
        // l2 = [inc], op = inc: incs commute.
        let l1 = vec![inc(0)];
        let l2 = vec![inc(1)];
        let op = inc(2);
        // allowed(l1·l2·op) holds and inc ◁ inc holds, so conclusion must hold.
        assert_eq!(lemma_5_1_holds(&spec, &l1, &l2, &op), Some(true));
    }
}
