//! `SlabArena`: chunked slab allocation with stable, generation-tagged
//! indices, backing the shared log's `GlobalEntry` storage.
//!
//! The sharded global log used to keep `Vec<GlobalEntry>` per shard:
//! every append risked a reallocation that moves *all* entries, and
//! every UNPUSH `Vec::remove` shifted the full entry payload. The arena
//! replaces that with chunked slots that never move once written —
//! appends are O(1) amortized with no entry moves, removals push the
//! slot onto a free list, and the shard's *order* is a separate light
//! `(stamp, ArenaRef)` vector whose elements are 16 bytes to shift
//! instead of whole entries. This is the log-memory half of the §7 step
//! complexity overhaul ("Progressive Transactional Memory in Time and
//! Space" is the anchor): per-op costs stop scaling with log length or
//! allocator behavior.
//!
//! Slot reuse is guarded by *generations*: each [`ArenaRef`] carries the
//! generation of the slot at insertion time, and a lookup with a stale
//! generation returns `None` instead of aliasing whatever value was
//! recycled into the slot. The property test in this module drives
//! random insert/remove traffic and proves retired refs never resolve.
//!
//! The arena is plain owned data — it lives behind the owning shard's
//! mutex and is cloned with it — so no atomics are needed here; readers
//! on the lock-free path only ever see immutable published snapshots
//! ([`SnapCell`](crate::snapcell::SnapCell)), never the arena itself.

use std::fmt;

/// Slots per chunk. Chunks are never reallocated, so boxed chunks give
/// every slot a stable address for the arena's lifetime.
const CHUNK: usize = 64;

/// A stable, generation-tagged reference to an arena slot.
///
/// `get`/`remove` with a ref whose slot has since been freed (and
/// possibly reused) return `None`: the generation stamp rules out
/// aliasing a different live value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    index: u32,
    gen: u32,
}

impl ArenaRef {
    /// The raw slot index (stable for the value's lifetime).
    pub fn index(&self) -> u32 {
        self.index
    }
}

struct ArenaSlot<T> {
    /// Bumped on every free; a ref is live iff its gen matches.
    gen: u32,
    val: Option<T>,
}

/// A chunked slab arena with generation-tagged stable indices.
///
/// # Examples
///
/// ```
/// use pushpull_core::arena::SlabArena;
///
/// let mut arena = SlabArena::new();
/// let a = arena.insert("x");
/// let b = arena.insert("y");
/// assert_eq!(arena.get(a), Some(&"x"));
/// assert_eq!(arena.remove(a), Some("x"));
/// assert_eq!(arena.get(a), None); // stale ref never aliases
/// let c = arena.insert("z"); // may reuse a's slot…
/// assert_eq!(arena.get(a), None); // …but a still resolves to nothing
/// assert_eq!(arena.get(b), Some(&"y"));
/// assert_eq!(arena.get(c), Some(&"z"));
/// ```
pub struct SlabArena<T> {
    chunks: Vec<Box<[ArenaSlot<T>; CHUNK]>>,
    free: Vec<u32>,
    live: usize,
    reused: u64,
}

impl<T> SlabArena<T> {
    /// An empty arena (no chunks allocated yet).
    pub fn new() -> Self {
        SlabArena {
            chunks: Vec::new(),
            free: Vec::new(),
            live: 0,
            reused: 0,
        }
    }

    /// Number of live values.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.chunks.len() * CHUNK
    }

    /// Cumulative count of slot reuses (inserts served from the free
    /// list), for the arena-occupancy stats.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    fn slot(&self, index: u32) -> &ArenaSlot<T> {
        &self.chunks[index as usize / CHUNK][index as usize % CHUNK]
    }

    fn slot_mut(&mut self, index: u32) -> &mut ArenaSlot<T> {
        &mut self.chunks[index as usize / CHUNK][index as usize % CHUNK]
    }

    /// Inserts a value, reusing a freed slot when available.
    pub fn insert(&mut self, value: T) -> ArenaRef {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            self.reused += 1;
            let slot = self.slot_mut(index);
            debug_assert!(slot.val.is_none(), "free-list slot still occupied");
            slot.val = Some(value);
            return ArenaRef {
                index,
                gen: slot.gen,
            };
        }
        let index = (self.chunks.len() * CHUNK) as u32;
        let mut chunk = Vec::with_capacity(CHUNK);
        chunk.resize_with(CHUNK, || ArenaSlot { gen: 0, val: None });
        let boxed: Box<[ArenaSlot<T>; CHUNK]> = chunk
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("chunk built with CHUNK slots"));
        self.chunks.push(boxed);
        // Slot 0 of the new chunk takes the value; the rest go on the
        // free list (in descending order so low indices pop first).
        for i in (1..CHUNK as u32).rev() {
            self.free.push(index + i);
        }
        let slot = self.slot_mut(index);
        slot.val = Some(value);
        ArenaRef {
            index,
            gen: slot.gen,
        }
    }

    /// The value behind `r`, or `None` if it was removed (even if the
    /// slot has since been reused).
    pub fn get(&self, r: ArenaRef) -> Option<&T> {
        let slot = self.slot(r.index);
        if slot.gen != r.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Mutable access to the value behind `r`, with the same staleness
    /// guarantee as [`SlabArena::get`].
    pub fn get_mut(&mut self, r: ArenaRef) -> Option<&mut T> {
        let slot = self.slot_mut(r.index);
        if slot.gen != r.gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// Removes and returns the value behind `r`, freeing its slot. A
    /// stale ref removes nothing.
    pub fn remove(&mut self, r: ArenaRef) -> Option<T> {
        let slot = self.slot_mut(r.index);
        if slot.gen != r.gen {
            return None;
        }
        let out = slot.val.take()?;
        // Bumping the generation retires every outstanding ref to this
        // slot; wrapping is harmless (a ref would need to survive 2^32
        // frees of one slot to collide).
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.index);
        self.live -= 1;
        Some(out)
    }
}

impl<T> Default for SlabArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Clone for SlabArena<T> {
    fn clone(&self) -> Self {
        SlabArena {
            chunks: self
                .chunks
                .iter()
                .map(|c| {
                    let cloned: Vec<ArenaSlot<T>> = c
                        .iter()
                        .map(|s| ArenaSlot {
                            gen: s.gen,
                            val: s.val.clone(),
                        })
                        .collect();
                    cloned
                        .into_boxed_slice()
                        .try_into()
                        .unwrap_or_else(|_| unreachable!("chunk length preserved"))
                })
                .collect(),
            free: self.free.clone(),
            live: self.live,
            reused: self.reused,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SlabArena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabArena")
            .field("live", &self.live)
            .field("capacity", &self.capacity())
            .field("reused", &self.reused)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xorshift64;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = SlabArena::new();
        let refs: Vec<_> = (0..200u64).map(|i| arena.insert(i)).collect();
        assert_eq!(arena.live(), 200);
        assert!(arena.capacity() >= 200);
        for (i, &r) in refs.iter().enumerate() {
            assert_eq!(arena.get(r), Some(&(i as u64)));
        }
        for &r in &refs {
            assert!(arena.remove(r).is_some());
            assert_eq!(arena.remove(r), None, "double remove must miss");
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn reuse_is_counted_and_generation_guarded() {
        let mut arena = SlabArena::new();
        let a = arena.insert(1u64);
        arena.remove(a);
        let b = arena.insert(2u64);
        assert!(arena.reused() >= 1);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get(b), Some(&2));
        assert_eq!(arena.get_mut(a), None);
    }

    #[test]
    fn stable_addresses_across_growth() {
        let mut arena = SlabArena::new();
        let first = arena.insert(7u64);
        let addr = arena.get(first).unwrap() as *const u64;
        for i in 0..1000u64 {
            arena.insert(i);
        }
        // The first value never moved despite ~16 chunk allocations.
        assert_eq!(arena.get(first).unwrap() as *const u64, addr);
    }

    /// Property: under random insert/remove traffic, every retired ref
    /// resolves to `None` forever and every live ref resolves to exactly
    /// its value — slot reuse never aliases a live entry.
    #[test]
    fn random_traffic_never_aliases() {
        let mut rng = Xorshift64::new(0xA11A5);
        let mut arena = SlabArena::new();
        let mut live: HashMap<u64, ArenaRef> = HashMap::new();
        let mut retired: Vec<ArenaRef> = Vec::new();
        let mut next_val = 0u64;
        let steps = if cfg!(miri) { 400 } else { 20_000 };
        for _ in 0..steps {
            if live.is_empty() || !rng.next_u64().is_multiple_of(3) {
                let r = arena.insert(next_val);
                live.insert(next_val, r);
                next_val += 1;
            } else {
                let pick = *live
                    .keys()
                    .nth((rng.next_u64() % live.len() as u64) as usize)
                    .unwrap();
                let r = live.remove(&pick).unwrap();
                assert_eq!(arena.remove(r), Some(pick));
                retired.push(r);
            }
            for r in &retired {
                assert_eq!(arena.get(*r), None, "retired ref aliased a slot");
            }
            for (v, r) in &live {
                assert_eq!(arena.get(*r), Some(v), "live ref lost its value");
            }
        }
        assert_eq!(arena.live(), live.len());
        assert!(arena.reused() > 0, "traffic never exercised reuse");
    }
}
