//! Sequential specifications: the `allowed` predicate and its denotational
//! induction (paper §3, Parameter 3.1).
//!
//! The Push/Pull model is *parameterized* by a prefix-closed sequential
//! specification `allowed ℓ` over operation logs. The paper expects
//! `allowed` to be induced by a denotation `⟦op⟧ : P(State × State)` with
//! initial states `I`, via `allowed ℓ ⇔ ⟦ℓ⟧ ≠ ∅` where
//! `⟦ℓ·op⟧ = ⟦ℓ⟧;⟦op⟧` and `⟦ε⟧ = I`. [`SeqSpec`] captures exactly this:
//! implementors supply the denotation ([`SeqSpec::initial_states`],
//! [`SeqSpec::post_states`]) and receive `allowed` for free.
//!
//! The trait also hosts the *mover* oracle of Definition 4.1 used by the
//! PUSH/PULL rule criteria; see [`SeqSpec::mover`].

use crate::op::{Op, OpId, TxnId};
use crate::smallvec::SmallVec;
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

/// The verdict of the inverse oracle [`SeqSpec::inverse`] for one
/// operation: how (if at all) its state change can be undone by
/// appending another operation.
///
/// This is what makes open nesting and boosting-style undo sound: a
/// committed open-nested child is compensated by replaying the
/// [`OpInverse::Inverse`] of each of its state-changing operations in
/// reverse order, and the inverse *law* — `⟦ℓ · op · op⁻¹⟧ = ⟦ℓ⟧`
/// whenever `ℓ · op` is allowed, and `⟦ℓ · op⟧ = ⟦ℓ⟧` for
/// [`OpInverse::ReadOnly`] — is certified exhaustively by
/// `pushpull-analysis` on bounded specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpInverse<M, R> {
    /// The operation never changes state; there is nothing to undo.
    ReadOnly,
    /// Appending this `(method, ret)` after the operation restores every
    /// pre-state exactly.
    Inverse(M, R),
    /// The operation destroys information (e.g. a saturating decrement
    /// at the floor) and has no context-free inverse. Open-nested scopes
    /// refuse to commit such operations.
    NotInvertible,
}

/// A declared footprint: the abstract keys a method touches.
///
/// Nearly every routed method declares exactly one key (and the product
/// spec's pairs declare one per side), so the key list lives inline —
/// [`SeqSpec::method_keys`] is called on the hot path of every routed
/// rule and must not heap-allocate.
pub type KeySet = SmallVec<u64, 2>;

/// A sequential specification over operation logs.
///
/// Implementors provide a *denotational* semantics: a set of initial
/// abstract states and, for each `(state, method, ret)` triple, the set of
/// post-states. A log is `allowed` iff its denotation (the set of states
/// reachable by threading every operation through) is non-empty — precisely
/// the induction proposed in §3 of the paper.
///
/// `allowed` is prefix-closed by construction (removing a suffix can only
/// grow the denotation from non-empty to non-empty).
///
/// # Examples
///
/// ```
/// use pushpull_core::toy::ToyCounter;
/// use pushpull_core::spec::SeqSpec;
/// use pushpull_core::toy::{CounterMethod, counter_op};
///
/// let spec = ToyCounter::with_bound(4);
/// let inc = counter_op(0, CounterMethod::Inc, 0);
/// let get = counter_op(1, CounterMethod::Get, 1);
/// assert!(spec.allowed(&[inc.clone(), get.clone()]));
/// // `get` observing 1 before any `inc` is not allowed:
/// assert!(!spec.allowed(&[get, inc]));
/// ```
pub trait SeqSpec {
    /// Method name plus arguments (the observable part of the pre-stack σ₁).
    type Method: Clone + Eq + Hash + Debug;
    /// Observable return value (the observable part of the post-stack σ₂).
    type Ret: Clone + Eq + Hash + Debug;
    /// Abstract state of the denotational semantics.
    type State: Clone + Eq + Hash + Debug;

    /// The set `I` of initial states. Must be non-empty.
    fn initial_states(&self) -> Vec<Self::State>;

    /// The relational image `⟦⟨m, ret⟩⟧(state)`: all post-states of running
    /// `method` in `state` while observing return value `ret`. An empty
    /// result means the observation is not allowed in `state`.
    fn post_states(
        &self,
        state: &Self::State,
        method: &Self::Method,
        ret: &Self::Ret,
    ) -> Vec<Self::State>;

    /// Enumerates the return values `method` may produce in `state`.
    ///
    /// Used by the machine's `APP` rule to resolve the post-stack σ₂ and by
    /// the atomic oracle. The default derives nothing; specs with small
    /// result spaces should override. Every `r` returned must satisfy
    /// `!post_states(state, method, r).is_empty()`.
    fn results(&self, state: &Self::State, method: &Self::Method) -> Vec<Self::Ret>;

    /// A finite universe of states, if one exists, enabling exhaustive
    /// mover checking. `None` (the default) for unbounded specs, which
    /// should instead override [`SeqSpec::mover`] with an algebraic oracle.
    fn state_universe(&self) -> Option<Vec<Self::State>> {
        None
    }

    /// The denotation `⟦ℓ⟧`: the set of states reachable by running `ops`
    /// from an initial state.
    fn denote(&self, ops: &[Op<Self::Method, Self::Ret>]) -> HashSet<Self::State> {
        self.denote_refs(ops)
    }

    /// Extends a denotation by further operations: `⟦states · ops⟧`.
    fn denote_from(
        &self,
        states: &HashSet<Self::State>,
        ops: &[Op<Self::Method, Self::Ret>],
    ) -> HashSet<Self::State> {
        self.denote_from_refs(states, ops)
    }

    /// [`SeqSpec::denote`] over any iterator of operation references,
    /// so hot-path callers (shard views, suffix caches) can thread their
    /// cursors straight through without collecting a `Vec` first.
    fn denote_refs<'a, I>(&self, ops: I) -> HashSet<Self::State>
    where
        I: IntoIterator<Item = &'a Op<Self::Method, Self::Ret>>,
        Self::Method: 'a,
        Self::Ret: 'a,
    {
        let init: HashSet<Self::State> = self.initial_states().into_iter().collect();
        self.denote_from_refs(&init, ops)
    }

    /// [`SeqSpec::denote_from`] over any iterator of operation
    /// references (the allocation-free workhorse behind both `denote`
    /// variants).
    fn denote_from_refs<'a, I>(&self, states: &HashSet<Self::State>, ops: I) -> HashSet<Self::State>
    where
        I: IntoIterator<Item = &'a Op<Self::Method, Self::Ret>>,
        Self::Method: 'a,
        Self::Ret: 'a,
    {
        let mut cur: HashSet<Self::State> = states.clone();
        for op in ops {
            let mut next = HashSet::new();
            for s in &cur {
                for s2 in self.post_states(s, &op.method, &op.ret) {
                    next.insert(s2);
                }
            }
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur
    }

    /// Parameter 3.1: `allowed ℓ ⇔ ⟦ℓ⟧ ≠ ∅`.
    fn allowed(&self, ops: &[Op<Self::Method, Self::Ret>]) -> bool {
        !self.denote(ops).is_empty()
    }

    /// `ℓ allows op` ≡ `allowed (ℓ · op)` (paper §3 shorthand).
    fn allows(
        &self,
        ops: &[Op<Self::Method, Self::Ret>],
        op: &Op<Self::Method, Self::Ret>,
    ) -> bool {
        let states = self.denote(ops);
        if states.is_empty() {
            return false;
        }
        !self
            .denote_from(&states, std::slice::from_ref(op))
            .is_empty()
    }

    /// The mover relation of **Definition 4.1**:
    /// `op1 ◁ op2 ≡ ∀ℓ. ℓ·op1·op2 ≼ ℓ·op2·op1`.
    ///
    /// Reading: whenever the *actual* log order is `op1` then `op2`, the
    /// behaviour is included in that of the *hypothetical* order `op2` then
    /// `op1`. In Lipton's terminology `op1` moves right across `op2`
    /// (equivalently, `op2` moves left across `op1`). Criteria of the
    /// PUSH/PULL rules are stated with the actual order as first argument.
    ///
    /// The default implementation checks the definition exhaustively over
    /// [`SeqSpec::state_universe`]; for every state `s` in the universe it
    /// requires the denotation of `op1·op2` from `s` to be included in that
    /// of `op2·op1`. If no universe is available it conservatively returns
    /// `false`; unbounded specs must override with an algebraic oracle
    /// (e.g. "operations on distinct keys commute").
    fn mover(&self, op1: &Op<Self::Method, Self::Ret>, op2: &Op<Self::Method, Self::Ret>) -> bool {
        match self.state_universe() {
            Some(universe) => mover_exhaustive(self, &universe, op1, op2),
            None => false,
        }
    }

    /// The *method-level* (return-universal) mover relation used by the
    /// static criteria prover (`pushpull-analysis`):
    ///
    /// * `Some(true)` — `m1 ◁ m2` holds for **every** pair of return
    ///   observations the two methods can produce, so any runtime mover
    ///   check between an `m1`-op and an `m2`-op is guaranteed to pass;
    /// * `Some(false)` — some observable return pair is not a mover (the
    ///   runtime check cannot be elided);
    /// * `None` — unknown (no finite universe and no algebraic override);
    ///   the analyzer must treat the pair as a potential conflict.
    ///
    /// The default derives the answer exhaustively from
    /// [`SeqSpec::state_universe`] via [`method_mover_exhaustive`];
    /// unbounded specs should override with a return-independent
    /// algebraic oracle (e.g. "operations on distinct keys always
    /// commute"). Overrides must be *sound*: `Some(true)` may only be
    /// returned when [`SeqSpec::mover`] holds for every return pair
    /// observable at runtime — the `pushpull-analysis` property tests
    /// cross-check this against the exhaustive derivation on every
    /// enumerable spec.
    fn method_mover(&self, m1: &Self::Method, m2: &Self::Method) -> Option<bool> {
        let universe = self.state_universe()?;
        Some(method_mover_exhaustive(self, &universe, m1, m2))
    }

    /// The *footprint* of a method: the abstract key(s) it touches, used
    /// by the sharded global log to route operations to footprint-local
    /// shards (disjoint-access parallelism). `None` (the default) means
    /// "unknown/whole-state" and soundly degrades the operation to the
    /// coarse single-shard path.
    ///
    /// Overrides must satisfy two laws, cross-checked by
    /// [`check_disjoint_footprints_commute`] and
    /// [`check_allowed_factorization`] on every enumerable spec:
    ///
    /// 1. **Disjointness implies both-mover**: if `method_keys(m1)` and
    ///    `method_keys(m2)` are both `Some` and share no key, then
    ///    `m1 ◁ m2` and `m2 ◁ m1` hold for every observable return pair
    ///    (i.e. [`SeqSpec::method_mover`] would answer `Some(true)` both
    ///    ways). This is what lets a shard evaluate mover criteria
    ///    against only its own entries.
    /// 2. **`allowed` factorizes over key classes**: for any log whose
    ///    operations each declare exactly one key,
    ///    `allowed(ℓ) ⇔ ∀k. allowed(ℓ|k)` where `ℓ|k` keeps the ops with
    ///    key `k` in order. This is what lets each shard keep its own
    ///    committed-prefix cache and answer `G allows op` locally.
    ///
    /// Returns an inline [`KeySet`] (not a `Vec`): footprints are
    /// consulted on every routed rule, so declaring one must not
    /// allocate.
    fn method_keys(&self, _m: &Self::Method) -> Option<KeySet> {
        None
    }

    /// A finite, representative alphabet of methods, if one exists — the
    /// companion of [`SeqSpec::state_universe`] on the method side, and
    /// what the whole-spec certifier (`pushpull-analysis`) quantifies
    /// over when it derives the ground-truth mover matrix and footprint
    /// cover. `None` (the default) means the spec cannot be certified
    /// exhaustively; bounded spec variants should override with an
    /// alphabet that exercises every `method_mover`/`method_keys` arm
    /// (every constructor, including the degenerate parameters the
    /// algebraic oracles special-case, e.g. zero amounts).
    fn method_universe(&self) -> Option<Vec<Self::Method>> {
        None
    }

    /// The inverse oracle: how `op`'s state change can be undone — the
    /// basis of open-nested compensations and boosting's undo-logging
    /// (§4's "UNPUSH is typically implemented via inverse operations").
    ///
    /// Overrides must satisfy the inverse law (see [`OpInverse`]);
    /// `pushpull-analysis` certifies it exhaustively on bounded specs.
    /// The default declares every operation [`OpInverse::NotInvertible`],
    /// which soundly disables open nesting.
    fn inverse(&self, _op: &Op<Self::Method, Self::Ret>) -> OpInverse<Self::Method, Self::Ret> {
        OpInverse::NotInvertible
    }

    /// Does this spec support open nesting — i.e. is every operation an
    /// [`OpInverse::Inverse`] or [`OpInverse::ReadOnly`] under
    /// [`SeqSpec::inverse`]? Consulted once at open-scope entry; the
    /// per-operation verdicts are still checked at open commit. The
    /// default (`false`) matches the default `inverse`.
    fn has_inverses(&self) -> bool {
        false
    }
}

/// All return values `m` can observe anywhere in `universe`, via
/// [`SeqSpec::results`] (the same enumeration the machine's APP rule
/// draws from, so it covers every op that can exist at runtime).
pub fn observable_rets<S: SeqSpec + ?Sized>(
    spec: &S,
    universe: &[S::State],
    m: &S::Method,
) -> Vec<S::Ret> {
    let mut out: Vec<S::Ret> = Vec::new();
    for s in universe {
        for r in spec.results(s, m) {
            if !out.contains(&r) {
                out.push(r);
            }
        }
    }
    out
}

/// Checks the method-level mover `m1 ◁ m2` exhaustively: Definition 4.1
/// must hold over `universe` for every pair of observable return values.
/// This is the reference implementation the algebraic
/// [`SeqSpec::method_mover`] overrides are tested against.
pub fn method_mover_exhaustive<S: SeqSpec + ?Sized>(
    spec: &S,
    universe: &[S::State],
    m1: &S::Method,
    m2: &S::Method,
) -> bool {
    // The ids/txns below never reach the spec: denotations (and hence
    // `mover_exhaustive`) look only at methods and returns.
    let rets1 = observable_rets(spec, universe, m1);
    let rets2 = observable_rets(spec, universe, m2);
    for r1 in &rets1 {
        for r2 in &rets2 {
            let op1 = Op::new(OpId(u64::MAX), TxnId(u64::MAX), m1.clone(), r1.clone());
            let op2 = Op::new(OpId(u64::MAX - 1), TxnId(u64::MAX), m2.clone(), r2.clone());
            if !mover_exhaustive(spec, universe, &op1, &op2) {
                return false;
            }
        }
    }
    true
}

/// Checks Definition 4.1 over an explicit state universe: for each state,
/// the post-state set of `op1·op2` must be included in that of `op2·op1`.
///
/// This witnesses `∀ℓ. ℓ·op1·op2 ≼ ℓ·op2·op1` soundly because the
/// denotation of any `ℓ` is a subset of the universe, denotations
/// distribute over unions of start states, and state-set inclusion implies
/// log precongruence (see [`crate::precongruence`]).
pub fn mover_exhaustive<S: SeqSpec + ?Sized>(
    spec: &S,
    universe: &[S::State],
    op1: &Op<S::Method, S::Ret>,
    op2: &Op<S::Method, S::Ret>,
) -> bool {
    for s in universe {
        let start: HashSet<S::State> = std::iter::once(s.clone()).collect();
        let fwd = spec.denote_from(&start, &[op1.clone(), op2.clone()]);
        let back = spec.denote_from(&start, &[op2.clone(), op1.clone()]);
        if !fwd.is_subset(&back) {
            return false;
        }
    }
    true
}

/// Both-ways mover: `op1 ◁ op2 ∧ op2 ◁ op1`, i.e. full commutativity of the
/// pair (the condition abstract locking enforces in transactional boosting).
pub fn commute<S: SeqSpec + ?Sized>(
    spec: &S,
    op1: &Op<S::Method, S::Ret>,
    op2: &Op<S::Method, S::Ret>,
) -> bool {
    spec.mover(op1, op2) && spec.mover(op2, op1)
}

/// A counterexample to footprint law 1 (disjointness ⇒ both-mover): a
/// method pair with declared, disjoint footprints that is *not* an
/// exhaustive mover. Produced by [`disjoint_commute_violations`], the
/// shared implementation behind both the test-suite wrapper
/// [`check_disjoint_footprints_commute`] and the `pushpull-analysis`
/// certifier's `unsound-footprint` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointnessViolation<M> {
    /// The method whose op fails to move right across `m2`'s.
    pub m1: M,
    /// The method it was declared disjoint from.
    pub m2: M,
    /// `m1`'s declared footprint.
    pub keys1: KeySet,
    /// `m2`'s declared footprint.
    pub keys2: KeySet,
}

impl<M: Debug> std::fmt::Display for DisjointnessViolation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "disjoint declared footprints ({:?} vs {:?}) but {:?} does not move across {:?}",
            self.keys1, self.keys2, self.m1, self.m2
        )
    }
}

/// Finds every violation of footprint law 1 (see
/// [`SeqSpec::method_keys`]): an ordered method pair with declared,
/// disjoint footprints that fails the exhaustive Definition 4.1 oracle
/// over `universe`. An empty result means the declared footprints are
/// sound to shard on (law 1). The shared ground-truth check behind the
/// spec test suites and the whole-spec certifier.
pub fn disjoint_commute_violations<S: SeqSpec + ?Sized>(
    spec: &S,
    universe: &[S::State],
    methods: &[S::Method],
) -> Vec<DisjointnessViolation<S::Method>> {
    let mut out = Vec::new();
    for m1 in methods {
        for m2 in methods {
            let (Some(k1), Some(k2)) = (spec.method_keys(m1), spec.method_keys(m2)) else {
                continue;
            };
            if k1.iter().any(|k| k2.contains(k)) {
                continue;
            }
            if !method_mover_exhaustive(spec, universe, m1, m2) {
                out.push(DisjointnessViolation {
                    m1: m1.clone(),
                    m2: m2.clone(),
                    keys1: k1,
                    keys2: k2,
                });
            }
        }
    }
    out
}

/// Validates footprint law 1 as a pass/fail test helper: a thin wrapper
/// over [`disjoint_commute_violations`] (the shared implementation also
/// used by the `pushpull-analysis` certifier).
///
/// # Errors
///
/// Returns the first offending pair, rendered for the test failure.
pub fn check_disjoint_footprints_commute<S: SeqSpec + ?Sized>(
    spec: &S,
    universe: &[S::State],
    methods: &[S::Method],
) -> Result<(), String> {
    match disjoint_commute_violations(spec, universe, methods)
        .into_iter()
        .next()
    {
        Some(v) => Err(v.to_string()),
        None => Ok(()),
    }
}

/// A counterexample to footprint law 2 (`allowed` factorizes over key
/// classes): a log of single-key operations on which the whole-log
/// verdict disagrees with the conjunction of its per-key projections.
/// Produced by [`factorization_violations`], the shared implementation
/// behind both [`check_allowed_factorization`] and the
/// `pushpull-analysis` certifier's `unsound-factorization` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorizationViolation<M, R> {
    /// The counterexample log.
    pub log: Vec<Op<M, R>>,
    /// `allowed` over the whole log.
    pub whole: bool,
    /// Conjunction of `allowed` over the per-key projections.
    pub factored: bool,
}

impl<M: Debug, R: Debug> std::fmt::Display for FactorizationViolation<M, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allowed does not factorize over key classes: whole={} factored={} on {:?}",
            self.whole,
            self.factored,
            self.log
                .iter()
                .map(|o| (&o.method, &o.ret))
                .collect::<Vec<_>>()
        )
    }
}

/// Finds every violation of footprint law 2 (see
/// [`SeqSpec::method_keys`]) over sequences of up to `max_len`
/// operations drawn (with repetition) from `sample`: the `allowed`
/// predicate must equal the conjunction of `allowed` over the per-key
/// projections. Only operations declaring exactly one key participate —
/// those are the ones the sharded log routes; multi-key and
/// `None`-footprint methods take the coarse path and never rely on this
/// law. An empty result means the law holds on the sampled space. The
/// shared ground-truth check behind the spec test suites and the
/// whole-spec certifier.
pub fn factorization_violations<S: SeqSpec + ?Sized>(
    spec: &S,
    sample: &[Op<S::Method, S::Ret>],
    max_len: usize,
) -> Vec<FactorizationViolation<S::Method, S::Ret>> {
    let routed: Vec<&Op<S::Method, S::Ret>> = sample
        .iter()
        .filter(|op| spec.method_keys(&op.method).is_some_and(|ks| ks.len() == 1))
        .collect();
    let key_of = |op: &Op<S::Method, S::Ret>| -> u64 {
        spec.method_keys(&op.method).expect("filtered above")[0]
    };
    let mut out = Vec::new();
    // Enumerate index sequences of length 1..=max_len over `routed`.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if prefix.len() < max_len {
            for i in 0..routed.len() {
                let mut next = prefix.clone();
                next.push(i);
                stack.push(next);
            }
        }
        if prefix.is_empty() {
            continue;
        }
        let seq: Vec<Op<S::Method, S::Ret>> = prefix.iter().map(|&i| routed[i].clone()).collect();
        let whole = spec.allowed(&seq);
        let mut keys: Vec<u64> = seq.iter().map(&key_of).collect();
        keys.sort_unstable();
        keys.dedup();
        let factored = keys.iter().all(|k| {
            let class: Vec<Op<S::Method, S::Ret>> =
                seq.iter().filter(|op| key_of(op) == *k).cloned().collect();
            spec.allowed(&class)
        });
        if whole != factored {
            out.push(FactorizationViolation {
                log: seq,
                whole,
                factored,
            });
        }
    }
    out
}

/// Validates footprint law 2 as a pass/fail test helper: a thin wrapper
/// over [`factorization_violations`] (the shared implementation also
/// used by the `pushpull-analysis` certifier).
///
/// # Errors
///
/// Returns the first counterexample sequence, rendered for the test
/// failure.
pub fn check_allowed_factorization<S: SeqSpec + ?Sized>(
    spec: &S,
    sample: &[Op<S::Method, S::Ret>],
    max_len: usize,
) -> Result<(), String> {
    match factorization_violations(spec, sample, max_len)
        .into_iter()
        .next()
    {
        Some(v) => Err(v.to_string()),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{counter_op, CounterMethod, ToyCounter};

    #[test]
    fn allowed_is_prefix_closed() {
        let spec = ToyCounter::with_bound(3);
        let ops = vec![
            counter_op(0, CounterMethod::Inc, 0),
            counter_op(1, CounterMethod::Inc, 0),
            counter_op(2, CounterMethod::Get, 2),
        ];
        assert!(spec.allowed(&ops));
        for k in 0..ops.len() {
            assert!(spec.allowed(&ops[..k]), "prefix of length {k} not allowed");
        }
    }

    #[test]
    fn get_result_must_match_state() {
        let spec = ToyCounter::with_bound(3);
        let bad = vec![counter_op(0, CounterMethod::Get, 5)];
        assert!(!spec.allowed(&bad));
        let good = vec![counter_op(0, CounterMethod::Get, 0)];
        assert!(spec.allowed(&good));
    }

    #[test]
    fn allows_matches_allowed_append() {
        let spec = ToyCounter::with_bound(3);
        let l = vec![counter_op(0, CounterMethod::Inc, 0)];
        let op = counter_op(1, CounterMethod::Get, 1);
        assert_eq!(spec.allows(&l, &op), {
            let mut l2 = l.clone();
            l2.push(op.clone());
            spec.allowed(&l2)
        });
    }

    #[test]
    fn incs_commute_with_each_other() {
        let spec = ToyCounter::with_bound(5);
        let a = counter_op(0, CounterMethod::Inc, 0);
        let b = counter_op(1, CounterMethod::Inc, 0);
        assert!(commute(&spec, &a, &b));
    }

    #[test]
    fn inc_does_not_move_across_get() {
        let spec = ToyCounter::with_bound(5);
        let inc = counter_op(0, CounterMethod::Inc, 0);
        let get0 = counter_op(1, CounterMethod::Get, 0);
        // Actual order get(=0) then inc is fine; hypothetical inc then get(=0)
        // is not: get would observe 1. So get0 ◁ inc must fail.
        assert!(!spec.mover(&get0, &inc));
        // And inc ◁ get0 also fails: inc·get0 is already disallowed... it is
        // allowed-empty, so inclusion holds vacuously.
        assert!(spec.mover(&inc, &get0));
    }

    #[test]
    fn results_agree_with_post_states() {
        let spec = ToyCounter::with_bound(3);
        for s in spec.state_universe().unwrap() {
            for m in [CounterMethod::Inc, CounterMethod::Dec, CounterMethod::Get] {
                for r in spec.results(&s, &m) {
                    assert!(
                        !spec.post_states(&s, &m, &r).is_empty(),
                        "results() returned an unobservable ret {r:?} for {m:?} in {s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn method_mover_derives_from_universe() {
        let spec = ToyCounter::with_bound(5);
        // Inc ◁ Inc: increments commute for every ret pair.
        assert_eq!(
            spec.method_mover(&CounterMethod::Inc, &CounterMethod::Inc),
            Some(true)
        );
        // Get ◁ Inc fails for some observable ret (get pins the count).
        assert_eq!(
            spec.method_mover(&CounterMethod::Get, &CounterMethod::Inc),
            Some(false)
        );
        // Get ◁ Get holds (both pin the same state).
        assert_eq!(
            spec.method_mover(&CounterMethod::Get, &CounterMethod::Get),
            Some(true)
        );
    }

    #[test]
    fn denote_from_empty_stays_empty() {
        let spec = ToyCounter::with_bound(3);
        let empty: HashSet<i64> = HashSet::new();
        let out = spec.denote_from(&empty, &[counter_op(0, CounterMethod::Inc, 0)]);
        assert!(out.is_empty());
    }
}
