//! A minimal inline-first vector, `SmallVec<T, N>`, for hot-path
//! collections that are almost always tiny.
//!
//! The machine's per-operation data — declared footprint key lists from
//! [`SeqSpec::method_keys`](crate::spec::SeqSpec::method_keys) (nearly
//! always a single key) and the per-transaction [`LocalLog`]
//! (a handful of operations) — used to heap-allocate a `Vec` per
//! operation. `SmallVec` stores up to `N` elements inline on the stack
//! and only spills to the heap past that, so the common case performs
//! zero allocations. This is the §7-motivated *step complexity* half of
//! the log-memory overhaul; the shared-log half is
//! [`SlabArena`](crate::arena::SlabArena).
//!
//! The implementation is deliberately small: push/pop/remove/truncate
//! plus slice access via `Deref`. Anything fancier should operate on the
//! `&[T]` slice view. (No external crates: the workspace is offline, so
//! this is written in-repo rather than depending on `smallvec`.)
//!
//! [`LocalLog`]: crate::log::LocalLog

use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::ptr;

/// An inline-first vector: up to `N` elements on the stack, spilling to
/// a heap `Vec` beyond that.
///
/// # Examples
///
/// ```
/// use pushpull_core::smallvec::SmallVec;
///
/// let mut v: SmallVec<u64, 2> = SmallVec::new();
/// v.push(3);
/// v.push(4);
/// assert_eq!(&v[..], &[3, 4]);
/// assert!(!v.spilled());
/// v.push(5); // exceeds the inline capacity
/// assert!(v.spilled());
/// assert_eq!(v.remove(0), 3);
/// assert_eq!(&v[..], &[4, 5]);
/// ```
pub struct SmallVec<T, const N: usize> {
    repr: Repr<T, N>,
}

enum Repr<T, const N: usize> {
    /// `len` elements of `buf` are initialized, in order.
    Inline {
        len: usize,
        buf: [MaybeUninit<T>; N],
    },
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                // SAFETY: an array of `MaybeUninit` is trivially "init".
                buf: unsafe { MaybeUninit::<[MaybeUninit<T>; N]>::uninit().assume_init() },
            },
        }
    }

    /// A one-element vector (no allocation when `N >= 1`).
    pub fn one(value: T) -> Self {
        let mut v = Self::new();
        v.push(value);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Has the vector spilled to the heap?
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            // SAFETY: the first `len` slots are initialized.
            Repr::Inline { len, buf } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<T>(), *len)
            },
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            // SAFETY: the first `len` slots are initialized.
            Repr::Inline { len, buf } => unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), *len)
            },
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Appends an element, spilling to the heap when the inline capacity
    /// is exhausted.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len < N {
                    buf[*len].write(value);
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2 + 1);
                    // SAFETY: all `N` slots are initialized; ownership
                    // moves into `v` and `len` is reset below so the
                    // inline slots are never touched again.
                    unsafe {
                        for slot in buf.iter() {
                            v.push(slot.as_ptr().read());
                        }
                    }
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    // SAFETY: slot `len` was initialized and is now out
                    // of the live prefix, so this read uniquely owns it.
                    Some(unsafe { buf[*len].as_ptr().read() })
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes and returns the element at `index`, shifting the tail
    /// left.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn remove(&mut self, index: usize) -> T {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                assert!(
                    index < *len,
                    "SmallVec::remove: index {index} out of bounds"
                );
                // SAFETY: slot `index` is initialized; after the read the
                // tail is shifted down over it so no slot is duplicated,
                // and the (now stale) last slot leaves the live prefix.
                unsafe {
                    let out = buf[index].as_ptr().read();
                    let base = buf.as_mut_ptr();
                    ptr::copy(base.add(index + 1), base.add(index), *len - index - 1);
                    *len -= 1;
                    out
                }
            }
            Repr::Heap(v) => v.remove(index),
        }
    }

    /// Drops all elements.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let live = *len;
                *len = 0;
                for slot in buf.iter_mut().take(live) {
                    // SAFETY: the first `live` slots were initialized and
                    // `len` is already zeroed, so each is dropped once.
                    unsafe { slot.as_mut_ptr().drop_in_place() };
                }
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.as_slice().iter().cloned().collect()
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a mut SmallVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn inline_push_pop_roundtrip() {
        let mut v: SmallVec<u64, 4> = SmallVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        assert_eq!(&v[..], &[1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn spill_preserves_order() {
        let mut v: SmallVec<u64, 2> = SmallVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(&v[..], &(0..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn remove_shifts_tail_inline_and_spilled() {
        let mut v: SmallVec<u64, 4> = (0..4).collect();
        assert!(!v.spilled());
        assert_eq!(v.remove(1), 1);
        assert_eq!(&v[..], &[0, 2, 3]);
        let mut w: SmallVec<u64, 2> = (0..5).collect();
        assert!(w.spilled());
        assert_eq!(w.remove(0), 0);
        assert_eq!(&w[..], &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_out_of_bounds_panics() {
        let mut v: SmallVec<u64, 2> = SmallVec::one(1);
        let _ = v.remove(1);
    }

    #[test]
    fn drops_exactly_once() {
        // Rc counts observe every clone drop: leaks or double-drops in
        // the unsafe inline code would skew the strong count.
        let token = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
            for _ in 0..5 {
                v.push(Rc::clone(&token));
            }
            assert_eq!(Rc::strong_count(&token), 6);
            drop(v.remove(2));
            assert_eq!(Rc::strong_count(&token), 5);
            let mut inline: SmallVec<Rc<()>, 4> = SmallVec::new();
            inline.push(Rc::clone(&token));
            inline.push(Rc::clone(&token));
            drop(inline.pop());
            assert_eq!(Rc::strong_count(&token), 6);
            inline.clear();
            assert_eq!(Rc::strong_count(&token), 5);
        }
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn equality_and_hash_follow_the_slice() {
        use std::collections::hash_map::DefaultHasher;
        let a: SmallVec<u64, 2> = (0..5).collect();
        let b: SmallVec<u64, 8> = (0..5).collect();
        assert_eq!(a.as_slice(), b.as_slice());
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn clone_is_deep() {
        let mut a: SmallVec<u64, 2> = (0..3).collect();
        let b = a.clone();
        a.push(99);
        assert_eq!(&b[..], &[0, 1, 2]);
        assert_eq!(a.last(), Some(&99));
    }
}
