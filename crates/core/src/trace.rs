//! Execution traces: a record of every rule the machine applied.
//!
//! Traces serve three purposes:
//!
//! 1. **Checking** — the opacity checker and the invariant test-suites
//!    replay traces;
//! 2. **Explaining** — [`Trace::render`] pretty-prints the rule sequence in
//!    the style of the paper's Figure 7 ("Decomposing behavior in terms of
//!    PUSH/PULL rules");
//! 3. **Reproduction** — examples print traces so the Fig 2 / Fig 7
//!    decompositions can be eyeballed against the paper.

use std::fmt;

use crate::log::GlobalFlag;
use crate::op::{OpId, ThreadId, TxnId};

/// One recorded machine step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M, R> {
    /// A transaction began (its code was installed).
    Begin {
        /// Thread that began the transaction.
        thread: ThreadId,
        /// Fresh transaction instance id.
        txn: TxnId,
    },
    /// APP: `op` was applied locally.
    App {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The operation's id.
        op: OpId,
        /// Method applied.
        method: M,
        /// Observed return value.
        ret: R,
    },
    /// UNAPP: the most recent unpushed local entry was rewound.
    UnApp {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The rewound operation.
        op: OpId,
        /// Its method (for display).
        method: M,
    },
    /// PUSH: `op` entered the shared log.
    Push {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The pushed operation.
        op: OpId,
        /// Its method (for display).
        method: M,
    },
    /// UNPUSH: `op` was recalled from the shared log.
    UnPush {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The recalled operation.
        op: OpId,
        /// Its method (for display).
        method: M,
    },
    /// PULL: `op` (owned by `from`) was pulled into the local view.
    Pull {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The pulled operation.
        op: OpId,
        /// The transaction that owns the pulled operation.
        from: TxnId,
        /// Commit status of the pulled operation *at pull time* —
        /// the datum the opacity checker needs.
        status_at_pull: GlobalFlag,
        /// Its method (for display).
        method: M,
        /// The pulled operation's recorded return value.
        ret: R,
        /// Methods the puller may still perform after the pull — the datum
        /// the §6.1 commutativity refinement of opacity needs.
        reachable_after: Vec<M>,
    },
    /// UNPULL: `op` was discarded from the local view.
    UnPull {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The discarded operation.
        op: OpId,
        /// Its method (for display).
        method: M,
    },
    /// CMT: the transaction committed; `ops` lists the ids flipped to `gCmt`.
    Commit {
        /// Thread performing the rule.
        thread: ThreadId,
        /// The committed transaction instance.
        txn: TxnId,
        /// Ids whose global flag flipped to committed.
        ops: Vec<OpId>,
    },
    /// The driver declared the transaction aborted (after rewinding).
    Abort {
        /// Thread performing the abort.
        thread: ThreadId,
        /// The aborted transaction instance.
        txn: TxnId,
    },
}

impl<M, R> Event<M, R> {
    /// The thread that performed this event.
    pub fn thread(&self) -> ThreadId {
        match self {
            Event::Begin { thread, .. }
            | Event::App { thread, .. }
            | Event::UnApp { thread, .. }
            | Event::Push { thread, .. }
            | Event::UnPush { thread, .. }
            | Event::Pull { thread, .. }
            | Event::UnPull { thread, .. }
            | Event::Commit { thread, .. }
            | Event::Abort { thread, .. } => *thread,
        }
    }

    /// The paper's rule name for this event, or a pseudo-name for
    /// begin/abort bookkeeping events.
    pub fn rule_name(&self) -> &'static str {
        match self {
            Event::Begin { .. } => "BEGIN",
            Event::App { .. } => "APP",
            Event::UnApp { .. } => "UNAPP",
            Event::Push { .. } => "PUSH",
            Event::UnPush { .. } => "UNPUSH",
            Event::Pull { .. } => "PULL",
            Event::UnPull { .. } => "UNPULL",
            Event::Commit { .. } => "CMT",
            Event::Abort { .. } => "ABORT",
        }
    }
}

/// A complete recorded execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace<M, R> {
    events: Vec<Event<M, R>>,
}

impl<M, R> Trace<M, R> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self { events: Vec::new() }
    }

    /// Appends an event.
    pub fn record(&mut self, event: Event<M, R>) {
        self.events.push(event);
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[Event<M, R>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event<M, R>> {
        self.events.iter()
    }

    /// Events performed by one thread, in order.
    pub fn by_thread(&self, thread: ThreadId) -> Vec<&Event<M, R>> {
        self.events
            .iter()
            .filter(|e| e.thread() == thread)
            .collect()
    }

    /// The rule-name sequence of one thread — the exact shape of the
    /// paper's Figure 7 listing (e.g. `["PULL", "APP", "PUSH", ..., "CMT"]`).
    pub fn rule_names(&self, thread: ThreadId) -> Vec<&'static str> {
        self.by_thread(thread)
            .iter()
            .map(|e| e.rule_name())
            .collect()
    }

    /// Count of events by rule name across all threads.
    pub fn count_rule(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.rule_name() == name).count()
    }
}

impl<M: fmt::Display, R: fmt::Debug> Trace<M, R> {
    /// Renders the trace in the style of Figure 7: one rule per line,
    /// `RULE(method#id)` with thread prefixes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&self.render_event(e));
            out.push('\n');
        }
        out
    }

    fn render_event(&self, e: &Event<M, R>) -> String {
        match e {
            Event::Begin { thread, txn } => format!("{thread}: begin {txn}"),
            Event::App {
                thread,
                op,
                method,
                ret,
            } => {
                format!("{thread}: APP({method}{op}) -> {ret:?}")
            }
            Event::UnApp { thread, op, method } => format!("{thread}: UNAPP({method}{op})"),
            Event::Push { thread, op, method } => format!("{thread}: PUSH({method}{op})"),
            Event::UnPush { thread, op, method } => format!("{thread}: UNPUSH({method}{op})"),
            Event::Pull {
                thread,
                op,
                from,
                status_at_pull,
                method,
                ..
            } => {
                let st = match status_at_pull {
                    GlobalFlag::Committed => "committed",
                    GlobalFlag::Uncommitted => "UNCOMMITTED",
                };
                format!("{thread}: PULL({method}{op} from {from}, {st})")
            }
            Event::UnPull { thread, op, method } => format!("{thread}: UNPULL({method}{op})"),
            Event::Commit { thread, txn, ops } => {
                let ids: Vec<String> = ops.iter().map(|i| i.to_string()).collect();
                format!("{thread}: CMT {txn} [{}]", ids.join(", "))
            }
            Event::Abort { thread, txn } => format!("{thread}: abort {txn}"),
        }
    }
}

impl<'a, M, R> IntoIterator for &'a Trace<M, R> {
    type Item = &'a Event<M, R>;
    type IntoIter = std::slice::Iter<'a, Event<M, R>>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Event<&'static str, i64>;

    #[test]
    fn rule_names_filter_by_thread() {
        let mut t: Trace<&'static str, i64> = Trace::new();
        t.record(E::Begin {
            thread: ThreadId(0),
            txn: TxnId(0),
        });
        t.record(E::App {
            thread: ThreadId(0),
            op: OpId(0),
            method: "inc",
            ret: 0,
        });
        t.record(E::App {
            thread: ThreadId(1),
            op: OpId(1),
            method: "inc",
            ret: 0,
        });
        t.record(E::Push {
            thread: ThreadId(0),
            op: OpId(0),
            method: "inc",
        });
        t.record(E::Commit {
            thread: ThreadId(0),
            txn: TxnId(0),
            ops: vec![OpId(0)],
        });
        assert_eq!(
            t.rule_names(ThreadId(0)),
            vec!["BEGIN", "APP", "PUSH", "CMT"]
        );
        assert_eq!(t.rule_names(ThreadId(1)), vec!["APP"]);
        assert_eq!(t.count_rule("APP"), 2);
    }

    #[test]
    fn render_is_figure7_shaped() {
        let mut t: Trace<&'static str, i64> = Trace::new();
        t.record(E::Push {
            thread: ThreadId(0),
            op: OpId(7),
            method: "size++",
        });
        t.record(E::UnPush {
            thread: ThreadId(0),
            op: OpId(7),
            method: "size++",
        });
        let s = t.render();
        assert!(s.contains("T0: PUSH(size++#7)"));
        assert!(s.contains("T0: UNPUSH(size++#7)"));
    }

    #[test]
    fn pull_render_flags_uncommitted_sources() {
        let mut t: Trace<&'static str, i64> = Trace::new();
        t.record(E::Pull {
            thread: ThreadId(2),
            op: OpId(3),
            from: TxnId(1),
            status_at_pull: GlobalFlag::Uncommitted,
            method: "put",
            ret: 0,
            reachable_after: vec![],
        });
        assert!(t.render().contains("UNCOMMITTED"));
    }
}
