//! The shard transport seam: every shared-rule critical section on a
//! routed shard goes through a [`ShardTransport`], so the same machine
//! runs unchanged whether a shard is a same-address-space mutex or a
//! message-connected server that can be slow, partitioned, or crashed.
//!
//! ## The seam
//!
//! A routed single-shard PUSH or UNPUSH is, logically, a *request*: "run
//! these criteria against your segment of `G` and, if they pass, apply
//! the effect". [`execute_on_shard`] is that request's executor — the
//! same audited criteria code the historical locked path ran, factored
//! out of [`TxnHandle`](crate::handle::TxnHandle) so that *who* runs it
//! becomes a deployment choice:
//!
//! * [`LocalTransport`] runs it inline on the calling thread — the
//!   existing mutex path, zero-cost and infallible.
//! * [`ChannelTransport`] gives each shard a dedicated server thread and
//!   serializes requests to it over an in-process mpsc channel, with a
//!   per-request reply channel. The shard *state* stays in the shared
//!   [`GlobalState`] mutexes — the server is a serialization point, not
//!   a second copy of the data — which is exactly what makes the two
//!   transports bit-identical: both execute the same criteria code
//!   against the same log, under the same lock, recording the same
//!   audit tallies.
//!
//! Coarse-routed operations, multi-shard CMT sections and read-only
//! paths (PULL snapshots, `can_push`) stay on the coordinator: they
//! aggregate *across* shards, which is the coordinator's job in the
//! request/response model. Only the single-shard mutating sections — the
//! disjoint-access-parallel hot path — cross the transport.
//!
//! ## The robustness envelope
//!
//! Every [`ChannelTransport`] call is wrapped in an envelope:
//!
//! * **Deadline** — a real `recv_timeout` backstop per delivery attempt,
//!   so a lost reply can never hang the machine.
//! * **Bounded retries with seeded backoff** — up to
//!   [`TransportConfig::max_retries`] re-deliveries, separated by a
//!   [`RetryBackoff`]-chosen number of bounded yield spins (no real
//!   sleeps: injected faults are fail-fast, so fault-heavy tests stay
//!   deterministic and quick).
//! * **Idempotent request ids** — every logical request carries one id
//!   for all of its delivery attempts; the server memoizes responses by
//!   id, and the PUSH/UNPUSH executors additionally check the log itself
//!   (is the op already appended / already removed?), so a duplicated or
//!   retried message can never double-append — even across a server
//!   crash that loses the memo table.
//! * **Fault injection** — each delivery attempt first consults the
//!   armed [`FaultHook`](crate::faults::FaultHook) for a
//!   [`TransportFault`]; a returned fault is recorded in the audit's
//!   `injected` ledger at the moment it fires, keeping the PR-2
//!   injected-vs-fired accounting exact.
//!
//! ## The degradation ladder
//!
//! When a shard stays unreachable past the whole retry budget the
//! machine degrades instead of hanging. With
//! [`FallbackMode::Coarse`] the shard is marked *degraded* and its
//! operations execute on the coordinator over the coarse all-shard view
//! (placement is preserved: the op still lands on its routed shard, so
//! healing is sound); every subsequent operation first sends a probe,
//! and the first successful probe clears the mark and returns to the
//! fast path. With [`FallbackMode::Fail`] — modelling "the coarse path
//! is unreachable too" — the call surfaces a clean
//! [`MachineError::TransportExhausted`] that drivers propagate, so
//! `run_parallel` stops the run instead of spinning. Both transitions
//! are counted ([`TransportStats::degradations`] /
//! [`TransportStats::recoveries`]) and appear in the watchdog dump.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::thread;
use std::time::Duration;

use crate::error::{MachineError, MachineResult};
use crate::faults::TransportFault;
use crate::global::{GlobalState, LogView, Route};
use crate::op::{Op, OpId, ThreadId, TxnId};
use crate::spec::SeqSpec;

/// Upper bound on the yield spins one backoff step may burn, whatever
/// the policy asks for. Backoff "ticks" are abstract; the transport
/// spends them as `thread::yield_now` calls so fault-heavy runs never
/// sleep for real.
const MAX_BACKOFF_SPINS: u64 = 256;

/// How a transport call may fail after its whole robustness envelope
/// (deadline, retries, backoff) is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// Every delivery attempt timed out or was lost: the shard is
    /// unreachable past the configured budget.
    Exhausted {
        /// Delivery attempts made (1 + retries).
        attempts: u32,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Exhausted { attempts } => {
                write!(f, "shard unreachable after {attempts} delivery attempts")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// What happens when a shard stays unreachable past the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackMode {
    /// Degrade to the coarse path: mark the shard degraded, execute on
    /// the coordinator over the all-shard view, and probe for recovery
    /// on every subsequent operation.
    #[default]
    Coarse,
    /// The coarse path is (modelled as) unreachable too: surface
    /// [`MachineError::TransportExhausted`] so the run terminates
    /// cleanly instead of hanging.
    Fail,
}

/// The backoff policy consulted between delivery attempts: abstract
/// ticks before retry number `attempt` (1-based) on thread `tid`.
///
/// The transport side of the
/// [`ContentionManager`](../../pushpull_tm/contention/trait.ContentionManager.html)
/// seam: `pushpull-tm` adapts its contention policies (exponential
/// backoff, karma aging, …) to this trait so the same tuned policies
/// govern both abort-retry and transport-retry waiting.
pub trait RetryBackoff: fmt::Debug + Send + Sync {
    /// Backoff ticks before delivery attempt `attempt` (1-based).
    fn backoff_ticks(&self, tid: ThreadId, attempt: u32) -> u64;
}

/// SplitMix64: decorrelates per-thread, per-attempt jitter from any
/// seed. Same finalizer the contention policies use.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The default seeded exponential backoff: attempt `k` draws uniformly
/// from `1..=min(cap, 2^k)`, with deterministic per-thread jitter — two
/// threads retrying against the same partitioned shard desynchronize,
/// and the same seed reproduces the same schedule.
#[derive(Debug, Clone, Copy)]
pub struct SeededBackoff {
    seed: u64,
    cap: u64,
}

impl SeededBackoff {
    /// A seeded policy with the default window cap (256 ticks).
    pub fn new(seed: u64) -> Self {
        Self { seed, cap: 256 }
    }
}

impl RetryBackoff for SeededBackoff {
    fn backoff_ticks(&self, tid: ThreadId, attempt: u32) -> u64 {
        let window = self.cap.min(1u64 << attempt.min(62)).max(1);
        let jitter = splitmix64(self.seed ^ ((tid.0 as u64) << 32) ^ u64::from(attempt));
        1 + jitter % window
    }
}

/// Configuration of the robustness envelope around a remote transport.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Re-delivery attempts after the first (the "configurable budget"
    /// a partitioned shard may consume before the machine degrades).
    pub max_retries: u32,
    /// Real per-attempt reply deadline — a generous backstop so a lost
    /// reply can never hang the machine. Injected faults fail fast and
    /// never wait this long.
    pub deadline: Duration,
    /// What exhaustion degrades to.
    pub fallback: FallbackMode,
    /// Backoff policy between delivery attempts.
    pub backoff: Arc<dyn RetryBackoff>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            deadline: Duration::from_secs(5),
            fallback: FallbackMode::Coarse,
            backoff: Arc::new(SeededBackoff::new(0x5EED_BACC)),
        }
    }
}

/// Counters of the transport envelope, shared by both transports and
/// surfaced through `SystemStats` and the watchdog dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Logical requests issued (calls and probes; retries of one call
    /// count once here).
    pub requests: u64,
    /// Re-delivery attempts after a failed one.
    pub retries: u64,
    /// Delivery attempts that timed out or were lost (simulated faults
    /// included).
    pub timeouts: u64,
    /// Fast-path → degraded transitions (a shard exhausted its budget).
    pub degradations: u64,
    /// Degraded → fast-path transitions (a probe found the shard
    /// reachable again).
    pub recoveries: u64,
}

/// A shared-rule critical section shipped to a shard as a request.
///
/// Only the single-shard *mutating* sections cross the transport;
/// coarse routes, CMT and the read paths stay on the coordinator (see
/// the module docs).
pub enum ShardRequest<S: SeqSpec> {
    /// PUSH: run criteria (ii)/(iii) against the shard and append.
    Push {
        /// The pushing transaction (its own uncommitted entries are
        /// exempt from criterion (ii)).
        txn: TxnId,
        /// Audit stripe the query tallies land in (the caller thread's
        /// stripe, so accounting is identical to the local path).
        audit_shard: usize,
        /// Whether criteria are checked (false under
        /// [`CheckMode::Unchecked`](crate::machine::CheckMode)).
        checked: bool,
        /// The operation to publish.
        op: Op<S::Method, S::Ret>,
    },
    /// UNPUSH: run the gray criterion (i) and criterion (ii) against
    /// the shard and remove the entry.
    Unpush {
        /// Audit stripe for the query tallies.
        audit_shard: usize,
        /// Whether criteria are checked at all.
        checked: bool,
        /// Whether the gray criterion (i) is checked
        /// ([`CheckMode::Checked`](crate::machine::CheckMode) only).
        check_gray: bool,
        /// The entry to recall.
        op_id: OpId,
    },
    /// Reachability probe (the recovery path). No log access.
    Ping,
}

impl<S: SeqSpec> Clone for ShardRequest<S> {
    fn clone(&self) -> Self {
        match self {
            ShardRequest::Push {
                txn,
                audit_shard,
                checked,
                op,
            } => ShardRequest::Push {
                txn: *txn,
                audit_shard: *audit_shard,
                checked: *checked,
                op: op.clone(),
            },
            ShardRequest::Unpush {
                audit_shard,
                checked,
                check_gray,
                op_id,
            } => ShardRequest::Unpush {
                audit_shard: *audit_shard,
                checked: *checked,
                check_gray: *check_gray,
                op_id: *op_id,
            },
            ShardRequest::Ping => ShardRequest::Ping,
        }
    }
}

impl<S: SeqSpec> fmt::Debug for ShardRequest<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardRequest::Push { txn, op, .. } => {
                write!(f, "Push({} of {txn})", op.id)
            }
            ShardRequest::Unpush { op_id, .. } => write!(f, "Unpush({op_id})"),
            ShardRequest::Ping => write!(f, "Ping"),
        }
    }
}

/// A shard's reply to a [`ShardRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardResponse {
    /// The criteria passed and the effect was applied (or had already
    /// been applied by a previous delivery of the same request).
    Done,
    /// A criterion failed (or the request was structurally invalid);
    /// nothing was applied. The error is exactly what the local locked
    /// path would have returned.
    Denied(MachineError),
    /// Reply to [`ShardRequest::Ping`].
    Pong,
}

/// Where shard critical sections execute. Implementations must be
/// deterministic relays: the criteria themselves always run via
/// [`execute_on_shard`], so any two transports agree bit-for-bit on
/// verdicts, audit tallies and stamps.
pub trait ShardTransport<S: SeqSpec>: fmt::Debug + Send + Sync {
    /// Short name for stats and the watchdog dump.
    fn name(&self) -> &'static str;

    /// Delivers `req` to `shard` and returns its response, applying the
    /// robustness envelope if delivery can fail.
    fn call(
        &self,
        global: &GlobalState<S>,
        tid: ThreadId,
        shard: usize,
        req: ShardRequest<S>,
    ) -> Result<ShardResponse, TransportError>;

    /// One-shot reachability probe (no retries): may this shard be
    /// spoken to right now? Drives recovery from the degraded state.
    fn probe(&self, global: &GlobalState<S>, tid: ThreadId, shard: usize) -> bool;

    /// What exhaustion of the envelope degrades to.
    fn fallback(&self) -> FallbackMode {
        FallbackMode::Coarse
    }
}

// ---------------------------------------------------------------------
// The shared executor: the audited criteria + effect of the single-shard
// mutating rules, factored out of TxnHandle so both transports (and the
// degraded coordinator path) run the exact same code.
// ---------------------------------------------------------------------

/// The audited PUSH criteria (ii)/(iii) over a held view — the locked
/// evaluation used by the direct path (coarse routes, unreadable
/// snapshots, stale speculations), by both transports' executors and by
/// the degraded coordinator path.
///
/// Criterion (ii): every uncommitted op of other txns moves right of
/// `op`. A single-shard view inspects only entries sharing op's
/// footprint class — entries on other shards have disjoint declared
/// footprints and are both-movers by the validated footprint law, so
/// the verdict is identical.
pub(crate) fn locked_push_criteria<S: SeqSpec>(
    global: &GlobalState<S>,
    txn: TxnId,
    audit_shard: usize,
    view: &LogView<'_, S>,
    op: &Op<S::Method, S::Ret>,
) -> MachineResult<()> {
    use crate::error::{Clause, Rule};
    use crate::log::GlobalFlag;

    if global.statically_discharged(Rule::Push, Clause::Ii) {
        #[cfg(debug_assertions)]
        for (_, g) in view.stamped() {
            assert!(
                g.flag != GlobalFlag::Uncommitted
                    || g.op.txn == txn
                    || global.spec().mover(&g.op, op),
                "static discharge of PUSH (ii) contradicted dynamically: {} vs {}",
                g.op.id,
                op.id
            );
        }
        global.audit.pass_static(Rule::Push, Clause::Ii);
    } else {
        for (_, g) in view.stamped() {
            if g.flag == GlobalFlag::Uncommitted
                && g.op.txn != txn
                && !global.mover_q(audit_shard, &g.op, op)
            {
                global.audit.fail(Rule::Push, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::Push,
                    Clause::Ii,
                    format!(
                        "uncommitted {} of {} cannot move right of {}",
                        g.op.id, g.op.txn, op.id
                    ),
                ));
            }
        }
        global.audit.pass(Rule::Push, Clause::Ii);
    }
    // Criterion (iii): G allows op (incremental over the uncommitted
    // suffix when the cache is on).
    if !global.g_allows(view, audit_shard, op) {
        global.audit.fail(Rule::Push, Clause::Iii);
        return Err(MachineError::criterion(
            Rule::Push,
            Clause::Iii,
            format!("global log does not allow {}", op.id),
        ));
    }
    global.audit.pass(Rule::Push, Clause::Iii);
    Ok(())
}

/// The audited UNPUSH critical section over a held view: locate the
/// entry, run the gray criterion (i) and criterion (ii), remove it.
pub(crate) fn locked_unpush_in_view<S: SeqSpec>(
    global: &GlobalState<S>,
    audit_shard: usize,
    view: &mut LogView<'_, S>,
    op_id: OpId,
    checked: bool,
    check_gray: bool,
) -> MachineResult<Op<S::Method, S::Ret>> {
    use crate::error::{Clause, Rule};

    let (vidx, gpos) = view.find(op_id).ok_or(MachineError::NoSuchOp(op_id))?;
    let op = view.entry(op_id).expect("found above").op.clone();
    let stamp = view.stamp_at(vidx, gpos);
    if checked {
        // Criterion (i), gray: op slides right across the suffix
        // (everything stamped after it in the held shards; on other
        // shards everything is a both-mover by footprint).
        if check_gray {
            if global.statically_discharged(Rule::UnPush, Clause::I) {
                #[cfg(debug_assertions)]
                for g in view.entries_after(stamp) {
                    assert!(
                        global.spec().mover(&op, &g.op),
                        "static discharge of UNPUSH (i) contradicted dynamically: {} vs {}",
                        op.id,
                        g.op.id
                    );
                }
                global.audit.pass_static(Rule::UnPush, Clause::I);
            } else {
                for g in view.entries_after(stamp) {
                    if !global.mover_q(audit_shard, &op, &g.op) {
                        global.audit.fail(Rule::UnPush, Clause::I);
                        return Err(MachineError::criterion(
                            Rule::UnPush,
                            Clause::I,
                            format!("{} cannot slide past later {}", op.id, g.op.id),
                        ));
                    }
                }
                global.audit.pass(Rule::UnPush, Clause::I);
            }
        }
        // Criterion (ii): G without op is still allowed (incremental:
        // an uncommitted op lies past the cached committed prefix, so
        // only the suffix is replayed).
        if !global.g_allowed_without(view, audit_shard, op_id) {
            global.audit.fail(Rule::UnPush, Clause::Ii);
            return Err(MachineError::criterion(
                Rule::UnPush,
                Clause::Ii,
                format!("global log without {} is not allowed", op.id),
            ));
        }
        global.audit.pass(Rule::UnPush, Clause::Ii);
    }
    global.remove_push(view, vidx, op_id).expect("found above");
    Ok(op)
}

/// Executes one [`ShardRequest`] against `shard`: acquire the shard's
/// critical section (re-routed to the coarse all-shard section if the
/// sticky flag flipped) and run the audited criteria + effect.
///
/// Idempotent by construction — the crash-safe layer beneath the
/// request-id memo table:
///
/// * a `Push` whose op id is already in the log was applied by an
///   earlier delivery of this same request (op ids are globally unique
///   and minted once, client-side) → `Done` without re-running criteria;
/// * an `Unpush` whose op id is absent was already removed by an
///   earlier delivery (the client only unpushes entries it verified
///   `pshd`, and no one else removes another transaction's entry) →
///   `Done`.
pub(crate) fn execute_on_shard<S: SeqSpec>(
    global: &GlobalState<S>,
    shard: usize,
    req: &ShardRequest<S>,
) -> ShardResponse {
    match req {
        ShardRequest::Ping => ShardResponse::Pong,
        ShardRequest::Push {
            txn,
            audit_shard,
            checked,
            op,
        } => {
            let mut view = global.acquire_route(Route::Single(shard));
            if view.entry(op.id).is_some() {
                return ShardResponse::Done;
            }
            if *checked {
                if let Err(e) = locked_push_criteria(global, *txn, *audit_shard, &view, op) {
                    return ShardResponse::Denied(e);
                }
            }
            global.append_push(&mut view, shard, op.clone());
            ShardResponse::Done
        }
        ShardRequest::Unpush {
            audit_shard,
            checked,
            check_gray,
            op_id,
        } => {
            let mut view = global.acquire_route(Route::Single(shard));
            if view.find(*op_id).is_none() {
                return ShardResponse::Done;
            }
            match locked_unpush_in_view(
                global,
                *audit_shard,
                &mut view,
                *op_id,
                *checked,
                *check_gray,
            ) {
                Ok(_) => ShardResponse::Done,
                Err(e) => ShardResponse::Denied(e),
            }
        }
    }
}

// ---------------------------------------------------------------------
// LocalTransport: the inline, infallible implementation.
// ---------------------------------------------------------------------

/// The same-address-space transport: requests execute inline on the
/// calling thread under the shard mutex — the existing locked path,
/// zero-cost (no channels, no threads, no serialization) and
/// infallible, so the robustness envelope never engages.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalTransport;

impl<S: SeqSpec> ShardTransport<S> for LocalTransport {
    fn name(&self) -> &'static str {
        "local"
    }

    fn call(
        &self,
        global: &GlobalState<S>,
        _tid: ThreadId,
        shard: usize,
        req: ShardRequest<S>,
    ) -> Result<ShardResponse, TransportError> {
        global.note_transport_request();
        Ok(execute_on_shard(global, shard, &req))
    }

    fn probe(&self, global: &GlobalState<S>, _tid: ThreadId, _shard: usize) -> bool {
        global.note_transport_request();
        true
    }
}

// ---------------------------------------------------------------------
// ChannelTransport: per-shard server threads behind mpsc channels.
// ---------------------------------------------------------------------

enum Envelope<S: SeqSpec> {
    Request {
        id: u64,
        req: ShardRequest<S>,
        reply: mpsc::Sender<ShardResponse>,
    },
    /// Simulated `CrashShardServer`: the server exits, losing its
    /// volatile response memo. Shard state survives in the shared
    /// mutex; a respawned server "restarts from the log".
    Crash,
    Shutdown,
}

struct ServerSlot<S: SeqSpec> {
    tx: mpsc::Sender<Envelope<S>>,
    join: thread::JoinHandle<()>,
}

/// The message-passing transport: each shard is owned by a dedicated
/// server thread; criteria/append/recall requests are serialized to it
/// over an in-process mpsc channel and answered on a per-request reply
/// channel. Wrapped in the full robustness envelope (deadline, retries,
/// seeded backoff, idempotent request ids, fault injection).
pub struct ChannelTransport<S: SeqSpec> {
    config: TransportConfig,
    global: Weak<GlobalState<S>>,
    servers: Vec<Mutex<Option<ServerSlot<S>>>>,
    next_req: AtomicU64,
}

impl<S: SeqSpec> fmt::Debug for ChannelTransport<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("config", &self.config)
            .field("shards", &self.servers.len())
            .finish_non_exhaustive()
    }
}

impl<S> ChannelTransport<S>
where
    S: SeqSpec + Send + Sync + 'static,
    S::Method: Send + Sync + 'static,
    S::Ret: Send + Sync + 'static,
    S::State: Send + Sync + 'static,
{
    /// Builds a channel transport over `global`'s current shard layout
    /// and installs it. Server threads spawn lazily, on each shard's
    /// first request. The transport holds only a [`Weak`] reference —
    /// dropping the machine shuts the servers down, never leaks them.
    pub(crate) fn install(global: &Arc<GlobalState<S>>, config: TransportConfig) {
        let t = Arc::new(Self {
            config,
            global: Arc::downgrade(global),
            servers: (0..global.shard_count())
                .map(|_| Mutex::new(None))
                .collect(),
            next_req: AtomicU64::new(0),
        });
        global.set_transport(Some(t));
    }

    fn slot(&self, shard: usize) -> std::sync::MutexGuard<'_, Option<ServerSlot<S>>> {
        self.servers[shard].lock().expect("server slot poisoned")
    }

    /// The shard's server sender, spawning the server if the slot is
    /// empty (first use, or restart after a crash).
    fn ensure_server(&self, shard: usize) -> mpsc::Sender<Envelope<S>> {
        let mut slot = self.slot(shard);
        if let Some(s) = slot.as_ref() {
            return s.tx.clone();
        }
        let (tx, rx) = mpsc::channel();
        let global = self.global.clone();
        let join = thread::Builder::new()
            .name(format!("pushpull-shard-{shard}"))
            .spawn(move || server_loop(shard, global, rx))
            .expect("spawn shard server thread");
        *slot = Some(ServerSlot {
            tx: tx.clone(),
            join,
        });
        tx
    }

    /// Clears a dead server slot (send or reply channel disconnected),
    /// joining the exited thread.
    fn reap_server(&self, shard: usize) {
        if let Some(s) = self.slot(shard).take() {
            let _ = s.join.join();
        }
    }

    /// Simulated `CrashShardServer`: ask the server to exit and join
    /// it. Its memo table dies with it; the shard log survives in the
    /// shared mutex.
    fn crash_server(&self, shard: usize) {
        if let Some(s) = self.slot(shard).take() {
            let _ = s.tx.send(Envelope::Crash);
            let _ = s.join.join();
        }
    }

    /// One delivery attempt: send, await the reply under the deadline.
    /// `None` is a timeout (real or a dead-server turnaround that spent
    /// its respawn allowance).
    fn deliver(&self, shard: usize, id: u64, req: &ShardRequest<S>) -> Option<ShardResponse> {
        // A send failure means the server crashed; one respawn per
        // attempt keeps delivery bounded.
        for _ in 0..2 {
            let tx = self.ensure_server(shard);
            let (rtx, rrx) = mpsc::channel();
            if tx
                .send(Envelope::Request {
                    id,
                    req: req.clone(),
                    reply: rtx,
                })
                .is_err()
            {
                self.reap_server(shard);
                continue;
            }
            match rrx.recv_timeout(self.config.deadline) {
                Ok(resp) => return Some(resp),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Server died with our request queued (crash raced
                    // in): respawn and re-deliver — idempotency makes
                    // the re-execution safe.
                    self.reap_server(shard);
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
            }
        }
        None
    }

    /// Fire-and-forget delivery for the `DelayReply` fault: the server
    /// executes, but the reply channel is dropped so the client times
    /// out. The retry reuses the same request id and is absorbed by the
    /// server's memo table.
    fn send_discard(&self, shard: usize, id: u64, req: &ShardRequest<S>) {
        let tx = self.ensure_server(shard);
        let (rtx, _rrx) = mpsc::channel();
        let _ = tx.send(Envelope::Request {
            id,
            req: req.clone(),
            reply: rtx,
        });
    }
}

fn server_loop<S>(shard: usize, global: Weak<GlobalState<S>>, rx: mpsc::Receiver<Envelope<S>>)
where
    S: SeqSpec + Send + Sync + 'static,
    S::Method: Send + Sync + 'static,
    S::Ret: Send + Sync + 'static,
    S::State: Send + Sync + 'static,
{
    // Volatile response memo, keyed by request id: the idempotency
    // layer for retried/duplicated deliveries. Lost on crash — the
    // log-presence checks in `execute_on_shard` cover that case.
    let mut memo: std::collections::BTreeMap<u64, ShardResponse> =
        std::collections::BTreeMap::new();
    while let Ok(env) = rx.recv() {
        match env {
            Envelope::Shutdown | Envelope::Crash => break,
            Envelope::Request { id, req, reply } => {
                let Some(g) = global.upgrade() else { break };
                let resp = match memo.get(&id) {
                    Some(r) => r.clone(),
                    None => {
                        let r = execute_on_shard(&g, shard, &req);
                        memo.insert(id, r.clone());
                        r
                    }
                };
                // A dropped reply channel (deadline missed, or the
                // DelayReply fault) is the client's problem, not ours.
                let _ = reply.send(resp);
            }
        }
    }
}

impl<S: SeqSpec> Drop for ChannelTransport<S> {
    fn drop(&mut self) {
        for m in &self.servers {
            if let Some(s) = m.lock().ok().and_then(|mut s| s.take()) {
                let _ = s.tx.send(Envelope::Shutdown);
                // A server thread can run this drop itself: it holds the
                // upgraded `GlobalState` Arc while executing a request,
                // and if the machine is dropped concurrently that Arc is
                // the last owner, so the state (and this transport) die
                // on the server's stack. Joining ourselves would
                // deadlock — detach instead; the Shutdown just queued
                // (or the now-dead Weak) makes the loop exit cleanly.
                if s.join.thread().id() != thread::current().id() {
                    let _ = s.join.join();
                }
            }
        }
    }
}

impl<S> ShardTransport<S> for ChannelTransport<S>
where
    S: SeqSpec + Send + Sync + 'static,
    S::Method: Send + Sync + 'static,
    S::Ret: Send + Sync + 'static,
    S::State: Send + Sync + 'static,
{
    fn name(&self) -> &'static str {
        "channel"
    }

    fn call(
        &self,
        global: &GlobalState<S>,
        tid: ThreadId,
        shard: usize,
        req: ShardRequest<S>,
    ) -> Result<ShardResponse, TransportError> {
        global.note_transport_request();
        let id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let mut attempt: u32 = 0;
        loop {
            // One fault consult per delivery attempt, recorded the
            // moment it fires (injected == fired, exactly).
            let fault = global
                .fault_hook()
                .and_then(|h| h.transport_fault(tid, shard));
            if let Some(f) = fault {
                global.note_injected(f.kind());
            }
            let outcome = match fault {
                // Not delivered at all; fail fast (simulated timeout).
                Some(TransportFault::Partition) | Some(TransportFault::DropRequest) => None,
                // Delivered and executed, but the reply misses its
                // deadline; the retry's duplicate id is absorbed by the
                // server memo (or the log-presence check after a
                // crash).
                Some(TransportFault::DelayReply) => {
                    self.send_discard(shard, id, &req);
                    None
                }
                // The server dies before delivery; the next attempt
                // respawns it, which answers from the surviving log.
                Some(TransportFault::CrashServer) => {
                    self.crash_server(shard);
                    None
                }
                // The same request id arrives twice; the server's memo
                // dedups the second, the client uses the first reply.
                Some(TransportFault::DuplicateRequest) => {
                    let first = self.deliver(shard, id, &req);
                    let _dup = self.deliver(shard, id, &req);
                    first
                }
                None => self.deliver(shard, id, &req),
            };
            match outcome {
                Some(resp) => return Ok(resp),
                None => {
                    global.note_transport_timeout();
                    if attempt >= self.config.max_retries {
                        return Err(TransportError::Exhausted {
                            attempts: attempt + 1,
                        });
                    }
                    attempt += 1;
                    global.note_transport_retry();
                    let ticks = self
                        .config
                        .backoff
                        .backoff_ticks(tid, attempt)
                        .min(MAX_BACKOFF_SPINS);
                    for _ in 0..ticks {
                        thread::yield_now();
                    }
                }
            }
        }
    }

    fn probe(&self, global: &GlobalState<S>, tid: ThreadId, shard: usize) -> bool {
        global.note_transport_request();
        let fault = global
            .fault_hook()
            .and_then(|h| h.transport_fault(tid, shard));
        if let Some(f) = fault {
            global.note_injected(f.kind());
            if matches!(f, TransportFault::CrashServer) {
                self.crash_server(shard);
            }
            global.note_transport_timeout();
            return false;
        }
        let id = self.next_req.fetch_add(1, Ordering::Relaxed);
        match self.deliver(shard, id, &ShardRequest::Ping) {
            Some(ShardResponse::Pong) => true,
            Some(_) => false,
            None => {
                global.note_transport_timeout();
                false
            }
        }
    }

    fn fallback(&self) -> FallbackMode {
        self.config.fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Code;
    use crate::machine::Machine;
    use crate::toy::{CounterMethod, ToyCounter};

    fn inc() -> Code<CounterMethod> {
        Code::method(CounterMethod::Inc)
    }

    #[test]
    fn seeded_backoff_is_deterministic_and_bounded() {
        let b = SeededBackoff::new(7);
        for attempt in 1..10u32 {
            let t1 = b.backoff_ticks(ThreadId(3), attempt);
            let t2 = b.backoff_ticks(ThreadId(3), attempt);
            assert_eq!(t1, t2);
            assert!((1..=256).contains(&t1), "tick {t1} out of window");
        }
        // Different threads desynchronize.
        assert_ne!(
            b.backoff_ticks(ThreadId(0), 3),
            b.backoff_ticks(ThreadId(1), 3)
        );
    }

    #[test]
    fn local_transport_counts_requests() {
        let mut m: Machine<ToyCounter> = Machine::new(ToyCounter::with_bound(32));
        let t = m.add_thread(vec![inc()]);
        m.set_local_transport();
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.commit(t).unwrap();
        let stats = m.transport_stats();
        assert_eq!(stats.requests, 1, "one PUSH crossed the transport");
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.degradations, 0);
    }

    #[test]
    fn channel_transport_matches_local_run() {
        let run = |channel: bool| {
            let mut m: Machine<ToyCounter> = Machine::new(ToyCounter::with_bound(32));
            let t = m.add_thread(vec![Code::seq(inc(), inc())]);
            if channel {
                m.set_channel_transport(TransportConfig::default());
            } else {
                m.set_local_transport();
            }
            let a = m.app_auto(t).unwrap();
            m.push(t, a).unwrap();
            let b = m.app_auto(t).unwrap();
            m.push(t, b).unwrap();
            m.commit(t).unwrap();
            (m.trace().render(), m.audit())
        };
        let (local_trace, local_audit) = run(false);
        let (chan_trace, chan_audit) = run(true);
        assert_eq!(local_trace, chan_trace, "traces must be bit-identical");
        assert_eq!(
            local_audit.discharged, chan_audit.discharged,
            "discharge ledgers must be bit-identical"
        );
        assert_eq!(local_audit.violated, chan_audit.violated);
    }

    #[test]
    fn channel_transport_unpush_roundtrip() {
        let mut m: Machine<ToyCounter> = Machine::new(ToyCounter::with_bound(32));
        let t = m.add_thread(vec![inc()]);
        m.set_channel_transport(TransportConfig::default());
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.unpush(t, op).unwrap();
        assert_eq!(m.global().len(), 0, "unpush removed the entry");
        m.push(t, op).unwrap();
        m.commit(t).unwrap();
        assert_eq!(m.committed_txns().len(), 1);
    }
}
