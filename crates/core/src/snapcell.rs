//! `SnapCell`: a single-writer, many-reader seqlock-style publication
//! cell for shard snapshots.
//!
//! Each shard of the sharded global log publishes an immutable snapshot
//! of its committed-prefix denotation and uncommitted suffix (see
//! `ShardSnap` in `global.rs`). Read-only criteria evaluation — the
//! embarrassingly parallel disjoint-footprint case of §7 — reads that
//! snapshot here with **zero locks**; only when the cell is contended or
//! unpublished does the caller fall back to the per-shard mutex (and
//! from there, for undeclared footprints, to the sticky coarse lock —
//! the three-rung fallback ladder of DESIGN.md §10).
//!
//! # Protocol
//!
//! A classic seqlock over non-POD data (the snapshot owns `HashSet`s and
//! `Vec`s) cannot let readers copy bytes and validate afterwards — a torn
//! read of an owning type is immediate UB. `SnapCell` therefore combines
//! the seqlock's *version validation* with per-slot *pin counts* so a
//! validated reader borrows the data in place and the writer never
//! overwrites a slot someone is still reading:
//!
//! * The cell has [`SLOTS`] slots, each an `Option<T>` plus an atomic
//!   pin count, and one packed `published` word `(epoch << 2) | slot`
//!   (`0` = nothing published). The epoch increments on every publish,
//!   so the word never repeats (no ABA).
//! * **Reader**: load `published`; pin the named slot
//!   (`fetch_add(1, SeqCst)`); re-load `published`. If unchanged, the
//!   slot provably still holds the published value and the pin is
//!   visible to any future writer, so the reader borrows the value,
//!   runs its closure, and unpins. If changed, unpin and retry (bounded;
//!   then fall back to the mutex path).
//! * **Writer** (already serialized by the owning shard's mutex): pick
//!   any slot that is neither currently published nor pinned, move the
//!   new value in, then store the new packed word. If every other slot
//!   is pinned the publish is simply *skipped* — readers will fail
//!   validation against the stale epoch and fall back to the mutex, so
//!   skipping is always safe (the snapshot is an optimization, never the
//!   source of truth).
//!
//! # Why this is sound
//!
//! All protocol atomics are `SeqCst`, so they form one total order `<`.
//! Suppose a writer writes slot `s` while a validated reader is reading
//! it. The reader's successful re-load of `published` returned a word
//! naming `s`; the writer only writes to *unpublished* slots, so the
//! store `U` that unpublished `s` satisfies (reader re-load) `<` `U`.
//! The reader's pin increment precedes its re-load in program order,
//! hence pin `<` re-load `<` `U` `<` (writer's pin check) — the writer
//! must therefore observe the pin and skip the slot: contradiction.
//! Epoch monotonicity rules out the ABA republish of the same slot
//! between the reader's two loads. Visibility of the value itself
//! follows from the acquire/release nature of the `SeqCst` publish
//! store and first read load.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of publication slots per cell. One holds the currently
/// published snapshot; the writer needs one more to publish into; the
/// spares absorb readers still draining pins on retired slots.
pub const SLOTS: usize = 4;

const SLOT_BITS: u32 = 2;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Packs an epoch and slot index into a published word. Epoch `>= 1`,
/// so the packed word is never `0` (the "unpublished" sentinel).
fn pack(epoch: u64, slot: usize) -> u64 {
    (epoch << SLOT_BITS) | slot as u64
}

struct Slot<T> {
    /// Readers currently borrowing this slot's value.
    pin: AtomicU32,
    /// The value; written only by the (mutex-serialized) writer, and
    /// only while the slot is unpublished and unpinned.
    data: UnsafeCell<Option<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            pin: AtomicU32::new(0),
            data: UnsafeCell::new(None),
        }
    }
}

/// The outcome of a [`SnapCell::read`] attempt.
#[derive(Debug)]
pub struct ReadOutcome<R> {
    /// The closure's result, or `None` if the cell was unpublished or
    /// every attempt lost a validation race.
    pub value: Option<R>,
    /// Validation retries burned (0 on first-try success).
    pub retries: u64,
}

/// A single-writer multi-reader snapshot publication cell. See the
/// module docs for the protocol and its soundness argument.
pub struct SnapCell<T> {
    /// `(epoch << 2) | slot`, or `0` when nothing is published.
    published: AtomicU64,
    slots: [Slot<T>; SLOTS],
}

// SAFETY: the pin/validate protocol (module docs) guarantees the writer
// never mutates a slot a validated reader is borrowing, and publication
// is ordered by SeqCst atomics; `T: Send + Sync` is required because
// values move in from the writer thread and are borrowed by readers.
unsafe impl<T: Send + Sync> Sync for SnapCell<T> {}
unsafe impl<T: Send> Send for SnapCell<T> {}

impl<T> SnapCell<T> {
    /// A new cell with nothing published.
    pub fn new() -> Self {
        SnapCell {
            published: AtomicU64::new(0),
            slots: [Slot::new(), Slot::new(), Slot::new(), Slot::new()],
        }
    }

    /// Publishes `value`, retiring the previous snapshot.
    ///
    /// **Caller contract**: publishes must be externally serialized (in
    /// the machine, by the owning shard's mutex). Returns `false` when
    /// every non-published slot was pinned by in-flight readers and the
    /// publish was skipped — always safe, because stale readers fail
    /// validation and fall back to the locked path.
    pub fn publish(&self, value: T) -> bool {
        let cur = self.published.load(Ordering::SeqCst);
        let cur_slot = if cur == 0 {
            usize::MAX
        } else {
            (cur & SLOT_MASK) as usize
        };
        let epoch = cur >> SLOT_BITS;
        for (i, slot) in self.slots.iter().enumerate() {
            if i == cur_slot || slot.pin.load(Ordering::SeqCst) != 0 {
                continue;
            }
            // SAFETY: slot `i` is unpublished and unpinned *in the SeqCst
            // total order at this point*; per the module soundness
            // argument no reader can validate a borrow of it from here
            // on (they would re-read `published`, which does not name
            // `i`, and any reader pinned before unpublication would
            // still show pin > 0). Writers are serialized by contract.
            unsafe { *slot.data.get() = Some(value) };
            self.published.store(pack(epoch + 1, i), Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Optimistically reads the published snapshot, retrying up to
    /// `retries` times on validation races before giving up.
    ///
    /// On success the closure runs against the in-place value (no copy)
    /// and its result is returned; `value: None` means the caller must
    /// take the mutex fallback.
    pub fn read<R, F: FnOnce(&T) -> R>(&self, retries: u64, f: F) -> ReadOutcome<R> {
        let mut f = Some(f);
        let mut burned = 0;
        loop {
            let word = self.published.load(Ordering::SeqCst);
            if word == 0 {
                return ReadOutcome {
                    value: None,
                    retries: burned,
                };
            }
            let slot = &self.slots[(word & SLOT_MASK) as usize];
            slot.pin.fetch_add(1, Ordering::SeqCst);
            if self.published.load(Ordering::SeqCst) == word {
                // SAFETY: validated — the slot still holds the published
                // value and our pin (ordered before the validating load)
                // blocks any writer from touching it until we unpin.
                let out = {
                    let data = unsafe { &*slot.data.get() };
                    let value = data.as_ref().expect("published slot holds a value");
                    (f.take().expect("closure consumed once"))(value)
                };
                slot.pin.fetch_sub(1, Ordering::SeqCst);
                return ReadOutcome {
                    value: Some(out),
                    retries: burned,
                };
            }
            slot.pin.fetch_sub(1, Ordering::SeqCst);
            burned += 1;
            if burned > retries {
                return ReadOutcome {
                    value: None,
                    retries: burned,
                };
            }
        }
    }

    /// Has anything been published yet?
    pub fn is_published(&self) -> bool {
        self.published.load(Ordering::SeqCst) != 0
    }
}

impl<T> Default for SnapCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = self.published.load(Ordering::SeqCst);
        f.debug_struct("SnapCell")
            .field("epoch", &(word >> SLOT_BITS))
            .field("slot", &(word & SLOT_MASK))
            .field("published", &(word != 0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Mutex;

    #[test]
    fn unpublished_reads_fall_back() {
        let cell: SnapCell<Vec<u64>> = SnapCell::new();
        let out = cell.read(3, |v| v.len());
        assert!(out.value.is_none());
        assert_eq!(out.retries, 0);
        assert!(!cell.is_published());
    }

    #[test]
    fn publish_then_read_roundtrip() {
        let cell = SnapCell::new();
        assert!(cell.publish(vec![1u64, 2, 3]));
        let out = cell.read(3, |v: &Vec<u64>| v.iter().sum::<u64>());
        assert_eq!(out.value, Some(6));
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn republish_supersedes() {
        let cell = SnapCell::new();
        for i in 0..100u64 {
            assert!(cell.publish(vec![i]), "single-writer publish never skips");
            assert_eq!(cell.read(0, |v: &Vec<u64>| v[0]).value, Some(i));
        }
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_snapshot() {
        // Writer publishes vectors whose entries must all agree; any torn
        // or stale-slot read would surface a mixed vector.
        const ROUNDS: u64 = if cfg!(miri) { 50 } else { 20_000 };
        let cell = SnapCell::new();
        let stop = AtomicBool::new(false);
        let torn = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let out = cell.read(2, |v: &Vec<u64>| {
                            let first = v[0];
                            v.iter().all(|&x| x == first).then_some(first)
                        });
                        if let Some(None) = out.value {
                            torn.lock().unwrap().push(());
                        }
                    }
                });
            }
            for i in 0..ROUNDS {
                cell.publish(vec![i; 8]);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert!(torn.lock().unwrap().is_empty(), "torn snapshot observed");
    }

    #[test]
    fn skipped_publish_reports_false_under_pin_pressure() {
        // Artificially pin all non-published slots by leaking reads is
        // not possible through the safe API, so exercise the epoch path
        // instead: after many publishes the epoch stays monotonic and
        // the packed word never reuses 0.
        let cell = SnapCell::new();
        assert!(!cell.is_published());
        for _ in 0..10 {
            assert!(cell.publish(7u64));
            assert!(cell.is_published());
        }
    }
}
