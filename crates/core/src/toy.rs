//! A tiny bounded-counter specification used throughout the crate's
//! documentation examples and unit tests.
//!
//! Real specifications (read/write memory, maps, sets, queues, bank
//! accounts) live in the `pushpull-spec` crate; this one exists so that
//! `pushpull-core` is self-contained and its doc examples run.

use crate::op::{Op, OpId, TxnId};
use crate::spec::{OpInverse, SeqSpec};

/// Methods of the toy counter.
///
/// `Inc` and `Dec` return an acknowledgement (always `0`) rather than the
/// pre-value: returning the pre-value would make the observation pin the
/// state, destroying the commutativity (`inc ◁ inc`) that boosting-style
/// reasoning relies on. `Get` returns the current value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterMethod {
    /// Increment the counter; returns `0` (an ack).
    Inc,
    /// Decrement the counter (saturating at zero); returns `0` (an ack).
    Dec,
    /// Read the counter; returns the value.
    Get,
}

impl std::fmt::Display for CounterMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterMethod::Inc => write!(f, "inc"),
            CounterMethod::Dec => write!(f, "dec"),
            CounterMethod::Get => write!(f, "get"),
        }
    }
}

/// Operation records of the toy counter.
pub type CounterOp = Op<CounterMethod, i64>;

/// A bounded counter: states are `0..=bound`, making the state universe
/// finite so the default exhaustive mover check of
/// [`SeqSpec::mover`] applies.
///
/// `Inc` above `bound` is disallowed (the denotation becomes empty), which
/// also gives the tests a convenient "not allowed" case.
///
/// # Examples
///
/// ```
/// use pushpull_core::toy::{ToyCounter, CounterMethod, counter_op};
/// use pushpull_core::spec::SeqSpec;
/// let spec = ToyCounter::with_bound(2);
/// let ops = vec![
///     counter_op(0, CounterMethod::Inc, 0),
///     counter_op(1, CounterMethod::Inc, 0),
///     counter_op(2, CounterMethod::Inc, 0), // would exceed the bound
/// ];
/// assert!(!spec.allowed(&ops));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToyCounter {
    bound: i64,
}

impl ToyCounter {
    /// Creates a counter bounded at `bound` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `bound < 0`.
    pub fn with_bound(bound: i64) -> Self {
        assert!(bound >= 0, "counter bound must be non-negative");
        Self { bound }
    }

    /// The inclusive upper bound of the counter.
    pub fn bound(&self) -> i64 {
        self.bound
    }
}

impl Default for ToyCounter {
    fn default() -> Self {
        Self::with_bound(16)
    }
}

impl SeqSpec for ToyCounter {
    type Method = CounterMethod;
    type Ret = i64;
    type State = i64;

    fn initial_states(&self) -> Vec<i64> {
        vec![0]
    }

    fn post_states(&self, state: &i64, method: &CounterMethod, ret: &i64) -> Vec<i64> {
        match method {
            CounterMethod::Inc => {
                if *ret == 0 && *state < self.bound {
                    vec![state + 1]
                } else {
                    vec![]
                }
            }
            CounterMethod::Dec => {
                if *ret == 0 {
                    vec![(state - 1).max(0)]
                } else {
                    vec![]
                }
            }
            CounterMethod::Get => {
                if *ret == *state {
                    vec![*state]
                } else {
                    vec![]
                }
            }
        }
    }

    fn results(&self, state: &i64, method: &CounterMethod) -> Vec<i64> {
        match method {
            CounterMethod::Inc if state + 1 > self.bound => vec![],
            CounterMethod::Inc | CounterMethod::Dec => vec![0],
            CounterMethod::Get => vec![*state],
        }
    }

    fn state_universe(&self) -> Option<Vec<i64>> {
        Some((0..=self.bound).collect())
    }

    fn inverse(&self, op: &CounterOp) -> OpInverse<CounterMethod, i64> {
        match op.method {
            // inc from s<bound lands at s+1 ≥ 1, where dec restores s
            // exactly (never saturating).
            CounterMethod::Inc => OpInverse::Inverse(CounterMethod::Dec, 0),
            // dec saturates at zero — from state 0 it is the identity,
            // so inc does NOT undo it (0 → 0 → 1 ≠ 0): information lost.
            CounterMethod::Dec => OpInverse::NotInvertible,
            CounterMethod::Get => OpInverse::ReadOnly,
        }
    }

    // has_inverses stays false: Dec is not invertible, so ToyCounter
    // programs cannot enter open-nested scopes (and the certificate
    // gate has a negative case to test).
}

/// A *strict* bounded counter for the nested-transaction examples and
/// tests: like [`ToyCounter`] but `Dec` below zero is **disallowed**
/// rather than saturating, which makes every state-changing operation
/// exactly invertible (`inc⁻¹ = dec`, `dec⁻¹ = inc`) — the smallest
/// spec supporting open nesting with certified compensations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrictCounter {
    bound: i64,
}

impl StrictCounter {
    /// Creates a strict counter over states `0..=bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 0`.
    pub fn with_bound(bound: i64) -> Self {
        assert!(bound >= 0, "counter bound must be non-negative");
        Self { bound }
    }

    /// The inclusive upper bound of the counter.
    pub fn bound(&self) -> i64 {
        self.bound
    }
}

impl Default for StrictCounter {
    fn default() -> Self {
        Self::with_bound(16)
    }
}

impl SeqSpec for StrictCounter {
    type Method = CounterMethod;
    type Ret = i64;
    type State = i64;

    fn initial_states(&self) -> Vec<i64> {
        vec![0]
    }

    fn post_states(&self, state: &i64, method: &CounterMethod, ret: &i64) -> Vec<i64> {
        match method {
            CounterMethod::Inc => {
                if *ret == 0 && *state < self.bound {
                    vec![state + 1]
                } else {
                    vec![]
                }
            }
            CounterMethod::Dec => {
                if *ret == 0 && *state > 0 {
                    vec![state - 1]
                } else {
                    vec![]
                }
            }
            CounterMethod::Get => {
                if *ret == *state {
                    vec![*state]
                } else {
                    vec![]
                }
            }
        }
    }

    fn results(&self, state: &i64, method: &CounterMethod) -> Vec<i64> {
        match method {
            CounterMethod::Inc if state + 1 > self.bound => vec![],
            CounterMethod::Dec if *state <= 0 => vec![],
            CounterMethod::Inc | CounterMethod::Dec => vec![0],
            CounterMethod::Get => vec![*state],
        }
    }

    fn state_universe(&self) -> Option<Vec<i64>> {
        Some((0..=self.bound).collect())
    }

    fn method_universe(&self) -> Option<Vec<CounterMethod>> {
        Some(vec![
            CounterMethod::Inc,
            CounterMethod::Dec,
            CounterMethod::Get,
        ])
    }

    fn inverse(&self, op: &CounterOp) -> OpInverse<CounterMethod, i64> {
        match op.method {
            CounterMethod::Inc => OpInverse::Inverse(CounterMethod::Dec, 0),
            CounterMethod::Dec => OpInverse::Inverse(CounterMethod::Inc, 0),
            CounterMethod::Get => OpInverse::ReadOnly,
        }
    }

    fn has_inverses(&self) -> bool {
        true
    }
}

/// Convenience constructor for counter operations in tests and examples:
/// `counter_op(id, method, ret)` with the transaction defaulting to `t0`.
pub fn counter_op(id: u64, method: CounterMethod, ret: i64) -> CounterOp {
    Op::new(OpId(id), TxnId(0), method, ret)
}

/// Like [`counter_op`] but with an explicit transaction id.
pub fn counter_op_t(id: u64, txn: u64, method: CounterMethod, ret: i64) -> CounterOp {
    Op::new(OpId(id), TxnId(txn), method, ret)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_enforced() {
        let spec = ToyCounter::with_bound(1);
        let ops = vec![
            counter_op(0, CounterMethod::Inc, 0),
            counter_op(1, CounterMethod::Inc, 0),
        ];
        assert!(!spec.allowed(&ops));
    }

    #[test]
    fn dec_saturates_at_zero() {
        let spec = ToyCounter::with_bound(4);
        let ops = vec![
            counter_op(0, CounterMethod::Dec, 0),
            counter_op(1, CounterMethod::Get, 0),
        ];
        assert!(spec.allowed(&ops));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bound_panics() {
        let _ = ToyCounter::with_bound(-1);
    }

    #[test]
    fn default_has_roomy_bound() {
        assert!(ToyCounter::default().bound() >= 8);
    }
}
