//! The per-thread half of the split machine: [`TxnHandle`] owns one
//! thread's code, stack and local log `L`, and runs the seven rules of
//! Figure 5 against a shared [`GlobalState`].
//!
//! ## Lock discipline (the point of the split)
//!
//! * **APP / UNAPP** touch only this handle and the global *atomics*
//!   (fresh ids, audit counters, trace sequence numbers) — they never
//!   acquire the shared-log mutex, so thread-local steps run genuinely in
//!   parallel.
//! * **PUSH / UNPUSH** evaluate their criteria-over-`G` and apply their
//!   effect inside one short critical section on *their operation's
//!   footprint shard* (every shard, ascending, for coarse-routed
//!   operations) — criteria and effect are atomic, which is what
//!   Theorem 5.17's per-rule reasoning needs. **CMT** locks exactly the
//!   shards its pushed/pulled operations touch, in canonical ascending
//!   order.
//! * **PULL** locks one shard at a time, only long enough to locate and
//!   snapshot the pulled entry; its criteria and effect are local.
//!   **UNPULL** is entirely local.
//!
//! Trace events are buffered per handle, stamped with a global atomic
//! sequence number; [`Machine::trace`](crate::machine::Machine::trace)
//! merges the buffers into one totally ordered trace.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::audit::QUERY_SHARDS;
use crate::error::{Clause, MachineError, MachineResult, Rule};
use crate::faults::{BoundaryFault, FaultKind, HtmFault};
use crate::global::{CommittedTxn, GlobalState, LogView, Route, TxnKind};
use crate::lang::Code;
use crate::log::{GlobalFlag, GlobalLog, LocalEntry, LocalFlag, LocalLog};
use crate::machine::{CheckMode, StepOptions};
use crate::op::{Op, OpId, ThreadId, TxnId};
use crate::scope::{Compensation, ScopeFrame, ScopeKind, ScopeOrigin};
use crate::spec::{OpInverse, SeqSpec};
use crate::trace::Event;
use crate::transport::{FallbackMode, ShardRequest, ShardResponse, ShardTransport, TransportError};

/// A trace event stamped with its global sequence number.
pub(crate) type StampedEvent<S> = (u64, Event<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>);

/// A PUSH criteria verdict speculated lock-free from a shard snapshot,
/// carrying the audit tallies buffered during evaluation. A failed
/// criterion flushes immediately (denial is always safe); a pass is
/// flushed only after the shard version revalidates under the append
/// lock — a stale pass is discarded wholesale and the audited locked
/// evaluation re-runs, keeping the ledger exact.
struct SnapVerdict {
    /// Snapshot version the verdict is valid for.
    version: u64,
    /// Buffered mover-oracle consultations from criterion (ii).
    movers: u64,
    /// Criterion (ii) was statically discharged (no queries; flushes as
    /// `pass_static`).
    static_ii: bool,
}

/// Criterion-evaluation tallies recorded locally by the group-commit
/// batch helpers, mirroring the audit columns at the same program
/// points. [`crate::group::commit_group`] re-asserts the ledger-closure
/// equation `discharged + violated + statically_discharged == reaches`
/// over them at the end of every batch (debug builds) — local tallies,
/// so the assertion cannot race other threads' audit traffic.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BatchTally {
    /// Criterion evaluations the batch path reached.
    pub(crate) reached: u64,
    /// ... that passed (audited `discharged`).
    pub(crate) discharged: u64,
    /// ... that failed (audited `violated`).
    pub(crate) violated: u64,
    /// ... elided by a static proof (audited `statically_discharged`).
    pub(crate) statically_discharged: u64,
}

impl BatchTally {
    /// Debug-build re-assertion of the audit ledger closure on the
    /// batched append path (a no-op in release builds).
    pub(crate) fn assert_closed(&self) {
        debug_assert_eq!(
            self.reached,
            self.discharged + self.violated + self.statically_discharged,
            "batched append broke the ledger closure: \
             {} reaches vs {} discharged + {} violated + {} static",
            self.reached,
            self.discharged,
            self.violated,
            self.statically_discharged,
        );
    }
}

/// A thread `{c, σ, L}` plus its queue of future transactions, bound to
/// the machine's shared [`GlobalState`].
///
/// A handle is the unit of parallelism: give each OS worker `&mut` access
/// to its own handle and every APP/UNAPP proceeds without any global
/// lock, while the shared rules serialize only on the short
/// [`GlobalState`] critical section.
#[derive(Debug)]
pub struct TxnHandle<S: SeqSpec> {
    global: Arc<GlobalState<S>>,
    tid: ThreadId,
    /// Current transaction instance id.
    txn: TxnId,
    /// Remaining code of the current transaction (`None` once all
    /// transactions have completed — the paper's MS_END).
    code: Option<Code<S::Method>>,
    /// The original `tx c` body, for rewinds and the atomic oracle (`otx`).
    original: Code<S::Method>,
    /// Observation history of the current transaction (the stack σ).
    stack: Vec<(S::Method, S::Ret)>,
    /// The local log `L`.
    local: LocalLog<S::Method, S::Ret>,
    /// The stack of nested scopes in flight over `local` (innermost
    /// last): frame `k` owns the log suffix from its `base_len`.
    frames: Vec<ScopeFrame<S>>,
    /// Compensations registered by committed open-nested children,
    /// pending until their owning scope resolves (chronological order).
    comps: Vec<Compensation<S>>,
    /// Open-nested children committed by the *current* transaction —
    /// when non-zero the committed record's code strips `otx` bodies
    /// (they committed separately and are absent from the parent's own
    /// operations).
    open_children: u64,
    /// Did any of those children come from an *explicit* (non-syntactic)
    /// open scope? Then no `otx` marker exists to strip, and the
    /// committed record's code falls back to the straight-line sequence
    /// of the parent's own operations.
    explicit_open: bool,
    /// Transactions not yet started.
    pending: VecDeque<Code<S::Method>>,
    /// Commits performed by this thread.
    commits: u64,
    /// Aborts performed by this thread.
    aborts: u64,
    /// Sequence-stamped trace events recorded by this thread.
    events: Vec<StampedEvent<S>>,
}

impl<S: SeqSpec> TxnHandle<S> {
    /// Creates a handle running `programs` as a sequence of transactions.
    /// The first transaction begins immediately (recording a `Begin`).
    pub(crate) fn new(
        global: Arc<GlobalState<S>>,
        tid: ThreadId,
        programs: Vec<Code<S::Method>>,
    ) -> Self {
        let mut pending: VecDeque<Code<S::Method>> = programs.into();
        let (code, original) = match pending.pop_front() {
            Some(c) => (Some(c.clone()), c),
            None => (None, Code::Skip),
        };
        let txn = global.fresh_txn();
        let mut h = Self {
            global,
            tid,
            txn,
            code,
            original,
            stack: Vec::new(),
            local: LocalLog::new(),
            frames: Vec::new(),
            comps: Vec::new(),
            open_children: 0,
            explicit_open: false,
            pending,
            commits: 0,
            aborts: 0,
            events: Vec::new(),
        };
        if h.code.is_some() {
            h.record(Event::Begin { thread: tid, txn });
        }
        h
    }

    /// A deep copy bound to `global` — used by
    /// [`Machine::clone`](crate::machine::Machine), which re-points every
    /// handle at the cloned shared state so clones share nothing.
    pub(crate) fn clone_with(&self, global: Arc<GlobalState<S>>) -> Self {
        Self {
            global,
            tid: self.tid,
            txn: self.txn,
            code: self.code.clone(),
            original: self.original.clone(),
            stack: self.stack.clone(),
            local: self.local.clone(),
            frames: self.frames.clone(),
            comps: self.comps.clone(),
            open_children: self.open_children,
            explicit_open: self.explicit_open,
            pending: self.pending.clone(),
            commits: self.commits,
            aborts: self.aborts,
            events: self.events.clone(),
        }
    }

    /// Re-points this handle at a rebuilt shared state — used by
    /// [`Machine::set_log_shards`](crate::machine::Machine::set_log_shards)
    /// after resharding the global log.
    pub(crate) fn rebind(&mut self, global: Arc<GlobalState<S>>) {
        self.global = global;
    }

    // ------------------------------------------------------------------
    // Accessors (source-compatible with the old `Thread`).
    // ------------------------------------------------------------------

    /// The thread this handle drives.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The current transaction instance id (the root transaction of the
    /// scope stack).
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The transaction id new operations are applied under: the
    /// innermost *open* scope's child transaction, or the root
    /// transaction when no open scope is in flight.
    pub fn current_txn(&self) -> TxnId {
        self.frames
            .iter()
            .rev()
            .find_map(|f| f.txn)
            .unwrap_or(self.txn)
    }

    /// Nesting depth: how many scopes are currently open (0 = only the
    /// root transaction).
    pub fn scope_depth(&self) -> usize {
        self.frames.len()
    }

    /// Compensations currently registered with still-unresolved scopes
    /// (committed open-nested children whose enclosers have not yet
    /// committed or aborted).
    pub fn pending_compensations(&self) -> usize {
        self.comps.len()
    }

    /// The remaining code, if a transaction is active.
    pub fn code(&self) -> Option<&Code<S::Method>> {
        self.code.as_ref()
    }

    /// The original body of the current transaction (the paper's `otx`).
    pub fn original(&self) -> &Code<S::Method> {
        &self.original
    }

    /// The observation history (stack σ) of the current transaction.
    pub fn stack(&self) -> &[(S::Method, S::Ret)] {
        &self.stack
    }

    /// The local log `L`.
    pub fn local(&self) -> &LocalLog<S::Method, S::Ret> {
        &self.local
    }

    /// Has this thread completed all of its transactions?
    pub fn is_done(&self) -> bool {
        self.code.is_none() && self.pending.is_empty()
    }

    /// Number of committed transactions.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Number of aborted transaction attempts.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// The shared half this handle is bound to.
    pub fn global_state(&self) -> &Arc<GlobalState<S>> {
        &self.global
    }

    /// The sequential specification.
    pub fn spec(&self) -> &S {
        self.global.spec()
    }

    /// A snapshot of the shared log `G`, merged across the footprint
    /// shards in commit-stamp order (one short critical section over all
    /// shard locks).
    pub fn global_snapshot(&self) -> GlobalLog<S::Method, S::Ret> {
        self.global.global_snapshot()
    }

    /// This handle's buffered `(seq, event)` pairs.
    pub(crate) fn events(&self) -> &[StampedEvent<S>] {
        &self.events
    }

    fn record(&mut self, event: Event<S::Method, S::Ret>) {
        let seq = self.global.next_seq();
        self.events.push((seq, event));
    }

    /// The audit shard this thread's query counts land in.
    fn shard(&self) -> usize {
        self.tid.0 % QUERY_SHARDS
    }

    fn mode(&self) -> CheckMode {
        self.global.mode()
    }

    /// Consults the armed fault hook at the entry of forward rule
    /// `rule`: an injected denial surfaces as an ordinary criterion
    /// failure (the rule has had no effect yet), recorded in the
    /// audit's `injected` tally rather than `violated`.
    fn fault_gate(&self, rule: Rule) -> MachineResult<()> {
        if let Some(clause) = self.global.fault_deny(self.tid, rule) {
            return Err(MachineError::criterion(
                rule,
                clause,
                format!("injected fault: {rule} denied"),
            ));
        }
        Ok(())
    }

    /// Consults the armed fault hook at a tick boundary. A returned
    /// fault is recorded as fired; the caller must act on it (abort the
    /// transaction for [`BoundaryFault::Kill`], park the thread for
    /// [`BoundaryFault::Stall`]).
    pub fn fault_at_boundary(&self) -> Option<BoundaryFault> {
        let fault = self.global.fault_hook()?.at_boundary(self.tid)?;
        self.global.note_injected(match fault {
            BoundaryFault::Kill => FaultKind::Kill,
            BoundaryFault::Stall(_) => FaultKind::Stall,
        });
        Some(fault)
    }

    /// Consults the armed fault hook at a simulated-HTM access. A
    /// returned fault is recorded as fired; the caller must abort the
    /// hardware transaction accordingly.
    pub fn fault_at_htm_access(&self) -> Option<HtmFault> {
        let fault = self.global.fault_hook()?.htm_access(self.tid)?;
        self.global.note_injected(match fault {
            HtmFault::Capacity => FaultKind::HtmCapacity,
            HtmFault::Conflict => FaultKind::HtmConflict,
        });
        Some(fault)
    }

    fn active_code(&self) -> MachineResult<&Code<S::Method>> {
        self.code
            .as_ref()
            .ok_or(MachineError::ThreadFinished(self.tid))
    }

    /// Enqueues another transaction body; restarts the thread with a
    /// fresh transaction id if it had finished.
    pub fn enqueue(&mut self, program: Code<S::Method>) {
        if self.code.is_none() && self.pending.is_empty() {
            // Thread was done: restart it with this program.
            self.code = Some(program.clone());
            self.original = program;
            let txn = self.global.fresh_txn();
            self.txn = txn;
            let tid = self.tid;
            self.record(Event::Begin { thread: tid, txn });
        } else {
            self.pending.push_back(program);
        }
    }

    /// `step(c)` for the current code: every next reachable method with
    /// its continuation.
    pub fn step_options(&self) -> MachineResult<StepOptions<S::Method>> {
        Ok(self.active_code()?.step())
    }

    /// `fin(c)` for the current code.
    pub fn can_finish(&self) -> MachineResult<bool> {
        Ok(self.active_code()?.fin())
    }

    /// Return values `r` such that the local log allows `⟨m, r⟩`
    /// (APP criterion (ii) candidates).
    pub fn allowed_results(&self, method: &S::Method) -> MachineResult<Vec<S::Ret>> {
        let spec = self.global.spec();
        let states = spec.denote(&self.local.ops());
        let mut out: Vec<S::Ret> = Vec::new();
        for s in &states {
            for r in spec.results(s, method) {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        // Filter to those actually allowed from the full state set.
        out.retain(|r| {
            let op = Op::new(OpId(u64::MAX), self.txn, method.clone(), r.clone());
            !spec
                .denote_from(&states, std::slice::from_ref(&op))
                .is_empty()
        });
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Nested transaction scopes (§6.2 checkpoints + open nesting).
    //
    // A scope is a frame over a *suffix* of the flat local log: entries
    // at index ≥ `base_len` belong to it. Closed scopes merge into the
    // parent on commit and rewind only their suffix on abort; open
    // scopes commit straight to `G` as their own transaction and leave
    // a compensating inverse program with the parent.
    // ------------------------------------------------------------------

    /// Opens a nested scope of the given kind over the current
    /// transaction. Returns the scope's base position in the local log.
    ///
    /// # Errors
    ///
    /// [`MachineError::ThreadFinished`] when no transaction is active.
    pub fn begin_nested(&mut self, kind: ScopeKind) -> MachineResult<usize> {
        self.enter_scope(kind, ScopeOrigin::Explicit)
    }

    /// Opens an explicit *checkpoint*: a closed marker scope at the
    /// current local-log position, for later
    /// [`Self::abort_to_checkpoint`]. Returns the checkpoint position.
    pub fn begin_checkpoint(&mut self) -> MachineResult<usize> {
        self.enter_scope(ScopeKind::Closed, ScopeOrigin::Explicit)
    }

    /// Makes the scope structure catch up with the program syntax:
    /// exits finished peeled scopes and enters peelable `tx`/`otx`
    /// redexes until the code settles. The settling executors
    /// ([`Self::app_method`], [`Self::app_auto`], [`Self::commit`]) do
    /// this implicitly; drivers that pick raw steps themselves via
    /// [`Self::step_options`] + [`Self::app`] call it once per tick to
    /// get the same scope-aware behavior (it is a no-op on code with no
    /// scope redex, and entering/exiting an empty closed scope emits no
    /// events, so flat traces are unchanged).
    pub fn settle(&mut self) -> MachineResult<()> {
        self.settle_scopes()
    }

    fn enter_scope(
        &mut self,
        kind: ScopeKind,
        origin: ScopeOrigin<S::Method>,
    ) -> MachineResult<usize> {
        self.active_code()?;
        // Strict certificate mode gates open nesting at *entry*: a
        // parent abort must be able to trust the registered
        // compensations, so the inverse law has to be machine-proven
        // before any open child runs (per-op verdicts at the open
        // commit remain in force either way).
        if kind == ScopeKind::Open && !self.global.open_nesting_allowed() {
            return Err(MachineError::OpenNestingUncertified(self.tid));
        }
        let base = self.local.len();
        let txn = match kind {
            ScopeKind::Open => {
                let child = self.global.fresh_txn();
                let tid = self.tid;
                self.record(Event::Begin {
                    thread: tid,
                    txn: child,
                });
                Some(child)
            }
            ScopeKind::Closed => None,
        };
        self.frames.push(ScopeFrame {
            kind,
            origin,
            base_len: base,
            stack_len: self.stack.len(),
            txn,
        });
        self.global.nesting_counters().note_opened();
        Ok(base)
    }

    /// Commits the innermost open scope: a closed scope *merges* its
    /// suffix into the parent (no shared-state effect at all); an open
    /// scope commits its suffix to `G` as an independent transaction and
    /// registers a compensating inverse program with the parent.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoScope`] with no scope open;
    /// [`MachineError::NotInvertible`] when an open scope's operation
    /// has no spec-defined inverse; criterion violations from the open
    /// commit's PUSH/CMT obligations.
    pub fn commit_nested(&mut self) -> MachineResult<()> {
        let Some(top) = self.frames.last() else {
            return Err(MachineError::NoScope(self.tid));
        };
        match top.kind {
            ScopeKind::Closed => {
                let checked = self.mode() != CheckMode::Unchecked;
                if checked
                    && matches!(top.origin, ScopeOrigin::Peeled { .. })
                    && !self.active_code()?.fin()
                {
                    self.global.audit.fail(Rule::Cmt, Clause::I);
                    return Err(MachineError::criterion(
                        Rule::Cmt,
                        Clause::I,
                        "no method-free path to skip remains in the nested scope".to_string(),
                    ));
                }
                self.merge_top_frame();
                Ok(())
            }
            ScopeKind::Open => {
                self.fault_gate(Rule::Cmt)?;
                self.commit_open_frame()
            }
        }
    }

    /// Aborts the innermost scope: rewinds exactly its suffix of the
    /// local log (UNPULL / UNPUSH + UNAPP / UNAPP from the tail) and
    /// discards the frame — the parent transaction continues untouched.
    /// Compensations registered by the aborted scope's own committed
    /// open children are replayed (most recent first).
    ///
    /// # Errors
    ///
    /// [`MachineError::NoScope`] with no scope open; criterion
    /// violations from the constituent back rules or compensations.
    pub fn abort_nested(&mut self) -> MachineResult<()> {
        let Some(top) = self.frames.last() else {
            return Err(MachineError::NoScope(self.tid));
        };
        let base = top.base_len;
        self.rewind_suffix(base)?;
        let frame = self.frames.pop().expect("checked above");
        self.drop_aborted_frame(frame);
        self.replay_compensations_above(self.frames.len())
    }

    /// Aborts every scope entered at or after local-log position
    /// `target_len` and rewinds the log to that length — the
    /// checkpoint/partial-abort mechanism of §6.2, now a plain scope
    /// abort (`CheckpointOptimistic` drives it).
    ///
    /// # Errors
    ///
    /// [`MachineError::NoScope`] when no checkpoint was taken at
    /// `target_len`; criterion violations from the back rules.
    pub fn abort_to_checkpoint(&mut self, target_len: usize) -> MachineResult<()> {
        if !self.frames.iter().any(|f| f.base_len == target_len) {
            return Err(MachineError::NoScope(self.tid));
        }
        self.rewind_suffix(target_len)?;
        self.pop_rewound_frames(target_len, true)
    }

    /// Exits finished peeled scopes and enters peelable `tx`/`otx`
    /// redexes until the code settles — the scope-aware step the
    /// settling executors ([`Self::app_method`], [`Self::app_auto`],
    /// [`Self::commit`]) run before acting. Raw [`Self::app`] skips
    /// this, keeping the legacy flattened semantics for drivers that
    /// pick steps themselves.
    fn settle_scopes(&mut self) -> MachineResult<()> {
        loop {
            // Exit: the innermost frame was peeled from syntax and its
            // body has fully finished (no steps remain, fin holds).
            if let Some(top) = self.frames.last() {
                if matches!(top.origin, ScopeOrigin::Peeled { .. }) {
                    let code = self.active_code()?;
                    if code.fin() && code.step().is_empty() {
                        self.commit_nested()?;
                        continue;
                    }
                }
            }
            // Enter: the leftmost redex is a tx/otx scope.
            if let Some((kind, body, cont)) = self.active_code()?.peel_scope() {
                self.enter_scope(
                    kind,
                    ScopeOrigin::Peeled {
                        body: body.clone(),
                        cont,
                    },
                )?;
                self.code = Some(body);
                continue;
            }
            return Ok(());
        }
    }

    /// Exits every remaining scope on the way into a top-level commit:
    /// closed frames merge (a peeled body must satisfy `fin`), open
    /// frames commit to `G` as their own transactions.
    fn exit_scopes_for_commit(&mut self) -> MachineResult<()> {
        let checked = self.mode() != CheckMode::Unchecked;
        while let Some(top) = self.frames.last() {
            match top.kind {
                ScopeKind::Closed => {
                    if checked
                        && matches!(top.origin, ScopeOrigin::Peeled { .. })
                        && !self.active_code()?.fin()
                    {
                        self.global.audit.fail(Rule::Cmt, Clause::I);
                        return Err(MachineError::criterion(
                            Rule::Cmt,
                            Clause::I,
                            "no method-free path to skip remains in the nested scope".to_string(),
                        ));
                    }
                    self.merge_top_frame();
                }
                ScopeKind::Open => self.commit_open_frame()?,
            }
        }
        Ok(())
    }

    /// Pops the innermost (closed) frame, merging its suffix into the
    /// parent: entries stay exactly where they are in the flat log, the
    /// continuation code is restored for peeled scopes, and
    /// compensations owned by the merged scope transfer to its parent.
    fn merge_top_frame(&mut self) {
        let frame = self.frames.pop().expect("caller checked a frame exists");
        if let ScopeOrigin::Peeled { cont, .. } = frame.origin {
            self.code = Some(cont);
        }
        let depth = self.frames.len();
        for c in &mut self.comps {
            if c.depth > depth {
                c.depth = depth;
            }
        }
        self.global.nesting_counters().note_merged();
    }

    /// Commits the innermost (open) frame's suffix to `G` as an
    /// independent transaction under the child's own id: derive the
    /// compensating inverses (failing cleanly on a non-invertible
    /// operation), PUSH the unpushed suffix in order, run the CMT
    /// criteria over the suffix, flip it committed, record the child's
    /// [`CommittedTxn`] (kind [`TxnKind::OpenChild`]), re-flag the
    /// suffix as *pulled* in the parent's log (the parent now depends
    /// on its committed child), and register the compensation with the
    /// parent.
    fn commit_open_frame(&mut self) -> MachineResult<()> {
        let (base, child, peeled) = match self.frames.last() {
            Some(f) if f.kind == ScopeKind::Open => (
                f.base_len,
                f.txn.expect("open frames carry a child txn"),
                matches!(f.origin, ScopeOrigin::Peeled { .. }),
            ),
            _ => return Err(MachineError::NoScope(self.tid)),
        };
        let checked = self.mode() != CheckMode::Unchecked;
        let tid = self.tid;
        if checked {
            // CMT criterion (i) at the child level: a peeled body must
            // reach skip. (An explicit scope has no residual code of its
            // own — its program is exactly the suffix performed.)
            if peeled && !self.active_code()?.fin() {
                self.global.audit.fail(Rule::Cmt, Clause::I);
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::I,
                    "no method-free path to skip remains in the open scope".to_string(),
                ));
            }
            self.global.audit.pass(Rule::Cmt, Clause::I);
        }
        // Derive the compensating inverse program *before* committing
        // anything: a non-invertible operation must fail the open
        // commit while the scope can still abort cleanly.
        let mut inverses: Vec<(S::Method, S::Ret)> = Vec::new();
        for e in &self.local.entries()[base..] {
            if e.flag.is_pulled() {
                continue;
            }
            match self.global.spec().inverse(&e.op) {
                OpInverse::ReadOnly => {}
                OpInverse::Inverse(m, r) => inverses.push((m, r)),
                OpInverse::NotInvertible => {
                    return Err(MachineError::NotInvertible {
                        thread: tid,
                        op: e.op.id,
                    })
                }
            }
        }
        inverses.reverse();
        // The child's optimistic commit sequence: PUSH the unpushed
        // suffix in local order, with the full criteria and audit.
        let unpushed: Vec<OpId> = self.local.entries()[base..]
            .iter()
            .filter(|e| e.flag.is_not_pushed())
            .map(|e| e.op.id)
            .collect();
        for id in unpushed {
            self.push(id)?;
        }
        if checked {
            // Criterion (ii): the suffix is now fully pushed (or pulled).
            self.global.audit.pass(Rule::Cmt, Clause::Ii);
        }
        let own_ops: Vec<Op<S::Method, S::Ret>> = self.local.entries()[base..]
            .iter()
            .filter(|e| !e.flag.is_pulled())
            .map(|e| e.op.clone())
            .collect();
        let pulled_from: Vec<(OpId, TxnId)> = self.local.entries()[base..]
            .iter()
            .filter(|e| e.flag.is_pulled())
            .map(|e| (e.op.id, e.op.txn))
            .collect();
        let parent = self.frames[..self.frames.len() - 1]
            .iter()
            .rev()
            .find_map(|f| f.txn)
            .unwrap_or(self.txn);
        let level = self.frames.len();
        let child_code = match &self.frames.last().expect("checked above").origin {
            ScopeOrigin::Peeled { body, .. } => body.strip_open(),
            ScopeOrigin::Explicit => methods_as_seq(own_ops.iter().map(|o| &o.method)),
        };
        let flipped = {
            // Critical section: criterion (iii) plus the flips, over
            // exactly the shards the suffix routes to (ascending).
            let mut coarse = false;
            let mut indices = Vec::new();
            for e in &self.local.entries()[base..] {
                match self.global.route(&e.op.method) {
                    Route::Coarse => coarse = true,
                    Route::Single(i) => indices.push(i),
                }
            }
            let mut view = if coarse {
                self.global.acquire_all()
            } else {
                self.global.acquire_shards(indices)
            };
            if checked {
                // Criterion (iii): every pulled op of the suffix belongs
                // to a committed transaction.
                for e in self.local.entries()[base..]
                    .iter()
                    .filter(|e| e.flag.is_pulled())
                {
                    match view.entry(e.op.id) {
                        Some(g) if g.flag == GlobalFlag::Committed => {}
                        Some(_) => {
                            self.global.audit.fail(Rule::Cmt, Clause::Iii);
                            return Err(MachineError::criterion(
                                Rule::Cmt,
                                Clause::Iii,
                                format!("pulled {} is still uncommitted", e.op.id),
                            ));
                        }
                        None => {
                            self.global.audit.fail(Rule::Cmt, Clause::Iii);
                            return Err(MachineError::criterion(
                                Rule::Cmt,
                                Clause::Iii,
                                format!("pulled {} vanished from the global log", e.op.id),
                            ));
                        }
                    }
                }
                self.global.audit.pass(Rule::Cmt, Clause::Iii);
            }
            // Flip the suffix committed via a temporary log holding
            // exactly the child's entries.
            let mut tmp = LocalLog::new();
            for e in &self.local.entries()[base..] {
                tmp.push_entry(e.clone());
            }
            let flipped = view.commit_local(&tmp);
            self.global.push_committed(CommittedTxn {
                txn: child,
                thread: tid,
                code: child_code,
                ops: own_ops.clone(),
                pulled_from,
                kind: TxnKind::OpenChild { parent, level },
            });
            self.global.advance_caches(&mut view);
            flipped
        };
        self.record(Event::Commit {
            thread: tid,
            txn: child,
            ops: flipped,
        });
        self.commits += 1;
        // The parent now depends on the committed child exactly as on
        // any committed pull: its copies of the suffix flip to pld.
        for op in &own_ops {
            let entry = self.local.entry_mut(op.id).expect("own suffix entry");
            entry.flag = LocalFlag::Pulled;
        }
        let frame = self.frames.pop().expect("checked above");
        if let ScopeOrigin::Peeled { cont, .. } = frame.origin {
            self.code = Some(cont);
        }
        let depth = self.frames.len();
        for c in &mut self.comps {
            if c.depth > depth {
                c.depth = depth;
            }
        }
        self.global
            .nesting_counters()
            .note_undo_inverses(inverses.len() as u64);
        self.comps.push(Compensation {
            undoes: child,
            depth,
            ops: inverses,
        });
        self.open_children += 1;
        if !peeled {
            self.explicit_open = true;
        }
        self.global.nesting_counters().note_open_commit();
        Ok(())
    }

    /// Rewinds the local log down to `target_len`, tearing down frames
    /// entered strictly above the target as the walk passes their base
    /// (the unapp scope floor would otherwise block it). Frames based
    /// *at* `target_len` are left for the caller to resolve.
    fn rewind_suffix(&mut self, target_len: usize) -> MachineResult<()> {
        loop {
            if self.local.len() <= target_len {
                return Ok(());
            }
            if let Some(top) = self.frames.last() {
                if top.base_len > target_len && self.local.len() <= top.base_len {
                    let frame = self.frames.pop().expect("checked above");
                    self.drop_aborted_frame(frame);
                    continue;
                }
            }
            let last = self
                .local
                .entries()
                .last()
                .map(|e| (e.op.id, e.flag.clone()));
            match last {
                None => return Ok(()),
                Some((id, LocalFlag::Pulled)) => self.unpull(id)?,
                Some((id, LocalFlag::Pushed { .. })) => {
                    self.unpush(id)?;
                    self.unapp()?;
                }
                Some((_, LocalFlag::NotPushed { .. })) => {
                    self.unapp()?;
                }
            }
        }
    }

    /// Drops one frame on an abort path: records the `Abort` of an
    /// in-flight open child, reconstructs the unentered `tx`/`otx` redex
    /// for peeled scopes (so a retry re-runs the scope), and tallies the
    /// abort.
    fn drop_aborted_frame(&mut self, frame: ScopeFrame<S>) {
        if let Some(child) = frame.txn {
            let tid = self.tid;
            self.record(Event::Abort {
                thread: tid,
                txn: child,
            });
        }
        self.stack.truncate(frame.stack_len);
        if let ScopeOrigin::Peeled { body, cont } = frame.origin {
            let scoped = match frame.kind {
                ScopeKind::Closed => Code::tx(body),
                ScopeKind::Open => Code::otx(body),
            };
            self.code = Some(match cont {
                Code::Skip => scoped,
                c => Code::seq(scoped, c),
            });
        }
        self.global.nesting_counters().note_aborted();
    }

    /// Pops every remaining frame whose base position was rewound away
    /// (strictly above `target_len`, or also *at* it when `inclusive`),
    /// then replays the compensations no longer owned by a live scope.
    fn pop_rewound_frames(&mut self, target_len: usize, inclusive: bool) -> MachineResult<()> {
        while let Some(top) = self.frames.last() {
            let gone = top.base_len > target_len || (inclusive && top.base_len == target_len);
            if !gone {
                break;
            }
            let frame = self.frames.pop().expect("checked above");
            self.drop_aborted_frame(frame);
        }
        self.replay_compensations_above(self.frames.len())
    }

    /// Replays (and removes) every compensation owned by a scope deeper
    /// than `depth`, most recently registered first.
    fn replay_compensations_above(&mut self, depth: usize) -> MachineResult<()> {
        let mut replay: Vec<Compensation<S>> = Vec::new();
        let mut i = 0;
        while i < self.comps.len() {
            if self.comps[i].depth > depth {
                replay.push(self.comps.remove(i));
            } else {
                i += 1;
            }
        }
        for comp in replay.into_iter().rev() {
            self.run_compensation(comp)?;
        }
        Ok(())
    }

    /// Replays (and removes) every registered compensation, most
    /// recently registered first — the root-transaction abort path.
    fn replay_all_compensations(&mut self) -> MachineResult<()> {
        let comps = std::mem::take(&mut self.comps);
        for comp in comps.into_iter().rev() {
            self.run_compensation(comp)?;
        }
        Ok(())
    }

    /// Runs one compensating transaction: the registered inverse
    /// program executes as a fresh top-level transaction (its own id,
    /// `Begin`/`Commit` events, a [`TxnKind::Compensation`] committed
    /// record), appended and committed against `G` in one coarse
    /// critical section so the abstract-state restoration is atomic.
    /// The PUSH criteria are checked per inverse operation exactly as a
    /// live push would.
    fn run_compensation(&mut self, comp: Compensation<S>) -> MachineResult<()> {
        let txn = self.global.fresh_txn();
        let tid = self.tid;
        self.record(Event::Begin { thread: tid, txn });
        let checked = self.mode() != CheckMode::Unchecked;
        let shard = self.shard();
        let code = methods_as_seq(comp.ops.iter().map(|(m, _)| m));
        let mut ops: Vec<Op<S::Method, S::Ret>> = Vec::new();
        let flipped = {
            let mut view = self.global.acquire_all();
            let mut tmp = LocalLog::new();
            for (method, ret) in &comp.ops {
                let id = self.global.ids.fresh();
                let op = Op::new(id, txn, method.clone(), ret.clone());
                if checked {
                    crate::transport::locked_push_criteria(&self.global, txn, shard, &view, &op)?;
                }
                let target = self.global.route(method).target();
                self.global.append_push(&mut view, target, op.clone());
                tmp.push_entry(LocalEntry {
                    op: op.clone(),
                    flag: LocalFlag::Pushed {
                        saved_code: Code::Skip,
                        saved_stack: Vec::new(),
                    },
                });
                ops.push(op);
            }
            let flipped = view.commit_local(&tmp);
            self.global.push_committed(CommittedTxn {
                txn,
                thread: tid,
                code,
                ops,
                pulled_from: Vec::new(),
                kind: TxnKind::Compensation {
                    undoes: comp.undoes,
                },
            });
            self.global.advance_caches(&mut view);
            flipped
        };
        self.record(Event::Commit {
            thread: tid,
            txn,
            ops: flipped,
        });
        self.commits += 1;
        self.global.nesting_counters().note_compensation();
        Ok(())
    }

    /// The code stored in the committed record: when open-nested
    /// children committed separately, their `otx` bodies are stripped
    /// (the parent's own operations no longer include them); a child
    /// carved out by an *explicit* scope has no syntactic marker, so the
    /// record falls back to the straight-line program of the parent's
    /// own operations. Otherwise the original body verbatim.
    fn committed_code(&self) -> Code<S::Method> {
        if self.open_children == 0 {
            self.original.clone()
        } else if self.explicit_open {
            let own = self.local.own_ops();
            methods_as_seq(own.iter().map(|o| &o.method))
        } else {
            self.original.strip_open()
        }
    }

    // ------------------------------------------------------------------
    // Structural reductions (Figure 6) — thread-local.
    // ------------------------------------------------------------------

    /// The structural steps (Figure 6) applicable to the current code at
    /// its leftmost redex.
    pub fn struct_options(&self) -> MachineResult<Vec<crate::structural::StructStep>> {
        Ok(crate::structural::applicable(self.active_code()?))
    }

    /// Applies one structural reduction (NONDETL/NONDETR/LOOP/SEMISKIP,
    /// with the SEMI congruence locating the redex) to the code.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoSuchStep`] when the step does not apply.
    pub fn struct_step(&mut self, step: crate::structural::StructStep) -> MachineResult<()> {
        let code = self.active_code()?;
        match crate::structural::apply(code, step) {
            Some(next) => {
                self.code = Some(next);
                Ok(())
            }
            None => Err(MachineError::NoSuchStep(self.tid)),
        }
    }

    // ------------------------------------------------------------------
    // The seven rules of Figure 5.
    // ------------------------------------------------------------------

    /// **APP**: applies `method` with continuation `cont` and return
    /// `ret`. Entirely thread-local — acquires no global lock.
    ///
    /// Criteria: (i) `(method, cont) ∈ step(c)`; (ii) the local log allows
    /// `⟨m, σ, σ′, id⟩`; (iii) `id` fresh (by construction).
    ///
    /// # Errors
    ///
    /// [`MachineError::NoSuchStep`] if (i) fails,
    /// [`MachineError::Criterion`] if (ii) fails.
    pub fn app(
        &mut self,
        method: S::Method,
        cont: Code<S::Method>,
        ret: S::Ret,
    ) -> MachineResult<OpId> {
        self.fault_gate(Rule::App)?;
        let checked = self.mode() != CheckMode::Unchecked;
        // Criterion (i): (m, c') ∈ step(c).
        let code = self.active_code()?.clone();
        if checked && !code.step().iter().any(|(m, k)| *m == method && *k == cont) {
            return Err(MachineError::NoSuchStep(self.tid));
        }
        let id = self.global.ids.fresh();
        // Operations applied inside an open scope belong to the child
        // transaction; everywhere else `current_txn()` is the root.
        let op = Op::new(id, self.current_txn(), method.clone(), ret.clone());
        // Criterion (ii): L allows op.
        if checked {
            let local_ops = self.local.ops();
            if !self.global.allows_q(self.shard(), &local_ops, &op) {
                self.global.audit.fail(Rule::App, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::App,
                    Clause::Ii,
                    format!("local log does not allow {:?} -> {:?}", method, ret),
                ));
            }
            self.global.audit.pass(Rule::App, Clause::Ii);
        }
        let saved_code = code;
        let saved_stack = self.stack.clone();
        self.stack.push((method.clone(), ret.clone()));
        self.code = Some(cont);
        self.local.push_entry(LocalEntry {
            op,
            flag: LocalFlag::NotPushed {
                saved_code,
                saved_stack,
            },
        });
        let tid = self.tid;
        self.record(Event::App {
            thread: tid,
            op: id,
            method,
            ret,
        });
        Ok(id)
    }

    /// **APP**, selecting the first `step(c)` option whose method equals
    /// `method` and the first allowed return value. Scope-aware: `tx`
    /// and `otx` redexes are entered as nested scopes first (and
    /// finished peeled scopes are exited).
    pub fn app_method(&mut self, method: &S::Method) -> MachineResult<OpId> {
        self.settle_scopes()?;
        let options = self.step_options()?;
        let (m, cont) = options
            .into_iter()
            .find(|(m, _)| m == method)
            .ok_or(MachineError::NoSuchStep(self.tid))?;
        let rets = self.allowed_results(&m)?;
        let ret = rets
            .into_iter()
            .next()
            .ok_or(MachineError::NoAllowedResult(self.tid))?;
        self.app(m, cont, ret)
    }

    /// **APP**, selecting the first `step(c)` option and the first
    /// allowed return value. Scope-aware, like [`Self::app_method`].
    pub fn app_auto(&mut self) -> MachineResult<OpId> {
        self.settle_scopes()?;
        let options = self.step_options()?;
        let (m, cont) = options
            .into_iter()
            .next()
            .ok_or(MachineError::NoSuchStep(self.tid))?;
        let rets = self.allowed_results(&m)?;
        let ret = rets
            .into_iter()
            .next()
            .ok_or(MachineError::NoAllowedResult(self.tid))?;
        self.app(m, cont, ret)
    }

    /// **UNAPP**: rewinds the most recent local entry, which must be
    /// `npshd`; restores the saved code and stack. Entirely thread-local.
    ///
    /// # Errors
    ///
    /// [`MachineError::NothingToUnapply`] if the local log is empty or
    /// its last entry is not `npshd`.
    pub fn unapp(&mut self) -> MachineResult<OpId> {
        // A scope boundary is a floor: rewinding an entry *below* the
        // innermost frame's base would desynchronise the frame stack.
        if let Some(top) = self.frames.last() {
            if self.local.len() <= top.base_len {
                return Err(MachineError::NothingToUnapply(self.tid));
            }
        }
        let entry = match self.local.entries().last() {
            Some(e) if e.flag.is_not_pushed() => self.local.pop_entry().expect("non-empty"),
            _ => return Err(MachineError::NothingToUnapply(self.tid)),
        };
        let (saved_code, saved_stack) = match entry.flag {
            LocalFlag::NotPushed {
                saved_code,
                saved_stack,
            } => (saved_code, saved_stack),
            _ => unreachable!("checked above"),
        };
        self.code = Some(saved_code);
        self.stack = saved_stack;
        let tid = self.tid;
        self.record(Event::UnApp {
            thread: tid,
            op: entry.op.id,
            method: entry.op.method,
        });
        Ok(entry.op.id)
    }

    /// **PUSH**: publishes a local `npshd` operation to the shared log.
    /// Criterion (i) is local; criteria (ii)/(iii) and the append to `G`
    /// run inside one [`GlobalState`] critical section.
    ///
    /// Criteria: (i) `op` moves across every *earlier* unpushed own
    /// operation (`op ◁ op′`, Def 4.1 — trivial when pushing in APP
    /// order); (ii) every uncommitted operation of *other* transactions
    /// in `G` moves right of `op` (`op_u ◁ op` fails ⇒ conflict),
    /// ensuring the pusher can still serialize before all concurrent
    /// uncommitted transactions; (iii) `G` allows `op`.
    ///
    /// # Errors
    ///
    /// [`MachineError::Criterion`] with the failing clause; `WrongFlag` /
    /// `NoSuchOp` on structural misuse.
    pub fn push(&mut self, op_id: OpId) -> MachineResult<()> {
        self.fault_gate(Rule::Push)?;
        let checked = self.mode() != CheckMode::Unchecked;
        let shard = self.shard();
        let (op, pos) = {
            let pos = self
                .local
                .position(op_id)
                .ok_or(MachineError::NoSuchOp(op_id))?;
            let entry = &self.local.entries()[pos];
            match entry.flag {
                LocalFlag::NotPushed { .. } => {}
                LocalFlag::Pushed { .. } => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "npshd",
                        found: "pshd",
                    })
                }
                LocalFlag::Pulled => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "npshd",
                        found: "pld",
                    })
                }
            }
            (entry.op.clone(), pos)
        };
        if checked {
            // Criterion (i): op ◁ op' for every earlier npshd own op'.
            // Local-log only — evaluated outside the critical section.
            if self.global.statically_discharged(Rule::Push, Clause::I) {
                // Soundness cross-check: in debug builds the elided loop
                // still runs (without audit accounting) and must agree.
                #[cfg(debug_assertions)]
                for e in &self.local.entries()[..pos] {
                    assert!(
                        !e.flag.is_not_pushed() || self.global.spec().mover(&op, &e.op),
                        "static discharge of PUSH (i) contradicted dynamically: {} vs {}",
                        op.id,
                        e.op.id
                    );
                }
                self.global.audit.pass_static(Rule::Push, Clause::I);
            } else {
                for e in &self.local.entries()[..pos] {
                    if e.flag.is_not_pushed() && !self.global.mover_q(shard, &op, &e.op) {
                        self.global.audit.fail(Rule::Push, Clause::I);
                        return Err(MachineError::criterion(
                            Rule::Push,
                            Clause::I,
                            format!(
                                "{} does not move across earlier unpushed {}",
                                op.id, e.op.id
                            ),
                        ));
                    }
                }
                self.global.audit.pass(Rule::Push, Clause::I);
            }
        }
        let route = self.global.route(&op.method);
        // The transport seam: with a transport installed, a routed
        // single-shard PUSH ships its criteria-and-append critical
        // section as a [`ShardRequest`] instead of running it in place
        // (speculation is skipped — both transports serialize at the
        // executor, so the outcome is identical either way). Coarse
        // routes stay on this thread: they aggregate across shards,
        // which is the coordinator's job.
        let remote = match route {
            Route::Single(i) if !self.global.coarse_mode() => {
                self.global.transport().map(|t| (i, t))
            }
            _ => None,
        };
        if let Some((target, tr)) = remote {
            self.push_via_transport(tr.as_ref(), target, shard, &op, checked)?;
        } else {
            // Lock-free speculation: on a routed single shard (coarse
            // off), criteria (ii)/(iii) evaluate against the shard's
            // published snapshot without taking any lock. Only a *pass*
            // is kept, and only as a speculation: it is trusted below
            // iff the shard version is unchanged under the append lock.
            // A speculative *failure* never denies by itself — a stale
            // snapshot can show a since-committed entry as still
            // uncommitted and manufacture a mover conflict the true log
            // does not have — so failures fall back to the audited
            // locked evaluation, whose verdict is exact.
            let speculated = if checked {
                match route {
                    Route::Single(i) if !self.global.coarse_mode() => {
                        self.speculate_push_criteria(i, &op)
                    }
                    _ => None,
                }
            } else {
                None
            };
            // Critical section: the append — plus the criteria whenever
            // speculation did not conclude. One footprint shard on the
            // routed fast path; every shard (ascending) when coarse.
            let mut view = self.global.acquire_route(route);
            let validated = match (&speculated, route) {
                (Some(v), Route::Single(i))
                    if view.is_single_shard(i) && view.shard_version(0) == v.version =>
                {
                    true
                }
                (Some(_), _) => {
                    // The shard mutated (or the coarse flag flipped)
                    // between snapshot and lock: discard the speculated
                    // verdict with its buffered tallies and re-run.
                    self.global.note_snap_fallback();
                    false
                }
                (None, _) => false,
            };
            if checked {
                if validated {
                    let v = speculated.as_ref().expect("validated implies speculated");
                    self.flush_push_pass(shard, v);
                } else {
                    crate::transport::locked_push_criteria(
                        &self.global,
                        op.txn,
                        shard,
                        &view,
                        &op,
                    )?;
                }
            }
            self.global
                .append_push(&mut view, route.target(), op.clone());
        }
        // Effect on the local half (private to this thread): flip flag.
        let entry = self.local.entry_mut(op_id).expect("position found above");
        let (saved_code, saved_stack) = match &entry.flag {
            LocalFlag::NotPushed {
                saved_code,
                saved_stack,
            } => (saved_code.clone(), saved_stack.clone()),
            _ => unreachable!("flag checked above"),
        };
        entry.flag = LocalFlag::Pushed {
            saved_code,
            saved_stack,
        };
        let tid = self.tid;
        self.record(Event::Push {
            thread: tid,
            op: op_id,
            method: op.method,
        });
        Ok(())
    }

    /// Evaluates PUSH criteria (ii)/(iii) against shard `shard_idx`'s
    /// published snapshot, **without taking any lock**, buffering the
    /// audit tallies the locked path would have recorded.
    ///
    /// * `Some(verdict)` — both criteria passed at `verdict.version`;
    ///   the caller must revalidate that version under the shard lock
    ///   before flushing the verdict's buffered tallies.
    /// * `None` — no conclusion: the snapshot was unreadable
    ///   (unpublished, reader contention, coarse raced in) **or a
    ///   criterion failed against it**. A snapshot failure is never a
    ///   verdict, because a stale snapshot can show a since-committed
    ///   entry as uncommitted and manufacture a conflict; the caller
    ///   must evaluate under the lock, which records the exact audit.
    fn speculate_push_criteria(
        &self,
        shard_idx: usize,
        op: &Op<S::Method, S::Ret>,
    ) -> Option<SnapVerdict> {
        let global = &self.global;
        let static_ii = global.statically_discharged(Rule::Push, Clause::Ii);
        // Own entries are judged by the *operation's* transaction (an
        // open-scoped op belongs to its child transaction).
        let txn = op.txn;
        let outcome = global.read_shard_snap(shard_idx, |snap| {
            // Criterion (ii) over the snapshot suffix. The committed
            // prefix never contributes a mover query (its entries all
            // fail the `Uncommitted` test), so walking the suffix
            // consults the oracle for exactly the pairs — in the same
            // stamp order — as the locked loop over the whole shard.
            let mut movers = 0u64;
            if static_ii {
                #[cfg(debug_assertions)]
                for g in &snap.suffix {
                    assert!(
                        g.flag != GlobalFlag::Uncommitted
                            || g.op.txn == txn
                            || global.spec().mover(&g.op, op),
                        "static discharge of PUSH (ii) contradicted dynamically: {} vs {}",
                        g.op.id,
                        op.id
                    );
                }
            } else {
                for g in &snap.suffix {
                    if g.flag == GlobalFlag::Uncommitted && g.op.txn != txn {
                        movers += 1;
                        if !global.spec().mover(&g.op, op) {
                            return None;
                        }
                    }
                }
            }
            // Criterion (iii): one (buffered) allowed query.
            global
                .snap_allows(snap, op)
                .then_some((snap.version, movers))
        });
        match outcome {
            // Snapshot read but a criterion failed against it: discard
            // the buffered tallies and send the caller to the lock.
            Some(None) => {
                global.note_snap_fallback();
                None
            }
            Some(Some((version, movers))) => Some(SnapVerdict {
                version,
                movers,
                static_ii,
            }),
            None => None,
        }
    }

    /// Flushes a revalidated speculative pass to the audit: exactly the
    /// queries and pass marks the locked evaluation would have recorded.
    fn flush_push_pass(&self, shard: usize, v: &SnapVerdict) {
        let audit = &self.global.audit;
        audit.count_mover_n(shard, v.movers);
        if v.static_ii {
            audit.pass_static(Rule::Push, Clause::Ii);
        } else {
            audit.pass(Rule::Push, Clause::Ii);
        }
        audit.count_allowed_n(shard, 1);
        audit.pass(Rule::Push, Clause::Iii);
    }

    /// PUSH over the installed transport, with the degradation ladder.
    ///
    /// Degraded shard: probe first — one success clears the mark
    /// (counted as a recovery) and the call proceeds on the fast path;
    /// failure keeps the operation on the coarse coordinator path.
    /// Healthy shard: ship the request; if the whole robustness envelope
    /// is exhausted, degrade per the transport's [`FallbackMode`] —
    /// coarse execution here, or a clean
    /// [`MachineError::TransportExhausted`].
    fn push_via_transport(
        &self,
        tr: &dyn ShardTransport<S>,
        target: usize,
        audit_shard: usize,
        op: &Op<S::Method, S::Ret>,
        checked: bool,
    ) -> MachineResult<()> {
        if self.global.is_transport_degraded(target) {
            if tr.probe(&self.global, self.tid, target) {
                self.global.note_transport_recovery(target);
            } else {
                return self.degraded_push(target, audit_shard, op, checked);
            }
        }
        let req = ShardRequest::Push {
            txn: op.txn,
            audit_shard,
            checked,
            op: op.clone(),
        };
        match tr.call(&self.global, self.tid, target, req) {
            Ok(ShardResponse::Done) => Ok(()),
            Ok(ShardResponse::Denied(e)) => Err(e),
            Ok(ShardResponse::Pong) => unreachable!("Pong response to a Push request"),
            Err(TransportError::Exhausted { .. }) => match tr.fallback() {
                FallbackMode::Coarse => {
                    self.global.note_transport_degraded(target);
                    self.degraded_push(target, audit_shard, op, checked)
                }
                FallbackMode::Fail => Err(MachineError::TransportExhausted {
                    thread: self.tid,
                    shard: target,
                }),
            },
        }
    }

    /// The degraded PUSH: the coordinator runs the critical section
    /// itself over the coarse all-shard view (the one lock ladder that
    /// needs no transport). Placement is preserved — the op still lands
    /// on its routed shard — so healing back to the fast path is sound.
    fn degraded_push(
        &self,
        target: usize,
        audit_shard: usize,
        op: &Op<S::Method, S::Ret>,
        checked: bool,
    ) -> MachineResult<()> {
        let mut view = self.global.acquire_all();
        // A lost-reply fault may have executed the append before we
        // degraded; the log itself is the idempotency source of truth.
        if view.entry(op.id).is_some() {
            return Ok(());
        }
        if checked {
            crate::transport::locked_push_criteria(&self.global, op.txn, audit_shard, &view, op)?;
        }
        self.global.append_push(&mut view, target, op.clone());
        Ok(())
    }

    /// UNPUSH over the installed transport — same envelope and ladder as
    /// [`TxnHandle::push_via_transport`].
    fn unpush_via_transport(
        &self,
        tr: &dyn ShardTransport<S>,
        target: usize,
        audit_shard: usize,
        op_id: OpId,
        checked: bool,
        check_gray: bool,
    ) -> MachineResult<()> {
        if self.global.is_transport_degraded(target) {
            if tr.probe(&self.global, self.tid, target) {
                self.global.note_transport_recovery(target);
            } else {
                return self.degraded_unpush(audit_shard, op_id, checked, check_gray);
            }
        }
        let req = ShardRequest::Unpush {
            audit_shard,
            checked,
            check_gray,
            op_id,
        };
        match tr.call(&self.global, self.tid, target, req) {
            Ok(ShardResponse::Done) => Ok(()),
            Ok(ShardResponse::Denied(e)) => Err(e),
            Ok(ShardResponse::Pong) => unreachable!("Pong response to an Unpush request"),
            Err(TransportError::Exhausted { .. }) => match tr.fallback() {
                FallbackMode::Coarse => {
                    self.global.note_transport_degraded(target);
                    self.degraded_unpush(audit_shard, op_id, checked, check_gray)
                }
                FallbackMode::Fail => Err(MachineError::TransportExhausted {
                    thread: self.tid,
                    shard: target,
                }),
            },
        }
    }

    /// The degraded UNPUSH, over the coarse all-shard view. An absent
    /// entry means an earlier delivery of this same logical request
    /// already removed it (the handle verified the `pshd` flag, and no
    /// one else removes another transaction's entry).
    fn degraded_unpush(
        &self,
        audit_shard: usize,
        op_id: OpId,
        checked: bool,
        check_gray: bool,
    ) -> MachineResult<()> {
        let mut view = self.global.acquire_all();
        if view.find(op_id).is_none() {
            return Ok(());
        }
        crate::transport::locked_unpush_in_view(
            &self.global,
            audit_shard,
            &mut view,
            op_id,
            checked,
            check_gray,
        )
        .map(|_| ())
    }

    /// Read-only, unaudited "would PUSH accept `op_id` right now?" —
    /// criterion (i) over the local log plus (ii)/(iii) against the
    /// routed shard's published snapshot.
    ///
    /// On the fast path — declared single-key footprint, coarse mode
    /// off, snapshot readable — this acquires **zero locks**; the
    /// lock-free smoke test and the B10 microbench pin that down through
    /// the per-shard lock counters. Otherwise it falls back to a
    /// read-only locked evaluation. The audit ledger is untouched either
    /// way: no criteria obligation is reached, so none is recorded, and
    /// the answer is advisory (another thread may invalidate it before a
    /// real [`TxnHandle::push`]).
    ///
    /// # Errors
    ///
    /// `NoSuchOp` / `WrongFlag` on structural misuse, exactly as
    /// [`TxnHandle::push`].
    pub fn can_push(&self, op_id: OpId) -> MachineResult<bool> {
        let pos = self
            .local
            .position(op_id)
            .ok_or(MachineError::NoSuchOp(op_id))?;
        let entry = &self.local.entries()[pos];
        match entry.flag {
            LocalFlag::NotPushed { .. } => {}
            LocalFlag::Pushed { .. } => {
                return Err(MachineError::WrongFlag {
                    op: op_id,
                    expected: "npshd",
                    found: "pshd",
                })
            }
            LocalFlag::Pulled => {
                return Err(MachineError::WrongFlag {
                    op: op_id,
                    expected: "npshd",
                    found: "pld",
                })
            }
        }
        let op = &entry.op;
        // Criterion (i): local-log only, no locks regardless of route.
        for e in &self.local.entries()[..pos] {
            if e.flag.is_not_pushed() && !self.global.spec().mover(op, &e.op) {
                return Ok(false);
            }
        }
        let route = self.global.route(&op.method);
        if let Route::Single(i) = route {
            if !self.global.coarse_mode() {
                let global = &self.global;
                let txn = op.txn;
                let verdict = global.read_shard_snap(i, |snap| {
                    snap.suffix.iter().all(|g| {
                        g.flag != GlobalFlag::Uncommitted
                            || g.op.txn == txn
                            || global.spec().mover(&g.op, op)
                    }) && global.snap_allows(snap, op)
                });
                // A snapshot "yes" is as good as any advisory answer
                // gets (it can go stale the moment it is returned). A
                // snapshot "no" is re-checked under the lock: a stale
                // snapshot can manufacture a conflict out of an entry
                // that has since committed, and a wrong "no" would make
                // callers give up on a PUSH that would succeed.
                match verdict {
                    Some(true) => return Ok(true),
                    Some(false) => self.global.note_snap_fallback(),
                    None => {}
                }
            }
        }
        // Locked fallback: read-only criteria under the routed view,
        // full replay (no audit, no cache interaction).
        let view = self.global.acquire_route(route);
        let ii = view.stamped().all(|(_, g)| {
            g.flag != GlobalFlag::Uncommitted
                || g.op.txn == op.txn
                || self.global.spec().mover(&g.op, op)
        });
        if !ii {
            return Ok(false);
        }
        let spec = self.global.spec();
        let states = spec.denote_refs(view.stamped().map(|(_, e)| &e.op));
        Ok(!spec
            .denote_from(&states, std::slice::from_ref(op))
            .is_empty())
    }

    /// **UNPUSH**: recalls a pushed operation from the shared log
    /// (implemented by real systems as an inverse operation). Criteria
    /// over `G` and the removal run in one critical section.
    ///
    /// Criteria: (i, gray) `op` moves across everything after it in `G`
    /// (so the suffix does not depend on it); (ii) the remaining global
    /// log is still allowed.
    pub fn unpush(&mut self, op_id: OpId) -> MachineResult<()> {
        let checked = self.mode() != CheckMode::Unchecked;
        let check_gray = self.mode() == CheckMode::Checked;
        let shard = self.shard();
        {
            let entry = self
                .local
                .entry(op_id)
                .ok_or(MachineError::NoSuchOp(op_id))?;
            match entry.flag {
                LocalFlag::Pushed { .. } => {}
                LocalFlag::NotPushed { .. } => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "pshd",
                        found: "npshd",
                    })
                }
                LocalFlag::Pulled => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "pshd",
                        found: "pld",
                    })
                }
            }
        }
        let op = {
            // Route by the method recorded in the local (pshd) entry —
            // the global entry lives on that method's footprint shard.
            let method = self
                .local
                .entry(op_id)
                .expect("flag checked above")
                .op
                .method
                .clone();
            let route = self.global.route(&method);
            // The transport seam, exactly as in PUSH: a routed
            // single-shard recall ships its critical section; coarse
            // routes run on the coordinator.
            let remote = match route {
                Route::Single(i) if !self.global.coarse_mode() => {
                    self.global.transport().map(|t| (i, t))
                }
                _ => None,
            };
            if let Some((target, tr)) = remote {
                self.unpush_via_transport(tr.as_ref(), target, shard, op_id, checked, check_gray)?;
                // The local `pshd` entry is a verbatim copy of the
                // removed global entry's op (PUSH published it from
                // here), so the trace event does not need the remote op
                // echoed back.
                self.local
                    .entry(op_id)
                    .expect("flag checked above")
                    .op
                    .clone()
            } else {
                // Critical section: criteria over G plus the removal,
                // atomic — shared with the transport executors and the
                // degraded path (see `transport::locked_unpush_in_view`).
                let mut view = self.global.acquire_route(route);
                crate::transport::locked_unpush_in_view(
                    &self.global,
                    shard,
                    &mut view,
                    op_id,
                    checked,
                    check_gray,
                )?
            }
        };
        let entry = self.local.entry_mut(op_id).expect("checked above");
        let (saved_code, saved_stack) = match &entry.flag {
            LocalFlag::Pushed {
                saved_code,
                saved_stack,
            } => (saved_code.clone(), saved_stack.clone()),
            _ => unreachable!("flag checked above"),
        };
        entry.flag = LocalFlag::NotPushed {
            saved_code,
            saved_stack,
        };
        let tid = self.tid;
        self.record(Event::UnPush {
            thread: tid,
            op: op_id,
            method: op.method,
        });
        Ok(())
    }

    /// **PULL**: imports another transaction's published operation into
    /// the local view. The global lock is held only to snapshot the
    /// pulled entry; criteria and effect are local.
    ///
    /// Criteria: (i) not already pulled (`op ∉ L`); (ii) the local log
    /// allows `op`; (iii, gray) everything the transaction has done
    /// locally moves right of `op` (so the pull can be seen as having
    /// preceded the transaction).
    pub fn pull(&mut self, op_id: OpId) -> MachineResult<()> {
        self.fault_gate(Rule::Pull)?;
        let checked = self.mode() != CheckMode::Unchecked;
        let check_gray = self.mode() == CheckMode::Checked;
        let shard = self.shard();
        let gentry = self
            .global
            .find_entry(op_id)
            .ok_or(MachineError::NoSuchOp(op_id))?;
        let own =
            gentry.op.txn == self.txn || self.frames.iter().any(|f| f.txn == Some(gentry.op.txn));
        if own {
            return Err(MachineError::WrongFlag {
                op: op_id,
                expected: "another transaction's op",
                found: "own op",
            });
        }
        // Criterion (i): op ∉ L. (Enforced in every mode — a duplicate
        // entry would corrupt the log structure — but only audited when
        // criteria checking is on, so Unchecked runs audit nothing.)
        if self.local.contains_id(op_id) {
            if checked {
                self.global.audit.fail(Rule::Pull, Clause::I);
            }
            return Err(MachineError::criterion(
                Rule::Pull,
                Clause::I,
                format!("{op_id} already pulled"),
            ));
        }
        if checked {
            self.global.audit.pass(Rule::Pull, Clause::I);
        }
        if checked {
            // Criterion (ii): L allows op.
            let local_ops = self.local.ops();
            if !self.global.allows_q(shard, &local_ops, &gentry.op) {
                self.global.audit.fail(Rule::Pull, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::Pull,
                    Clause::Ii,
                    format!("local log does not allow pulled {}", op_id),
                ));
            }
            self.global.audit.pass(Rule::Pull, Clause::Ii);
            // Criterion (iii), gray: own local ops move right of op.
            if check_gray {
                if self.global.statically_discharged(Rule::Pull, Clause::Iii) {
                    #[cfg(debug_assertions)]
                    for own in self.local.own_ops() {
                        assert!(
                            self.global.spec().mover(&own, &gentry.op),
                            "static discharge of PULL (iii) contradicted dynamically: {} vs {}",
                            own.id,
                            op_id
                        );
                    }
                    self.global.audit.pass_static(Rule::Pull, Clause::Iii);
                } else {
                    for own in self.local.own_ops() {
                        if !self.global.mover_q(shard, &own, &gentry.op) {
                            self.global.audit.fail(Rule::Pull, Clause::Iii);
                            return Err(MachineError::criterion(
                                Rule::Pull,
                                Clause::Iii,
                                format!("own {} cannot move right of pulled {}", own.id, op_id),
                            ));
                        }
                    }
                    self.global.audit.pass(Rule::Pull, Clause::Iii);
                }
            }
        }
        let reachable_after = self
            .active_code()
            .map(|c| c.reachable_methods())
            .unwrap_or_default();
        self.local.push_entry(LocalEntry {
            op: gentry.op.clone(),
            flag: LocalFlag::Pulled,
        });
        let tid = self.tid;
        self.record(Event::Pull {
            thread: tid,
            op: op_id,
            from: gentry.op.txn,
            status_at_pull: gentry.flag,
            method: gentry.op.method,
            ret: gentry.op.ret,
            reachable_after,
        });
        Ok(())
    }

    /// **UNPULL**: discards a pulled operation from the local view.
    /// Entirely thread-local.
    ///
    /// Criterion (i): the local log without `op` is still allowed (the
    /// transaction did nothing that depended on it).
    pub fn unpull(&mut self, op_id: OpId) -> MachineResult<()> {
        let checked = self.mode() != CheckMode::Unchecked;
        let shard = self.shard();
        {
            let entry = self
                .local
                .entry(op_id)
                .ok_or(MachineError::NoSuchOp(op_id))?;
            if !entry.flag.is_pulled() {
                return Err(MachineError::WrongFlag {
                    op: op_id,
                    expected: "pld",
                    found: "npshd/pshd",
                });
            }
        }
        if checked {
            let remaining: Vec<_> = self
                .local
                .iter()
                .filter(|e| e.op.id != op_id)
                .map(|e| e.op.clone())
                .collect();
            if !self.global.allowed_q(shard, &remaining) {
                self.global.audit.fail(Rule::UnPull, Clause::I);
                return Err(MachineError::criterion(
                    Rule::UnPull,
                    Clause::I,
                    format!("local log without {} is not allowed", op_id),
                ));
            }
            self.global.audit.pass(Rule::UnPull, Clause::I);
        }
        let entry = self.local.remove_by_id(op_id).expect("checked above");
        let tid = self.tid;
        self.record(Event::UnPull {
            thread: tid,
            op: op_id,
            method: entry.op.method,
        });
        Ok(())
    }

    /// **CMT**: commits the current transaction. Criteria (i)/(ii) are
    /// local; criterion (iii) and the `cmt` effect (flag flips, the
    /// committed-transaction record, cache advance) are one critical
    /// section.
    ///
    /// Criteria: (i) `fin(c)` — some path reaches `skip`; (ii) `L ⊆ G` —
    /// every own operation has been pushed; (iii) every pulled operation
    /// belongs to a committed transaction; (iv) own entries in `G` flip
    /// to `gCmt` (the `cmt` predicate — this is the effect).
    ///
    /// On success the thread's next pending transaction (if any) begins.
    pub fn commit(&mut self) -> MachineResult<TxnId> {
        self.fault_gate(Rule::Cmt)?;
        // Resolve every still-open scope first: closed frames merge
        // (observationally free), open frames commit to `G` as their
        // own transactions.
        self.exit_scopes_for_commit()?;
        let checked = self.mode() != CheckMode::Unchecked;
        let txn = self.txn;
        if checked {
            // Criterion (i): fin(c).
            if !self.active_code()?.fin() {
                self.global.audit.fail(Rule::Cmt, Clause::I);
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::I,
                    "no method-free path to skip remains".to_string(),
                ));
            }
            self.global.audit.pass(Rule::Cmt, Clause::I);
            // Criterion (ii): all own ops pushed.
            if !self.local.fully_pushed() {
                self.global.audit.fail(Rule::Cmt, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::Ii,
                    "local log contains npshd operations".to_string(),
                ));
            }
            self.global.audit.pass(Rule::Cmt, Clause::Ii);
        }
        let (own_ops, pulled_from) = {
            let pulled = self
                .local
                .iter()
                .filter(|e| e.flag.is_pulled())
                .map(|e| (e.op.id, e.op.txn))
                .collect();
            (self.local.own_ops(), pulled)
        };
        let flipped = {
            // Critical section: criterion (iii) plus cmt(G, L, G'), over
            // exactly the shards this transaction's pushed and pulled
            // operations live on, locked in canonical ascending order.
            let mut coarse = false;
            let mut indices = Vec::new();
            for e in self.local.iter() {
                if e.flag.is_pushed() || e.flag.is_pulled() {
                    match self.global.route(&e.op.method) {
                        Route::Coarse => coarse = true,
                        Route::Single(i) => indices.push(i),
                    }
                }
            }
            let mut view = if coarse {
                self.global.acquire_all()
            } else {
                self.global.acquire_shards(indices)
            };
            if checked {
                // Criterion (iii): every pulled op is committed.
                for pulled in self.local.pulled_ops() {
                    match view.entry(pulled.id) {
                        Some(e) if e.flag == GlobalFlag::Committed => {}
                        Some(_) => {
                            self.global.audit.fail(Rule::Cmt, Clause::Iii);
                            return Err(MachineError::criterion(
                                Rule::Cmt,
                                Clause::Iii,
                                format!("pulled {} is still uncommitted", pulled.id),
                            ));
                        }
                        None => {
                            self.global.audit.fail(Rule::Cmt, Clause::Iii);
                            return Err(MachineError::criterion(
                                Rule::Cmt,
                                Clause::Iii,
                                format!("pulled {} vanished from the global log", pulled.id),
                            ));
                        }
                    }
                }
                self.global.audit.pass(Rule::Cmt, Clause::Iii);
            }
            // Flips land in global commit-stamp order, so the recorded
            // Commit event's op order is identical at any shard count.
            let flipped = view.commit_local(&self.local);
            self.global.push_committed(CommittedTxn {
                txn,
                thread: self.tid,
                code: self.committed_code(),
                ops: own_ops,
                pulled_from,
                kind: TxnKind::Top,
            });
            // Newly committed entries may extend the fully committed
            // prefix of each held shard: advance their caches.
            self.global.advance_caches(&mut view);
            flipped
        };
        let tid = self.tid;
        self.record(Event::Commit {
            thread: tid,
            txn,
            ops: flipped,
        });
        self.commits += 1;
        self.reset_txn_state();
        self.begin_next_pending();
        Ok(txn)
    }

    /// Resets the per-transaction state after a commit: the local log,
    /// the observation stack, the scope stack, and the compensation set
    /// (a committed root makes its open children durable — their
    /// compensations are discarded, not replayed).
    fn reset_txn_state(&mut self) {
        self.local = LocalLog::new();
        self.stack = Vec::new();
        self.frames.clear();
        self.comps.clear();
        self.open_children = 0;
        self.explicit_open = false;
    }

    /// Starts the next pending transaction (recording its `Begin`), or
    /// parks the thread (`code = None`, the paper's MS_END).
    fn begin_next_pending(&mut self) {
        let tid = self.tid;
        match self.pending.pop_front() {
            Some(c) => {
                let next_txn = self.global.fresh_txn();
                self.code = Some(c.clone());
                self.original = c;
                self.txn = next_txn;
                self.record(Event::Begin {
                    thread: tid,
                    txn: next_txn,
                });
            }
            None => {
                self.code = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Derived operations (compositions of back rules).
    // ------------------------------------------------------------------

    /// Derives the compensating undo program for the transaction's live
    /// local log: the spec-level inverse of every own (non-pulled) entry,
    /// in reverse log order, read-only observations elided. This is the
    /// undo log a boosted implementation would execute on abort; callers
    /// that roll back via the back rules can use it for accounting or
    /// cross-checking without mutating the handle. Tallies the derived
    /// inverses in the global nesting counters.
    ///
    /// Errors with [`MachineError::NotInvertible`] if any live operation
    /// has no spec-level inverse.
    pub fn undo_program(&self) -> MachineResult<Vec<(S::Method, S::Ret)>> {
        let mut inverses: Vec<(S::Method, S::Ret)> = Vec::new();
        for e in self.local.entries() {
            if e.flag.is_pulled() {
                continue;
            }
            match self.global.spec().inverse(&e.op) {
                OpInverse::ReadOnly => {}
                OpInverse::Inverse(m, r) => inverses.push((m, r)),
                OpInverse::NotInvertible => {
                    return Err(MachineError::NotInvertible {
                        thread: self.tid,
                        op: e.op.id,
                    })
                }
            }
        }
        inverses.reverse();
        self.global
            .nesting_counters()
            .note_undo_inverses(inverses.len() as u64);
        Ok(inverses)
    }

    /// Fully rewinds the current transaction (the composition of `⃗back`
    /// rules: UNPULL/UNPUSH/UNAPP from the tail) and restarts it as a
    /// fresh transaction instance with the original code. Compensations
    /// registered by committed open-nested children are replayed (most
    /// recent first) between the `Abort` and the retry's `Begin`.
    ///
    /// Records an `Abort` plus a `Begin` event.
    pub fn abort_and_retry(&mut self) -> MachineResult<TxnId> {
        if self.code.is_none() {
            // A finished thread has nothing to abort; restarting its last
            // transaction here would resurrect committed work.
            return Err(MachineError::ThreadFinished(self.tid));
        }
        self.rewind_all()?;
        let old = self.txn;
        let tid = self.tid;
        self.record(Event::Abort {
            thread: tid,
            txn: old,
        });
        self.replay_all_compensations()?;
        let txn = self.global.fresh_txn();
        self.aborts += 1;
        self.code = Some(self.original.clone());
        self.stack = Vec::new();
        self.open_children = 0;
        self.explicit_open = false;
        self.txn = txn;
        self.record(Event::Begin { thread: tid, txn });
        Ok(txn)
    }

    /// Rewinds the current transaction completely: walking the local log
    /// from the tail, pulled entries are UNPULLed, pushed entries are
    /// UNPUSHed then UNAPPed, unpushed entries are UNAPPed. Every scope
    /// frame is popped (in-flight open children record their `Abort`);
    /// compensations owned by popped scopes are replayed, while those
    /// owned by the root stay registered for the caller's abort path.
    pub fn rewind_all(&mut self) -> MachineResult<()> {
        self.rewind_suffix(0)?;
        self.pop_rewound_frames(0, true)
    }

    /// Rewinds the current transaction's local log down to `target_len`
    /// entries, taking whatever back rules the tail requires — the
    /// checkpoint/partial-abort mechanism of §6.2. Scopes entered
    /// strictly after `target_len` are aborted with their suffixes.
    ///
    /// # Errors
    ///
    /// Propagates criterion violations from the constituent
    /// UNPUSH/UNPULL steps (an UNAPP at the tail never fails).
    pub fn rewind_to(&mut self, target_len: usize) -> MachineResult<()> {
        self.rewind_suffix(target_len)?;
        self.pop_rewound_frames(target_len, false)
    }

    /// Pushes every unpushed own operation in local order, then commits —
    /// the optimistic commit sequence ("PUSH everything and CMT at an
    /// uninterleaved moment", §6.2).
    pub fn push_all_and_commit(&mut self) -> MachineResult<TxnId> {
        let unpushed: Vec<OpId> = self.local.not_pushed_ops().iter().map(|o| o.id).collect();
        for id in unpushed {
            self.push(id)?;
        }
        self.commit()
    }

    /// Ids of the current transaction's unpushed operations, in order.
    pub fn unpushed_ids(&self) -> Vec<OpId> {
        self.local.not_pushed_ops().iter().map(|o| o.id).collect()
    }

    /// Abandons the current transaction without retrying it: fully
    /// rewinds (UNPULL/UNPUSH/UNAPP from the tail), records an `Abort`,
    /// and advances to the next pending transaction if one is queued —
    /// the service front-end's explicit `Abort` request (the client does
    /// not want the work redone, unlike [`Self::abort_and_retry`]).
    pub fn abandon(&mut self) -> MachineResult<()> {
        if self.code.is_none() {
            return Err(MachineError::ThreadFinished(self.tid));
        }
        self.rewind_all()?;
        let old = self.txn;
        self.aborts += 1;
        self.stack = Vec::new();
        let tid = self.tid;
        self.record(Event::Abort {
            thread: tid,
            txn: old,
        });
        self.replay_all_compensations()?;
        self.open_children = 0;
        self.explicit_open = false;
        self.begin_next_pending();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Group-commit batch path (see [`crate::group`]): the PUSH and CMT
    // bodies above, re-entrant under a caller-held shard view so many
    // transactions share one lock acquisition. Criteria, audit tallies
    // and recorded events are identical to the per-transaction path.
    // ------------------------------------------------------------------

    /// The single shard every operation of the current transaction routes
    /// to, if this transaction is eligible for the per-shard group-commit
    /// path — `None` (caller falls back to the per-transaction path) when
    /// the thread is finished, the local log is empty, any operation
    /// routes coarse or to a different shard, coarse mode is on, or a
    /// transport is installed (the seam serializes at the shard executor;
    /// batching behind its back would bypass the envelope).
    pub fn group_route(&self) -> Option<usize> {
        if self.code.is_none() || self.local.is_empty() {
            return None;
        }
        if self.global.coarse_mode() || self.global.transport().is_some() {
            return None;
        }
        // Nested scopes and registered compensations stay off the batch
        // path: resolving them (open commits, compensation replay)
        // acquires shard locks of its own, which would deadlock under
        // the caller's held batch view.
        if !self.frames.is_empty() || !self.comps.is_empty() || self.open_children > 0 {
            return None;
        }
        let mut target: Option<usize> = None;
        for e in self.local.iter() {
            match self.global.route(&e.op.method) {
                Route::Coarse => return None,
                Route::Single(i) => match target {
                    None => target = Some(i),
                    Some(t) if t == i => {}
                    Some(_) => return None,
                },
            }
        }
        target
    }

    /// **PUSH** under a caller-held view (the group-commit batch path):
    /// same fault gate, criteria, audit tallies, flag flip and trace
    /// event as [`Self::push`], but the critical section is the caller's
    /// one batch-wide lock acquisition and the commit-sequence stamp
    /// comes from the batch's reserved contiguous block.
    pub(crate) fn batch_push_in_view(
        &mut self,
        view: &mut LogView<'_, S>,
        target: usize,
        stamp: u64,
        op_id: OpId,
        tally: &mut BatchTally,
    ) -> MachineResult<()> {
        self.fault_gate(Rule::Push)?;
        let checked = self.mode() != CheckMode::Unchecked;
        let shard = self.shard();
        let (op, pos) = {
            let pos = self
                .local
                .position(op_id)
                .ok_or(MachineError::NoSuchOp(op_id))?;
            let entry = &self.local.entries()[pos];
            match entry.flag {
                LocalFlag::NotPushed { .. } => {}
                LocalFlag::Pushed { .. } => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "npshd",
                        found: "pshd",
                    })
                }
                LocalFlag::Pulled => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "npshd",
                        found: "pld",
                    })
                }
            }
            (entry.op.clone(), pos)
        };
        if checked {
            // Criterion (i): op ◁ op' for every earlier npshd own op'.
            tally.reached += 1;
            if self.global.statically_discharged(Rule::Push, Clause::I) {
                #[cfg(debug_assertions)]
                for e in &self.local.entries()[..pos] {
                    assert!(
                        !e.flag.is_not_pushed() || self.global.spec().mover(&op, &e.op),
                        "static discharge of PUSH (i) contradicted dynamically: {} vs {}",
                        op.id,
                        e.op.id
                    );
                }
                self.global.audit.pass_static(Rule::Push, Clause::I);
                tally.statically_discharged += 1;
            } else {
                for e in &self.local.entries()[..pos] {
                    if e.flag.is_not_pushed() && !self.global.mover_q(shard, &op, &e.op) {
                        self.global.audit.fail(Rule::Push, Clause::I);
                        tally.violated += 1;
                        return Err(MachineError::criterion(
                            Rule::Push,
                            Clause::I,
                            format!(
                                "{} does not move across earlier unpushed {}",
                                op.id, e.op.id
                            ),
                        ));
                    }
                }
                self.global.audit.pass(Rule::Push, Clause::I);
                tally.discharged += 1;
            }
            // Criteria (ii)/(iii) under the held view — the exact locked
            // evaluation of the per-transaction path. The tally deltas
            // are inferred from the outcome: (ii) is reached always and
            // recorded pass/static/fail; (iii) is reached only when (ii)
            // held.
            let ii_static = self.global.statically_discharged(Rule::Push, Clause::Ii);
            match crate::transport::locked_push_criteria(&self.global, op.txn, shard, view, &op) {
                Ok(()) => {
                    tally.reached += 2;
                    if ii_static {
                        tally.statically_discharged += 1;
                    } else {
                        tally.discharged += 1;
                    }
                    tally.discharged += 1;
                }
                Err(e) => {
                    if let MachineError::Criterion(v) = &e {
                        match v.clause {
                            Clause::Ii => {
                                tally.reached += 1;
                                tally.violated += 1;
                            }
                            Clause::Iii => {
                                tally.reached += 2;
                                if ii_static {
                                    tally.statically_discharged += 1;
                                } else {
                                    tally.discharged += 1;
                                }
                                tally.violated += 1;
                            }
                            _ => {}
                        }
                    }
                    return Err(e);
                }
            }
        }
        self.global
            .append_push_stamped(view, target, stamp, op.clone());
        let entry = self.local.entry_mut(op_id).expect("position found above");
        let (saved_code, saved_stack) = match &entry.flag {
            LocalFlag::NotPushed {
                saved_code,
                saved_stack,
            } => (saved_code.clone(), saved_stack.clone()),
            _ => unreachable!("flag checked above"),
        };
        entry.flag = LocalFlag::Pushed {
            saved_code,
            saved_stack,
        };
        let tid = self.tid;
        self.record(Event::Push {
            thread: tid,
            op: op_id,
            method: op.method,
        });
        Ok(())
    }

    /// **CMT** under a caller-held view (the group-commit batch path):
    /// same criteria, audit tallies, committed record, cache advance and
    /// trace events as [`Self::commit`], but criterion (iii) and the
    /// `cmt` effect run inside the caller's one batch-wide lock
    /// acquisition. The caller must hold every shard this transaction's
    /// pushed/pulled operations route to (the group-eligibility check:
    /// [`Self::group_route`]).
    pub(crate) fn batch_commit_in_view(
        &mut self,
        view: &mut LogView<'_, S>,
        tally: &mut BatchTally,
    ) -> MachineResult<TxnId> {
        debug_assert!(
            self.frames.is_empty() && self.comps.is_empty(),
            "batch commit on a handle with live scopes (group_route must exclude it)"
        );
        self.fault_gate(Rule::Cmt)?;
        let checked = self.mode() != CheckMode::Unchecked;
        let txn = self.txn;
        if checked {
            // Criterion (i): fin(c).
            tally.reached += 1;
            if !self.active_code()?.fin() {
                self.global.audit.fail(Rule::Cmt, Clause::I);
                tally.violated += 1;
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::I,
                    "no method-free path to skip remains".to_string(),
                ));
            }
            self.global.audit.pass(Rule::Cmt, Clause::I);
            tally.discharged += 1;
            // Criterion (ii): all own ops pushed.
            tally.reached += 1;
            if !self.local.fully_pushed() {
                self.global.audit.fail(Rule::Cmt, Clause::Ii);
                tally.violated += 1;
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::Ii,
                    "local log contains npshd operations".to_string(),
                ));
            }
            self.global.audit.pass(Rule::Cmt, Clause::Ii);
            tally.discharged += 1;
        }
        let (own_ops, pulled_from) = {
            let pulled = self
                .local
                .iter()
                .filter(|e| e.flag.is_pulled())
                .map(|e| (e.op.id, e.op.txn))
                .collect();
            (self.local.own_ops(), pulled)
        };
        let flipped = {
            if checked {
                // Criterion (iii): every pulled op is committed.
                tally.reached += 1;
                for pulled in self.local.pulled_ops() {
                    match view.entry(pulled.id) {
                        Some(e) if e.flag == GlobalFlag::Committed => {}
                        Some(_) => {
                            self.global.audit.fail(Rule::Cmt, Clause::Iii);
                            tally.violated += 1;
                            return Err(MachineError::criterion(
                                Rule::Cmt,
                                Clause::Iii,
                                format!("pulled {} is still uncommitted", pulled.id),
                            ));
                        }
                        None => {
                            self.global.audit.fail(Rule::Cmt, Clause::Iii);
                            tally.violated += 1;
                            return Err(MachineError::criterion(
                                Rule::Cmt,
                                Clause::Iii,
                                format!("pulled {} vanished from the global log", pulled.id),
                            ));
                        }
                    }
                }
                self.global.audit.pass(Rule::Cmt, Clause::Iii);
                tally.discharged += 1;
            }
            let flipped = view.commit_local(&self.local);
            self.global.push_committed(CommittedTxn {
                txn,
                thread: self.tid,
                code: self.committed_code(),
                ops: own_ops,
                pulled_from,
                kind: TxnKind::Top,
            });
            self.global.advance_caches(view);
            flipped
        };
        let tid = self.tid;
        self.record(Event::Commit {
            thread: tid,
            txn,
            ops: flipped,
        });
        self.commits += 1;
        self.reset_txn_state();
        self.begin_next_pending();
        Ok(txn)
    }

    /// **UNPUSH** under a caller-held view (the group-commit failure
    /// rollback): same criteria, audit tallies, flag restore and trace
    /// event as [`Self::unpush`], but the critical section is the
    /// caller's batch-wide lock acquisition.
    pub(crate) fn batch_unpush_in_view(
        &mut self,
        view: &mut LogView<'_, S>,
        op_id: OpId,
        tally: &mut BatchTally,
    ) -> MachineResult<()> {
        let checked = self.mode() != CheckMode::Unchecked;
        let check_gray = self.mode() == CheckMode::Checked;
        let shard = self.shard();
        {
            let entry = self
                .local
                .entry(op_id)
                .ok_or(MachineError::NoSuchOp(op_id))?;
            match entry.flag {
                LocalFlag::Pushed { .. } => {}
                LocalFlag::NotPushed { .. } => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "pshd",
                        found: "npshd",
                    })
                }
                LocalFlag::Pulled => {
                    return Err(MachineError::WrongFlag {
                        op: op_id,
                        expected: "pshd",
                        found: "pld",
                    })
                }
            }
        }
        let gray_static = check_gray && self.global.statically_discharged(Rule::UnPush, Clause::I);
        let op = match crate::transport::locked_unpush_in_view(
            &self.global,
            shard,
            view,
            op_id,
            checked,
            check_gray,
        ) {
            Ok(op) => {
                if checked {
                    // Gray criterion (i) when graying, plus criterion (ii).
                    tally.reached += if check_gray { 2 } else { 1 };
                    if check_gray {
                        if gray_static {
                            tally.statically_discharged += 1;
                        } else {
                            tally.discharged += 1;
                        }
                    }
                    tally.discharged += 1;
                }
                op
            }
            Err(e) => {
                if checked {
                    if let MachineError::Criterion(v) = &e {
                        match v.clause {
                            Clause::I => {
                                tally.reached += 1;
                                tally.violated += 1;
                            }
                            Clause::Ii => {
                                tally.reached += if check_gray { 2 } else { 1 };
                                if check_gray {
                                    if gray_static {
                                        tally.statically_discharged += 1;
                                    } else {
                                        tally.discharged += 1;
                                    }
                                }
                                tally.violated += 1;
                            }
                            _ => {}
                        }
                    }
                }
                return Err(e);
            }
        };
        let entry = self.local.entry_mut(op_id).expect("checked above");
        let (saved_code, saved_stack) = match &entry.flag {
            LocalFlag::Pushed {
                saved_code,
                saved_stack,
            } => (saved_code.clone(), saved_stack.clone()),
            _ => unreachable!("flag checked above"),
        };
        entry.flag = LocalFlag::NotPushed {
            saved_code,
            saved_stack,
        };
        let tid = self.tid;
        self.record(Event::UnPush {
            thread: tid,
            op: op_id,
            method: op.method,
        });
        Ok(())
    }

    /// The full abort-and-restart of [`Self::abort_and_retry`], executed
    /// inside a caller-held view: the rewind walks the local log from the
    /// tail exactly as [`Self::rewind_all`] (UNPULL / in-view UNPUSH then
    /// UNAPP / UNAPP), so a transaction that fails mid-batch leaves `G` —
    /// and the recorded trace — exactly as the per-transaction path's
    /// immediate abort would, before the next batched transaction's
    /// criteria run.
    pub(crate) fn batch_abort_in_view(
        &mut self,
        view: &mut LogView<'_, S>,
        tally: &mut BatchTally,
    ) -> MachineResult<TxnId> {
        debug_assert!(
            self.frames.is_empty() && self.comps.is_empty(),
            "batch abort on a handle with live scopes (group_route must exclude it)"
        );
        if self.code.is_none() {
            return Err(MachineError::ThreadFinished(self.tid));
        }
        loop {
            let last = match self.local.entries().last() {
                None => break,
                Some(e) => (e.op.id, e.flag.clone()),
            };
            match last.1 {
                LocalFlag::Pulled => {
                    self.unpull(last.0)?;
                }
                LocalFlag::Pushed { .. } => {
                    self.batch_unpush_in_view(view, last.0, tally)?;
                    self.unapp()?;
                }
                LocalFlag::NotPushed { .. } => {
                    self.unapp()?;
                }
            }
        }
        let old = self.txn;
        let txn = self.global.fresh_txn();
        self.aborts += 1;
        self.code = Some(self.original.clone());
        self.stack = Vec::new();
        self.txn = txn;
        let tid = self.tid;
        self.record(Event::Abort {
            thread: tid,
            txn: old,
        });
        self.record(Event::Begin { thread: tid, txn });
        Ok(txn)
    }

    /// Pulls every *committed* global operation not yet in the local log,
    /// in global-log order — how opaque transactions snapshot the shared
    /// state (§6.2: "transactions begin by PULLing all operations").
    pub fn pull_all_committed(&mut self) -> MachineResult<usize> {
        let candidates: Vec<OpId> = {
            let view = self.global.acquire_all();
            view.stamped()
                .filter(|(_, e)| {
                    e.flag == GlobalFlag::Committed && !self.local.contains_id(e.op.id)
                })
                .map(|(_, e)| e.op.id)
                .collect()
        };
        let mut n = 0;
        for id in candidates {
            self.pull(id)?;
            n += 1;
        }
        Ok(n)
    }
}

/// Folds a method sequence into `m₁ ; m₂ ; …` (or `skip` when empty) —
/// the committed-record code of explicit open scopes and compensating
/// transactions, whose "program" is exactly the operations performed.
fn methods_as_seq<'a, M, I>(methods: I) -> Code<M>
where
    M: Clone + 'a,
    I: DoubleEndedIterator<Item = &'a M>,
{
    let mut code = Code::Skip;
    for m in methods.rev() {
        code = match code {
            Code::Skip => Code::method(m.clone()),
            c => Code::seq(Code::method(m.clone()), c),
        };
    }
    code
}
