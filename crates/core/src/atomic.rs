//! The atomic (uninterleaved) semantics of paper §3, Figure 3.
//!
//! The atomic machine executes each transaction *instantly*: the big-step
//! relation `(c, σ), ℓ ⇓ σ′, ℓ′` scans through the nondeterminism of
//! `tx c` (rules BSSTEP and BSFIN) to produce a completed operation log.
//! PUSH/PULL is proved serializable by simulation against this machine
//! (Theorem 5.17), so this module is the *oracle*: the serializability
//! checker asks whether the observations of a concurrent run could have
//! been produced here.
//!
//! Three entry points:
//!
//! * [`replay_tx`] — decides whether a given observation sequence is one
//!   of the big-step runs of a transaction body from a given log (the
//!   workhorse of the oracle; deterministic, no enumeration);
//! * [`enumerate_runs`] — bounded enumeration of all big-step runs
//!   `(c, σ), ℓ ⇓ σ′, ℓ′` (used by the `cmtpres` invariant checks);
//! * [`exists_serialization`] — brute-force search for *some* serial order
//!   of a set of transactions (used by tests to diagnose failures and to
//!   validate the commit-order witness on small configurations).

use crate::lang::Code;
use crate::op::{Op, OpId, TxnId};
use crate::spec::SeqSpec;

/// One completed big-step run of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicRun<M, R> {
    /// Operations appended to the log, in order.
    pub ops: Vec<Op<M, R>>,
    /// The observation history (stack σ′) of the run.
    pub stack: Vec<(M, R)>,
}

/// Bounds for [`enumerate_runs`]; both default to small values suitable
/// for tests.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum operations per run (bounds `(c)*` unfolding).
    pub max_ops: usize,
    /// Maximum number of runs to collect.
    pub max_runs: usize,
}

impl Default for RunLimits {
    fn default() -> Self {
        Self {
            max_ops: 8,
            max_runs: 256,
        }
    }
}

/// Does `ops` describe a valid big-step run `(code, σ), log ⇓ σ′, log·ops`?
///
/// Checks, in order: each `ops[i]`'s method is a next reachable method of
/// the remaining code (BSSTEP premise `(m, c₂) ∈ step(c₁)`), its return is
/// allowed by the sequential specification extended with the preceding
/// operations, and after the last operation some method-free path reaches
/// `skip` (BSFIN). Branches over all matching continuations, so
/// duplicated method names in choices are handled.
///
/// # Examples
///
/// ```
/// use pushpull_core::atomic::replay_tx;
/// use pushpull_core::lang::Code;
/// use pushpull_core::toy::{ToyCounter, CounterMethod, counter_op};
///
/// let spec = ToyCounter::with_bound(4);
/// let code = Code::seq(Code::method(CounterMethod::Inc), Code::method(CounterMethod::Get));
/// let ops = vec![
///     counter_op(0, CounterMethod::Inc, 0),
///     counter_op(1, CounterMethod::Get, 1),
/// ];
/// assert!(replay_tx(&spec, &code, &[], &ops));
/// // Observing 2 from the get is not an atomic behaviour:
/// let bad = vec![
///     counter_op(0, CounterMethod::Inc, 0),
///     counter_op(1, CounterMethod::Get, 2),
/// ];
/// assert!(!replay_tx(&spec, &code, &[], &bad));
/// ```
pub fn replay_tx<S: SeqSpec>(
    spec: &S,
    code: &Code<S::Method>,
    prefix_log: &[Op<S::Method, S::Ret>],
    ops: &[Op<S::Method, S::Ret>],
) -> bool {
    let mut log: Vec<Op<S::Method, S::Ret>> = prefix_log.to_vec();
    replay_rec(spec, code, ops, &mut log)
}

fn replay_rec<S: SeqSpec>(
    spec: &S,
    code: &Code<S::Method>,
    ops: &[Op<S::Method, S::Ret>],
    log: &mut Vec<Op<S::Method, S::Ret>>,
) -> bool {
    match ops.split_first() {
        None => code.fin(),
        Some((op, rest)) => {
            if !spec.allows(log, op) {
                return false;
            }
            log.push(op.clone());
            for (m, cont) in code.step() {
                if m == op.method && replay_rec(spec, &cont, rest, log) {
                    log.pop();
                    return true;
                }
            }
            log.pop();
            false
        }
    }
}

/// Enumerates big-step runs `(code, σ), prefix_log ⇓ σ′, prefix_log·ops`
/// up to the given limits. Operation ids are minted from `id_base`
/// upwards; they are hypothetical and never enter a machine.
///
/// A *disallowed* `prefix_log` has no runs at all: under the denotational
/// reading of Parameter 3.1, `⟦ℓ⟧ = ∅` means no configuration exists to
/// take even the BSFIN step from. (This matters for the `cmtpres`
/// checks: a doomed transaction — one whose stale observations already
/// contradict the committed log — vacuously satisfies the invariant, as
/// it can never commit from that state.)
pub fn enumerate_runs<S: SeqSpec>(
    spec: &S,
    code: &Code<S::Method>,
    prefix_log: &[Op<S::Method, S::Ret>],
    txn: TxnId,
    id_base: u64,
    limits: RunLimits,
) -> Vec<AtomicRun<S::Method, S::Ret>> {
    let mut out = Vec::new();
    if !spec.allowed(prefix_log) {
        return out;
    }
    let mut log = prefix_log.to_vec();
    let mut ops = Vec::new();
    let mut stack = Vec::new();
    enumerate_rec(
        spec, code, txn, id_base, limits, &mut log, &mut ops, &mut stack, &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec<S: SeqSpec>(
    spec: &S,
    code: &Code<S::Method>,
    txn: TxnId,
    next_id: u64,
    limits: RunLimits,
    log: &mut Vec<Op<S::Method, S::Ret>>,
    ops: &mut Vec<Op<S::Method, S::Ret>>,
    stack: &mut Vec<(S::Method, S::Ret)>,
    out: &mut Vec<AtomicRun<S::Method, S::Ret>>,
) {
    if out.len() >= limits.max_runs {
        return;
    }
    // BSFIN: a method-free path to skip completes the run.
    if code.fin() {
        out.push(AtomicRun {
            ops: ops.clone(),
            stack: stack.clone(),
        });
        if out.len() >= limits.max_runs {
            return;
        }
    }
    if ops.len() >= limits.max_ops {
        return;
    }
    // BSSTEP: pick a next method and an allowed return.
    for (m, cont) in code.step() {
        let states = spec.denote(log);
        if states.is_empty() {
            return;
        }
        let mut rets: Vec<S::Ret> = Vec::new();
        for s in &states {
            for r in spec.results(s, &m) {
                if !rets.contains(&r) {
                    rets.push(r);
                }
            }
        }
        for ret in rets {
            let op = Op::new(OpId(next_id), txn, m.clone(), ret.clone());
            if spec
                .denote_from(&states, std::slice::from_ref(&op))
                .is_empty()
            {
                continue;
            }
            log.push(op.clone());
            ops.push(op);
            stack.push((m.clone(), ret));
            enumerate_rec(spec, &cont, txn, next_id + 1, limits, log, ops, stack, out);
            stack.pop();
            ops.pop();
            log.pop();
        }
    }
}

/// A transaction's body paired with its observed operations — the input
/// shape of [`exists_serialization`].
pub type TxnObservation<S> = (
    Code<<S as SeqSpec>::Method>,
    Vec<Op<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>>,
);

/// Searches for a serial order of `txns` (each a transaction body paired
/// with its observed operations) such that replaying them one at a time
/// against the accumulated log succeeds. Returns the witnessing
/// permutation of indices, if any.
///
/// Exponential in `txns.len()`; intended for small model-checking
/// configurations (≤ 8 transactions).
pub fn exists_serialization<S: SeqSpec>(
    spec: &S,
    txns: &[TxnObservation<S>],
) -> Option<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..txns.len()).collect();
    let mut order = Vec::new();
    let mut log = Vec::new();
    if search_serial(spec, txns, &mut remaining, &mut order, &mut log) {
        Some(order)
    } else {
        None
    }
}

fn search_serial<S: SeqSpec>(
    spec: &S,
    txns: &[TxnObservation<S>],
    remaining: &mut Vec<usize>,
    order: &mut Vec<usize>,
    log: &mut Vec<Op<S::Method, S::Ret>>,
) -> bool {
    if remaining.is_empty() {
        return true;
    }
    for i in 0..remaining.len() {
        let idx = remaining.remove(i);
        let (code, ops) = &txns[idx];
        if replay_tx(spec, code, log, ops) {
            let len_before = log.len();
            log.extend(ops.iter().cloned());
            order.push(idx);
            if search_serial(spec, txns, remaining, order, log) {
                return true;
            }
            order.pop();
            log.truncate(len_before);
        }
        remaining.insert(i, idx);
    }
    false
}

/// The atomic machine of Figure 3: a list of threads `A` (each a stack
/// and a queue of transaction bodies) and a shared log `ℓ`, reduced by
/// the AMS rules — AM_RUNTX executes one whole transaction instantly via
/// the big-step `⇓`.
///
/// This is the *specification machine* the PUSH/PULL machine is proved to
/// simulate. [`crate::serializability::check_machine`] uses its big-step
/// core ([`replay_tx`]) directly; this struct additionally realizes the
/// thread-list reduction rules (AMS_ONE/AMS_END), so small configurations
/// can be executed *atomically* and compared against concurrent runs.
///
/// # Examples
///
/// ```
/// use pushpull_core::atomic::AtomicMachine;
/// use pushpull_core::lang::Code;
/// use pushpull_core::toy::{ToyCounter, CounterMethod};
///
/// let mut am = AtomicMachine::new(ToyCounter::with_bound(8));
/// am.add_thread(vec![Code::method(CounterMethod::Inc)]);
/// am.add_thread(vec![Code::method(CounterMethod::Get)]);
/// am.run_txn(1).unwrap(); // AM_RUNTX: the get runs atomically, sees 0
/// am.run_txn(0).unwrap();
/// assert_eq!(am.log().len(), 2);
/// assert!(am.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct AtomicMachine<S: SeqSpec> {
    spec: S,
    threads: Vec<std::collections::VecDeque<Code<S::Method>>>,
    log: Vec<Op<S::Method, S::Ret>>,
    next_id: u64,
    next_txn: u64,
}

impl<S: SeqSpec> AtomicMachine<S> {
    /// Creates an atomic machine with an empty shared log.
    pub fn new(spec: S) -> Self {
        Self {
            spec,
            threads: Vec::new(),
            log: Vec::new(),
            next_id: 0,
            next_txn: 0,
        }
    }

    /// Adds a thread with a queue of transaction bodies; returns its index.
    pub fn add_thread(&mut self, programs: Vec<Code<S::Method>>) -> usize {
        self.threads.push(programs.into());
        self.threads.len() - 1
    }

    /// The shared log `ℓ`.
    pub fn log(&self) -> &[Op<S::Method, S::Ret>] {
        &self.log
    }

    /// AMS_END for every thread: have all transactions run?
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|q| q.is_empty())
    }

    /// AM_RUNTX: runs thread `t`'s next transaction to completion,
    /// atomically, taking the first big-step run found (deterministic:
    /// first `step` option, first allowed result). Returns the appended
    /// operations.
    ///
    /// # Errors
    ///
    /// `Err(NoAtomicRun)` when the thread has no pending transaction or
    /// no big-step run exists within the default limits (e.g. every
    /// path's observations are disallowed by the current log).
    pub fn run_txn(&mut self, t: usize) -> Result<AppendedOps<S>, NoAtomicRun> {
        let code = self
            .threads
            .get_mut(t)
            .and_then(|q| q.pop_front())
            .ok_or(NoAtomicRun)?;
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let runs = enumerate_runs(
            &self.spec,
            &code,
            &self.log,
            txn,
            self.next_id,
            RunLimits {
                max_ops: 64,
                max_runs: 1,
            },
        );
        match runs.into_iter().next() {
            Some(run) => {
                self.next_id += run.ops.len() as u64 + 1;
                self.log.extend(run.ops.iter().cloned());
                Ok(run.ops)
            }
            None => {
                // Put the transaction back; the caller may try another
                // thread first (AMS allows any order).
                self.threads[t].push_front(code);
                self.next_txn -= 1;
                Err(NoAtomicRun)
            }
        }
    }

    /// Runs every pending transaction in round-robin thread order.
    ///
    /// # Errors
    ///
    /// Propagates [`NoAtomicRun`] if some transaction can never run.
    pub fn run_all(&mut self) -> Result<(), NoAtomicRun> {
        let mut stuck = 0;
        while !self.is_done() {
            let mut progressed = false;
            for t in 0..self.threads.len() {
                if !self.threads[t].is_empty() && self.run_txn(t).is_ok() {
                    progressed = true;
                }
            }
            if !progressed {
                stuck += 1;
                if stuck > 1 {
                    return Err(NoAtomicRun);
                }
            } else {
                stuck = 0;
            }
        }
        Ok(())
    }
}

/// Operations appended to the atomic log by one AM_RUNTX step.
pub type AppendedOps<S> = Vec<Op<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>>;

/// No atomic run of the requested transaction exists from the current log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoAtomicRun;

impl std::fmt::Display for NoAtomicRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("no atomic big-step run exists for the transaction")
    }
}

impl std::error::Error for NoAtomicRun {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{counter_op, counter_op_t, CounterMethod, ToyCounter};

    fn inc() -> Code<CounterMethod> {
        Code::method(CounterMethod::Inc)
    }
    fn get() -> Code<CounterMethod> {
        Code::method(CounterMethod::Get)
    }

    #[test]
    fn replay_accepts_valid_runs() {
        let spec = ToyCounter::with_bound(4);
        let code = Code::seq(inc(), get());
        let ops = vec![
            counter_op(0, CounterMethod::Inc, 0),
            counter_op(1, CounterMethod::Get, 1),
        ];
        assert!(replay_tx(&spec, &code, &[], &ops));
    }

    #[test]
    fn replay_rejects_wrong_ret() {
        let spec = ToyCounter::with_bound(4);
        let code = Code::seq(inc(), get());
        let ops = vec![
            counter_op(0, CounterMethod::Inc, 0),
            counter_op(1, CounterMethod::Get, 0),
        ];
        assert!(!replay_tx(&spec, &code, &[], &ops));
    }

    #[test]
    fn replay_rejects_wrong_method_order() {
        let spec = ToyCounter::with_bound(4);
        let code = Code::seq(inc(), get());
        let ops = vec![
            counter_op(0, CounterMethod::Get, 0),
            counter_op(1, CounterMethod::Inc, 0),
        ];
        assert!(!replay_tx(&spec, &code, &[], &ops));
    }

    #[test]
    fn replay_requires_fin_at_the_end() {
        let spec = ToyCounter::with_bound(4);
        let code = Code::seq(inc(), inc());
        let ops = vec![counter_op(0, CounterMethod::Inc, 0)];
        assert!(
            !replay_tx(&spec, &code, &[], &ops),
            "one inc of two is incomplete"
        );
    }

    #[test]
    fn replay_uses_prefix_log() {
        let spec = ToyCounter::with_bound(4);
        let prefix = vec![counter_op(0, CounterMethod::Inc, 0)];
        let ops = vec![counter_op(1, CounterMethod::Get, 1)];
        assert!(replay_tx(&spec, &get(), &prefix, &ops));
        let ops0 = vec![counter_op(1, CounterMethod::Get, 0)];
        assert!(!replay_tx(&spec, &get(), &prefix, &ops0));
    }

    #[test]
    fn replay_branches_over_duplicate_methods() {
        // (inc ; get) + (inc ; inc): the observation [inc, inc] must match
        // via the second branch even though the first `inc` also matches
        // branch one.
        let spec = ToyCounter::with_bound(4);
        let code = Code::choice(Code::seq(inc(), get()), Code::seq(inc(), inc()));
        let ops = vec![
            counter_op(0, CounterMethod::Inc, 0),
            counter_op(1, CounterMethod::Inc, 0),
        ];
        assert!(replay_tx(&spec, &code, &[], &ops));
    }

    #[test]
    fn enumerate_covers_choices() {
        let spec = ToyCounter::with_bound(4);
        let code = Code::choice(inc(), get());
        let runs = enumerate_runs(&spec, &code, &[], TxnId(0), 1000, RunLimits::default());
        // Two single-op runs: [inc] and [get=0].
        assert_eq!(runs.len(), 2);
        let methods: Vec<CounterMethod> = runs.iter().map(|r| r.ops[0].method).collect();
        assert!(methods.contains(&CounterMethod::Inc));
        assert!(methods.contains(&CounterMethod::Get));
    }

    #[test]
    fn enumerate_bounds_star() {
        let spec = ToyCounter::with_bound(100);
        let code = Code::star(inc());
        let runs = enumerate_runs(
            &spec,
            &code,
            &[],
            TxnId(0),
            1000,
            RunLimits {
                max_ops: 3,
                max_runs: 100,
            },
        );
        // Runs of length 0, 1, 2, 3.
        let mut lens: Vec<usize> = runs.iter().map(|r| r.ops.len()).collect();
        lens.sort();
        assert_eq!(lens, vec![0, 1, 2, 3]);
    }

    #[test]
    fn serialization_search_finds_order() {
        let spec = ToyCounter::with_bound(4);
        // T1: get()=1 — only valid AFTER T0's inc.
        let t0 = (inc(), vec![counter_op_t(0, 0, CounterMethod::Inc, 0)]);
        let t1 = (get(), vec![counter_op_t(1, 1, CounterMethod::Get, 1)]);
        let order = exists_serialization(&spec, &[t1.clone(), t0.clone()]).expect("serializable");
        assert_eq!(order, vec![1, 0], "must schedule the inc first");
    }

    #[test]
    fn serialization_search_rejects_impossible() {
        let spec = ToyCounter::with_bound(4);
        // Two transactions both claiming to read 1 with only... actually
        // get()=1 twice is fine after one inc; make an impossible pair:
        // T0 reads 0 AND T1 reads 1 with no inc anywhere.
        let t0 = (get(), vec![counter_op_t(0, 0, CounterMethod::Get, 0)]);
        let t1 = (get(), vec![counter_op_t(1, 1, CounterMethod::Get, 1)]);
        assert!(exists_serialization(&spec, &[t0, t1]).is_none());
    }

    #[test]
    fn empty_set_is_trivially_serializable() {
        let spec = ToyCounter::with_bound(4);
        assert_eq!(exists_serialization(&spec, &[]), Some(vec![]));
    }

    #[test]
    fn atomic_machine_runs_transactions_instantly() {
        let mut am = AtomicMachine::new(ToyCounter::with_bound(8));
        am.add_thread(vec![inc(), inc()]);
        am.add_thread(vec![get()]);
        // The get runs first atomically and must observe 0.
        let ops = am.run_txn(1).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].ret, 0);
        am.run_all().unwrap();
        assert!(am.is_done());
        assert_eq!(am.log().len(), 3);
        // The log is allowed by construction.
        assert!(am.spec_allowed());
    }

    impl AtomicMachine<ToyCounter> {
        fn spec_allowed(&self) -> bool {
            use crate::spec::SeqSpec as _;
            self.spec.allowed(&self.log)
        }
    }

    #[test]
    fn atomic_machine_ids_are_distinct() {
        let mut am = AtomicMachine::new(ToyCounter::with_bound(8));
        am.add_thread(vec![inc(), inc(), inc()]);
        am.run_all().unwrap();
        let mut ids: Vec<u64> = am.log().iter().map(|o| o.id.0).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn atomic_machine_reports_impossible_runs() {
        // A transaction whose only path exceeds the counter bound has no
        // atomic run.
        let mut am = AtomicMachine::new(ToyCounter::with_bound(1));
        am.add_thread(vec![Code::seq(inc(), inc())]);
        assert_eq!(am.run_txn(0), Err(NoAtomicRun));
        assert!(!am.is_done(), "the transaction is put back");
        assert_eq!(am.run_all(), Err(NoAtomicRun));
    }

    #[test]
    fn atomic_machine_matches_concurrent_committed_log() {
        // The simulation, concretely: a committed PUSH/PULL run's
        // transactions, re-run on the atomic machine in commit order,
        // produce a log with the same denotation.
        use crate::machine::Machine;
        use crate::spec::SeqSpec as _;
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::seq(inc(), inc())]);
        let b = m.add_thread(vec![inc()]);
        m.app_auto(a).unwrap();
        m.app_auto(b).unwrap();
        m.app_auto(a).unwrap();
        m.push_all_and_commit(b).unwrap();
        m.push_all_and_commit(a).unwrap();

        let mut am = AtomicMachine::new(ToyCounter::with_bound(8));
        for txn in m.committed_txns() {
            let t = am.add_thread(vec![txn.code.clone()]);
            am.run_txn(t).unwrap();
        }
        let spec = ToyCounter::with_bound(8);
        assert_eq!(
            spec.denote(&m.global().committed_ops()),
            spec.denote(am.log()),
        );
    }
}
