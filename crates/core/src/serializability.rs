//! The serializability oracle (Theorem 5.17, checked independently).
//!
//! The simulation proof of §5 shows that every criteria-respecting
//! PUSH/PULL run is simulated by the atomic machine, with the *commit
//! order* as the serial witness: `⌊G⌋_gCmt ≼ ℓ` for the atomic log `ℓ`
//! obtained by running each committed transaction, in commit order,
//! through the big-step semantics.
//!
//! [`check_machine`] re-verifies this claim on a finished (or any
//! intermediate) machine state, *without trusting the machine's criteria
//! checks*:
//!
//! 1. the committed projection of `G` is `allowed`;
//! 2. the commit-order serial witness (each transaction's own operations,
//!    concatenated in commit order) is `allowed`;
//! 3. each committed transaction's operations **replay atomically**
//!    against its original `tx c` body from the serial prefix — i.e. the
//!    observations really are big-step behaviours (AM_RUNTX);
//! 4. `⌊G⌋_gCmt ≼ serial witness` via the state-inclusion witness.
//!
//! For diagnosing failures (or validating runs of an *unchecked* machine)
//! [`find_any_serialization`] falls back to brute-force permutation
//! search.

use crate::atomic::{exists_serialization, replay_tx};
use crate::global::TxnKind;
use crate::machine::{CommittedTxn, Machine};
use crate::op::{Op, TxnId};
use crate::precongruence::precongruent_by_states;
use crate::spec::SeqSpec;

/// The outcome of the four oracle checks for one machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityReport {
    /// Check 1: `allowed ⌊G⌋_gCmt`.
    pub committed_projection_allowed: bool,
    /// Check 2: the commit-order witness is `allowed`.
    pub serial_witness_allowed: bool,
    /// Check 3: every committed transaction replays atomically in commit
    /// order. Transactions that failed are listed.
    pub atomic_replay_failures: Vec<TxnId>,
    /// Check 4: `⌊G⌋_gCmt ≼ witness` (state-inclusion witness).
    pub precongruent_to_witness: bool,
    /// The commit order used as serial witness.
    pub commit_order: Vec<TxnId>,
}

impl SerializabilityReport {
    /// Did every check pass?
    pub fn is_serializable(&self) -> bool {
        self.committed_projection_allowed
            && self.serial_witness_allowed
            && self.atomic_replay_failures.is_empty()
            && self.precongruent_to_witness
    }
}

impl std::fmt::Display for SerializabilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_serializable() {
            write!(f, "serializable in commit order {:?}", self.commit_order)
        } else {
            write!(
                f,
                "NOT serializable: projection allowed={}, witness allowed={}, replay failures={:?}, precongruent={}",
                self.committed_projection_allowed,
                self.serial_witness_allowed,
                self.atomic_replay_failures,
                self.precongruent_to_witness
            )
        }
    }
}

/// Runs all four oracle checks against a machine state.
///
/// # Examples
///
/// ```
/// use pushpull_core::machine::Machine;
/// use pushpull_core::lang::Code;
/// use pushpull_core::toy::{ToyCounter, CounterMethod};
/// use pushpull_core::serializability::check_machine;
///
/// let mut m = Machine::new(ToyCounter::with_bound(8));
/// let t = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
/// let op = m.app_auto(t)?;
/// m.push(t, op)?;
/// m.commit(t)?;
/// assert!(check_machine(&m).is_serializable());
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
pub fn check_machine<S: SeqSpec>(m: &Machine<S>) -> SerializabilityReport {
    let spec = m.spec();
    let committed_projection = m.global().committed_ops();
    let committed_projection_allowed = spec.allowed(&committed_projection);

    let witness = serial_witness(&m.committed_txns());
    let serial_witness_allowed = spec.allowed(&witness);

    let mut atomic_replay_failures = Vec::new();
    let mut prefix: Vec<Op<S::Method, S::Ret>> = Vec::new();
    for txn in m.committed_txns() {
        if !replay_tx(spec, &txn.code, &prefix, &txn.ops) {
            atomic_replay_failures.push(txn.txn);
        }
        prefix.extend(txn.ops.iter().cloned());
    }

    let precongruent_to_witness = precongruent_by_states(spec, &committed_projection, &witness);

    SerializabilityReport {
        committed_projection_allowed,
        serial_witness_allowed,
        atomic_replay_failures,
        precongruent_to_witness,
        commit_order: m.committed_txns().iter().map(|t| t.txn).collect(),
    }
}

/// The commit-order serial witness: each committed transaction's own
/// operations, concatenated in commit order.
pub fn serial_witness<M: Clone, R: Clone>(txns: &[CommittedTxn<M, R>]) -> Vec<Op<M, R>> {
    txns.iter().flat_map(|t| t.ops.iter().cloned()).collect()
}

// ----------------------------------------------------------------------
// The per-level oracle for nested runs.
// ----------------------------------------------------------------------

/// The outcome of the nested-scope oracle: the flat Theorem 5.17 checks
/// (which already cover every level, since open-nested children and
/// compensations commit as first-class transactions) plus the
/// obligations specific to open nesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedReport {
    /// The four flat checks over **all** committed transactions in commit
    /// order — top-level, open-nested children, and compensations alike.
    /// This is what makes every nesting level serializable: each level-k
    /// transaction replays atomically against the full commit prefix.
    pub base: SerializabilityReport,
    /// Open-nested children whose parent never committed and that no
    /// committed compensation undoes: their effect leaked past an abort.
    pub unresolved_children: Vec<TxnId>,
    /// Open-nested children recorded as committing **after** their
    /// committed parent — impossible in a well-formed run (the child
    /// commits while the parent is still live).
    pub misordered_children: Vec<TxnId>,
    /// Compensations that undo an unknown transaction or committed
    /// before the child they undo.
    pub misordered_compensations: Vec<TxnId>,
    /// Compensations whose operations do **not** restore the abstract
    /// state their child changed (the spec-level inverse law fails on
    /// the recorded observations).
    pub non_restoring_compensations: Vec<TxnId>,
    /// Committed-transaction count per nesting level: index 0 holds the
    /// top-level transactions and compensations, index `k ≥ 1` the open
    /// children committed from scope depth `k`.
    pub txns_per_level: Vec<usize>,
}

impl NestedReport {
    /// Did the flat checks and every nesting obligation pass?
    pub fn is_serializable(&self) -> bool {
        self.base.is_serializable()
            && self.unresolved_children.is_empty()
            && self.misordered_children.is_empty()
            && self.misordered_compensations.is_empty()
            && self.non_restoring_compensations.is_empty()
    }
}

impl std::fmt::Display for NestedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_serializable() {
            write!(
                f,
                "serializable at every level (txns per level: {:?})",
                self.txns_per_level
            )
        } else {
            write!(
                f,
                "NOT serializable: base=[{}], unresolved children={:?}, \
                 misordered children={:?}, misordered compensations={:?}, \
                 non-restoring compensations={:?}",
                self.base,
                self.unresolved_children,
                self.misordered_children,
                self.misordered_compensations,
                self.non_restoring_compensations
            )
        }
    }
}

/// Runs the flat oracle plus the open-nesting obligations: children are
/// contained in (commit before) their parents, every orphaned child —
/// one whose parent aborted — is undone by a committed compensation, and
/// each compensation provably restores the abstract state its child
/// changed.
pub fn check_machine_nested<S: SeqSpec>(m: &Machine<S>) -> NestedReport {
    let base = check_machine(m);
    let spec = m.spec();
    let txns = m.committed_txns();
    let commit_pos: std::collections::HashMap<TxnId, usize> =
        txns.iter().enumerate().map(|(i, t)| (t.txn, i)).collect();
    let compensated: std::collections::HashMap<TxnId, usize> = txns
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match t.kind {
            TxnKind::Compensation { undoes } => Some((undoes, i)),
            _ => None,
        })
        .collect();

    let mut unresolved_children = Vec::new();
    let mut misordered_children = Vec::new();
    let mut misordered_compensations = Vec::new();
    let mut non_restoring_compensations = Vec::new();
    let mut txns_per_level = Vec::new();

    for (i, t) in txns.iter().enumerate() {
        let level = match t.kind {
            TxnKind::Top | TxnKind::Compensation { .. } => 0,
            TxnKind::OpenChild { level, .. } => level,
        };
        if txns_per_level.len() <= level {
            txns_per_level.resize(level + 1, 0);
        }
        txns_per_level[level] += 1;

        match t.kind {
            TxnKind::Top => {}
            TxnKind::OpenChild { parent, .. } => match commit_pos.get(&parent) {
                // Containment: the child commits while the parent is
                // still live, so strictly before the parent's commit.
                Some(&p) if p < i => misordered_children.push(t.txn),
                Some(_) => {}
                // Orphan: the parent aborted — a compensation must have
                // undone this child.
                None if !compensated.contains_key(&t.txn) => unresolved_children.push(t.txn),
                None => {}
            },
            TxnKind::Compensation { undoes } => match commit_pos.get(&undoes) {
                Some(&c) if c < i => {
                    if !compensation_restores(spec, &txns[c].ops, &t.ops) {
                        non_restoring_compensations.push(t.txn);
                    }
                }
                // Undoing an uncommitted or later transaction is
                // structurally wrong.
                _ => misordered_compensations.push(t.txn),
            },
        }
    }

    NestedReport {
        base,
        unresolved_children,
        misordered_children,
        misordered_compensations,
        non_restoring_compensations,
        txns_per_level,
    }
}

/// The spec-level restoration law: from every abstract state where
/// `child` can run with its recorded observations, running `child` then
/// `comp` can return to that exact state. States come from the spec's
/// finite universe when declared, else from its initial states; states
/// where `child`'s observations are not enabled are vacuously fine (the
/// run never passed through them).
pub fn compensation_restores<S: SeqSpec>(
    spec: &S,
    child: &[Op<S::Method, S::Ret>],
    comp: &[Op<S::Method, S::Ret>],
) -> bool {
    let states = spec
        .state_universe()
        .unwrap_or_else(|| spec.initial_states());
    for s in states {
        let after_child = run_ops(spec, vec![s.clone()], child);
        if after_child.is_empty() {
            continue;
        }
        if !run_ops(spec, after_child, comp).contains(&s) {
            return false;
        }
    }
    true
}

/// Relational image of an operation sequence over a set of states.
fn run_ops<S: SeqSpec>(
    spec: &S,
    mut states: Vec<S::State>,
    ops: &[Op<S::Method, S::Ret>],
) -> Vec<S::State> {
    for op in ops {
        let mut next = Vec::new();
        for s in &states {
            for post in spec.post_states(s, &op.method, &op.ret) {
                if !next.contains(&post) {
                    next.push(post);
                }
            }
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    states
}

/// **Strict** serializability: the serial witness must also respect
/// real-time order — if transaction `a` committed before transaction `b`
/// *began*, then `a` precedes `b` in the witness. The commit-order
/// witness satisfies this by construction (a transaction commits after
/// it begins, so begin(b) > commit(a) implies commit(b) > commit(a));
/// this function re-verifies it from the recorded trace rather than
/// trusting the construction.
///
/// Returns the violating pairs `(earlier-committed, later-begun)` that
/// the witness orders the other way; empty means strictly serializable.
pub fn real_time_violations<S: SeqSpec>(m: &Machine<S>) -> Vec<(TxnId, TxnId)> {
    use crate::trace::Event;
    // Event index of each txn's begin and commit.
    let mut begin_at = std::collections::HashMap::new();
    let mut commit_at = std::collections::HashMap::new();
    for (i, e) in m.trace().iter().enumerate() {
        match e {
            Event::Begin { txn, .. } => {
                begin_at.insert(*txn, i);
            }
            Event::Commit { txn, .. } => {
                commit_at.insert(*txn, i);
            }
            _ => {}
        }
    }
    let order: Vec<TxnId> = m.committed_txns().iter().map(|t| t.txn).collect();
    let pos: std::collections::HashMap<TxnId, usize> =
        order.iter().enumerate().map(|(i, t)| (*t, i)).collect();
    let mut violations = Vec::new();
    for a in &order {
        for b in &order {
            if a == b {
                continue;
            }
            let (Some(&ca), Some(&bb)) = (commit_at.get(a), begin_at.get(b)) else {
                continue;
            };
            if ca < bb && pos[a] > pos[b] {
                violations.push((*a, *b));
            }
        }
    }
    violations
}

/// Brute-force fallback: searches for *any* serial order of the committed
/// transactions (not necessarily commit order) under which all replay
/// atomically. Exponential; use on small configurations only.
pub fn find_any_serialization<S: SeqSpec>(m: &Machine<S>) -> Option<Vec<TxnId>> {
    let txns: Vec<_> = m
        .committed_txns()
        .iter()
        .map(|t| (t.code.clone(), t.ops.clone()))
        .collect();
    let order = exists_serialization(m.spec(), &txns)?;
    Some(
        order
            .into_iter()
            .map(|i| m.committed_txns()[i].txn)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Code;
    use crate::machine::CheckMode;
    use crate::toy::{CounterMethod, ToyCounter};

    fn inc() -> Code<CounterMethod> {
        Code::method(CounterMethod::Inc)
    }
    fn get() -> Code<CounterMethod> {
        Code::method(CounterMethod::Get)
    }

    #[test]
    fn interleaved_checked_run_is_serializable() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::seq(inc(), inc())]);
        let b = m.add_thread(vec![inc()]);
        // Interleave: a.app, b.app, a.app, b pushes+commits first, then a.
        m.app_auto(a).unwrap();
        m.app_auto(b).unwrap();
        m.app_auto(a).unwrap();
        m.push_all_and_commit(b).unwrap();
        m.push_all_and_commit(a).unwrap();
        let report = check_machine(&m);
        assert!(report.is_serializable(), "{report}");
        assert_eq!(report.commit_order.len(), 2);
        assert!(find_any_serialization(&m).is_some());
    }

    #[test]
    fn dependency_run_serializes_in_commit_order() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![inc()]);
        let b = m.add_thread(vec![get()]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap(); // dependent read of uncommitted inc
        m.app_method(b, &CounterMethod::Get).unwrap();
        m.commit(a).unwrap();
        m.push_all_and_commit(b).unwrap();
        let report = check_machine(&m);
        assert!(report.is_serializable(), "{report}");
        // Commit order must be a then b (b read a's effect).
        assert_eq!(report.commit_order[0], m.committed_txns()[0].txn);
    }

    #[test]
    fn unchecked_machine_can_go_wrong_and_oracle_notices() {
        // Lost update: both threads read 0, both "increment" by pushing a
        // get(=0) then inc unchecked — forge a non-serializable outcome by
        // letting both gets observe 0 with two incs committed.
        let mut m = Machine::with_mode(ToyCounter::with_bound(8), CheckMode::Unchecked);
        let a = m.add_thread(vec![Code::seq(get(), inc())]);
        let b = m.add_thread(vec![Code::seq(get(), inc())]);
        // Both observe get()=0 against their empty local logs.
        m.app_auto(a).unwrap();
        m.app_auto(b).unwrap();
        m.app_auto(a).unwrap();
        m.app_auto(b).unwrap();
        m.push_all_and_commit(a).unwrap();
        m.push_all_and_commit(b).unwrap();
        let report = check_machine(&m);
        assert!(
            !report.is_serializable(),
            "lost update must be caught: {report}"
        );
        assert!(find_any_serialization(&m).is_none());
    }

    #[test]
    fn empty_machine_is_serializable() {
        let m: Machine<ToyCounter> = Machine::new(ToyCounter::with_bound(2));
        assert!(check_machine(&m).is_serializable());
    }

    #[test]
    fn commit_order_witness_is_strictly_serializable() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![inc()]);
        let b = m.add_thread(vec![inc()]);
        // a commits fully before b even begins its work.
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        let ib = m.app_auto(b).unwrap();
        m.push(b, ib).unwrap();
        m.commit(b).unwrap();
        assert!(real_time_violations(&m).is_empty());
        assert!(check_machine(&m).is_serializable());
    }

    #[test]
    fn witness_concatenates_in_commit_order() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![inc()]);
        let b = m.add_thread(vec![inc()]);
        let ia = m.app_auto(a).unwrap();
        let ib = m.app_auto(b).unwrap();
        m.push(b, ib).unwrap();
        m.commit(b).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        let w = serial_witness(&m.committed_txns());
        assert_eq!(w[0].id, ib, "b committed first");
        assert_eq!(w[1].id, ia);
    }
}
