//! Operation records and identifiers.
//!
//! The Push/Pull model represents all state as *logs of operation records*
//! (paper §3, "Operations and logs"). An operation record
//! `op = ⟨m, σ₁, σ₂, id⟩` consists of the method name `m`, the pre-stack σ₁
//! (the method's arguments), the post-stack σ₂ (its return values) and a
//! globally unique identifier `id`.
//!
//! In this executable rendering the method type `M` carries the method name
//! *and* its arguments (σ₁), and the return type `R` carries the observable
//! result (σ₂). This is isomorphic to the paper's stacks: the paper's σ are
//! thread-local environments whose only observable content at an operation
//! boundary is the argument/return values.
//!
//! Equality in the paper is *lifted by id* (`⟨m,σ,σ′,id⟩ ∈ L` compares ids
//! only). We keep structural `Eq` derives for whole-record comparison and
//! provide explicit id-based membership helpers on the log types.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique identifier of an operation record.
///
/// The paper assumes a `fresh(id)` predicate; here freshness is guaranteed
/// by construction: ids are only minted by [`OpIdGen`], which hands out
/// strictly increasing values.
///
/// # Examples
///
/// ```
/// use pushpull_core::op::OpIdGen;
/// let gen = OpIdGen::new();
/// let a = gen.fresh();
/// let b = gen.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of a *transaction instance*.
///
/// A thread executes a sequence of transactions; each attempt that reaches
/// commit is one instance. Operations record the transaction that issued
/// them so that the global log can be partitioned (`G ∖ L`, `cmt(G, L, G′)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a thread in a [`Machine`](crate::machine::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Thread-safe generator of fresh [`OpId`]s (the paper's `fresh` predicate,
/// realized constructively).
#[derive(Debug, Default)]
pub struct OpIdGen {
    next: AtomicU64,
}

impl OpIdGen {
    /// Creates a generator whose first id is `#0`.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Mints a fresh, never-before-returned id.
    pub fn fresh(&self) -> OpId {
        OpId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

impl Clone for OpIdGen {
    fn clone(&self) -> Self {
        Self {
            next: AtomicU64::new(self.next.load(Ordering::Relaxed)),
        }
    }
}

/// An operation record `⟨m, σ₁, σ₂, id⟩` (paper §3), tagged with the
/// transaction that issued it.
///
/// `M` is the sequential specification's method type (name + arguments) and
/// `R` its return type; see [`SeqSpec`](crate::spec::SeqSpec).
///
/// # Examples
///
/// ```
/// use pushpull_core::op::{Op, OpId, TxnId};
/// let op = Op::new(OpId(0), TxnId(1), "inc", ());
/// assert_eq!(op.method, "inc");
/// assert!(op.same_id(&op));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Op<M, R> {
    /// Globally unique identifier (the paper's `id`).
    pub id: OpId,
    /// The transaction instance that created this record.
    pub txn: TxnId,
    /// Method name with arguments (the paper's `m` plus the observable part of σ₁).
    pub method: M,
    /// Observed return value (the observable part of σ₂).
    pub ret: R,
}

impl<M, R> Op<M, R> {
    /// Creates a new operation record.
    pub fn new(id: OpId, txn: TxnId, method: M, ret: R) -> Self {
        Self {
            id,
            txn,
            method,
            ret,
        }
    }

    /// Id-based equality, the lifting the paper uses for log membership.
    pub fn same_id(&self, other: &Op<M, R>) -> bool {
        self.id == other.id
    }
}

impl<M: fmt::Display, R: fmt::Debug> fmt::Display for Op<M, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}={:?}@{}", self.method, self.id, self.ret, self.txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_fresh_and_increasing() {
        let gen = OpIdGen::new();
        let ids: Vec<OpId> = (0..100).map(|_| gen.fresh()).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn op_id_gen_is_thread_safe() {
        let gen = std::sync::Arc::new(OpIdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = gen.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.fresh()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<OpId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate ids minted across threads");
    }

    #[test]
    fn same_id_ignores_payload() {
        let a = Op::new(OpId(7), TxnId(0), "put", 1);
        let b = Op::new(OpId(7), TxnId(9), "get", 2);
        assert!(a.same_id(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn cloned_generator_continues_from_current() {
        let gen = OpIdGen::new();
        gen.fresh();
        gen.fresh();
        let clone = gen.clone();
        assert_eq!(clone.fresh(), OpId(2));
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(OpId(3).to_string(), "#3");
        assert_eq!(TxnId(4).to_string(), "t4");
        assert_eq!(ThreadId(5).to_string(), "T5");
    }
}
