//! Support types for ahead-of-time criterion proofs: the §6 rule-usage
//! pattern and the set of statically discharged obligations.
//!
//! The paper's §6 classifies each TM algorithm by *which* of the seven
//! rules it exercises — e.g. boosting is "APP;PUSH per operation,
//! UNPUSH;UNAPP on abort" and never PULLs uncommitted effects.
//! [`RulePattern`] makes that classification a value so drivers can
//! declare it and the `pushpull-analysis` linter can check the
//! declaration against a program's static summary.
//!
//! [`StaticDischarge`] is the type-erased output of the static criteria
//! prover: the set of rule clauses whose runtime check may be skipped
//! because the analysis proved the obligation for every operation the
//! run can perform. [`GlobalState`](crate::global::GlobalState) holds an
//! optional `Arc<StaticDischarge>`; when armed, the mover-loop clauses
//! in [`TxnHandle`](crate::handle::TxnHandle) consult it and tally
//! `statically_discharged` instead of running the loop, so the audit
//! ledger (`discharged + violated + statically_discharged`) still closes
//! exactly.

use std::fmt;

use crate::error::{Clause, Rule};

/// A set of the seven PUSH/PULL rules, encoded as a bitset — the §6
/// "rule pattern" of an algorithm class.
///
/// # Examples
///
/// ```
/// use pushpull_core::static_facts::RulePattern;
/// use pushpull_core::error::Rule;
///
/// // Boosting: APP;PUSH per op, UNPUSH;UNAPP on abort, CMT at the end.
/// let p = RulePattern::new()
///     .with(Rule::App)
///     .with(Rule::Push)
///     .with(Rule::UnPush)
///     .with(Rule::UnApp)
///     .with(Rule::Cmt);
/// assert!(p.contains(Rule::Push));
/// assert!(!p.contains(Rule::Pull));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RulePattern(u8);

impl RulePattern {
    /// The empty pattern.
    pub const fn new() -> Self {
        RulePattern(0)
    }

    /// Every rule.
    pub const fn all() -> Self {
        RulePattern(0x7f)
    }

    fn bit(rule: Rule) -> u8 {
        1 << match rule {
            Rule::App => 0,
            Rule::UnApp => 1,
            Rule::Push => 2,
            Rule::UnPush => 3,
            Rule::Pull => 4,
            Rule::UnPull => 5,
            Rule::Cmt => 6,
        }
    }

    /// This pattern with `rule` added (builder style).
    #[must_use]
    pub fn with(self, rule: Rule) -> Self {
        RulePattern(self.0 | Self::bit(rule))
    }

    /// This pattern with `rule` removed (builder style).
    #[must_use]
    pub fn without(self, rule: Rule) -> Self {
        RulePattern(self.0 & !Self::bit(rule))
    }

    /// Does the pattern contain `rule`?
    pub fn contains(self, rule: Rule) -> bool {
        self.0 & Self::bit(rule) != 0
    }

    /// Is the pattern empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two patterns.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        RulePattern(self.0 | other.0)
    }

    /// Rules in `self` but not in `other` — the divergences the linter
    /// reports.
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        RulePattern(self.0 & !other.0)
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// The rules in this pattern, in the fixed APP..CMT order.
    pub fn rules(self) -> Vec<Rule> {
        [
            Rule::App,
            Rule::UnApp,
            Rule::Push,
            Rule::UnPush,
            Rule::Pull,
            Rule::UnPull,
            Rule::Cmt,
        ]
        .into_iter()
        .filter(|r| self.contains(*r))
        .collect()
    }
}

impl fmt::Display for RulePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for r in self.rules() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for RulePattern {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        iter.into_iter().fold(RulePattern::new(), RulePattern::with)
    }
}

/// The set of rule clauses a static analysis has proven ahead of time,
/// plus how many method pairs the proof covered (for reports).
///
/// Non-generic on purpose: the analyzer works over a concrete
/// [`SeqSpec`](crate::spec::SeqSpec), but the *facts* it produces are
/// just obligations, so the harness can carry them without becoming
/// generic over the spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticDischarge {
    elidable: [[bool; 4]; 7],
    /// Ordered method pairs the mover matrix proved (for reports).
    pub proven_pairs: usize,
    /// Size of the method alphabet the proof ranged over.
    pub alphabet: usize,
}

fn idx(rule: Rule) -> usize {
    match rule {
        Rule::App => 0,
        Rule::UnApp => 1,
        Rule::Push => 2,
        Rule::UnPush => 3,
        Rule::Pull => 4,
        Rule::UnPull => 5,
        Rule::Cmt => 6,
    }
}

fn cidx(clause: Clause) -> usize {
    match clause {
        Clause::I => 0,
        Clause::Ii => 1,
        Clause::Iii => 2,
        Clause::Iv => 3,
    }
}

impl StaticDischarge {
    /// No obligations proven (installing this is equivalent to no plan).
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `(rule, clause)` as statically proven.
    pub fn add(&mut self, rule: Rule, clause: Clause) {
        self.elidable[idx(rule)][cidx(clause)] = true;
    }

    /// Is the runtime check for `(rule, clause)` elidable?
    pub fn discharges(&self, rule: Rule, clause: Clause) -> bool {
        self.elidable[idx(rule)][cidx(clause)]
    }

    /// Are any obligations proven at all?
    pub fn any(&self) -> bool {
        self.elidable.iter().flatten().any(|b| *b)
    }

    /// The proven obligations in `(rule, clause)` order.
    pub fn obligations(&self) -> Vec<(Rule, Clause)> {
        let rules = [
            Rule::App,
            Rule::UnApp,
            Rule::Push,
            Rule::UnPush,
            Rule::Pull,
            Rule::UnPull,
            Rule::Cmt,
        ];
        let clauses = [Clause::I, Clause::Ii, Clause::Iii, Clause::Iv];
        let mut out = Vec::new();
        for r in rules {
            for c in clauses {
                if self.discharges(r, c) {
                    out.push((r, c));
                }
            }
        }
        out
    }
}

impl fmt::Display for StaticDischarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let obs = self.obligations();
        if obs.is_empty() {
            return write!(f, "no obligations statically discharged");
        }
        write!(
            f,
            "statically discharged ({} mover pairs over {} methods): ",
            self.proven_pairs, self.alphabet
        )?;
        for (i, (r, c)) in obs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r} {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_set_operations() {
        let boosting = RulePattern::new()
            .with(Rule::App)
            .with(Rule::Push)
            .with(Rule::UnPush)
            .with(Rule::UnApp)
            .with(Rule::Cmt);
        assert!(boosting.contains(Rule::UnPush));
        assert!(!boosting.contains(Rule::Pull));
        assert!(boosting.is_subset(RulePattern::all()));
        let opt = RulePattern::from_iter([Rule::App, Rule::UnApp, Rule::Push, Rule::Cmt])
            .with(Rule::Pull);
        let diff = boosting.difference(opt);
        assert_eq!(diff.rules(), vec![Rule::UnPush]);
        assert_eq!(boosting.union(opt), boosting.with(Rule::Pull));
        assert_eq!(boosting.without(Rule::App).rules().len(), 4);
    }

    #[test]
    fn pattern_renders_in_rule_order() {
        let p = RulePattern::from_iter([Rule::Cmt, Rule::App, Rule::Push]);
        assert_eq!(p.to_string(), "APP+PUSH+CMT");
        assert_eq!(RulePattern::new().to_string(), "∅");
    }

    #[test]
    fn discharge_set_round_trips() {
        let mut d = StaticDischarge::none();
        assert!(!d.any());
        d.add(Rule::Push, Clause::Ii);
        d.add(Rule::Pull, Clause::Iii);
        assert!(d.discharges(Rule::Push, Clause::Ii));
        assert!(!d.discharges(Rule::Push, Clause::Iii));
        assert_eq!(
            d.obligations(),
            vec![(Rule::Push, Clause::Ii), (Rule::Pull, Clause::Iii)]
        );
        assert!(d.to_string().contains("PUSH"));
    }
}
