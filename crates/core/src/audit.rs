//! Criteria audit: *which proof obligations did a run discharge?*
//!
//! The paper's methodology (§2) is: demarcate the algorithm into rule
//! fragments, then prove each rule's criteria. The checked machine
//! discharges those criteria dynamically; this module counts them, so a
//! run can report the exact shape of its correctness argument — how many
//! PUSH criterion (ii) mover checks, how many `allowed` evaluations, and
//! so on. The benchmark B3 measures their cost; the audit explains where
//! it goes, and the per-algorithm tests assert the *pattern* (e.g. an
//! optimistic run discharges no UNPUSH obligations at all).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Clause, Rule};
use crate::faults::{FaultKind, NON_DENY_FAULT_COUNT, NON_DENY_FAULT_KINDS};

/// Counter key: a rule criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Obligation {
    /// The rule.
    pub rule: Rule,
    /// The clause.
    pub clause: Clause,
}

impl std::fmt::Display for Obligation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} criterion {}", self.rule, self.clause)
    }
}

// Rule/Clause need Ord for the BTreeMap key; derive-by-hand here to keep
// the error module's public surface minimal.
impl Rule {
    fn ord_key(self) -> u8 {
        match self {
            Rule::App => 0,
            Rule::UnApp => 1,
            Rule::Push => 2,
            Rule::UnPush => 3,
            Rule::Pull => 4,
            Rule::UnPull => 5,
            Rule::Cmt => 6,
        }
    }
}

impl Clause {
    fn ord_key(self) -> u8 {
        match self {
            Clause::I => 0,
            Clause::Ii => 1,
            Clause::Iii => 2,
            Clause::Iv => 3,
        }
    }
}

impl PartialOrd for Rule {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rule {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ord_key().cmp(&other.ord_key())
    }
}
impl PartialOrd for Clause {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Clause {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ord_key().cmp(&other.ord_key())
    }
}

/// Tally of discharged (checked-and-passed) and violated criteria, plus
/// the primitive-check counters behind them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriteriaAudit {
    /// Criterion evaluations that passed, by obligation.
    pub discharged: BTreeMap<Obligation, u64>,
    /// Criterion evaluations that failed (and blocked the rule).
    pub violated: BTreeMap<Obligation, u64>,
    /// Criterion evaluations elided because a static analysis proved the
    /// obligation ahead of time (see `pushpull-analysis`). Counted at the
    /// same program points as `discharged`, so
    /// `discharged + violated + statically_discharged` is exactly the
    /// number of times the machine reached a criterion — the ledger
    /// closes whether or not an analysis plan is installed.
    pub statically_discharged: BTreeMap<Obligation, u64>,
    /// Individual mover-oracle consultations (Definition 4.1 queries).
    pub mover_queries: u64,
    /// Individual `allowed` evaluations.
    pub allowed_queries: u64,
    /// Faults injected by a [`FaultHook`](crate::faults::FaultHook), by
    /// kind. Injected rule denials are counted here and *only* here —
    /// they never inflate `violated`, so the per-algorithm
    /// never-violates invariants stay assertable under fault injection.
    pub injected: BTreeMap<FaultKind, u64>,
}

impl CriteriaAudit {
    /// Records a passed criterion.
    pub fn pass(&mut self, rule: Rule, clause: Clause) {
        *self
            .discharged
            .entry(Obligation { rule, clause })
            .or_default() += 1;
    }

    /// Records a failed criterion.
    pub fn fail(&mut self, rule: Rule, clause: Clause) {
        *self
            .violated
            .entry(Obligation { rule, clause })
            .or_default() += 1;
    }

    /// Records a criterion elided by a static proof.
    pub fn pass_static(&mut self, rule: Rule, clause: Clause) {
        *self
            .statically_discharged
            .entry(Obligation { rule, clause })
            .or_default() += 1;
    }

    /// Total criterion evaluations (dynamic passes + failures + static
    /// elisions).
    pub fn total(&self) -> u64 {
        self.discharged.values().sum::<u64>()
            + self.violated.values().sum::<u64>()
            + self.statically_discharged.values().sum::<u64>()
    }

    /// Passed evaluations of one obligation.
    pub fn discharged_count(&self, rule: Rule, clause: Clause) -> u64 {
        self.discharged
            .get(&Obligation { rule, clause })
            .copied()
            .unwrap_or(0)
    }

    /// Failed evaluations of one obligation.
    pub fn violated_count(&self, rule: Rule, clause: Clause) -> u64 {
        self.violated
            .get(&Obligation { rule, clause })
            .copied()
            .unwrap_or(0)
    }

    /// Statically elided evaluations of one obligation.
    pub fn statically_discharged_count(&self, rule: Rule, clause: Clause) -> u64 {
        self.statically_discharged
            .get(&Obligation { rule, clause })
            .copied()
            .unwrap_or(0)
    }

    /// Total statically elided evaluations of every obligation.
    pub fn statically_discharged_total(&self) -> u64 {
        self.statically_discharged.values().sum()
    }

    /// Records one injected fault.
    pub fn inject(&mut self, kind: FaultKind) {
        *self.injected.entry(kind).or_default() += 1;
    }

    /// Injected faults of one kind.
    pub fn injected_count(&self, kind: FaultKind) -> u64 {
        self.injected.get(&kind).copied().unwrap_or(0)
    }

    /// Total injected faults of every kind.
    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Renders the audit as a small table.
    ///
    /// The output is deterministic: obligations appear in `(rule, clause)`
    /// order (the `Ord` on [`Obligation`]) and injected-fault kinds in
    /// their `BTreeMap` order, so two audits with equal tallies render
    /// byte-identically — golden tests and CI log diffs rely on this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("obligation                 discharged   violated     static\n");
        let mut keys: Vec<Obligation> = self
            .discharged
            .keys()
            .chain(self.violated.keys())
            .chain(self.statically_discharged.keys())
            .copied()
            .collect();
        keys.sort();
        keys.dedup();
        for k in keys {
            out.push_str(&format!(
                "{:<26} {:>10} {:>10} {:>10}\n",
                k.to_string(),
                self.discharged.get(&k).copied().unwrap_or(0),
                self.violated.get(&k).copied().unwrap_or(0),
                self.statically_discharged.get(&k).copied().unwrap_or(0)
            ));
        }
        out.push_str(&format!(
            "mover queries: {}   allowed queries: {}\n",
            self.mover_queries, self.allowed_queries
        ));
        for (kind, n) in &self.injected {
            out.push_str(&format!("injected {kind}: {n}\n"));
        }
        out
    }
}

const ALL_RULES: [Rule; 7] = [
    Rule::App,
    Rule::UnApp,
    Rule::Push,
    Rule::UnPush,
    Rule::Pull,
    Rule::UnPull,
    Rule::Cmt,
];
const ALL_CLAUSES: [Clause; 4] = [Clause::I, Clause::Ii, Clause::Iii, Clause::Iv];

/// Number of cache-line-padded stripes the hot query counters are sharded
/// over. Threads index stripes by `thread_id % QUERY_SHARDS`, so concurrent
/// APP-side `allowed` accounting on different threads touches different
/// cache lines.
pub const QUERY_SHARDS: usize = 8;

/// One cache line worth of counter, so stripes never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn load(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The lock-free twin of [`CriteriaAudit`]: per-obligation pass/fail
/// counters as plain `AtomicU64`s plus *sharded*, cache-padded stripes for
/// the hot mover/`allowed` query tallies. This is what lets the machine's
/// shared state be `Sync` without a `RefCell` (or a lock) around the audit
/// — APP-side accounting on different threads never contends.
///
/// [`AtomicAudit::snapshot`] materializes the familiar [`CriteriaAudit`]
/// view, so existing `audit()` consumers are source-compatible.
#[derive(Debug, Default)]
pub struct AtomicAudit {
    discharged: [[AtomicU64; 4]; 7],
    violated: [[AtomicU64; 4]; 7],
    statically_discharged: [[AtomicU64; 4]; 7],
    mover_queries: [PaddedU64; QUERY_SHARDS],
    allowed_queries: [PaddedU64; QUERY_SHARDS],
    /// Injected `Deny(rule)` faults, indexed by the rule's `ord_key`.
    injected_deny: [AtomicU64; 7],
    /// Injected non-deny faults (kill, stall, HTM, transport), indexed
    /// by [`FaultKind::audit_slot`] — the dense numbering derived from
    /// the single exhaustive descriptor match in `faults.rs`.
    injected_other: [AtomicU64; NON_DENY_FAULT_COUNT],
}

impl AtomicAudit {
    /// Creates a zeroed audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a passed criterion.
    pub fn pass(&self, rule: Rule, clause: Clause) {
        self.discharged[rule.ord_key() as usize][clause.ord_key() as usize]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed criterion.
    pub fn fail(&self, rule: Rule, clause: Clause) {
        self.violated[rule.ord_key() as usize][clause.ord_key() as usize]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a criterion elided by a static proof.
    pub fn pass_static(&self, rule: Rule, clause: Clause) {
        self.statically_discharged[rule.ord_key() as usize][clause.ord_key() as usize]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one mover-oracle consultation, attributed to `shard`
    /// (typically the querying thread's index).
    pub fn count_mover(&self, shard: usize) {
        self.mover_queries[shard % QUERY_SHARDS].add(1);
    }

    /// Counts one `allowed` evaluation, attributed to `shard`.
    pub fn count_allowed(&self, shard: usize) {
        self.allowed_queries[shard % QUERY_SHARDS].add(1);
    }

    /// Counts `n` mover-oracle consultations at once. The lock-free
    /// snapshot path buffers its tallies while evaluating criteria
    /// optimistically and flushes them here in one shot, so the audit
    /// ledger stays exact whether a check ran locked or lock-free.
    pub fn count_mover_n(&self, shard: usize, n: u64) {
        if n > 0 {
            self.mover_queries[shard % QUERY_SHARDS].add(n);
        }
    }

    /// Counts `n` `allowed` evaluations at once (see
    /// [`AtomicAudit::count_mover_n`]).
    pub fn count_allowed_n(&self, shard: usize, n: u64) {
        if n > 0 {
            self.allowed_queries[shard % QUERY_SHARDS].add(n);
        }
    }

    /// Records one injected fault.
    pub fn inject(&self, kind: FaultKind) {
        match kind.audit_slot() {
            Some(i) => self.injected_other[i].fetch_add(1, Ordering::Relaxed),
            None => {
                let FaultKind::Deny(rule) = kind else {
                    unreachable!("only Deny lacks an audit slot")
                };
                self.injected_deny[rule.ord_key() as usize].fetch_add(1, Ordering::Relaxed)
            }
        };
    }

    /// Materializes a [`CriteriaAudit`] snapshot: obligations with zero
    /// counts are omitted, matching the map-based audit exactly.
    pub fn snapshot(&self) -> CriteriaAudit {
        let mut out = CriteriaAudit::default();
        for rule in ALL_RULES {
            for clause in ALL_CLAUSES {
                let d = self.discharged[rule.ord_key() as usize][clause.ord_key() as usize]
                    .load(Ordering::Relaxed);
                if d > 0 {
                    *out.discharged
                        .entry(Obligation { rule, clause })
                        .or_default() += d;
                }
                let v = self.violated[rule.ord_key() as usize][clause.ord_key() as usize]
                    .load(Ordering::Relaxed);
                if v > 0 {
                    *out.violated.entry(Obligation { rule, clause }).or_default() += v;
                }
                let s = self.statically_discharged[rule.ord_key() as usize]
                    [clause.ord_key() as usize]
                    .load(Ordering::Relaxed);
                if s > 0 {
                    *out.statically_discharged
                        .entry(Obligation { rule, clause })
                        .or_default() += s;
                }
            }
        }
        out.mover_queries = self.mover_queries.iter().map(PaddedU64::load).sum();
        out.allowed_queries = self.allowed_queries.iter().map(PaddedU64::load).sum();
        for rule in ALL_RULES {
            let n = self.injected_deny[rule.ord_key() as usize].load(Ordering::Relaxed);
            if n > 0 {
                *out.injected.entry(FaultKind::Deny(rule)).or_default() += n;
            }
        }
        for kind in NON_DENY_FAULT_KINDS {
            let n = self.injected_other[kind.audit_slot().expect("non-deny kind")]
                .load(Ordering::Relaxed);
            if n > 0 {
                *out.injected.entry(kind).or_default() += n;
            }
        }
        out
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for row in self
            .discharged
            .iter()
            .chain(self.violated.iter())
            .chain(self.statically_discharged.iter())
        {
            for c in row {
                c.store(0, Ordering::Relaxed);
            }
        }
        for s in self.mover_queries.iter().chain(self.allowed_queries.iter()) {
            s.0.store(0, Ordering::Relaxed);
        }
        for c in self.injected_deny.iter().chain(self.injected_other.iter()) {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl Clone for AtomicAudit {
    fn clone(&self) -> Self {
        let out = Self::default();
        for (dst, src) in out.discharged.iter().zip(self.discharged.iter()) {
            for (d, s) in dst.iter().zip(src.iter()) {
                d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        for (dst, src) in out.violated.iter().zip(self.violated.iter()) {
            for (d, s) in dst.iter().zip(src.iter()) {
                d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        for (dst, src) in out
            .statically_discharged
            .iter()
            .zip(self.statically_discharged.iter())
        {
            for (d, s) in dst.iter().zip(src.iter()) {
                d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        for (dst, src) in out.mover_queries.iter().zip(self.mover_queries.iter()) {
            dst.0.store(src.load(), Ordering::Relaxed);
        }
        for (dst, src) in out.allowed_queries.iter().zip(self.allowed_queries.iter()) {
            dst.0.store(src.load(), Ordering::Relaxed);
        }
        for (dst, src) in out
            .injected_deny
            .iter()
            .chain(out.injected_other.iter())
            .zip(self.injected_deny.iter().chain(self.injected_other.iter()))
        {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_and_render() {
        let mut a = CriteriaAudit::default();
        a.pass(Rule::Push, Clause::Ii);
        a.pass(Rule::Push, Clause::Ii);
        a.fail(Rule::Push, Clause::Iii);
        a.mover_queries += 5;
        assert_eq!(a.discharged_count(Rule::Push, Clause::Ii), 2);
        assert_eq!(a.violated_count(Rule::Push, Clause::Iii), 1);
        assert_eq!(a.total(), 3);
        let table = a.render();
        assert!(table.contains("PUSH criterion (ii)"));
        assert!(table.contains("mover queries: 5"));
    }

    #[test]
    fn render_is_deterministic_golden() {
        // Insert out of display order; the render must still come out in
        // (rule, clause) order, byte-for-byte.
        let mut a = CriteriaAudit::default();
        a.fail(Rule::Cmt, Clause::Iii);
        a.pass(Rule::Push, Clause::Ii);
        a.pass_static(Rule::Push, Clause::I);
        a.pass(Rule::App, Clause::Ii);
        a.pass_static(Rule::Push, Clause::Ii);
        a.mover_queries = 7;
        a.allowed_queries = 2;
        let expected = "\
obligation                 discharged   violated     static
APP criterion (ii)                  1          0          0
PUSH criterion (i)                  0          0          1
PUSH criterion (ii)                 1          0          1
CMT criterion (iii)                 0          1          0
mover queries: 7   allowed queries: 2
";
        assert_eq!(a.render(), expected);
        // A second audit built in a different insertion order renders
        // identically.
        let mut b = CriteriaAudit::default();
        b.pass_static(Rule::Push, Clause::Ii);
        b.pass(Rule::App, Clause::Ii);
        b.pass_static(Rule::Push, Clause::I);
        b.pass(Rule::Push, Clause::Ii);
        b.fail(Rule::Cmt, Clause::Iii);
        b.mover_queries = 7;
        b.allowed_queries = 2;
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn static_discharge_tallies_round_trip() {
        let a = AtomicAudit::new();
        let mut m = CriteriaAudit::default();
        for _ in 0..5 {
            a.pass_static(Rule::Push, Clause::Ii);
            m.pass_static(Rule::Push, Clause::Ii);
        }
        a.pass_static(Rule::Pull, Clause::Iii);
        m.pass_static(Rule::Pull, Clause::Iii);
        a.pass(Rule::Push, Clause::Iii);
        m.pass(Rule::Push, Clause::Iii);
        let snap = a.snapshot();
        assert_eq!(snap, m);
        assert_eq!(snap.statically_discharged_count(Rule::Push, Clause::Ii), 5);
        assert_eq!(snap.statically_discharged_total(), 6);
        // The ledger closes: total counts static elisions too.
        assert_eq!(snap.total(), 7);
        let b = a.clone();
        assert_eq!(b.snapshot(), snap);
        a.reset();
        assert_eq!(a.snapshot().statically_discharged_total(), 0);
    }

    #[test]
    fn atomic_snapshot_matches_map_audit() {
        let a = AtomicAudit::new();
        let mut m = CriteriaAudit::default();
        for _ in 0..3 {
            a.pass(Rule::Push, Clause::Ii);
            m.pass(Rule::Push, Clause::Ii);
        }
        a.fail(Rule::Cmt, Clause::Iii);
        m.fail(Rule::Cmt, Clause::Iii);
        for i in 0..10 {
            a.count_mover(i);
            m.mover_queries += 1;
        }
        a.count_allowed(0);
        m.allowed_queries += 1;
        assert_eq!(a.snapshot(), m);
    }

    #[test]
    fn atomic_audit_is_concurrency_safe() {
        let a = std::sync::Arc::new(AtomicAudit::new());
        let mut handles = Vec::new();
        for t in 0..4usize {
            let a = std::sync::Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.pass(Rule::App, Clause::Ii);
                    a.count_allowed(t);
                    a.count_mover(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = a.snapshot();
        assert_eq!(snap.discharged_count(Rule::App, Clause::Ii), 4000);
        assert_eq!(snap.allowed_queries, 4000);
        assert_eq!(snap.mover_queries, 4000);
    }

    #[test]
    fn atomic_reset_and_clone() {
        let a = AtomicAudit::new();
        a.pass(Rule::Pull, Clause::I);
        a.count_mover(3);
        let b = a.clone();
        assert_eq!(a.snapshot(), b.snapshot());
        a.reset();
        assert_eq!(a.snapshot(), CriteriaAudit::default());
        // The clone is independent of the original.
        assert_eq!(b.snapshot().discharged_count(Rule::Pull, Clause::I), 1);
    }

    #[test]
    fn injected_tallies_round_trip() {
        let a = AtomicAudit::new();
        a.inject(FaultKind::Deny(Rule::Push));
        a.inject(FaultKind::Deny(Rule::Push));
        a.inject(FaultKind::Kill);
        a.inject(FaultKind::HtmConflict);
        let snap = a.snapshot();
        assert_eq!(snap.injected_count(FaultKind::Deny(Rule::Push)), 2);
        assert_eq!(snap.injected_count(FaultKind::Kill), 1);
        assert_eq!(snap.injected_count(FaultKind::HtmConflict), 1);
        assert_eq!(snap.injected_count(FaultKind::Stall), 0);
        assert_eq!(snap.injected_total(), 4);
        // Injection never touches the violated tallies.
        assert_eq!(snap.violated_count(Rule::Push, Clause::Iii), 0);
        assert!(snap.render().contains("injected deny-PUSH: 2"));
        let b = a.clone();
        assert_eq!(b.snapshot(), snap);
        a.reset();
        assert_eq!(a.snapshot().injected_total(), 0);
    }

    #[test]
    fn every_non_deny_kind_round_trips_through_its_slot() {
        // Exercises the full descriptor-derived slot table, including the
        // transport family: one inject per kind must come back as exactly
        // one tally per kind, in deterministic BTreeMap order.
        let a = AtomicAudit::new();
        for kind in NON_DENY_FAULT_KINDS {
            a.inject(kind);
        }
        let snap = a.snapshot();
        for kind in NON_DENY_FAULT_KINDS {
            assert_eq!(snap.injected_count(kind), 1, "{kind}");
        }
        assert_eq!(snap.injected_total(), NON_DENY_FAULT_COUNT as u64);
        assert!(snap.render().contains("injected partition-shard: 1"));
        assert!(snap.render().contains("injected crash-shard-server: 1"));
    }

    #[test]
    fn obligations_order_by_rule_then_clause() {
        let mut v = [
            Obligation {
                rule: Rule::Cmt,
                clause: Clause::I,
            },
            Obligation {
                rule: Rule::App,
                clause: Clause::Ii,
            },
            Obligation {
                rule: Rule::App,
                clause: Clause::I,
            },
        ];
        v.sort();
        assert_eq!(v[0].rule, Rule::App);
        assert_eq!(v[0].clause, Clause::I);
        assert_eq!(v[2].rule, Rule::Cmt);
    }
}
