//! Criteria audit: *which proof obligations did a run discharge?*
//!
//! The paper's methodology (§2) is: demarcate the algorithm into rule
//! fragments, then prove each rule's criteria. The checked machine
//! discharges those criteria dynamically; this module counts them, so a
//! run can report the exact shape of its correctness argument — how many
//! PUSH criterion (ii) mover checks, how many `allowed` evaluations, and
//! so on. The benchmark B3 measures their cost; the audit explains where
//! it goes, and the per-algorithm tests assert the *pattern* (e.g. an
//! optimistic run discharges no UNPUSH obligations at all).

use std::collections::BTreeMap;

use crate::error::{Clause, Rule};

/// Counter key: a rule criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Obligation {
    /// The rule.
    pub rule: Rule,
    /// The clause.
    pub clause: Clause,
}

impl std::fmt::Display for Obligation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} criterion {}", self.rule, self.clause)
    }
}

// Rule/Clause need Ord for the BTreeMap key; derive-by-hand here to keep
// the error module's public surface minimal.
impl Rule {
    fn ord_key(self) -> u8 {
        match self {
            Rule::App => 0,
            Rule::UnApp => 1,
            Rule::Push => 2,
            Rule::UnPush => 3,
            Rule::Pull => 4,
            Rule::UnPull => 5,
            Rule::Cmt => 6,
        }
    }
}

impl Clause {
    fn ord_key(self) -> u8 {
        match self {
            Clause::I => 0,
            Clause::Ii => 1,
            Clause::Iii => 2,
            Clause::Iv => 3,
        }
    }
}

impl PartialOrd for Rule {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rule {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ord_key().cmp(&other.ord_key())
    }
}
impl PartialOrd for Clause {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Clause {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ord_key().cmp(&other.ord_key())
    }
}

/// Tally of discharged (checked-and-passed) and violated criteria, plus
/// the primitive-check counters behind them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriteriaAudit {
    /// Criterion evaluations that passed, by obligation.
    pub discharged: BTreeMap<Obligation, u64>,
    /// Criterion evaluations that failed (and blocked the rule).
    pub violated: BTreeMap<Obligation, u64>,
    /// Individual mover-oracle consultations (Definition 4.1 queries).
    pub mover_queries: u64,
    /// Individual `allowed` evaluations.
    pub allowed_queries: u64,
}

impl CriteriaAudit {
    /// Records a passed criterion.
    pub fn pass(&mut self, rule: Rule, clause: Clause) {
        *self.discharged.entry(Obligation { rule, clause }).or_default() += 1;
    }

    /// Records a failed criterion.
    pub fn fail(&mut self, rule: Rule, clause: Clause) {
        *self.violated.entry(Obligation { rule, clause }).or_default() += 1;
    }

    /// Total criterion evaluations.
    pub fn total(&self) -> u64 {
        self.discharged.values().sum::<u64>() + self.violated.values().sum::<u64>()
    }

    /// Passed evaluations of one obligation.
    pub fn discharged_count(&self, rule: Rule, clause: Clause) -> u64 {
        self.discharged.get(&Obligation { rule, clause }).copied().unwrap_or(0)
    }

    /// Failed evaluations of one obligation.
    pub fn violated_count(&self, rule: Rule, clause: Clause) -> u64 {
        self.violated.get(&Obligation { rule, clause }).copied().unwrap_or(0)
    }

    /// Renders the audit as a small table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("obligation                 discharged   violated\n");
        let mut keys: Vec<Obligation> = self
            .discharged
            .keys()
            .chain(self.violated.keys())
            .copied()
            .collect();
        keys.sort();
        keys.dedup();
        for k in keys {
            out.push_str(&format!(
                "{:<26} {:>10} {:>10}\n",
                k.to_string(),
                self.discharged.get(&k).copied().unwrap_or(0),
                self.violated.get(&k).copied().unwrap_or(0)
            ));
        }
        out.push_str(&format!(
            "mover queries: {}   allowed queries: {}\n",
            self.mover_queries, self.allowed_queries
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_and_render() {
        let mut a = CriteriaAudit::default();
        a.pass(Rule::Push, Clause::Ii);
        a.pass(Rule::Push, Clause::Ii);
        a.fail(Rule::Push, Clause::Iii);
        a.mover_queries += 5;
        assert_eq!(a.discharged_count(Rule::Push, Clause::Ii), 2);
        assert_eq!(a.violated_count(Rule::Push, Clause::Iii), 1);
        assert_eq!(a.total(), 3);
        let table = a.render();
        assert!(table.contains("PUSH criterion (ii)"));
        assert!(table.contains("mover queries: 5"));
    }

    #[test]
    fn obligations_order_by_rule_then_clause() {
        let mut v = [
            Obligation { rule: Rule::Cmt, clause: Clause::I },
            Obligation { rule: Rule::App, clause: Clause::Ii },
            Obligation { rule: Rule::App, clause: Clause::I },
        ];
        v.sort();
        assert_eq!(v[0].rule, Rule::App);
        assert_eq!(v[0].clause, Clause::I);
        assert_eq!(v[2].rule, Rule::Cmt);
    }
}
