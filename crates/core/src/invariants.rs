//! Executable renderings of the §5 invariants.
//!
//! The serializability proof rests on invariants of machine
//! configurations (Lemmas 5.7–5.13) and on the *commit preservation*
//! invariant `cmtpres` (Definition 5.2). This module turns each into a
//! checkable predicate over a [`Machine`] state, so the property-test
//! suites can sample them along random executions of every algorithm —
//! effectively re-running the paper's proof as a falsifiable experiment.
//!
//! | paper | here |
//! |---|---|
//! | Lemma 5.7 `I_LG`          | [`check_i_lg`] |
//! | Lemma 5.8 `I_slideR`      | [`check_i_slide_r`] |
//! | Lemma 5.10 `I_reorderPUSH`| [`check_i_reorder_push`] |
//! | Lemma 5.12 `I_localOrder` | [`check_i_local_order`] |
//! | Definition 5.1 `↺self`    | [`self_rewind_points`] |
//! | Definition 5.2 `cmtpres`  | [`check_cmtpres`] |

use crate::atomic::{enumerate_runs, replay_tx, RunLimits};
use crate::lang::Code;
use crate::log::{GlobalFlag, LocalFlag};
use crate::machine::Machine;
use crate::op::{Op, ThreadId};
use crate::precongruence::precongruent_by_states;
use crate::spec::SeqSpec;

/// A violated invariant, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub name: &'static str,
    /// The thread whose state witnesses the failure.
    pub thread: ThreadId,
    /// Explanation.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated at {}: {}",
            self.name, self.thread, self.detail
        )
    }
}

/// **Lemma 5.7 `I_LG`**: a local entry flagged `pshd` occurs in `G`; one
/// flagged `npshd` does not.
pub fn check_i_lg<S: SeqSpec>(m: &Machine<S>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for tid in 0..m.thread_count() {
        let tid = ThreadId(tid);
        let t = m.thread(tid).expect("indexed");
        for e in t.local() {
            let in_g = m.global().contains_id(e.op.id);
            match &e.flag {
                LocalFlag::Pushed { .. } if !in_g => out.push(InvariantViolation {
                    name: "I_LG",
                    thread: tid,
                    detail: format!("pshd {} not in G", e.op.id),
                }),
                LocalFlag::NotPushed { .. } if in_g => out.push(InvariantViolation {
                    name: "I_LG",
                    thread: tid,
                    detail: format!("npshd {} present in G", e.op.id),
                }),
                _ => {}
            }
        }
    }
    out
}

/// **Lemma 5.8 `I_slideR`**: for every own `pshd` operation `m₁` that sits
/// uncommitted in `G` before some operation `m₂` not in the local log,
/// `m₁ ◁ m₂` holds — own uncommitted effects can still slide right past
/// later foreign effects (so the owner can serialize after them if it
/// aborts, or they after it).
pub fn check_i_slide_r<S: SeqSpec>(m: &Machine<S>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let g = m.global();
    let entries = g.entries();
    for tid in 0..m.thread_count() {
        let tid = ThreadId(tid);
        let t = m.thread(tid).expect("indexed");
        for (i, g1) in entries.iter().enumerate() {
            if g1.flag != GlobalFlag::Uncommitted {
                continue;
            }
            let own_pushed = t
                .local()
                .entry(g1.op.id)
                .map(|e| e.flag.is_pushed())
                .unwrap_or(false);
            if !own_pushed {
                continue;
            }
            for g2 in &entries[i + 1..] {
                if t.local().contains_id(g2.op.id) {
                    continue;
                }
                if !m.spec().mover(&g1.op, &g2.op) {
                    out.push(InvariantViolation {
                        name: "I_slideR",
                        thread: tid,
                        detail: format!("{} cannot slide right past {}", g1.op.id, g2.op.id),
                    });
                }
            }
        }
    }
    out
}

/// **Lemma 5.10 `I_reorderPUSH`**: if the local log orders own operations
/// `m₁` before `m₂` but `G` contains them (both uncommitted) in the
/// opposite order, then `m₂ ◁ m₁` — out-of-order pushes are justified by
/// movers.
pub fn check_i_reorder_push<S: SeqSpec>(m: &Machine<S>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for tid in 0..m.thread_count() {
        let tid = ThreadId(tid);
        let t = m.thread(tid).expect("indexed");
        let own: Vec<&Op<S::Method, S::Ret>> = t
            .local()
            .iter()
            .filter(|e| e.flag.is_own())
            .map(|e| &e.op)
            .collect();
        for (i, m1) in own.iter().enumerate() {
            for m2 in &own[i + 1..] {
                // m1 before m2 locally. In G: m2 before m1 (both uncommitted)?
                let (Some(p1), Some(p2)) = (m.global().position(m1.id), m.global().position(m2.id))
                else {
                    continue;
                };
                let u1 = m.global().entries()[p1].flag == GlobalFlag::Uncommitted;
                let u2 = m.global().entries()[p2].flag == GlobalFlag::Uncommitted;
                if u1 && u2 && p2 < p1 && !m.spec().mover(m2, m1) {
                    out.push(InvariantViolation {
                        name: "I_reorderPUSH",
                        thread: tid,
                        detail: format!(
                            "G reorders {} before {} without mover justification",
                            m2.id, m1.id
                        ),
                    });
                }
            }
        }
    }
    out
}

/// **Lemma 5.12 `I_localOrder`**: whenever an `npshd` operation `m₂`
/// precedes a `pshd` operation `m₁` in the local log, `m₁ ◁ m₂` — pushing
/// out of local order is justified by movers.
pub fn check_i_local_order<S: SeqSpec>(m: &Machine<S>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for tid in 0..m.thread_count() {
        let tid = ThreadId(tid);
        let t = m.thread(tid).expect("indexed");
        let entries = t.local().entries();
        for (i, e2) in entries.iter().enumerate() {
            if !e2.flag.is_not_pushed() {
                continue;
            }
            for e1 in &entries[i + 1..] {
                if e1.flag.is_pushed() && !m.spec().mover(&e1.op, &e2.op) {
                    out.push(InvariantViolation {
                        name: "I_localOrder",
                        thread: tid,
                        detail: format!(
                            "pushed {} after unpushed {} without mover justification",
                            e1.op.id, e2.op.id
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Runs every structural invariant check, collecting all violations.
pub fn check_all<S: SeqSpec>(m: &Machine<S>) -> Vec<InvariantViolation> {
    let mut out = check_i_lg(m);
    out.extend(check_i_slide_r(m));
    out.extend(check_i_reorder_push(m));
    out.extend(check_i_local_order(m));
    out
}

/// A self-rewind point (Definition 5.1 `↺self`): the transaction state
/// reached by rewinding the local log to a prefix, dropping pulled
/// entries along the way (rules PRU, PRM, PRR).
#[derive(Debug, Clone)]
pub struct RewindPoint<M, R> {
    /// Remaining code at this rewind point (`'c`).
    pub code: Code<M>,
    /// Own operations of `'L` in local-log (application) order.
    pub own_ops: Vec<Op<M, R>>,
    /// The `pshd` subset of `'L`, in log order (`⌊'L⌋_pshd`).
    pub pushed_ops: Vec<Op<M, R>>,
    /// The `npshd` subset of `'L`, in log order (`⌊'L⌋_npshd`).
    pub not_pushed_ops: Vec<Op<M, R>>,
    /// Pulled operations retained in `'L`.
    pub pulled_ops: Vec<Op<M, R>>,
    /// How many tail entries were rewound.
    pub rewound: usize,
}

/// Enumerates every self-rewind point of a thread, from the identity
/// rewind (`rewound == 0`) back to the fully rewound transaction.
pub fn self_rewind_points<S: SeqSpec>(
    m: &Machine<S>,
    tid: ThreadId,
) -> Vec<RewindPoint<S::Method, S::Ret>> {
    let t = match m.thread(tid) {
        Ok(t) => t,
        Err(_) => return Vec::new(),
    };
    let Some(active) = t.code() else {
        return Vec::new();
    };
    let entries = t.local().entries();
    let mut out = Vec::new();
    // Rewinding k tail entries: the code at that point is the saved code
    // of the first rewound own entry (pulled entries carry no snapshot and
    // are simply dropped, rule PRR/PRM-third).
    for k in 0..=entries.len() {
        let keep = &entries[..entries.len() - k];
        let dropped = &entries[entries.len() - k..];
        // Determine 'c: the saved code of the earliest dropped own entry,
        // or the current code if nothing own was dropped.
        let mut code = active.clone();
        for e in dropped {
            match &e.flag {
                LocalFlag::NotPushed { saved_code, .. } | LocalFlag::Pushed { saved_code, .. } => {
                    code = saved_code.clone();
                    break;
                }
                LocalFlag::Pulled => continue,
            }
        }
        out.push(RewindPoint {
            code,
            own_ops: keep
                .iter()
                .filter(|e| e.flag.is_own())
                .map(|e| e.op.clone())
                .collect(),
            pushed_ops: keep
                .iter()
                .filter(|e| e.flag.is_pushed())
                .map(|e| e.op.clone())
                .collect(),
            not_pushed_ops: keep
                .iter()
                .filter(|e| e.flag.is_not_pushed())
                .map(|e| e.op.clone())
                .collect(),
            pulled_ops: keep
                .iter()
                .filter(|e| e.flag.is_pulled())
                .map(|e| e.op.clone())
                .collect(),
            rewound: k,
        });
    }
    out
}

/// Checks the **commit preservation invariant** (Definition 5.2) for one
/// thread, instantiated as in the main theorem's CMT case:
///
/// * `''G` is the canonical shared-log rewind that drops every uncommitted
///   operation of *other* transactions;
/// * every self-rewind point `'L` of the thread is tried (Line 1);
/// * `G_post` marks the rewound thread's pushed ops committed (Line 2);
/// * every bounded big-step completion of `'c` from
///   `G_post · ⌊'L⌋_npshd` (Line 3) must be matched by an atomic run of
///   the whole original transaction from `G ∖ L` reaching a precongruent
///   log (Line 4).
///
/// Returns `true` when the invariant holds for every rewind point and
/// every completion within `limits`.
pub fn check_cmtpres<S: SeqSpec>(m: &Machine<S>, tid: ThreadId, limits: RunLimits) -> bool {
    let Ok(t) = m.thread(tid) else { return true };
    if t.code().is_none() {
        return true;
    }
    let spec = m.spec();
    let own_ids: Vec<_> = t.local().own_ops().iter().map(|o| o.id).collect();
    // ''G: committed ops plus this thread's own pushed ops, in G order.
    let gg: Vec<Op<S::Method, S::Ret>> = m
        .global()
        .drop_uncommitted_except(&own_ids)
        .into_iter()
        .map(|e| e.op)
        .collect();
    // G ∖ L: the paper's note — "∖ does not remove operations from G
    // that have been pld into L" — so only *own* operations are filtered.
    let g_minus_l: Vec<Op<S::Method, S::Ret>> = gg
        .iter()
        .filter(|o| !own_ids.contains(&o.id))
        .cloned()
        .collect();
    let original = t.original().clone();
    let txn = t.txn();

    for rp in self_rewind_points(m, tid) {
        // G_post: ''G restricted to ops still pushed at this rewind point,
        // all marked committed — as a log of ops the flags are immaterial;
        // what matters is which ops are present.
        let g_post: Vec<Op<S::Method, S::Ret>> = gg
            .iter()
            .filter(|o| !own_ids.contains(&o.id) || rp.pushed_ops.iter().any(|p| p.id == o.id))
            .cloned()
            .collect();
        let mut start_log = g_post.clone();
        start_log.extend(rp.not_pushed_ops.iter().cloned());
        // Line 3: bounded completions of 'c.
        let completions = enumerate_runs(spec, &rp.code, &start_log, txn, 1 << 40, limits);
        for run in completions {
            // ℓ_a = start_log · run.ops
            let mut ell_a = start_log.clone();
            ell_a.extend(run.ops.iter().cloned());
            // Line 4: the rewound transaction's own ops (in application
            // order), then the completion, must replay atomically as otx
            // from G ∖ L …
            let mut whole: Vec<Op<S::Method, S::Ret>> = rp.own_ops.clone();
            whole.extend(run.ops.iter().cloned());
            if !replay_tx(spec, &original, &g_minus_l, &whole) {
                return false;
            }
            // … reaching a log ℓ_b with ℓ_a ≼ ℓ_b.
            let mut ell_b = g_minus_l.clone();
            ell_b.extend(whole.iter().cloned());
            if !precongruent_by_states(spec, &ell_a, &ell_b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Code;
    use crate::toy::{CounterMethod, ToyCounter};

    fn inc() -> Code<CounterMethod> {
        Code::method(CounterMethod::Inc)
    }

    #[test]
    fn invariants_hold_on_fresh_machine() {
        let m: Machine<ToyCounter> = Machine::new(ToyCounter::with_bound(8));
        assert!(check_all(&m).is_empty());
    }

    #[test]
    fn invariants_hold_through_simple_run() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::seq(inc(), inc())]);
        let b = m.add_thread(vec![inc()]);
        m.app_auto(a).unwrap();
        assert!(check_all(&m).is_empty());
        m.app_auto(b).unwrap();
        let pa = m.unpushed_ids(a).unwrap();
        m.push(a, pa[0]).unwrap();
        assert!(check_all(&m).is_empty());
        m.app_auto(a).unwrap();
        m.push_all_and_commit(b).unwrap();
        assert!(check_all(&m).is_empty());
        m.push_all_and_commit(a).unwrap();
        assert!(check_all(&m).is_empty());
    }

    #[test]
    fn rewind_points_cover_all_prefixes() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::seq(inc(), inc())]);
        m.app_auto(a).unwrap();
        m.app_auto(a).unwrap();
        let pts = self_rewind_points(&m, ThreadId(0));
        assert_eq!(pts.len(), 3); // rewound 0, 1, 2 entries
        assert_eq!(pts[0].not_pushed_ops.len(), 2);
        assert_eq!(pts[2].not_pushed_ops.len(), 0);
        // Fully rewound code is the original transaction body.
        assert_eq!(&pts[2].code, m.thread(ThreadId(0)).unwrap().original());
    }

    #[test]
    fn cmtpres_holds_mid_transaction() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::seq(inc(), inc())]);
        let b = m.add_thread(vec![inc()]);
        m.app_auto(a).unwrap();
        let pa = m.unpushed_ids(a).unwrap();
        m.push(a, pa[0]).unwrap();
        m.app_auto(b).unwrap();
        let pb = m.unpushed_ids(b).unwrap();
        m.push(b, pb[0]).unwrap();
        assert!(check_cmtpres(
            &m,
            ThreadId(0),
            RunLimits {
                max_ops: 4,
                max_runs: 64
            }
        ));
        assert!(check_cmtpres(
            &m,
            ThreadId(1),
            RunLimits {
                max_ops: 4,
                max_runs: 64
            }
        ));
    }

    #[test]
    fn cmtpres_trivial_for_done_threads() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![inc()]);
        let op = m.app_auto(a).unwrap();
        m.push(a, op).unwrap();
        m.commit(a).unwrap();
        assert!(check_cmtpres(&m, ThreadId(0), RunLimits::default()));
    }
}
