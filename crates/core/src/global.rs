//! The shared half of the split machine: [`GlobalState`] owns everything
//! the PUSH/PULL rules may contend on — the shared log `G`, the
//! committed-transaction list and the criteria audit — while the
//! per-thread halves live in [`TxnHandle`](crate::handle::TxnHandle).
//!
//! ## The footprint-sharded log
//!
//! `G` is partitioned into `N` *footprint-addressed shards*, each a
//! [`ShardLog`] behind its own [`Mutex`]: a segment of the global log
//! (its own `gUCmt`/`gCmt` entries), a parallel vector of *commit-sequence
//! stamps*, and its own committed-prefix denotation cache. An operation is
//! routed to shard `key % N` by [`SeqSpec::method_keys`], the declared
//! footprint of its method. Two operations with disjoint footprints are
//! both-movers (Def 4.1 — the declared law, validated against the
//! exhaustive mover oracle by
//! [`check_disjoint_footprints_commute`](crate::spec::check_disjoint_footprints_commute)),
//! so the PUSH/UNPUSH criteria of one never need to inspect entries that
//! live on another shard: disjoint-access parallelism, straight from the
//! paper's mover theory.
//!
//! Every append mints a stamp from one global `AtomicU64` *while holding
//! the shard lock*, so stamps are strictly increasing within a shard and
//! totally order all appends across shards. Merging the shards by stamp
//! reconstructs the exact single-log `G` order — that merged order is
//! what [`GlobalState::global_snapshot`] hands the serializability
//! oracle, and what the coarse evaluation path replays.
//!
//! ## Routing and the sticky coarse fallback
//!
//! [`GlobalState::route`] maps a method to a [`Route`]:
//!
//! * With one shard (the default), *everything* routes to shard 0 before
//!   `method_keys` is even consulted — bit-identical to the historical
//!   single-`Mutex<SharedLog>` machine, golden traces and audit counts
//!   included.
//! * With `N > 1` shards, a method declaring exactly one footprint key
//!   `k` routes to shard `k % N`; a method with no declared footprint
//!   (or a multi-key footprint) routes [`Route::Coarse`].
//!
//! The first coarse-routed operation sets a *sticky* flag: from then on
//! every criteria evaluation acquires **all** shard locks in ascending
//! index order (the canonical lock order — no deadlocks) and evaluates
//! over the stamp-merged log, a sound degradation to the single-lock
//! semantics. The flag is set (SeqCst) *before* any lock is taken and a
//! single-shard acquirer re-checks it after locking, so no evaluation can
//! miss a coarse entry: the coarse thread's flag store happens-before its
//! shard unlock, which happens-before any later acquirer's lock.
//!
//! ## Lock discipline
//!
//! `GlobalState` is `Sync`. Its id/txn/sequence generators and the audit
//! are lock-free atomics; each shard sits behind one short-held
//! [`Mutex`]. The discipline, relied on by the parallel harness:
//!
//! * **APP/UNAPP never lock.** They touch only the handle's local log and
//!   the atomics (fresh ids, audit counters, trace sequence numbers).
//! * **PUSH/UNPUSH** take *their operation's shard lock* for their
//!   criteria-over-`G` and their effect, as one atomic critical section.
//! * **CMT** takes the locks of exactly the shards its pushed/pulled
//!   operations touch, ascending, then appends to the committed list.
//! * **PULL** locks one shard at a time only to locate and snapshot the
//!   pulled entry; its criteria and effect are local. **UNPULL** is
//!   entirely local.
//!
//! Multi-shard acquisitions always lock in ascending shard-index order,
//! and the `committed` list's mutex is only ever taken while already
//! holding shard locks (never the reverse), so the lock order is total.
//!
//! ## Incremental `allowed` (the per-shard snapshot cache)
//!
//! Every PUSH evaluates `G allows op` and every UNPUSH evaluates
//! `allowed (G ∖ op)`; replaying the whole log makes a run of `n`
//! operations O(n²) in spec transitions. Each shard's [`PrefixCache`]
//! memoizes the denotation `⟦G_i[..len]⟧` of the longest *fully
//! committed* prefix of that shard's segment. Because the denotation is
//! compositional (`⟦ℓ⟧ = denote_from(⟦ℓ[..k]⟧, ℓ[k..])` for any split
//! point `k`), the criteria can replay only the uncommitted suffix and
//! get bit-identical answers — and bit-identical audit counts, since the
//! audit counts *queries*, not spec transitions. With `N > 1` the shards
//! factor `allowed` as a product spec over footprint classes (the second
//! declared law, validated by
//! [`check_allowed_factorization`](crate::spec::check_allowed_factorization));
//! the coarse path skips the caches and replays the merged log in full.
//!
//! Invalidation rules, per shard:
//!
//! * PUSH appends — the cached prefix is untouched.
//! * CMT flips flags in place and never reorders — flags are not part of
//!   the denotation, so the cache stays valid and is then *advanced* over
//!   the newly committed prefix.
//! * UNPUSH removes an *uncommitted* entry, which by the all-committed
//!   invariant lies at or past `len`; the cache is untouched. A removal
//!   inside the cached prefix (impossible through the rule API) resets the
//!   cache defensively.
//!
//! ## The lock-free snapshot path (seqlock prefix reads)
//!
//! On top of the mutex ladder, every shard *publishes* an immutable
//! [`ShardSnap`] — its committed-prefix denotation, its uncommitted
//! suffix and a monotonically increasing per-shard `version` — into a
//! [`SnapCell`] whenever it mutates (append, removal, commit flip). A
//! routed PUSH evaluates its shared criteria (ii)/(iii) against that
//! snapshot **without taking any lock**, buffering its audit tallies:
//!
//! * a *failing* verdict is returned immediately — zero locks; denial at
//!   any moment is a legal machine step, and single-threaded runs always
//!   see a fresh snapshot, so golden traces are bit-identical;
//! * a *passing* verdict acquires the shard mutex only for the mutating
//!   append, revalidates `version`, and — on a match — flushes the
//!   buffered tallies and appends. A mismatch (a concurrent writer got
//!   in between) discards the speculation and re-runs the criteria under
//!   the lock, audited exactly as the classic path.
//!
//! The fallback ladder is thus: optimistic snapshot → per-shard mutex →
//! sticky coarse (all shards). Snapshots are never published while the
//! coarse flag is set, and the coarse flag is re-checked under the lock
//! (same argument as the routing double-check), so the optimistic path
//! can never miss a coarse entry. Stamp order is untouched: stamps are
//! still minted from `push_stamp` under the shard lock in the (short)
//! mutating section, so per-shard stamps stay strictly increasing.
//!
//! Log memory is arena-backed ([`SlabArena`]): entries never move once
//! appended, UNPUSH removal shifts only the 16-byte `(stamp, ref)` order
//! records, and the criteria replay iterates cursors instead of
//! collecting `Vec`s — per-op step complexity stops scaling with log
//! length or allocator behavior.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, TryLockError};

use crate::arena::{ArenaRef, SlabArena};
use crate::audit::{AtomicAudit, CriteriaAudit};
use crate::certificate::SpecCertificate;
use crate::error::{Clause, Rule};
use crate::faults::{FaultHook, FaultKind};
use crate::lang::Code;
use crate::log::{GlobalEntry, GlobalFlag, GlobalLog, LocalLog};
use crate::machine::CheckMode;
use crate::op::{Op, OpId, OpIdGen, ThreadId, TxnId};
use crate::snapcell::SnapCell;
use crate::spec::SeqSpec;
use crate::static_facts::StaticDischarge;
use crate::transport::{ShardTransport, TransportStats};

/// How a committed transaction relates to the nesting structure of the
/// thread that ran it — the per-level tag the nested serializability
/// oracle groups by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// An ordinary top-level transaction (nesting level 0). All commits
    /// were this kind before scopes existed, so it is the default.
    Top,
    /// An open-nested child that committed to `G` from inside a still-
    /// running parent at the given nesting level (1 = direct child of a
    /// top-level transaction).
    OpenChild {
        /// The enclosing transaction at commit time. The parent may
        /// later commit (appearing after this child in commit order) or
        /// abort (in which case a [`TxnKind::Compensation`] undoing this
        /// child must appear instead).
        parent: TxnId,
        /// Nesting depth of the child (≥ 1).
        level: usize,
    },
    /// A compensating transaction replayed by an aborting parent to undo
    /// a previously committed open-nested child.
    Compensation {
        /// The open-nested child this compensation undoes.
        undoes: TxnId,
    },
}

/// A committed transaction: its id and its own operations in local-log
/// order. The sequence of these, in commit order, is the serial witness
/// used by the serializability oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn<M, R> {
    /// The committed transaction instance.
    pub txn: TxnId,
    /// The thread that ran it.
    pub thread: ThreadId,
    /// The original transaction body (the paper's `otx`), for atomic replay.
    pub code: Code<M>,
    /// Own operations (pushed), in local order.
    pub ops: Vec<Op<M, R>>,
    /// Ids of operations this transaction had pulled, with the owning
    /// transaction (its dependencies).
    pub pulled_from: Vec<(OpId, TxnId)>,
    /// Where this commit sits in the nesting structure (top-level,
    /// open-nested child, or compensation).
    pub kind: TxnKind,
}

/// Memoized denotation of the longest fully committed prefix of a shard's
/// log segment.
#[derive(Debug, Clone)]
pub(crate) struct PrefixCache<St> {
    /// Entries `[..len]` of the shard log are all committed and their
    /// denotation is `states`.
    pub(crate) len: usize,
    /// `⟦G_i[..len]⟧`.
    pub(crate) states: HashSet<St>,
}

impl<St: Clone + Eq + std::hash::Hash> PrefixCache<St> {
    fn new(initial: Vec<St>) -> Self {
        Self {
            len: 0,
            states: initial.into_iter().collect(),
        }
    }

    fn reset(&mut self, initial: Vec<St>) {
        self.len = 0;
        self.states = initial.into_iter().collect();
    }
}

/// Seqlock validation retries before an optimistic snapshot read gives
/// up and takes the mutex fallback. Small on purpose: a race means a
/// writer is active on this shard, and the mutex path is then cheaper
/// than spinning.
const SNAP_RETRIES: u64 = 3;

/// A global entry paired with its commit-sequence stamp (owned).
type StampedEntry<S> = (
    u64,
    GlobalEntry<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>,
);

/// A global entry paired with its commit-sequence stamp (borrowed from a
/// held shard view).
type StampedEntryRef<'a, S> = (
    u64,
    &'a GlobalEntry<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>,
);

/// An entry removed from a shard, with its former position there.
type RemovedEntry<S> = (
    usize,
    GlobalEntry<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>,
);

/// The immutable snapshot a shard publishes for the lock-free criteria
/// read path: everything PUSH criteria (ii)/(iii) need — the cached
/// committed-prefix denotation and the (flagged) entries past it —
/// tagged with the shard `version` that produced it, so the mutating
/// append section can revalidate before relying on a speculated verdict.
pub(crate) struct ShardSnap<S: SeqSpec> {
    /// [`ShardLog::version`] at publication time.
    pub(crate) version: u64,
    /// `⟦G_i[..cache.len]⟧` — the committed-prefix denotation.
    pub(crate) states: HashSet<S::State>,
    /// The entries past the cached prefix, flags as of publication, in
    /// shard (= stamp) order.
    pub(crate) suffix: Vec<GlobalEntry<S::Method, S::Ret>>,
}

/// One footprint shard of the global log: an arena-backed segment of `G`
/// with its commit-sequence append order and its own committed-prefix
/// cache. Everything the shared rules read-modify on this shard sits
/// behind one mutex in [`GlobalState::shards`].
#[derive(Debug)]
pub(crate) struct ShardLog<S: SeqSpec> {
    /// Slab storage for this shard's segment of `G`: entries never move
    /// once appended, and UNPUSH removals recycle slots through the
    /// generation-tagged free list instead of shifting entry payloads.
    arena: SlabArena<GlobalEntry<S::Method, S::Ret>>,
    /// `(stamp, slot)` in append order. Stamps are strictly increasing
    /// within a shard (minted under the shard lock); merging all shards
    /// by stamp reconstructs the total append order of `G`. Removals
    /// shift only these 16-byte records, never the entries.
    order: Vec<(u64, ArenaRef)>,
    /// The committed-prefix denotation cache for this segment.
    pub(crate) cache: PrefixCache<S::State>,
    /// Bumped on every mutation (append, removal, commit flip) — the
    /// validation token for [`ShardSnap`] speculation.
    pub(crate) version: u64,
}

// Manual impl: a derived `Clone` would demand `S: Clone`, which nothing
// in the fields (method/ret/state types are `Clone` by the `SeqSpec`
// bounds) actually needs.
impl<S: SeqSpec> Clone for ShardLog<S> {
    fn clone(&self) -> Self {
        Self {
            arena: self.arena.clone(),
            order: self.order.clone(),
            cache: self.cache.clone(),
            version: self.version,
        }
    }
}

impl<S: SeqSpec> ShardLog<S> {
    fn new(initial: Vec<S::State>) -> Self {
        Self {
            arena: SlabArena::new(),
            order: Vec::new(),
            cache: PrefixCache::new(initial),
            version: 0,
        }
    }

    /// Rebuilds a shard from stamp-ordered entries (resharding).
    fn from_stamped(stamped: Vec<StampedEntry<S>>, initial: Vec<S::State>) -> Self {
        let mut sh = Self::new(initial);
        for (stamp, entry) in stamped {
            sh.push_entry(stamp, entry);
        }
        sh
    }

    /// Number of entries in this shard's segment.
    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    /// The entries in shard (= stamp) order.
    pub(crate) fn iter(
        &self,
    ) -> impl Iterator<Item = &GlobalEntry<S::Method, S::Ret>> + Clone + '_ {
        self.order
            .iter()
            .map(move |(_, r)| self.arena.get(*r).expect("order refs are live"))
    }

    /// The entries with their stamps, in shard order.
    pub(crate) fn iter_stamped(&self) -> impl Iterator<Item = StampedEntryRef<'_, S>> + '_ {
        self.order
            .iter()
            .map(move |(s, r)| (*s, self.arena.get(*r).expect("order refs are live")))
    }

    /// The entries from position `pos` on, in shard order (the suffix
    /// cursor the incremental criteria replay).
    fn iter_from(&self, pos: usize) -> impl Iterator<Item = &GlobalEntry<S::Method, S::Ret>> + '_ {
        self.order[pos.min(self.order.len())..]
            .iter()
            .map(move |(_, r)| self.arena.get(*r).expect("order refs are live"))
    }

    /// The entry at `pos` in shard order.
    fn entry_at(&self, pos: usize) -> &GlobalEntry<S::Method, S::Ret> {
        let (_, r) = self.order[pos];
        self.arena.get(r).expect("order refs are live")
    }

    /// The stamp of the entry at `pos`.
    fn stamp_at(&self, pos: usize) -> u64 {
        self.order[pos].0
    }

    /// Position of the entry with `id` in shard order.
    pub(crate) fn position(&self, id: OpId) -> Option<usize> {
        self.iter().position(|e| e.op.id == id)
    }

    /// The entry with `id`, if present.
    pub(crate) fn entry(&self, id: OpId) -> Option<&GlobalEntry<S::Method, S::Ret>> {
        self.iter().find(|e| e.op.id == id)
    }

    fn push_entry(&mut self, stamp: u64, entry: GlobalEntry<S::Method, S::Ret>) {
        debug_assert!(
            self.order.last().is_none_or(|(s, _)| *s < stamp),
            "stamps must be strictly increasing within a shard"
        );
        let r = self.arena.insert(entry);
        self.order.push((stamp, r));
    }

    /// Appends an uncommitted entry with `stamp` (the PUSH effect).
    fn push_uncommitted(&mut self, stamp: u64, op: Op<S::Method, S::Ret>) {
        self.push_entry(
            stamp,
            GlobalEntry {
                op,
                flag: GlobalFlag::Uncommitted,
            },
        );
    }

    /// Removes the entry with `id`, returning its former position (the
    /// effect of an UNPUSH on this shard). The arena slot is recycled;
    /// any stale [`ArenaRef`] to it resolves to `None` from now on.
    pub(crate) fn remove_by_id(&mut self, id: OpId) -> Option<RemovedEntry<S>> {
        let pos = self.position(id)?;
        let (_, r) = self.order.remove(pos);
        let entry = self.arena.remove(r).expect("order refs are live");
        Some((pos, entry))
    }

    /// Flips every entry of `local` held by this shard to committed,
    /// returning `(stamp, id)` per flip (the CMT effect on this shard).
    fn commit_local(&mut self, local: &LocalLog<S::Method, S::Ret>) -> Vec<(u64, OpId)> {
        let ShardLog { arena, order, .. } = self;
        let mut flipped = Vec::new();
        for (stamp, r) in order.iter() {
            let e = arena.get_mut(*r).expect("order refs are live");
            if e.flag == GlobalFlag::Uncommitted && local.contains_id(e.op.id) {
                e.flag = GlobalFlag::Committed;
                flipped.push((*stamp, e.op.id));
            }
        }
        flipped
    }

    /// Clones the entries past the cached prefix (for [`ShardSnap`]).
    fn suffix_entries(&self) -> Vec<GlobalEntry<S::Method, S::Ret>> {
        self.iter_from(self.cache.len).cloned().collect()
    }

    /// `(live, capacity, reused)` of this shard's arena.
    fn arena_stats(&self) -> (u64, u64, u64) {
        (
            self.arena.live() as u64,
            self.arena.capacity() as u64,
            self.arena.reused(),
        )
    }
}

/// Counters of the per-shard group-commit path (see
/// [`crate::group`]): how many batches were sealed, how many
/// transactions rode them, how the batch sizes distribute, and how many
/// shard-lock acquisitions the batching amortized away compared to the
/// per-transaction path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Batches executed under a single shard-lock acquisition.
    pub batches: u64,
    /// Transactions committed through a batch.
    pub batched_txns: u64,
    /// Operations appended through a batch (each would have been its own
    /// lock acquisition on the per-transaction path).
    pub batched_ops: u64,
    /// Lock acquisitions the batch path saved: for a batch of `n`
    /// transactions and `k` appended operations the per-transaction path
    /// pays `k` PUSH acquisitions plus `n` CMT acquisitions where the
    /// batch pays one.
    pub locks_saved: u64,
    /// Batch-size histogram in power-of-two buckets: sizes 1, 2, 3–4,
    /// 5–8, 9–16, 17–32, 33–64, 65+ committed transactions. Bucket
    /// order is fixed ascending, so any dump of it is deterministic.
    pub size_hist: [u64; 8],
}

impl GroupStats {
    /// The histogram bucket a batch of `n` transactions lands in.
    pub fn bucket(n: u64) -> usize {
        match n {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            17..=32 => 5,
            33..=64 => 6,
            _ => 7,
        }
    }

    /// Upper bound (inclusive) of histogram bucket `i`, for rendering.
    pub fn bucket_label(i: usize) -> &'static str {
        ["1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"][i.min(7)]
    }
}

/// The atomic backing of [`GroupStats`], one field per counter so the
/// batch path updates without any extra lock.
#[derive(Debug)]
pub(crate) struct GroupCounters {
    batches: AtomicU64,
    batched_txns: AtomicU64,
    batched_ops: AtomicU64,
    locks_saved: AtomicU64,
    size_hist: [AtomicU64; 8],
}

impl GroupCounters {
    pub(crate) fn new() -> Self {
        Self {
            batches: AtomicU64::new(0),
            batched_txns: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            locks_saved: AtomicU64::new(0),
            size_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A copy carrying over another set's current values (resharding and
    /// deep clones preserve counters, like the transport tallies).
    pub(crate) fn carried_over(&self) -> Self {
        let copy = Self::new();
        copy.batches
            .store(self.batches.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.batched_txns
            .store(self.batched_txns.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.batched_ops
            .store(self.batched_ops.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.locks_saved
            .store(self.locks_saved.load(Ordering::Relaxed), Ordering::Relaxed);
        for (dst, src) in copy.size_hist.iter().zip(&self.size_hist) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        copy
    }

    pub(crate) fn snapshot(&self) -> GroupStats {
        GroupStats {
            batches: self.batches.load(Ordering::Relaxed),
            batched_txns: self.batched_txns.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            locks_saved: self.locks_saved.load(Ordering::Relaxed),
            size_hist: std::array::from_fn(|i| self.size_hist[i].load(Ordering::Relaxed)),
        }
    }

    /// Records one sealed batch of `txns` committed transactions and
    /// `ops` appended operations under a single lock acquisition.
    pub(crate) fn note_batch(&self, txns: u64, ops: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_txns.fetch_add(txns, Ordering::Relaxed);
        self.batched_ops.fetch_add(ops, Ordering::Relaxed);
        // Per-transaction cost of the same work: one acquisition per
        // appended op (PUSH) plus one per transaction (CMT); the batch
        // paid exactly one.
        self.locks_saved
            .fetch_add((ops + txns).saturating_sub(1), Ordering::Relaxed);
        self.size_hist[GroupStats::bucket(txns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// The atomic backing of [`crate::scope::NestingStats`], one field per
/// counter so scope-heavy handles update without any extra lock (same
/// pattern as [`GroupCounters`]).
#[derive(Debug)]
pub(crate) struct NestingCounters {
    scopes_opened: AtomicU64,
    scopes_merged: AtomicU64,
    scopes_aborted: AtomicU64,
    open_commits: AtomicU64,
    compensations_replayed: AtomicU64,
    undo_inverses: AtomicU64,
}

impl NestingCounters {
    pub(crate) fn new() -> Self {
        Self {
            scopes_opened: AtomicU64::new(0),
            scopes_merged: AtomicU64::new(0),
            scopes_aborted: AtomicU64::new(0),
            open_commits: AtomicU64::new(0),
            compensations_replayed: AtomicU64::new(0),
            undo_inverses: AtomicU64::new(0),
        }
    }

    /// A copy carrying over another set's current values (resharding and
    /// deep clones preserve counters, like the group tallies).
    pub(crate) fn carried_over(&self) -> Self {
        let copy = Self::new();
        for (dst, src) in [
            (&copy.scopes_opened, &self.scopes_opened),
            (&copy.scopes_merged, &self.scopes_merged),
            (&copy.scopes_aborted, &self.scopes_aborted),
            (&copy.open_commits, &self.open_commits),
            (&copy.compensations_replayed, &self.compensations_replayed),
            (&copy.undo_inverses, &self.undo_inverses),
        ] {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        copy
    }

    pub(crate) fn snapshot(&self) -> crate::scope::NestingStats {
        crate::scope::NestingStats {
            scopes_opened: self.scopes_opened.load(Ordering::Relaxed),
            scopes_merged: self.scopes_merged.load(Ordering::Relaxed),
            scopes_aborted: self.scopes_aborted.load(Ordering::Relaxed),
            open_commits: self.open_commits.load(Ordering::Relaxed),
            compensations_replayed: self.compensations_replayed.load(Ordering::Relaxed),
            undo_inverses: self.undo_inverses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_opened(&self) {
        self.scopes_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_merged(&self) {
        self.scopes_merged.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_aborted(&self) {
        self.scopes_aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_open_commit(&self) {
        self.open_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_compensation(&self) {
        self.compensations_replayed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_undo_inverses(&self, n: u64) {
        self.undo_inverses.fetch_add(n, Ordering::Relaxed);
    }
}

/// Where a method's criteria evaluation must go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// The method's declared footprint confines it to one shard.
    Single(usize),
    /// No (or a multi-key) footprint: the operation concerns the whole
    /// log. Evaluation acquires every shard (ascending) and the sticky
    /// coarse flag is set.
    Coarse,
}

impl Route {
    /// The shard a routed operation is *appended* to. Coarse operations
    /// live on shard 0; soundness does not depend on the choice because
    /// once the coarse flag is set every evaluation merges all shards.
    pub(crate) fn target(self) -> usize {
        match self {
            Route::Single(i) => i,
            Route::Coarse => 0,
        }
    }
}

/// A set of held shard locks — the critical section of a shared rule.
/// Shards are always held in ascending index order (the canonical lock
/// order). A view over a single shard evaluates criteria with that
/// shard's incremental cache; a view over several evaluates over the
/// stamp-merged log.
#[derive(Debug)]
pub(crate) struct LogView<'a, S: SeqSpec> {
    shards: Vec<(usize, MutexGuard<'a, ShardLog<S>>)>,
}

impl<'a, S: SeqSpec> LogView<'a, S> {
    /// Does this view hold exactly one shard (the fast, cache-backed
    /// evaluation path)?
    fn is_single(&self) -> bool {
        self.shards.len() == 1
    }

    /// Is this view exactly `{shard i}` (the optimistic append's
    /// revalidation needs to know its speculation still covers the whole
    /// criteria scope)?
    pub(crate) fn is_single_shard(&self, i: usize) -> bool {
        self.shards.len() == 1 && self.shards[0].0 == i
    }

    /// The `version` of the held shard at `view index` (snapshot
    /// revalidation).
    pub(crate) fn shard_version(&self, vidx: usize) -> u64 {
        self.shards[vidx].1.version
    }

    /// All held entries with their stamps, in stamp order, as a k-way
    /// cursor merge over the held shards — no collection, no sort (each
    /// shard is already stamp-ordered). For a single shard this
    /// degenerates to a plain cursor walk.
    pub(crate) fn stamped(&self) -> StampedIter<'_, 'a, S> {
        StampedIter {
            view: self,
            pos: (0..self.shards.len()).map(|_| 0).collect(),
        }
    }

    /// Finds an entry by op id across the held shards.
    pub(crate) fn entry(&self, id: OpId) -> Option<&GlobalEntry<S::Method, S::Ret>> {
        self.shards.iter().find_map(|(_, sh)| sh.entry(id))
    }

    /// Locates an entry by op id: `(view index, position in shard)`.
    pub(crate) fn find(&self, id: OpId) -> Option<(usize, usize)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(v, (_, sh))| sh.position(id).map(|p| (v, p)))
    }

    /// The commit-sequence stamp of the entry at `(view index, position)`.
    pub(crate) fn stamp_at(&self, vidx: usize, pos: usize) -> u64 {
        self.shards[vidx].1.stamp_at(pos)
    }

    /// The held entries strictly *after* `stamp`, in stamp order — the
    /// suffix the UNPUSH gray criterion slides across. Cursor-backed: no
    /// allocation.
    pub(crate) fn entries_after(
        &self,
        stamp: u64,
    ) -> impl Iterator<Item = &GlobalEntry<S::Method, S::Ret>> + '_ {
        self.stamped()
            .filter(move |(s, _)| *s > stamp)
            .map(|(_, e)| e)
    }

    /// Flips every held entry of `local` to committed (the `cmt`
    /// predicate restricted to the held shards), returning the flipped
    /// ids in global stamp order — identical to the single-log flip
    /// order at any shard count. Bumps the version of every shard that
    /// flipped at least one entry.
    pub(crate) fn commit_local(&mut self, local: &LocalLog<S::Method, S::Ret>) -> Vec<OpId> {
        let mut flipped: Vec<(u64, OpId)> = Vec::new();
        for (_, sh) in &mut self.shards {
            let here = sh.commit_local(local);
            if !here.is_empty() {
                sh.version += 1;
            }
            flipped.extend(here);
        }
        flipped.sort_by_key(|(s, _)| *s);
        flipped.into_iter().map(|(_, id)| id).collect()
    }
}

/// Allocation-free stamp-ordered merge over a view's held shards: one
/// cursor per shard, advancing the minimum stamp each step (stamps are
/// globally unique, so the merge is deterministic).
pub(crate) struct StampedIter<'v, 'a, S: SeqSpec> {
    view: &'v LogView<'a, S>,
    /// One cursor per held shard; inline up to 16 shards, so iterating
    /// any single- or CMT-width view allocates nothing.
    pos: crate::smallvec::SmallVec<usize, 16>,
}

impl<'v, S: SeqSpec> Iterator for StampedIter<'v, '_, S> {
    type Item = StampedEntryRef<'v, S>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<(usize, u64)> = None;
        for (k, (_, sh)) in self.view.shards.iter().enumerate() {
            let p = self.pos[k];
            if p < sh.len() {
                let s = sh.stamp_at(p);
                if best.is_none_or(|(_, bs)| s < bs) {
                    best = Some((k, s));
                }
            }
        }
        let (k, s) = best?;
        let e = self.view.shards[k].1.entry_at(self.pos[k]);
        self.pos[k] += 1;
        Some((s, e))
    }
}

/// The shared half of the machine: spec, generators, audit and the
/// footprint-sharded, mutex-guarded log state. `Sync`, shared by every
/// [`TxnHandle`](crate::handle::TxnHandle) through an `Arc`.
#[derive(Debug)]
pub struct GlobalState<S: SeqSpec> {
    /// The sequential specification, shared (it is immutable) so that
    /// resharding and deep-cloning need no `S: Clone` bound.
    pub(crate) spec: Arc<S>,
    pub(crate) mode: CheckMode,
    pub(crate) ids: OpIdGen,
    pub(crate) next_txn: AtomicU64,
    /// Global trace-event sequence: one `fetch_add` per recorded event
    /// gives a real-time-consistent total order across threads.
    pub(crate) seq: AtomicU64,
    pub(crate) audit: AtomicAudit,
    incremental: AtomicBool,
    /// The footprint shards of `G`, each behind its own lock. The count
    /// is fixed at construction (see [`Machine::set_log_shards`]
    /// (crate::machine::Machine::set_log_shards) for resharding).
    shards: Vec<Mutex<ShardLog<S>>>,
    /// Committed transactions in global commit order (guarded last in the
    /// lock order: only ever taken while already holding shard locks).
    committed: Mutex<Vec<CommittedTxn<S::Method, S::Ret>>>,
    /// Mints commit-sequence stamps for appends; fetched under the
    /// destination shard's lock.
    push_stamp: AtomicU64,
    /// Sticky coarse-mode flag: set the first time an operation with no
    /// single-key footprint routes, never cleared (for this shard
    /// layout). See the module docs for the memory-ordering argument.
    coarse: AtomicBool,
    /// Per-shard published snapshots for the lock-free criteria read
    /// path. Published on every shard mutation (unless coarse mode is
    /// on); read optimistically by routed PUSH and `can_push`.
    snaps: Vec<SnapCell<ShardSnap<S>>>,
    /// Optimistic snapshot reads that produced a verdict without
    /// taking any lock.
    snap_reads: AtomicU64,
    /// Seqlock validation retries burned across all snapshot reads.
    snap_retries: AtomicU64,
    /// Snapshot reads that gave up (cell unpublished, contended past the
    /// retry budget, or stale at revalidation) and fell back to the
    /// mutex path.
    snap_fallbacks: AtomicU64,
    /// Per-shard lock-acquisition tallies (observability, not audit).
    lock_acquires: Vec<AtomicU64>,
    /// Per-shard contended-acquisition tallies: acquisitions that found
    /// the lock already held and had to wait.
    lock_contended: Vec<AtomicU64>,
    /// The fault-injection hook, if armed. The flag short-circuits the
    /// rule hot paths to a single relaxed load when no hook is set.
    faults: RwLock<Option<Arc<dyn FaultHook>>>,
    faults_armed: AtomicBool,
    /// Statically proven obligations, if an analysis plan installed any.
    /// Same arm-flag pattern as the fault hook: with no plan the rule
    /// hot paths pay one relaxed load and behave bit-identically to a
    /// build without the analyzer.
    static_facts: RwLock<Option<Arc<StaticDischarge>>>,
    static_armed: AtomicBool,
    /// The shard transport, if one is installed. `None` (the default)
    /// means the routed PUSH/UNPUSH critical sections run inline under
    /// the shard mutex exactly as they always have — the arm flag keeps
    /// that default to one relaxed load. See [`crate::transport`].
    transport: RwLock<Option<Arc<dyn ShardTransport<S>>>>,
    transport_armed: AtomicBool,
    /// Per-shard degraded marks: a `true` shard exhausted its transport
    /// envelope and its operations run on the coarse coordinator path
    /// until a probe succeeds. Always all-`false` without a transport.
    transport_degraded: Vec<AtomicBool>,
    /// Transport envelope counters (see [`TransportStats`]).
    t_requests: AtomicU64,
    t_retries: AtomicU64,
    t_timeouts: AtomicU64,
    t_degradations: AtomicU64,
    t_recoveries: AtomicU64,
    /// The installed spec certificate, if the analysis certified this
    /// spec's footprint/mover declarations (see [`SpecCertificate`]).
    certificate: RwLock<Option<Arc<SpecCertificate>>>,
    /// Strict arming mode: when set, the unsafe fast paths
    /// (static-discharge elision, fine-grained shard routing) refuse to
    /// arm without a valid certificate and demote to the sound coarse
    /// path instead, recording a diagnostic. Off by default —
    /// bit-identical legacy behaviour.
    require_certificate: AtomicBool,
    /// Human-readable records of every arming request the certificate
    /// gate refused or demoted (drained by [`Self::arming_diagnostics`]).
    arming_diags: Mutex<Vec<String>>,
    /// Group-commit batch counters (see [`GroupStats`]).
    group: GroupCounters,
    /// Nested-scope traffic counters (see [`crate::scope::NestingStats`]).
    nesting: NestingCounters,
}

impl<S: SeqSpec> GlobalState<S> {
    /// Creates the shared state for a fresh machine with a single shard —
    /// bit-identical behaviour to the historical single-lock log.
    pub fn new(spec: S, mode: CheckMode) -> Self {
        Self::with_shards(spec, mode, 1)
    }

    /// Creates the shared state with `shards` footprint shards (clamped
    /// to at least one). With one shard, routing short-circuits before
    /// the spec's footprints are even consulted.
    pub fn with_shards(spec: S, mode: CheckMode, shards: usize) -> Self {
        let n = shards.max(1);
        let shard_logs = (0..n)
            .map(|_| Mutex::new(ShardLog::new(spec.initial_states())))
            .collect();
        let state = Self {
            spec: Arc::new(spec),
            mode,
            ids: OpIdGen::new(),
            next_txn: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            audit: AtomicAudit::new(),
            incremental: AtomicBool::new(true),
            shards: shard_logs,
            committed: Mutex::new(Vec::new()),
            push_stamp: AtomicU64::new(0),
            coarse: AtomicBool::new(false),
            snaps: (0..n).map(|_| SnapCell::new()).collect(),
            snap_reads: AtomicU64::new(0),
            snap_retries: AtomicU64::new(0),
            snap_fallbacks: AtomicU64::new(0),
            lock_acquires: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lock_contended: (0..n).map(|_| AtomicU64::new(0)).collect(),
            faults: RwLock::new(None),
            faults_armed: AtomicBool::new(false),
            static_facts: RwLock::new(None),
            static_armed: AtomicBool::new(false),
            transport: RwLock::new(None),
            transport_armed: AtomicBool::new(false),
            transport_degraded: (0..n).map(|_| AtomicBool::new(false)).collect(),
            t_requests: AtomicU64::new(0),
            t_retries: AtomicU64::new(0),
            t_timeouts: AtomicU64::new(0),
            t_degradations: AtomicU64::new(0),
            t_recoveries: AtomicU64::new(0),
            certificate: RwLock::new(None),
            require_certificate: AtomicBool::new(false),
            arming_diags: Mutex::new(Vec::new()),
            group: GroupCounters::new(),
            nesting: NestingCounters::new(),
        };
        state.publish_all_shards();
        state
    }

    /// The sequential specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// The check mode.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Number of footprint shards the log is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Has the sticky coarse fallback been triggered (an operation with
    /// no single-key footprint was routed at a shard count above one)?
    pub fn coarse_mode(&self) -> bool {
        self.coarse.load(Ordering::SeqCst)
    }

    /// Total `(lock acquisitions, contended acquisitions)` across all
    /// shard locks.
    pub fn lock_stats(&self) -> (u64, u64) {
        let a = self
            .lock_acquires
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let c = self
            .lock_contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        (a, c)
    }

    /// Per-shard `(lock acquisitions, contended acquisitions)`.
    pub fn lock_stats_per_shard(&self) -> Vec<(u64, u64)> {
        self.lock_acquires
            .iter()
            .zip(&self.lock_contended)
            .map(|(a, c)| (a.load(Ordering::Relaxed), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Seqlock snapshot counters: `(reads, retries, fallbacks)`.
    /// `reads` are optimistic criteria evaluations that needed no lock,
    /// `retries` the validation races burned, `fallbacks` the reads that
    /// gave up and took the mutex ladder instead.
    pub fn seqlock_stats(&self) -> (u64, u64, u64) {
        (
            self.snap_reads.load(Ordering::Relaxed),
            self.snap_retries.load(Ordering::Relaxed),
            self.snap_fallbacks.load(Ordering::Relaxed),
        )
    }

    /// Arena occupancy summed over all shards:
    /// `(live entries, slot capacity, cumulative slot reuses)`. Takes
    /// each shard lock briefly, without perturbing the lock counters
    /// (this is a reporting path, not a rule).
    pub fn arena_stats(&self) -> (u64, u64, u64) {
        let mut totals = (0, 0, 0);
        for m in &self.shards {
            let sh = m.lock().expect("shard log mutex poisoned");
            let (l, c, r) = sh.arena_stats();
            totals.0 += l;
            totals.1 += c;
            totals.2 += r;
        }
        totals
    }

    /// Publishes shard `idx`'s current snapshot (no-op in coarse mode:
    /// the optimistic path is disabled there, and skipping keeps the
    /// coarse double-check airtight). Call with the shard lock held.
    fn publish_shard(&self, idx: usize, sh: &ShardLog<S>) {
        if self.coarse.load(Ordering::SeqCst) {
            return;
        }
        self.snaps[idx].publish(ShardSnap {
            version: sh.version,
            states: sh.cache.states.clone(),
            suffix: sh.suffix_entries(),
        });
    }

    /// Publishes every shard's snapshot (construction, resharding and
    /// deep-cloning — the per-mutation publishes keep them fresh from
    /// then on).
    fn publish_all_shards(&self) {
        for (i, m) in self.shards.iter().enumerate() {
            let sh = m.lock().expect("shard log mutex poisoned");
            self.publish_shard(i, &sh);
        }
    }

    /// Runs `f` against shard `idx`'s published snapshot without taking
    /// any lock, retrying validation races up to [`SNAP_RETRIES`] times.
    /// `None` means the caller must take the mutex path (and the
    /// fallback was tallied).
    pub(crate) fn read_shard_snap<R>(
        &self,
        idx: usize,
        f: impl FnOnce(&ShardSnap<S>) -> R,
    ) -> Option<R> {
        let out = self.snaps[idx].read(SNAP_RETRIES, f);
        if out.retries > 0 {
            self.snap_retries.fetch_add(out.retries, Ordering::Relaxed);
        }
        match out.value {
            Some(v) => {
                self.snap_reads.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.snap_fallbacks.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Tallies a fallback discovered *after* a successful snapshot read
    /// (the under-lock version revalidation failed, so the speculated
    /// verdict was discarded and the mutex path re-ran).
    pub(crate) fn note_snap_fallback(&self) {
        self.snap_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Is the incremental (prefix-cached) `allowed` path enabled?
    pub fn incremental(&self) -> bool {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Switches between incremental and full-replay criteria evaluation.
    /// Both produce identical verdicts and audit counts; the toggle exists
    /// so benchmarks and the golden-trace tests can compare them.
    pub fn set_incremental(&self, on: bool) {
        self.incremental.store(on, Ordering::Relaxed);
    }

    /// A snapshot of the criteria audit.
    pub fn audit_snapshot(&self) -> CriteriaAudit {
        self.audit.snapshot()
    }

    /// Arms (or, with `None`, disarms) the fault-injection hook. The
    /// machine consults it at forward-rule entry; drivers consult it at
    /// tick and HTM boundaries.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        self.faults_armed.store(hook.is_some(), Ordering::Release);
        *self.faults.write().expect("fault hook lock poisoned") = hook;
    }

    /// The armed fault hook, if any.
    pub fn fault_hook(&self) -> Option<Arc<dyn FaultHook>> {
        if !self.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        self.faults
            .read()
            .expect("fault hook lock poisoned")
            .clone()
    }

    /// Installs (or, with `None`, removes) a set of statically proven
    /// obligations. When installed, the mover-loop criteria the proof
    /// covers are elided at runtime and tallied in the audit's
    /// `statically_discharged` column instead of `discharged`; in debug
    /// builds every elided check is still evaluated dynamically and
    /// asserted to pass (the soundness cross-check).
    ///
    /// Under strict mode ([`Self::set_require_certificate`]) a plan that
    /// would arm elision is refused unless a *valid* [`SpecCertificate`]
    /// is installed: the facts are dropped, the machine keeps its exact
    /// dynamic checks (the sound default), and a diagnostic is recorded
    /// in [`Self::arming_diagnostics`].
    pub fn set_static_discharge(&self, facts: Option<Arc<StaticDischarge>>) {
        let armed = facts.as_ref().is_some_and(|f| f.any());
        if armed && self.require_certificate.load(Ordering::SeqCst) && !self.certified() {
            self.note_arming_diag(
                "refused to arm static discharge: strict mode requires a valid \
                 spec certificate and none is installed; keeping exact dynamic checks",
            );
            self.static_armed.store(false, Ordering::Release);
            *self
                .static_facts
                .write()
                .expect("static facts lock poisoned") = None;
            return;
        }
        self.static_armed.store(armed, Ordering::Release);
        *self
            .static_facts
            .write()
            .expect("static facts lock poisoned") = facts;
    }

    /// Installs (or, with `None`, removes) a spec certificate — the
    /// machine-checked verdict that this spec's `method_keys`/
    /// `method_mover` declarations agree with the exhaustively derived
    /// ground truth. Installing an *invalid* certificate (one with
    /// errors) is allowed but arms nothing: strict mode treats it
    /// exactly like no certificate.
    pub fn install_certificate(&self, cert: Option<Arc<SpecCertificate>>) {
        *self.certificate.write().expect("certificate lock poisoned") = cert;
    }

    /// The installed spec certificate, if any.
    pub fn certificate(&self) -> Option<Arc<SpecCertificate>> {
        self.certificate
            .read()
            .expect("certificate lock poisoned")
            .clone()
    }

    /// Is a *valid* certificate installed (present and error-free)?
    pub fn certified(&self) -> bool {
        self.certificate
            .read()
            .expect("certificate lock poisoned")
            .as_ref()
            .is_some_and(|c| c.is_valid())
    }

    /// May an open-nested scope be opened right now? Outside strict mode
    /// the answer is always yes (each operation's inverse is still
    /// checked at the open commit); under strict mode it additionally
    /// demands an installed certificate whose inverse law was proven —
    /// a refusal is recorded in [`Self::arming_diagnostics`].
    pub(crate) fn open_nesting_allowed(&self) -> bool {
        if !self.require_certificate() {
            return true;
        }
        let ok = self
            .certificate
            .read()
            .expect("certificate lock poisoned")
            .as_ref()
            .is_some_and(|c| c.open_nesting_certified());
        if !ok {
            self.note_arming_diag(
                "refused to open an open-nested scope: strict mode requires a valid \
                 spec certificate with a proven inverse law, and none is installed",
            );
        }
        ok
    }

    /// Turns strict certificate-gated arming on or off. Off (the
    /// default) reproduces the historical trust-the-declarations
    /// behaviour bit-identically. On, every unsafe fast path demands a
    /// valid certificate:
    ///
    /// * [`Self::set_static_discharge`] refuses to arm elision;
    /// * fine-grained shard routing (a shard count above one) demotes to
    ///   the sticky coarse path — sound, never wrong, just slower;
    ///
    /// each refusal/demotion recording a diagnostic in
    /// [`Self::arming_diagnostics`]. Turning strict mode on while
    /// already sharded and uncertified demotes immediately.
    pub fn set_require_certificate(&self, on: bool) {
        self.require_certificate.store(on, Ordering::SeqCst);
        if on && self.shard_count() > 1 && !self.certified() && !self.coarse_mode() {
            self.demote_to_coarse(
                "strict mode enabled on an uncertified sharded log: demoting to \
                 coarse routing (all-shard critical sections)",
            );
        }
    }

    /// Is strict certificate-gated arming on?
    pub fn require_certificate(&self) -> bool {
        self.require_certificate.load(Ordering::SeqCst)
    }

    /// The diagnostics recorded by the certificate gate: one line per
    /// refused arming request or coarse demotion, in order.
    pub fn arming_diagnostics(&self) -> Vec<String> {
        self.arming_diags
            .lock()
            .expect("arming diags lock poisoned")
            .clone()
    }

    /// Records one certificate-gate diagnostic.
    fn note_arming_diag(&self, msg: &str) {
        self.arming_diags
            .lock()
            .expect("arming diags lock poisoned")
            .push(msg.to_string());
    }

    /// Sets the sticky coarse flag (SeqCst, same protocol as routing's
    /// own demotion: published snapshots stop being trusted because
    /// every later `acquire_route` re-checks the flag under the lock)
    /// and records why. Sound by the same argument as footprint-less
    /// routing — coarse mode evaluates every criterion against the
    /// whole log.
    pub(crate) fn demote_to_coarse(&self, reason: &str) {
        self.coarse.store(true, Ordering::SeqCst);
        self.note_arming_diag(reason);
    }

    /// The installed static-discharge facts, if any.
    pub fn static_discharge(&self) -> Option<Arc<StaticDischarge>> {
        if !self.static_armed.load(Ordering::Acquire) {
            return None;
        }
        self.static_facts
            .read()
            .expect("static facts lock poisoned")
            .clone()
    }

    /// Installs (or, with `None`, removes) the shard transport that the
    /// routed PUSH/UNPUSH critical sections go through. Without one the
    /// machine behaves bit-identically to the historical in-place locked
    /// path. See [`crate::transport`] for the seam, the robustness
    /// envelope and the degradation ladder.
    pub fn set_transport(&self, t: Option<Arc<dyn ShardTransport<S>>>) {
        self.transport_armed.store(t.is_some(), Ordering::Release);
        *self.transport.write().expect("transport lock poisoned") = t;
        // A fresh transport starts on the fast path everywhere.
        for d in &self.transport_degraded {
            d.store(false, Ordering::Relaxed);
        }
    }

    /// The installed shard transport, if any. One relaxed-ish load when
    /// none is installed (the default).
    pub(crate) fn transport(&self) -> Option<Arc<dyn ShardTransport<S>>> {
        if !self.transport_armed.load(Ordering::Acquire) {
            return None;
        }
        self.transport
            .read()
            .expect("transport lock poisoned")
            .clone()
    }

    /// The installed transport's short name, if any (stats labels).
    pub fn transport_name(&self) -> Option<&'static str> {
        self.transport().map(|t| t.name())
    }

    /// A snapshot of the transport envelope counters. All-zero when no
    /// transport was ever installed.
    pub fn transport_stats(&self) -> TransportStats {
        TransportStats {
            requests: self.t_requests.load(Ordering::Relaxed),
            retries: self.t_retries.load(Ordering::Relaxed),
            timeouts: self.t_timeouts.load(Ordering::Relaxed),
            degradations: self.t_degradations.load(Ordering::Relaxed),
            recoveries: self.t_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Tallies one logical transport request (a call or a probe).
    /// Transport implementations call this once per logical request,
    /// not per delivery attempt.
    pub fn note_transport_request(&self) {
        self.t_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one transport re-delivery attempt.
    pub fn note_transport_retry(&self) {
        self.t_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one failed delivery attempt (deadline missed or message
    /// lost — injected faults included).
    pub fn note_transport_timeout(&self) {
        self.t_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Is `shard` currently degraded to the coarse coordinator path?
    pub(crate) fn is_transport_degraded(&self, shard: usize) -> bool {
        self.transport_degraded[shard].load(Ordering::Acquire)
    }

    /// Marks `shard` degraded; counts the transition exactly once even
    /// when several threads exhaust their envelopes concurrently.
    pub(crate) fn note_transport_degraded(&self, shard: usize) {
        if self.transport_degraded[shard]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.t_degradations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Clears `shard`'s degraded mark after a successful probe; counts
    /// the recovery exactly once per degradation episode.
    pub(crate) fn note_transport_recovery(&self, shard: usize) {
        if self.transport_degraded[shard]
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.t_recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is the runtime check for `(rule, clause)` statically discharged?
    /// One relaxed-ish load on the fast path when no plan is installed.
    pub(crate) fn statically_discharged(&self, rule: Rule, clause: Clause) -> bool {
        if !self.static_armed.load(Ordering::Acquire) {
            return false;
        }
        self.static_facts
            .read()
            .expect("static facts lock poisoned")
            .as_ref()
            .is_some_and(|f| f.discharges(rule, clause))
    }

    /// Records one injected fault in the audit. The machine calls this
    /// for rule denials; drivers call it when they act on a boundary or
    /// HTM fault, so the audit tallies faults that actually *fired*.
    pub fn note_injected(&self, kind: FaultKind) {
        self.audit.inject(kind);
    }

    /// Consults the hook at the entry of forward rule `rule` on `tid`;
    /// on a denial, records the injected fault and returns the clause
    /// the rule must report.
    pub(crate) fn fault_deny(&self, tid: ThreadId, rule: Rule) -> Option<Clause> {
        let hook = self.fault_hook()?;
        let clause = hook.deny_rule(tid, rule)?;
        self.audit.inject(FaultKind::Deny(rule));
        Some(clause)
    }

    /// Mints the next trace-event sequence number.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Mints a fresh transaction id.
    pub(crate) fn fresh_txn(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    // ------------------------------------------------------------------
    // Routing and shard-lock acquisition.
    // ------------------------------------------------------------------

    /// Routes `method` under a layout of `n` shards. With one shard
    /// everything is `Single(0)` — the footprints are not consulted, so
    /// a single-shard machine is bit-identical to the historical
    /// single-lock one even for specs with (or without) footprints.
    fn route_in(spec: &S, n: usize, method: &S::Method) -> Route {
        if n == 1 {
            return Route::Single(0);
        }
        match spec.method_keys(method) {
            Some(keys) if keys.len() == 1 => Route::Single((keys[0] % n as u64) as usize),
            _ => Route::Coarse,
        }
    }

    /// Routes `method` under the current shard layout.
    pub(crate) fn route(&self, method: &S::Method) -> Route {
        Self::route_in(&self.spec, self.shards.len(), method)
    }

    /// Locks shard `i`, tallying the acquisition (and whether it had to
    /// wait) in the per-shard lock counters.
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, ShardLog<S>> {
        self.lock_acquires[i].fetch_add(1, Ordering::Relaxed);
        match self.shards[i].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.lock_contended[i].fetch_add(1, Ordering::Relaxed);
                self.shards[i].lock().expect("shard log mutex poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard log mutex poisoned"),
        }
    }

    /// Locks every shard in ascending index order (the canonical order).
    pub(crate) fn acquire_all(&self) -> LogView<'_, S> {
        LogView {
            shards: (0..self.shards.len())
                .map(|i| (i, self.lock_shard(i)))
                .collect(),
        }
    }

    /// Locks the given shards (sorted, deduplicated, ascending) — the
    /// CMT critical section over exactly the shards a transaction's
    /// operations touch. An empty set yields an empty view (a commit
    /// with nothing in `G` to flip).
    pub(crate) fn acquire_shards(&self, mut indices: Vec<usize>) -> LogView<'_, S> {
        indices.sort_unstable();
        indices.dedup();
        LogView {
            shards: indices
                .into_iter()
                .map(|i| (i, self.lock_shard(i)))
                .collect(),
        }
    }

    /// The critical section for a routed PUSH/UNPUSH: one shard on the
    /// fast path, all shards once the sticky coarse flag is (or gets)
    /// set. The flag is stored *before* any lock is acquired and
    /// re-checked after a single-shard acquisition, so a coarse append
    /// can never be missed by a concurrent single-shard evaluation.
    pub(crate) fn acquire_route(&self, route: Route) -> LogView<'_, S> {
        match route {
            Route::Coarse => {
                self.coarse.store(true, Ordering::SeqCst);
                self.acquire_all()
            }
            Route::Single(i) => {
                if self.coarse.load(Ordering::SeqCst) {
                    return self.acquire_all();
                }
                let guard = self.lock_shard(i);
                if self.coarse.load(Ordering::SeqCst) {
                    drop(guard);
                    self.acquire_all()
                } else {
                    LogView {
                        shards: vec![(i, guard)],
                    }
                }
            }
        }
    }

    /// Locates and snapshots a global entry by id, locking one shard at
    /// a time in ascending order (the PULL snapshot — never holds two
    /// locks at once).
    pub(crate) fn find_entry(&self, id: OpId) -> Option<GlobalEntry<S::Method, S::Ret>> {
        for i in 0..self.shards.len() {
            let sh = self.lock_shard(i);
            if let Some(e) = sh.entry(id) {
                return Some(e.clone());
            }
        }
        None
    }

    /// Appends `op` to shard `target` inside the held view, minting its
    /// commit-sequence stamp under the shard lock (the PUSH effect), and
    /// republishes the shard's snapshot. `target` is the routed shard
    /// ([`Route::target`]) — the degraded coarse path passes it through
    /// unchanged, so placement survives degradation and healing.
    pub(crate) fn append_push(
        &self,
        view: &mut LogView<'_, S>,
        target: usize,
        op: Op<S::Method, S::Ret>,
    ) {
        let stamp = self.push_stamp.fetch_add(1, Ordering::Relaxed);
        self.append_push_stamped(view, target, stamp, op);
    }

    /// [`Self::append_push`] with the commit-sequence stamp supplied by
    /// the caller: the group-commit path reserves a contiguous stamp
    /// block with [`Self::reserve_stamps`] (under the shard lock) and
    /// hands the stamps out one append at a time.
    pub(crate) fn append_push_stamped(
        &self,
        view: &mut LogView<'_, S>,
        target: usize,
        stamp: u64,
        op: Op<S::Method, S::Ret>,
    ) {
        let (_, sh) = view
            .shards
            .iter_mut()
            .find(|(i, _)| *i == target)
            .expect("append target shard is held by the view");
        sh.push_uncommitted(stamp, op);
        sh.version += 1;
        self.publish_shard(target, sh);
    }

    /// Reserves a contiguous block of `n` commit-sequence stamps and
    /// returns its base. Must be called while holding the destination
    /// shard's lock: every stamp already in that shard is then strictly
    /// below the reserved base, so appends from the block preserve the
    /// shard's strictly-increasing stamp order.
    pub(crate) fn reserve_stamps(&self, n: u64) -> u64 {
        self.push_stamp.fetch_add(n, Ordering::Relaxed)
    }

    /// A snapshot of the group-commit batch counters.
    pub fn group_stats(&self) -> GroupStats {
        self.group.snapshot()
    }

    /// Records one sealed group-commit batch (see [`GroupCounters`]).
    pub(crate) fn note_group_batch(&self, txns: u64, ops: u64) {
        self.group.note_batch(txns, ops);
    }

    /// A snapshot of the nested-scope traffic counters.
    pub fn nesting_stats(&self) -> crate::scope::NestingStats {
        self.nesting.snapshot()
    }

    /// The atomic nesting counters, for handles to tally into.
    pub(crate) fn nesting_counters(&self) -> &NestingCounters {
        &self.nesting
    }

    /// Removes the entry `id` from the held shard at `view index` (the
    /// UNPUSH effect): recycles its arena slot, maintains the prefix
    /// cache (a removal inside the cached prefix — impossible through
    /// the rule API — resets it defensively), bumps the shard version
    /// and republishes the snapshot.
    pub(crate) fn remove_push(
        &self,
        view: &mut LogView<'_, S>,
        vidx: usize,
        id: OpId,
    ) -> Option<RemovedEntry<S>> {
        let (idx, sh) = &mut view.shards[vidx];
        let removed = sh.remove_by_id(id)?;
        if removed.0 < sh.cache.len {
            sh.cache.reset(self.spec.initial_states());
        }
        sh.version += 1;
        let shard_idx = *idx;
        self.publish_shard(shard_idx, sh);
        Some(removed)
    }

    /// Appends a committed-transaction record. Called while still holding
    /// the commit's shard locks, so the global commit order agrees with
    /// the per-shard flip order (`committed` is last in the lock order).
    pub(crate) fn push_committed(&self, txn: CommittedTxn<S::Method, S::Ret>) {
        self.committed
            .lock()
            .expect("committed list mutex poisoned")
            .push(txn);
    }

    /// Committed transactions in global commit order.
    pub fn committed_txns(&self) -> Vec<CommittedTxn<S::Method, S::Ret>> {
        self.committed
            .lock()
            .expect("committed list mutex poisoned")
            .clone()
    }

    /// A snapshot of the whole shared log `G`, merged across shards in
    /// commit-stamp order — with one shard, exactly the historical log
    /// order.
    pub fn global_snapshot(&self) -> GlobalLog<S::Method, S::Ret> {
        let view = self.acquire_all();
        let entries = view.stamped().map(|(_, e)| e.clone()).collect();
        GlobalLog::from_entries(entries)
    }

    // ------------------------------------------------------------------
    // Audited primitive queries (the audit counts queries, not replays,
    // so the incremental path is invisible to it by construction).
    // ------------------------------------------------------------------

    /// Mover query with audit accounting; `shard` attributes the count
    /// (an audit stripe, unrelated to the log shards).
    pub(crate) fn mover_q(
        &self,
        shard: usize,
        a: &Op<S::Method, S::Ret>,
        b: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.count_mover(shard);
        self.spec.mover(a, b)
    }

    /// `allows` over an explicit log (used for local-log criteria).
    pub(crate) fn allows_q(
        &self,
        shard: usize,
        log: &[Op<S::Method, S::Ret>],
        op: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.count_allowed(shard);
        self.spec.allows(log, op)
    }

    /// `allowed` over an explicit log (used for local-log criteria).
    pub(crate) fn allowed_q(&self, shard: usize, log: &[Op<S::Method, S::Ret>]) -> bool {
        self.audit.count_allowed(shard);
        self.spec.allowed(log)
    }

    /// `G allows op` (PUSH criterion (iii)). A single-shard view replays
    /// only the uncommitted suffix past that shard's cache (when the
    /// incremental path is on); a multi-shard view replays the merged
    /// stamp-ordered log in full. One audited query either way.
    pub(crate) fn g_allows(
        &self,
        view: &LogView<'_, S>,
        shard: usize,
        op: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.count_allowed(shard);
        let states = if view.is_single() {
            let sh = &view.shards[0].1;
            if self.incremental() {
                self.suffix_states(sh, None)
            } else {
                self.spec.denote_refs(sh.iter().map(|e| &e.op))
            }
        } else {
            self.spec.denote_refs(view.stamped().map(|(_, e)| &e.op))
        };
        !self
            .spec
            .denote_from(&states, std::slice::from_ref(op))
            .is_empty()
    }

    /// Unaudited variant of [`GlobalState::g_allows`] evaluated against
    /// a published [`ShardSnap`] — the zero-lock criterion (iii). The
    /// snapshot's prefix denotation plus its suffix replay is exactly
    /// the incremental single-shard computation, so the verdict agrees
    /// bit-for-bit with what the locked path would conclude at the
    /// snapshot's version.
    pub(crate) fn snap_allows(&self, snap: &ShardSnap<S>, op: &Op<S::Method, S::Ret>) -> bool {
        let states = self
            .spec
            .denote_from_refs(&snap.states, snap.suffix.iter().map(|e| &e.op));
        !self
            .spec
            .denote_from(&states, std::slice::from_ref(op))
            .is_empty()
    }

    /// `allowed (G ∖ skip)` (UNPUSH criterion (ii)). `skip` is an
    /// uncommitted entry, so on the single-shard path it lies past the
    /// cache boundary; if it ever does not (unreachable through the rule
    /// API), fall back to a full replay. Multi-shard views replay the
    /// merged log without `skip`.
    pub(crate) fn g_allowed_without(
        &self,
        view: &LogView<'_, S>,
        shard: usize,
        skip: OpId,
    ) -> bool {
        self.audit.count_allowed(shard);
        if view.is_single() {
            let sh = &view.shards[0].1;
            let in_suffix = sh.position(skip).is_none_or(|p| p >= sh.cache.len);
            if self.incremental() && in_suffix {
                !self.suffix_states(sh, Some(skip)).is_empty()
            } else {
                !self
                    .spec
                    .denote_refs(sh.iter().filter(|e| e.op.id != skip).map(|e| &e.op))
                    .is_empty()
            }
        } else {
            !self
                .spec
                .denote_refs(
                    view.stamped()
                        .filter(|(_, e)| e.op.id != skip)
                        .map(|(_, e)| &e.op),
                )
                .is_empty()
        }
    }

    /// `⟦G_i⟧` (optionally skipping one suffix entry), from the shard's
    /// cached committed-prefix denotation — cursor-backed, no collected
    /// `Vec`.
    fn suffix_states(&self, sh: &ShardLog<S>, skip: Option<OpId>) -> HashSet<S::State> {
        self.spec.denote_from_refs(
            &sh.cache.states,
            sh.iter_from(sh.cache.len)
                .filter(move |e| Some(e.op.id) != skip)
                .map(|e| &e.op),
        )
    }

    // ------------------------------------------------------------------
    // Cache maintenance (called under the shard locks).
    // ------------------------------------------------------------------

    /// Advances one shard's cache over its newly committed prefix.
    fn advance_shard_cache(spec: &S, sh: &mut ShardLog<S>) {
        loop {
            if sh.cache.len >= sh.len() {
                break;
            }
            let next = {
                let e = sh.entry_at(sh.cache.len);
                if e.flag != GlobalFlag::Committed {
                    break;
                }
                spec.denote_from_refs(&sh.cache.states, std::iter::once(&e.op))
            };
            sh.cache.states = next;
            sh.cache.len += 1;
        }
    }

    /// Advances every held shard's cache and republishes its snapshot
    /// (after CMT — the commit flips already bumped the versions of the
    /// shards they touched, via [`LogView::commit_local`]).
    pub(crate) fn advance_caches(&self, view: &mut LogView<'_, S>) {
        for (idx, sh) in &mut view.shards {
            Self::advance_shard_cache(&self.spec, sh);
            let shard_idx = *idx;
            self.publish_shard(shard_idx, sh);
        }
    }

    /// Rebuilds this state under a layout of `n` shards: every entry is
    /// re-routed by its method's footprint, stamps and the commit order
    /// are preserved, per-shard caches are re-seeded and advanced, and
    /// the coarse flag is recomputed from the entries actually present.
    /// Used by [`Machine::set_log_shards`](crate::machine::Machine::set_log_shards).
    pub(crate) fn rebuilt_with_shards(&self, n: usize) -> Self {
        let n = n.max(1);
        let mut stamped: Vec<StampedEntry<S>> = Vec::new();
        for m in &self.shards {
            let sh = m.lock().expect("shard log mutex poisoned");
            for (stamp, e) in sh.iter_stamped() {
                stamped.push((stamp, e.clone()));
            }
        }
        stamped.sort_by_key(|(s, _)| *s);

        let mut per: Vec<Vec<StampedEntry<S>>> = (0..n).map(|_| Vec::new()).collect();
        let mut coarse = false;
        for (stamp, entry) in stamped {
            let route = Self::route_in(&self.spec, n, &entry.op.method);
            if route == Route::Coarse {
                coarse = true;
            }
            per[route.target()].push((stamp, entry));
        }
        let shards: Vec<Mutex<ShardLog<S>>> = per
            .into_iter()
            .map(|seg| {
                let mut sh = ShardLog::from_stamped(seg, self.spec.initial_states());
                Self::advance_shard_cache(&self.spec, &mut sh);
                Mutex::new(sh)
            })
            .collect();
        let state = Self {
            spec: Arc::clone(&self.spec),
            mode: self.mode,
            ids: self.ids.clone(),
            next_txn: AtomicU64::new(self.next_txn.load(Ordering::Relaxed)),
            seq: AtomicU64::new(self.seq.load(Ordering::Relaxed)),
            audit: self.audit.clone(),
            incremental: AtomicBool::new(self.incremental()),
            shards,
            committed: Mutex::new(self.committed_txns()),
            push_stamp: AtomicU64::new(self.push_stamp.load(Ordering::Relaxed)),
            coarse: AtomicBool::new(coarse),
            snaps: (0..n).map(|_| SnapCell::new()).collect(),
            snap_reads: AtomicU64::new(0),
            snap_retries: AtomicU64::new(0),
            snap_fallbacks: AtomicU64::new(0),
            lock_acquires: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lock_contended: (0..n).map(|_| AtomicU64::new(0)).collect(),
            faults: RwLock::new(self.fault_hook()),
            faults_armed: AtomicBool::new(self.faults_armed.load(Ordering::Acquire)),
            static_facts: RwLock::new(self.static_discharge()),
            static_armed: AtomicBool::new(self.static_armed.load(Ordering::Acquire)),
            // The transport detaches on resharding: it is bound to the
            // old state's shard layout (server threads, degraded marks).
            // `Machine::set_log_shards` documents that a transport must
            // be re-installed after resharding. Counters carry over.
            transport: RwLock::new(None),
            transport_armed: AtomicBool::new(false),
            transport_degraded: (0..n).map(|_| AtomicBool::new(false)).collect(),
            t_requests: AtomicU64::new(self.t_requests.load(Ordering::Relaxed)),
            t_retries: AtomicU64::new(self.t_retries.load(Ordering::Relaxed)),
            t_timeouts: AtomicU64::new(self.t_timeouts.load(Ordering::Relaxed)),
            t_degradations: AtomicU64::new(self.t_degradations.load(Ordering::Relaxed)),
            t_recoveries: AtomicU64::new(self.t_recoveries.load(Ordering::Relaxed)),
            certificate: RwLock::new(self.certificate()),
            require_certificate: AtomicBool::new(self.require_certificate.load(Ordering::SeqCst)),
            arming_diags: Mutex::new(self.arming_diagnostics()),
            group: self.group.carried_over(),
            nesting: self.nesting.carried_over(),
        };
        state.publish_all_shards();
        state
    }

    /// A deep copy with its own generators, audit and log state — used by
    /// [`Machine::clone`](crate::machine::Machine), which re-points every
    /// handle at the copy so clones share nothing (the property the model
    /// checker's branching relies on).
    pub(crate) fn deep_clone(&self) -> Self {
        let state = Self {
            spec: Arc::clone(&self.spec),
            mode: self.mode,
            ids: self.ids.clone(),
            next_txn: AtomicU64::new(self.next_txn.load(Ordering::Relaxed)),
            seq: AtomicU64::new(self.seq.load(Ordering::Relaxed)),
            audit: self.audit.clone(),
            incremental: AtomicBool::new(self.incremental()),
            shards: self
                .shards
                .iter()
                .map(|m| Mutex::new(m.lock().expect("shard log mutex poisoned").clone()))
                .collect(),
            committed: Mutex::new(self.committed_txns()),
            push_stamp: AtomicU64::new(self.push_stamp.load(Ordering::Relaxed)),
            coarse: AtomicBool::new(self.coarse.load(Ordering::SeqCst)),
            snaps: (0..self.shards.len()).map(|_| SnapCell::new()).collect(),
            snap_reads: AtomicU64::new(self.snap_reads.load(Ordering::Relaxed)),
            snap_retries: AtomicU64::new(self.snap_retries.load(Ordering::Relaxed)),
            snap_fallbacks: AtomicU64::new(self.snap_fallbacks.load(Ordering::Relaxed)),
            lock_acquires: self
                .lock_acquires
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            lock_contended: self
                .lock_contended
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            faults: RwLock::new(self.fault_hook()),
            faults_armed: AtomicBool::new(self.faults_armed.load(Ordering::Acquire)),
            static_facts: RwLock::new(self.static_discharge()),
            static_armed: AtomicBool::new(self.static_armed.load(Ordering::Acquire)),
            // The transport holds a `Weak` back-reference to *its*
            // global state, so a deep clone cannot share it: the clone
            // starts transport-less (the caller re-installs one if it
            // wants the seam). Counter values are copied.
            transport: RwLock::new(None),
            transport_armed: AtomicBool::new(false),
            transport_degraded: self
                .transport_degraded
                .iter()
                .map(|d| AtomicBool::new(d.load(Ordering::Acquire)))
                .collect(),
            t_requests: AtomicU64::new(self.t_requests.load(Ordering::Relaxed)),
            t_retries: AtomicU64::new(self.t_retries.load(Ordering::Relaxed)),
            t_timeouts: AtomicU64::new(self.t_timeouts.load(Ordering::Relaxed)),
            t_degradations: AtomicU64::new(self.t_degradations.load(Ordering::Relaxed)),
            t_recoveries: AtomicU64::new(self.t_recoveries.load(Ordering::Relaxed)),
            certificate: RwLock::new(self.certificate()),
            require_certificate: AtomicBool::new(self.require_certificate.load(Ordering::SeqCst)),
            arming_diags: Mutex::new(self.arming_diagnostics()),
            group: self.group.carried_over(),
            nesting: self.nesting.carried_over(),
        };
        state.publish_all_shards();
        state
    }
}
