//! The shared half of the split machine: [`GlobalState`] owns everything
//! the PUSH/PULL rules may contend on — the shared log `G`, the
//! committed-transaction list and the criteria audit — while the
//! per-thread halves live in [`TxnHandle`](crate::handle::TxnHandle).
//!
//! ## Lock discipline
//!
//! `GlobalState` is `Sync`. Its id/txn/sequence generators and the audit
//! are lock-free atomics; the log state sits behind one short-held
//! [`Mutex`]. The discipline, relied on by the parallel harness:
//!
//! * **APP/UNAPP never lock.** They touch only the handle's local log and
//!   the atomics (fresh ids, audit counters, trace sequence numbers).
//! * **PUSH/UNPUSH/CMT** take the mutex for their criteria-over-`G` and
//!   their effect, as one atomic critical section.
//! * **PULL** takes the mutex only to snapshot the pulled entry; its
//!   criteria and effect are local. **UNPULL** is entirely local.
//!
//! ## Incremental `allowed` (the snapshot cache)
//!
//! Every PUSH evaluates `G allows op` and every UNPUSH evaluates
//! `allowed (G ∖ op)`; replaying the whole log makes a run of `n`
//! operations O(n²) in spec transitions. [`PrefixCache`] memoizes the
//! denotation `⟦G[..len]⟧` of the longest *fully committed* prefix of `G`.
//! Because the denotation is compositional
//! (`⟦ℓ⟧ = denote_from(⟦ℓ[..k]⟧, ℓ[k..])` for any split point `k`), the
//! criteria can replay only the uncommitted suffix and get bit-identical
//! answers — and bit-identical audit counts, since the audit counts
//! *queries*, not spec transitions, and PUSH criterion (ii)'s mover scan
//! only ever visits uncommitted entries, all of which lie past the cache
//! boundary.
//!
//! Invalidation rules:
//!
//! * PUSH appends — the cached prefix is untouched.
//! * CMT flips flags in place and never reorders — flags are not part of
//!   the denotation, so the cache stays valid and is then *advanced* over
//!   the newly committed prefix.
//! * UNPUSH removes an *uncommitted* entry, which by the all-committed
//!   invariant lies at or past `len`; the cache is untouched. A removal
//!   inside the cached prefix (impossible through the rule API) resets the
//!   cache defensively.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::audit::{AtomicAudit, CriteriaAudit};
use crate::error::{Clause, Rule};
use crate::faults::{FaultHook, FaultKind};
use crate::lang::Code;
use crate::log::{GlobalFlag, GlobalLog};
use crate::machine::CheckMode;
use crate::op::{Op, OpId, OpIdGen, ThreadId, TxnId};
use crate::spec::SeqSpec;
use crate::static_facts::StaticDischarge;

/// A committed transaction: its id and its own operations in local-log
/// order. The sequence of these, in commit order, is the serial witness
/// used by the serializability oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn<M, R> {
    /// The committed transaction instance.
    pub txn: TxnId,
    /// The thread that ran it.
    pub thread: ThreadId,
    /// The original transaction body (the paper's `otx`), for atomic replay.
    pub code: Code<M>,
    /// Own operations (pushed), in local order.
    pub ops: Vec<Op<M, R>>,
    /// Ids of operations this transaction had pulled, with the owning
    /// transaction (its dependencies).
    pub pulled_from: Vec<(OpId, TxnId)>,
}

/// Memoized denotation of the longest fully committed prefix of `G`.
#[derive(Debug, Clone)]
pub(crate) struct PrefixCache<St> {
    /// Entries `[..len]` of the global log are all committed and their
    /// denotation is `states`.
    pub(crate) len: usize,
    /// `⟦G[..len]⟧`.
    pub(crate) states: HashSet<St>,
}

impl<St: Clone + Eq + std::hash::Hash> PrefixCache<St> {
    fn new(initial: Vec<St>) -> Self {
        Self {
            len: 0,
            states: initial.into_iter().collect(),
        }
    }

    fn reset(&mut self, initial: Vec<St>) {
        self.len = 0;
        self.states = initial.into_iter().collect();
    }
}

/// The lock-protected log state: everything the shared rules read-modify.
#[derive(Debug, Clone)]
pub(crate) struct SharedLog<S: SeqSpec> {
    /// The shared log `G`.
    pub(crate) global: GlobalLog<S::Method, S::Ret>,
    /// Committed transactions in commit order.
    pub(crate) committed: Vec<CommittedTxn<S::Method, S::Ret>>,
    /// The committed-prefix denotation cache.
    pub(crate) cache: PrefixCache<S::State>,
}

/// The shared half of the machine: spec, generators, audit and the
/// mutex-guarded log state. `Sync`, shared by every
/// [`TxnHandle`](crate::handle::TxnHandle) through an `Arc`.
#[derive(Debug)]
pub struct GlobalState<S: SeqSpec> {
    pub(crate) spec: S,
    pub(crate) mode: CheckMode,
    pub(crate) ids: OpIdGen,
    pub(crate) next_txn: AtomicU64,
    /// Global trace-event sequence: one `fetch_add` per recorded event
    /// gives a real-time-consistent total order across threads.
    pub(crate) seq: AtomicU64,
    pub(crate) audit: AtomicAudit,
    incremental: AtomicBool,
    pub(crate) shared: Mutex<SharedLog<S>>,
    /// The fault-injection hook, if armed. The flag short-circuits the
    /// rule hot paths to a single relaxed load when no hook is set.
    faults: RwLock<Option<Arc<dyn FaultHook>>>,
    faults_armed: AtomicBool,
    /// Statically proven obligations, if an analysis plan installed any.
    /// Same arm-flag pattern as the fault hook: with no plan the rule
    /// hot paths pay one relaxed load and behave bit-identically to a
    /// build without the analyzer.
    static_facts: RwLock<Option<Arc<StaticDischarge>>>,
    static_armed: AtomicBool,
}

impl<S: SeqSpec> GlobalState<S> {
    /// Creates the shared state for a fresh machine.
    pub fn new(spec: S, mode: CheckMode) -> Self {
        let cache = PrefixCache::new(spec.initial_states());
        Self {
            spec,
            mode,
            ids: OpIdGen::new(),
            next_txn: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            audit: AtomicAudit::new(),
            incremental: AtomicBool::new(true),
            shared: Mutex::new(SharedLog {
                global: GlobalLog::new(),
                committed: Vec::new(),
                cache,
            }),
            faults: RwLock::new(None),
            faults_armed: AtomicBool::new(false),
            static_facts: RwLock::new(None),
            static_armed: AtomicBool::new(false),
        }
    }

    /// The sequential specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// The check mode.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Is the incremental (prefix-cached) `allowed` path enabled?
    pub fn incremental(&self) -> bool {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Switches between incremental and full-replay criteria evaluation.
    /// Both produce identical verdicts and audit counts; the toggle exists
    /// so benchmarks and the golden-trace tests can compare them.
    pub fn set_incremental(&self, on: bool) {
        self.incremental.store(on, Ordering::Relaxed);
    }

    /// A snapshot of the criteria audit.
    pub fn audit_snapshot(&self) -> CriteriaAudit {
        self.audit.snapshot()
    }

    /// Arms (or, with `None`, disarms) the fault-injection hook. The
    /// machine consults it at forward-rule entry; drivers consult it at
    /// tick and HTM boundaries.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        self.faults_armed.store(hook.is_some(), Ordering::Release);
        *self.faults.write().expect("fault hook lock poisoned") = hook;
    }

    /// The armed fault hook, if any.
    pub fn fault_hook(&self) -> Option<Arc<dyn FaultHook>> {
        if !self.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        self.faults
            .read()
            .expect("fault hook lock poisoned")
            .clone()
    }

    /// Installs (or, with `None`, removes) a set of statically proven
    /// obligations. When installed, the mover-loop criteria the proof
    /// covers are elided at runtime and tallied in the audit's
    /// `statically_discharged` column instead of `discharged`; in debug
    /// builds every elided check is still evaluated dynamically and
    /// asserted to pass (the soundness cross-check).
    pub fn set_static_discharge(&self, facts: Option<Arc<StaticDischarge>>) {
        let armed = facts.as_ref().is_some_and(|f| f.any());
        self.static_armed.store(armed, Ordering::Release);
        *self
            .static_facts
            .write()
            .expect("static facts lock poisoned") = facts;
    }

    /// The installed static-discharge facts, if any.
    pub fn static_discharge(&self) -> Option<Arc<StaticDischarge>> {
        if !self.static_armed.load(Ordering::Acquire) {
            return None;
        }
        self.static_facts
            .read()
            .expect("static facts lock poisoned")
            .clone()
    }

    /// Is the runtime check for `(rule, clause)` statically discharged?
    /// One relaxed-ish load on the fast path when no plan is installed.
    pub(crate) fn statically_discharged(&self, rule: Rule, clause: Clause) -> bool {
        if !self.static_armed.load(Ordering::Acquire) {
            return false;
        }
        self.static_facts
            .read()
            .expect("static facts lock poisoned")
            .as_ref()
            .is_some_and(|f| f.discharges(rule, clause))
    }

    /// Records one injected fault in the audit. The machine calls this
    /// for rule denials; drivers call it when they act on a boundary or
    /// HTM fault, so the audit tallies faults that actually *fired*.
    pub fn note_injected(&self, kind: FaultKind) {
        self.audit.inject(kind);
    }

    /// Consults the hook at the entry of forward rule `rule` on `tid`;
    /// on a denial, records the injected fault and returns the clause
    /// the rule must report.
    pub(crate) fn fault_deny(&self, tid: ThreadId, rule: Rule) -> Option<Clause> {
        let hook = self.fault_hook()?;
        let clause = hook.deny_rule(tid, rule)?;
        self.audit.inject(FaultKind::Deny(rule));
        Some(clause)
    }

    /// Mints the next trace-event sequence number.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Mints a fresh transaction id.
    pub(crate) fn fresh_txn(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Locks the shared log state (the PUSH/UNPUSH/PULL/CMT critical
    /// section).
    pub(crate) fn lock(&self) -> MutexGuard<'_, SharedLog<S>> {
        self.shared.lock().expect("shared log mutex poisoned")
    }

    // ------------------------------------------------------------------
    // Audited primitive queries (the audit counts queries, not replays,
    // so the incremental path is invisible to it by construction).
    // ------------------------------------------------------------------

    /// Mover query with audit accounting; `shard` attributes the count.
    pub(crate) fn mover_q(
        &self,
        shard: usize,
        a: &Op<S::Method, S::Ret>,
        b: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.count_mover(shard);
        self.spec.mover(a, b)
    }

    /// `allows` over an explicit log (used for local-log criteria).
    pub(crate) fn allows_q(
        &self,
        shard: usize,
        log: &[Op<S::Method, S::Ret>],
        op: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.count_allowed(shard);
        self.spec.allows(log, op)
    }

    /// `allowed` over an explicit log (used for local-log criteria).
    pub(crate) fn allowed_q(&self, shard: usize, log: &[Op<S::Method, S::Ret>]) -> bool {
        self.audit.count_allowed(shard);
        self.spec.allowed(log)
    }

    /// `G allows op` (PUSH criterion (iii)), replaying only the
    /// uncommitted suffix when the incremental path is on.
    pub(crate) fn g_allows(
        &self,
        sh: &SharedLog<S>,
        shard: usize,
        op: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.count_allowed(shard);
        if self.incremental() {
            let states = self.suffix_states(sh, None);
            !self
                .spec
                .denote_from(&states, std::slice::from_ref(op))
                .is_empty()
        } else {
            self.spec.allows(&sh.global.ops(), op)
        }
    }

    /// `allowed (G ∖ skip)` (UNPUSH criterion (ii)). `skip` is an
    /// uncommitted entry, so it lies past the cache boundary; if it ever
    /// does not (unreachable through the rule API), fall back to a full
    /// replay.
    pub(crate) fn g_allowed_without(&self, sh: &SharedLog<S>, shard: usize, skip: OpId) -> bool {
        self.audit.count_allowed(shard);
        let in_suffix = sh.global.position(skip).is_none_or(|p| p >= sh.cache.len);
        if self.incremental() && in_suffix {
            !self.suffix_states(sh, Some(skip)).is_empty()
        } else {
            let remaining: Vec<_> = sh
                .global
                .iter()
                .filter(|e| e.op.id != skip)
                .map(|e| e.op.clone())
                .collect();
            self.spec.allowed(&remaining)
        }
    }

    /// `⟦G⟧` (optionally skipping one suffix entry), from the cached
    /// committed-prefix denotation.
    fn suffix_states(&self, sh: &SharedLog<S>, skip: Option<OpId>) -> HashSet<S::State> {
        let suffix: Vec<Op<S::Method, S::Ret>> = sh.global.entries()[sh.cache.len..]
            .iter()
            .filter(|e| Some(e.op.id) != skip)
            .map(|e| e.op.clone())
            .collect();
        self.spec.denote_from(&sh.cache.states, &suffix)
    }

    // ------------------------------------------------------------------
    // Cache maintenance (called under the mutex).
    // ------------------------------------------------------------------

    /// Advances the cache over the newly committed prefix (after CMT).
    pub(crate) fn advance_cache(&self, sh: &mut SharedLog<S>) {
        while sh.cache.len < sh.global.len() {
            let e = &sh.global.entries()[sh.cache.len];
            if e.flag != GlobalFlag::Committed {
                break;
            }
            sh.cache.states = self
                .spec
                .denote_from(&sh.cache.states, std::slice::from_ref(&e.op));
            sh.cache.len += 1;
        }
    }

    /// Notes a removal at `pos` (after UNPUSH). Removals inside the cached
    /// prefix reset the cache; suffix removals leave it intact.
    pub(crate) fn note_removal(&self, sh: &mut SharedLog<S>, pos: usize) {
        if pos < sh.cache.len {
            sh.cache.reset(self.spec.initial_states());
        }
    }

    /// A deep copy with its own generators, audit and log state — used by
    /// [`Machine::clone`](crate::machine::Machine), which re-points every
    /// handle at the copy so clones share nothing (the property the model
    /// checker's branching relies on).
    pub(crate) fn deep_clone(&self) -> Self
    where
        S: Clone,
    {
        Self {
            spec: self.spec.clone(),
            mode: self.mode,
            ids: self.ids.clone(),
            next_txn: AtomicU64::new(self.next_txn.load(Ordering::Relaxed)),
            seq: AtomicU64::new(self.seq.load(Ordering::Relaxed)),
            audit: self.audit.clone(),
            incremental: AtomicBool::new(self.incremental()),
            shared: Mutex::new(self.lock().clone()),
            faults: RwLock::new(self.fault_hook()),
            faults_armed: AtomicBool::new(self.faults_armed.load(Ordering::Acquire)),
            static_facts: RwLock::new(self.static_discharge()),
            static_armed: AtomicBool::new(self.static_armed.load(Ordering::Acquire)),
        }
    }
}
