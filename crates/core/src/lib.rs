//! # pushpull-core
//!
//! An executable rendering of **“The Push/Pull Model of Transactions”**
//! (Koskinen & Parkinson, PLDI 2015).
//!
//! The Push/Pull model unifies a wide range of transactional-memory
//! algorithms under seven rules over *logs of operations*: transactions
//! [`app`](machine::Machine::app)ly effects locally,
//! [`push`](machine::Machine::push) them to a shared log (or
//! [`unpush`](machine::Machine::unpush) to recall them),
//! [`pull`](machine::Machine::pull) the effects of other — possibly
//! uncommitted — transactions (or [`unpull`](machine::Machine::unpull) to
//! detangle), and [`commit`](machine::Machine::commit). Each rule carries
//! *criteria* phrased with a sequential specification
//! ([`spec::SeqSpec`]) and Lipton movers ([`spec::SeqSpec::mover`],
//! Definition 4.1); the paper proves that criteria-respecting runs are
//! serializable (Theorem 5.17).
//!
//! This crate makes all of that executable:
//!
//! * [`lang`] — the generic transaction language with `step`/`fin` (§3);
//! * [`spec`] — sequential specifications: `allowed` induced by a
//!   denotational semantics, plus mover oracles (§3, §4);
//! * [`precongruence`] — decidable checkers for the coinductive `≼`
//!   (Definition 3.1) and the executable content of Lemmas 5.1–5.3;
//! * [`atomic`] — the atomic-semantics oracle (§3, Figure 3);
//! * [`log`], [`op`] — local/global logs with `npshd/pshd/pld` and
//!   `gUCmt/gCmt` flags (§4);
//! * [`machine`] — the PUSH/PULL machine with every criterion checked at
//!   runtime (§4, Figure 5);
//! * [`serializability`] — the independent oracle re-verifying
//!   Theorem 5.17 on concrete runs;
//! * [`opacity`] — the opaque fragments of §6.1;
//! * [`invariants`] — the §5 invariants (`I_LG`, `I_slideR`, …,
//!   `cmtpres`) as checkable predicates;
//! * [`trace`] — rule-level traces, rendered like Figure 7;
//! * [`toy`] — a tiny counter specification for examples and tests.
//!
//! ## Quick start
//!
//! ```
//! use pushpull_core::machine::Machine;
//! use pushpull_core::lang::Code;
//! use pushpull_core::toy::{ToyCounter, CounterMethod};
//! use pushpull_core::serializability::check_machine;
//!
//! // Two threads increment a shared counter transactionally.
//! let mut m = Machine::new(ToyCounter::with_bound(16));
//! let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
//! let b = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
//!
//! // Interleaved execution: both apply locally, then push and commit.
//! m.app_auto(a)?;
//! m.app_auto(b)?;               // interleaving!
//! m.push_all_and_commit(a)?;    // optimistic commit sequence
//! m.push_all_and_commit(b)?;
//!
//! assert!(check_machine(&m).is_serializable());
//! assert_eq!(m.global().committed_ops().len(), 2);
//! # Ok::<(), pushpull_core::error::MachineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod atomic;
pub mod audit;
pub mod certificate;
pub mod error;
pub mod faults;
pub mod global;
pub mod group;
pub mod handle;
pub mod invariants;
pub mod lang;
pub mod log;
pub mod machine;
pub mod op;
pub mod opacity;
pub mod precongruence;
pub mod rng;
pub mod scope;
pub mod serializability;
pub mod smallvec;
pub mod snapcell;
pub mod spec;
pub mod static_facts;
pub mod structural;
pub mod toy;
pub mod trace;
pub mod transport;

pub use arena::{ArenaRef, SlabArena};
pub use certificate::SpecCertificate;
pub use error::{Clause, CriterionViolation, MachineError, MachineResult, Rule};
pub use faults::{BoundaryFault, FaultHook, FaultKind, HtmFault, TransportFault};
pub use global::{CommittedTxn, GlobalState, GroupStats, TxnKind};
pub use group::{commit_group, GroupOutcome, GroupTxnResult};
pub use handle::TxnHandle;
pub use lang::Code;
pub use log::{GlobalFlag, GlobalLog, LocalFlag, LocalLog};
pub use machine::{CheckMode, Machine};
pub use op::{Op, OpId, ThreadId, TxnId};
pub use scope::{NestingStats, ScopeKind};
pub use smallvec::SmallVec;
pub use snapcell::SnapCell;
pub use spec::{KeySet, OpInverse, SeqSpec};
pub use static_facts::{RulePattern, StaticDischarge};
pub use trace::{Event, Trace};
pub use transport::{
    ChannelTransport, FallbackMode, LocalTransport, RetryBackoff, SeededBackoff, ShardTransport,
    TransportConfig, TransportError, TransportStats,
};
