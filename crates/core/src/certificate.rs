//! Machine-checked soundness certificates for sequential specifications.
//!
//! The sharded global log and the static-discharge fast path both trust
//! hand-written [`SeqSpec`](crate::spec::SeqSpec) declarations —
//! `method_keys` footprints and `method_mover` overrides. A
//! [`SpecCertificate`] is the output of cross-checking every such
//! declaration against the ground truth derived exhaustively from the
//! denotational semantics (the `pushpull-analysis` certifier does the
//! deriving; this type lives in core so
//! [`GlobalState`](crate::global::GlobalState) can gate its arming paths
//! on it without a dependency cycle).
//!
//! A certificate records, over a finite method alphabet:
//!
//! * the **checked mover matrix** — the exhaustive Definition 4.1
//!   method-level relation every surviving declaration agrees with;
//! * the **footprint cover** — each method's declared key set (or its
//!   absence, which forces the coarse path) plus the inferred conflict
//!   component it belongs to;
//! * the **discharge set** — the rule obligations the matrix proves for
//!   any program over the alphabet;
//! * the finding counts of the certification run. A certificate with a
//!   nonzero error count is *invalid*: the machine refuses to arm the
//!   unsafe fast paths on it and demotes to coarse mode instead.
//!
//! Certificates are serializable without any external crates: a
//! line-oriented text form ([`SpecCertificate::to_text`] /
//! [`SpecCertificate::parse`]) round-trips exactly, so a CI job can emit
//! one and a later run can re-check it.

use std::fmt;

/// The serialization format tag; bump on incompatible layout changes.
const FORMAT_TAG: &str = "pushpull-spec-certificate v2";

/// A machine-checked certificate that a spec's footprint and mover
/// declarations agree with the exhaustively derived ground truth.
///
/// Non-generic on purpose, like
/// [`StaticDischarge`](crate::static_facts::StaticDischarge): the
/// certifier works over a concrete spec, but the *verdict* is plain
/// data, so [`GlobalState`](crate::global::GlobalState) and the harness
/// can carry it without becoming generic over the spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecCertificate {
    /// Name of the certified specification (e.g. `"bank"`).
    pub spec_name: String,
    /// Display names of the certified method alphabet, in matrix order.
    pub methods: Vec<String>,
    /// Row-major checked method-level mover matrix over `methods`:
    /// `matrix[i * methods.len() + j]` answers `methods[i] ◁ methods[j]`.
    /// `None` marks a pair the certifier could not decide (never emitted
    /// for fully enumerable specs).
    pub matrix: Vec<Option<bool>>,
    /// Declared footprint per method (`None` = undeclared: the method is
    /// routed coarse).
    pub footprints: Vec<Option<Vec<u64>>>,
    /// Inferred conflict component per method — the minimal sound
    /// footprint assignment: methods in distinct components commute
    /// exhaustively and may live on distinct shards.
    pub components: Vec<usize>,
    /// Rule obligations the checked matrix discharges for *any* program
    /// over the alphabet, rendered `"RULE (clause)"`.
    pub obligations: Vec<String>,
    /// The inverse-law verdict over the certified alphabet:
    /// `Some(true)` — the spec claims [`has_inverses`] and the round-trip
    /// law `⟦ℓ · op · op⁻¹⟧ = ⟦ℓ⟧` (plus state-identity for `ReadOnly`
    /// verdicts) was proven exhaustively, so open-nested scopes may be
    /// armed under strict mode; `Some(false)` — the claim was *refuted*
    /// (also counted in `errors`); `None` — the spec does not claim
    /// invertibility, so open nesting stays per-op-checked at commit and
    /// strict mode refuses to open such scopes.
    ///
    /// [`has_inverses`]: crate::spec::SeqSpec::has_inverses
    pub inverse_law: Option<bool>,
    /// Distinct declared footprint keys (the shard-count recommendation
    /// input).
    pub shard_keys: usize,
    /// Error-severity findings of the certification run. Nonzero ⇒ the
    /// certificate is invalid and must not arm anything.
    pub errors: usize,
    /// Warning-severity findings (e.g. coarse-forcing `None` footprints).
    pub warnings: usize,
    /// Note-severity findings (e.g. conservative mover declarations).
    pub notes: usize,
}

impl SpecCertificate {
    /// Is this certificate sound to arm fast paths on? (No
    /// error-severity finding survived certification.)
    pub fn is_valid(&self) -> bool {
        self.errors == 0
    }

    /// May open-nested scopes be armed on this certificate? Requires a
    /// valid certificate whose inverse law was proven (not merely
    /// unclaimed): a parent abort must be able to trust that replaying
    /// the registered compensations restores the abstract state.
    pub fn open_nesting_certified(&self) -> bool {
        self.is_valid() && self.inverse_law == Some(true)
    }

    /// The checked mover verdict for `methods[i] ◁ methods[j]`.
    pub fn mover(&self, i: usize, j: usize) -> Option<bool> {
        self.matrix
            .get(i * self.methods.len() + j)
            .copied()
            .flatten()
    }

    /// Count of `Some(true)` cells in the checked matrix.
    pub fn proven_pairs(&self) -> usize {
        self.matrix.iter().filter(|c| **c == Some(true)).count()
    }

    /// Number of distinct inferred conflict components.
    pub fn component_count(&self) -> usize {
        let mut seen: Vec<usize> = self.components.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Serializes the certificate to its line-oriented text form
    /// (round-tripped exactly by [`SpecCertificate::parse`]). Field
    /// separators inside method lines are `" | "`; method names are
    /// sanitized so the format stays unambiguous.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(FORMAT_TAG);
        out.push('\n');
        out.push_str(&format!("spec: {}\n", sanitize(&self.spec_name)));
        out.push_str(&format!("shard-keys: {}\n", self.shard_keys));
        out.push_str(&format!(
            "findings: errors={} warnings={} notes={}\n",
            self.errors, self.warnings, self.notes
        ));
        out.push_str(&format!("obligations: {}\n", self.obligations.join("; ")));
        out.push_str(&format!(
            "inverse-law: {}\n",
            match self.inverse_law {
                Some(true) => "certified",
                Some(false) => "refuted",
                None => "unchecked",
            }
        ));
        out.push_str(&format!("methods: {}\n", self.methods.len()));
        for (i, name) in self.methods.iter().enumerate() {
            let keys = match &self.footprints[i] {
                Some(ks) => {
                    if ks.is_empty() {
                        String::from("")
                    } else {
                        ks.iter()
                            .map(|k| k.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    }
                }
                None => String::from("-"),
            };
            out.push_str(&format!(
                "method: {} | keys={} | component={}\n",
                sanitize(name),
                keys,
                self.components[i]
            ));
        }
        let cells: String = self
            .matrix
            .iter()
            .map(|c| match c {
                Some(true) => 'T',
                Some(false) => 'F',
                None => '?',
            })
            .collect();
        out.push_str(&format!("matrix: {cells}\n"));
        out.push_str("end\n");
        out
    }

    /// Parses the text form produced by [`SpecCertificate::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line: wrong format
    /// tag, missing section, or a count that disagrees with the data.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let tag = lines.next().ok_or("empty certificate")?;
        if tag.trim() != FORMAT_TAG {
            return Err(format!("unrecognized format tag {tag:?}"));
        }
        let spec_name = field(lines.next(), "spec")?.to_string();
        let shard_keys: usize = field(lines.next(), "shard-keys")?
            .parse()
            .map_err(|e| format!("bad shard-keys: {e}"))?;
        let findings = field(lines.next(), "findings")?.to_string();
        let mut errors = 0;
        let mut warnings = 0;
        let mut notes = 0;
        for part in findings.split_whitespace() {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("bad findings field {part:?}"))?;
            let v: usize = v.parse().map_err(|e| format!("bad findings count: {e}"))?;
            match k {
                "errors" => errors = v,
                "warnings" => warnings = v,
                "notes" => notes = v,
                _ => return Err(format!("unknown findings key {k:?}")),
            }
        }
        let obligations_line = field(lines.next(), "obligations")?.to_string();
        let obligations: Vec<String> = if obligations_line.is_empty() {
            Vec::new()
        } else {
            obligations_line.split("; ").map(String::from).collect()
        };
        let inverse_law = match field(lines.next(), "inverse-law")? {
            "certified" => Some(true),
            "refuted" => Some(false),
            "unchecked" => None,
            other => return Err(format!("bad inverse-law verdict {other:?}")),
        };
        let n: usize = field(lines.next(), "methods")?
            .parse()
            .map_err(|e| format!("bad method count: {e}"))?;
        let mut methods = Vec::with_capacity(n);
        let mut footprints = Vec::with_capacity(n);
        let mut components = Vec::with_capacity(n);
        for i in 0..n {
            let body = field(lines.next(), "method")?;
            let mut parts = body.split(" | ");
            let name = parts
                .next()
                .ok_or_else(|| format!("method {i}: missing name"))?;
            let keys = parts
                .next()
                .and_then(|p| p.strip_prefix("keys="))
                .ok_or_else(|| format!("method {i}: missing keys field"))?;
            let component: usize = parts
                .next()
                .and_then(|p| p.strip_prefix("component="))
                .ok_or_else(|| format!("method {i}: missing component field"))?
                .parse()
                .map_err(|e| format!("method {i}: bad component: {e}"))?;
            let fp = match keys {
                "-" => None,
                "" => Some(Vec::new()),
                list => Some(
                    list.split(',')
                        .map(|k| {
                            k.parse::<u64>()
                                .map_err(|e| format!("method {i}: bad key {k:?}: {e}"))
                        })
                        .collect::<Result<Vec<u64>, String>>()?,
                ),
            };
            methods.push(name.to_string());
            footprints.push(fp);
            components.push(component);
        }
        let cells = field(lines.next(), "matrix")?;
        if cells.len() != n * n {
            return Err(format!(
                "matrix has {} cells, expected {}",
                cells.len(),
                n * n
            ));
        }
        let matrix: Vec<Option<bool>> = cells
            .chars()
            .map(|c| match c {
                'T' => Ok(Some(true)),
                'F' => Ok(Some(false)),
                '?' => Ok(None),
                other => Err(format!("bad matrix cell {other:?}")),
            })
            .collect::<Result<_, String>>()?;
        match lines.next() {
            Some("end") => {}
            other => return Err(format!("expected trailing 'end', got {other:?}")),
        }
        Ok(SpecCertificate {
            spec_name,
            methods,
            matrix,
            footprints,
            components,
            obligations,
            inverse_law,
            shard_keys,
            errors,
            warnings,
            notes,
        })
    }
}

impl fmt::Display for SpecCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate[{}]: {} methods, {}/{} mover pairs proven, {} component(s), \
             {} shard key(s), {} obligation(s) discharged, inverse law {} — {}",
            self.spec_name,
            self.methods.len(),
            self.proven_pairs(),
            self.matrix.len(),
            self.component_count(),
            self.shard_keys,
            self.obligations.len(),
            match self.inverse_law {
                Some(true) => "certified",
                Some(false) => "refuted",
                None => "unchecked",
            },
            if self.is_valid() {
                "VALID".to_string()
            } else {
                format!("INVALID ({} error(s))", self.errors)
            }
        )
    }
}

/// Keeps method display names from colliding with the format's own
/// delimiters (`" | "` field separators, line structure).
fn sanitize(name: &str) -> String {
    name.replace('|', "/").replace(['\n', '\r'], " ")
}

/// Strips the `"{key}: "` prefix from a line, erroring when the line is
/// missing or labelled differently.
fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("missing '{key}:' line"))?;
    line.strip_prefix(key)
        .and_then(|r| {
            r.strip_prefix(": ")
                .or(if r == ":" { Some("") } else { None })
        })
        .ok_or_else(|| format!("expected '{key}: …', got {line:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpecCertificate {
        SpecCertificate {
            spec_name: "set".into(),
            methods: vec!["add(1)".into(), "remove(1)".into(), "contains(2)".into()],
            matrix: vec![
                Some(true),
                Some(false),
                Some(true),
                Some(false),
                Some(true),
                Some(true),
                Some(true),
                Some(true),
                Some(true),
            ],
            footprints: vec![Some(vec![1]), Some(vec![1]), Some(vec![2])],
            components: vec![0, 0, 1],
            obligations: vec!["PUSH (i)".into(), "PULL (iii)".into()],
            inverse_law: Some(true),
            shard_keys: 2,
            errors: 0,
            warnings: 1,
            notes: 2,
        }
    }

    #[test]
    fn text_form_round_trips() {
        let cert = sample();
        let text = cert.to_text();
        let parsed = SpecCertificate::parse(&text).unwrap();
        assert_eq!(parsed, cert);
        // And the round-trip is a fixed point.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn none_footprints_and_empty_obligations_round_trip() {
        let mut cert = sample();
        cert.footprints[1] = None;
        cert.obligations.clear();
        let parsed = SpecCertificate::parse(&cert.to_text()).unwrap();
        assert_eq!(parsed, cert);
    }

    #[test]
    fn inverse_law_verdicts_round_trip_and_gate_open_nesting() {
        let mut cert = sample();
        assert!(cert.open_nesting_certified());
        for law in [Some(true), Some(false), None] {
            cert.inverse_law = law;
            let parsed = SpecCertificate::parse(&cert.to_text()).unwrap();
            assert_eq!(parsed.inverse_law, law);
        }
        cert.inverse_law = None;
        assert!(!cert.open_nesting_certified());
        cert.inverse_law = Some(true);
        cert.errors = 1;
        assert!(
            !cert.open_nesting_certified(),
            "invalid certificates arm nothing"
        );
    }

    #[test]
    fn validity_tracks_error_count() {
        let mut cert = sample();
        assert!(cert.is_valid());
        cert.errors = 1;
        assert!(!cert.is_valid());
        assert!(cert.to_string().contains("INVALID"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(SpecCertificate::parse("").is_err());
        assert!(SpecCertificate::parse("bogus v9\n").is_err());
        let truncated = sample().to_text().replace("end\n", "");
        assert!(SpecCertificate::parse(&truncated).is_err());
        let short_matrix = sample().to_text().replace("matrix: ", "matrix: T");
        assert!(SpecCertificate::parse(&short_matrix).is_err());
    }

    #[test]
    fn mover_indexes_row_major() {
        let cert = sample();
        assert_eq!(cert.mover(0, 0), Some(true));
        assert_eq!(cert.mover(0, 1), Some(false));
        assert_eq!(cert.mover(1, 0), Some(false));
        assert_eq!(cert.mover(2, 2), Some(true));
        assert_eq!(cert.proven_pairs(), 7);
        assert_eq!(cert.component_count(), 2);
    }

    #[test]
    fn sanitize_defuses_delimiters() {
        let mut cert = sample();
        cert.methods[0] = "weird | name\nwith newline".into();
        let parsed = SpecCertificate::parse(&cert.to_text()).unwrap();
        assert_eq!(parsed.methods[0], "weird / name with newline");
        assert_eq!(parsed.methods.len(), 3);
    }
}
