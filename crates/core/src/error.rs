//! Error types for the PUSH/PULL machine.
//!
//! Every rule of Figure 5 comes with *criteria*. The checked machine turns
//! each criterion into a runtime check; a failed check yields a
//! [`CriterionViolation`] identifying the rule and clause exactly as the
//! paper names them ("PUSH criterion (ii)" etc.), which is what a user
//! proving their algorithm correct needs to see.

use std::error::Error;
use std::fmt;

use crate::op::{OpId, ThreadId};

/// The seven PUSH/PULL rules (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// APPly an operation locally.
    App,
    /// UNAPPly: rewind the most recent unpushed local operation.
    UnApp,
    /// PUSH an operation to the shared log.
    Push,
    /// UNPUSH: recall an operation from the shared log.
    UnPush,
    /// PULL another transaction's operation into the local view.
    Pull,
    /// UNPULL: discard knowledge of a pulled operation.
    UnPull,
    /// CMT: commit the transaction.
    Cmt,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::App => "APP",
            Rule::UnApp => "UNAPP",
            Rule::Push => "PUSH",
            Rule::UnPush => "UNPUSH",
            Rule::Pull => "PULL",
            Rule::UnPull => "UNPULL",
            Rule::Cmt => "CMT",
        };
        f.write_str(s)
    }
}

/// Which clause of a rule's premise failed, using the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clause {
    /// Criterion (i).
    I,
    /// Criterion (ii).
    Ii,
    /// Criterion (iii).
    Iii,
    /// Criterion (iv).
    Iv,
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Clause::I => "(i)",
            Clause::Ii => "(ii)",
            Clause::Iii => "(iii)",
            Clause::Iv => "(iv)",
        };
        f.write_str(s)
    }
}

/// A failed rule criterion: the serializability proof obligation that the
/// attempted step does not discharge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriterionViolation {
    /// The rule whose premise failed.
    pub rule: Rule,
    /// The clause, in the paper's numbering.
    pub clause: Clause,
    /// Human-readable explanation with the offending operation(s).
    pub detail: String,
}

impl fmt::Display for CriterionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} criterion {} violated: {}",
            self.rule, self.clause, self.detail
        )
    }
}

impl Error for CriterionViolation {}

/// Errors returned by machine rule applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The thread index does not name a live thread.
    NoSuchThread(ThreadId),
    /// The operation id was not found where the rule requires it.
    NoSuchOp(OpId),
    /// The operation exists but carries the wrong flag for this rule
    /// (e.g. UNPUSH of an `npshd` entry).
    WrongFlag {
        /// The operation in question.
        op: OpId,
        /// What the rule required.
        expected: &'static str,
        /// What was found.
        found: &'static str,
    },
    /// A rule criterion failed (the serializability obligation).
    Criterion(CriterionViolation),
    /// The thread has no remaining transaction to run.
    ThreadFinished(ThreadId),
    /// APP was attempted but `step(c)` offers no such `(m, c′)` pair.
    NoSuchStep(ThreadId),
    /// APP could not resolve any allowed return value for the method.
    NoAllowedResult(ThreadId),
    /// UNAPP on a thread whose last own entry is not `npshd`
    /// (or whose local log is empty).
    NothingToUnapply(ThreadId),
    /// A nested-scope exit (`commit_nested` / `abort_nested` /
    /// `abort_to_checkpoint`) was requested on a thread with no scope
    /// open at the required position.
    NoScope(ThreadId),
    /// An open-nested scope tried to commit, but the spec declares one
    /// of its operations non-invertible, so no compensating transaction
    /// can be registered with the parent.
    NotInvertible {
        /// The thread whose open scope could not commit.
        thread: ThreadId,
        /// The operation with no spec-defined inverse.
        op: OpId,
    },
    /// An open-nested scope was refused at entry: strict certificate
    /// mode is on and no valid certificate with a proven inverse law is
    /// installed.
    OpenNestingUncertified(ThreadId),
    /// The shard transport exhausted its robustness envelope: the
    /// routed shard stayed unreachable past the retry budget and the
    /// coarse degradation fallback was disabled (or itself unreachable).
    /// Not a criterion violation — drivers must propagate it, so a
    /// persistent partition terminates the run cleanly instead of
    /// hanging.
    TransportExhausted {
        /// The thread whose request could not be delivered.
        thread: ThreadId,
        /// The unreachable shard.
        shard: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoSuchThread(t) => write!(f, "no such thread {t}"),
            MachineError::NoSuchOp(id) => write!(f, "no such operation {id}"),
            MachineError::WrongFlag {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "operation {op} has flag {found}, rule requires {expected}"
                )
            }
            MachineError::Criterion(v) => v.fmt(f),
            MachineError::ThreadFinished(t) => {
                write!(f, "thread {t} has finished all transactions")
            }
            MachineError::NoSuchStep(t) => write!(f, "no matching step(c) entry for thread {t}"),
            MachineError::NoAllowedResult(t) => {
                write!(
                    f,
                    "no allowed return value for the chosen method on thread {t}"
                )
            }
            MachineError::NothingToUnapply(t) => {
                write!(f, "last local entry of thread {t} is not npshd")
            }
            MachineError::NoScope(t) => {
                write!(f, "thread {t} has no nested scope open at that position")
            }
            MachineError::NotInvertible { thread, op } => {
                write!(
                    f,
                    "open-nested commit on thread {thread}: operation {op} \
                     has no spec-defined inverse"
                )
            }
            MachineError::OpenNestingUncertified(t) => {
                write!(
                    f,
                    "open-nested scope refused on thread {t}: strict mode requires \
                     a valid spec certificate with a proven inverse law"
                )
            }
            MachineError::TransportExhausted { thread, shard } => {
                write!(
                    f,
                    "shard transport exhausted on thread {thread}: shard {shard} \
                     unreachable past the retry and degradation budget"
                )
            }
        }
    }
}

impl Error for MachineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MachineError::Criterion(v) => Some(v),
            _ => None,
        }
    }
}

impl From<CriterionViolation> for MachineError {
    fn from(v: CriterionViolation) -> Self {
        MachineError::Criterion(v)
    }
}

impl MachineError {
    /// Convenience constructor for a criterion violation.
    pub fn criterion(rule: Rule, clause: Clause, detail: impl Into<String>) -> Self {
        MachineError::Criterion(CriterionViolation {
            rule,
            clause,
            detail: detail.into(),
        })
    }

    /// Is this a criterion violation (as opposed to a structural misuse)?
    pub fn is_criterion(&self) -> bool {
        matches!(self, MachineError::Criterion(_))
    }

    /// The violated rule, if this is a criterion violation.
    pub fn violated_rule(&self) -> Option<Rule> {
        match self {
            MachineError::Criterion(v) => Some(v.rule),
            _ => None,
        }
    }
}

/// Result alias for machine operations.
pub type MachineResult<T> = Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        let v = CriterionViolation {
            rule: Rule::Push,
            clause: Clause::Ii,
            detail: "op #3 cannot move right of #5".into(),
        };
        assert_eq!(
            v.to_string(),
            "PUSH criterion (ii) violated: op #3 cannot move right of #5"
        );
    }

    #[test]
    fn machine_error_source_chains_to_violation() {
        let err = MachineError::criterion(Rule::Cmt, Clause::Iii, "pulled op uncommitted");
        assert!(err.is_criterion());
        assert_eq!(err.violated_rule(), Some(Rule::Cmt));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn transport_exhaustion_is_not_a_criterion() {
        let err = MachineError::TransportExhausted {
            thread: ThreadId(2),
            shard: 5,
        };
        assert!(!err.is_criterion());
        assert_eq!(err.violated_rule(), None);
        assert!(err.to_string().contains("shard 5"));
    }

    #[test]
    fn non_criterion_errors_have_no_source() {
        let err = MachineError::NoSuchOp(OpId(3));
        assert!(!err.is_criterion());
        assert!(std::error::Error::source(&err).is_none());
        assert!(err.to_string().contains("#3"));
    }
}
