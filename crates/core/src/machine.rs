//! The PUSH/PULL machine (paper §4, Figures 4–6).
//!
//! A [`Machine`] holds a list of threads — each `{c, σ, L}`: remaining
//! code, stack and local log — and the shared global log `G`. The seven
//! rules of Figure 5 are methods: [`Machine::app`], [`Machine::unapp`],
//! [`Machine::push`], [`Machine::unpush`], [`Machine::pull`],
//! [`Machine::unpull`] and [`Machine::commit`]. In [`CheckMode::Checked`]
//! every rule *criterion* is verified before the step is taken; a failing
//! criterion returns [`MachineError::Criterion`] naming the rule and
//! clause. Because Theorem 5.17 proves any criteria-respecting run
//! serializable, algorithms driven through a checked machine are
//! serializable **by construction** on every run they take — the
//! independent oracle in [`crate::serializability`] re-verifies this in
//! the test suites.
//!
//! Threads execute a *sequence of transactions* (each program in the list
//! passed to [`Machine::add_thread`] is one `tx c` body). Nested
//! transactions are flattened, as in the paper.

use std::cell::RefCell;
use std::collections::VecDeque;

use crate::audit::CriteriaAudit;
use crate::error::{Clause, MachineError, MachineResult, Rule};
use crate::lang::Code;
use crate::log::{GlobalFlag, GlobalLog, LocalEntry, LocalFlag, LocalLog};
use crate::op::{Op, OpId, OpIdGen, ThreadId, TxnId};
use crate::spec::SeqSpec;
use crate::trace::{Event, Trace};

/// The `(method, continuation)` pairs `step(c)` offers a thread.
pub type StepOptions<M> = Vec<(M, Code<M>)>;

/// How strictly rule criteria are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Enforce every criterion of Figure 5, including the ones the paper
    /// grays out as "not strictly necessary" (PULL (iii), UNPUSH (i)).
    #[default]
    Checked,
    /// Enforce all black criteria but skip the grayed-out ones.
    RelaxedGray,
    /// Enforce only structural well-formedness (flags, membership), no
    /// commutativity or allowedness checks. Exists so benchmarks can
    /// measure the cost of checking; never use for correctness arguments.
    Unchecked,
}

/// A thread `{c, σ, L}` plus its queue of future transactions.
#[derive(Debug, Clone)]
pub struct Thread<S: SeqSpec> {
    /// Current transaction instance id.
    txn: TxnId,
    /// Remaining code of the current transaction (`None` once all
    /// transactions have completed — the paper's MS_END).
    code: Option<Code<S::Method>>,
    /// The original `tx c` body, for rewinds and the atomic oracle (`otx`).
    original: Code<S::Method>,
    /// Observation history of the current transaction (the stack σ).
    stack: Vec<(S::Method, S::Ret)>,
    /// The local log `L`.
    local: LocalLog<S::Method, S::Ret>,
    /// Transactions not yet started.
    pending: VecDeque<Code<S::Method>>,
    /// Commits performed by this thread.
    commits: u64,
    /// Aborts performed by this thread.
    aborts: u64,
}

impl<S: SeqSpec> Thread<S> {
    /// The current transaction instance id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The remaining code, if a transaction is active.
    pub fn code(&self) -> Option<&Code<S::Method>> {
        self.code.as_ref()
    }

    /// The original body of the current transaction (the paper's `otx`).
    pub fn original(&self) -> &Code<S::Method> {
        &self.original
    }

    /// The observation history (stack σ) of the current transaction.
    pub fn stack(&self) -> &[(S::Method, S::Ret)] {
        &self.stack
    }

    /// The local log `L`.
    pub fn local(&self) -> &LocalLog<S::Method, S::Ret> {
        &self.local
    }

    /// Has this thread completed all of its transactions?
    pub fn is_done(&self) -> bool {
        self.code.is_none() && self.pending.is_empty()
    }

    /// Number of committed transactions.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Number of aborted transaction attempts.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }
}

/// A committed transaction: its id and its own operations in local-log
/// order. The sequence of these, in commit order, is the serial witness
/// used by the serializability oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn<M, R> {
    /// The committed transaction instance.
    pub txn: TxnId,
    /// The thread that ran it.
    pub thread: ThreadId,
    /// The original transaction body (the paper's `otx`), for atomic replay.
    pub code: Code<M>,
    /// Own operations (pushed), in local order.
    pub ops: Vec<Op<M, R>>,
    /// Ids of operations this transaction had pulled, with the owning
    /// transaction (its dependencies).
    pub pulled_from: Vec<(OpId, TxnId)>,
}

/// The PUSH/PULL machine: threads `T`, shared log `G`, and a recorder.
#[derive(Debug, Clone)]
pub struct Machine<S: SeqSpec> {
    spec: S,
    threads: Vec<Thread<S>>,
    global: GlobalLog<S::Method, S::Ret>,
    ids: OpIdGen,
    next_txn: u64,
    trace: Trace<S::Method, S::Ret>,
    mode: CheckMode,
    committed: Vec<CommittedTxn<S::Method, S::Ret>>,
    audit: RefCell<CriteriaAudit>,
}

impl<S: SeqSpec> Machine<S> {
    /// Creates a machine over the given sequential specification, in
    /// [`CheckMode::Checked`].
    ///
    /// # Examples
    ///
    /// ```
    /// use pushpull_core::machine::Machine;
    /// use pushpull_core::lang::Code;
    /// use pushpull_core::toy::{ToyCounter, CounterMethod};
    ///
    /// let mut m = Machine::new(ToyCounter::with_bound(8));
    /// let t = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
    /// let op = m.app_auto(t)?;
    /// m.push(t, op)?;
    /// m.commit(t)?;
    /// assert_eq!(m.global().committed_ops().len(), 1);
    /// # Ok::<(), pushpull_core::error::MachineError>(())
    /// ```
    pub fn new(spec: S) -> Self {
        Self::with_mode(spec, CheckMode::Checked)
    }

    /// Creates a machine with an explicit [`CheckMode`].
    pub fn with_mode(spec: S, mode: CheckMode) -> Self {
        Self {
            spec,
            threads: Vec::new(),
            global: GlobalLog::new(),
            ids: OpIdGen::new(),
            next_txn: 0,
            trace: Trace::new(),
            mode,
            committed: Vec::new(),
            audit: RefCell::new(CriteriaAudit::default()),
        }
    }

    /// A snapshot of the criteria audit: which proof obligations this
    /// run has discharged (checked-and-passed) or violated, and how many
    /// primitive mover/`allowed` queries they cost.
    pub fn audit(&self) -> CriteriaAudit {
        self.audit.borrow().clone()
    }

    /// Clears the criteria audit counters.
    pub fn reset_audit(&mut self) {
        *self.audit.borrow_mut() = CriteriaAudit::default();
    }

    fn audit_pass(&self, rule: Rule, clause: Clause) {
        self.audit.borrow_mut().pass(rule, clause);
    }

    fn audit_fail(&self, rule: Rule, clause: Clause) {
        self.audit.borrow_mut().fail(rule, clause);
    }

    /// Mover query with audit accounting.
    fn mover_q(
        &self,
        a: &Op<S::Method, S::Ret>,
        b: &Op<S::Method, S::Ret>,
    ) -> bool {
        self.audit.borrow_mut().mover_queries += 1;
        self.spec.mover(a, b)
    }

    /// `allows` query with audit accounting.
    fn allows_q(&self, log: &[Op<S::Method, S::Ret>], op: &Op<S::Method, S::Ret>) -> bool {
        self.audit.borrow_mut().allowed_queries += 1;
        self.spec.allows(log, op)
    }

    /// `allowed` query with audit accounting.
    fn allowed_q(&self, log: &[Op<S::Method, S::Ret>]) -> bool {
        self.audit.borrow_mut().allowed_queries += 1;
        self.spec.allowed(log)
    }

    /// The sequential specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// The shared log `G`.
    pub fn global(&self) -> &GlobalLog<S::Method, S::Ret> {
        &self.global
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace<S::Method, S::Ret> {
        &self.trace
    }

    /// The current check mode.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Committed transactions in commit order (the serial witness).
    pub fn committed_txns(&self) -> &[CommittedTxn<S::Method, S::Ret>] {
        &self.committed
    }

    /// Number of threads (live and done).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Immutable access to a thread.
    pub fn thread(&self, tid: ThreadId) -> MachineResult<&Thread<S>> {
        self.threads.get(tid.0).ok_or(MachineError::NoSuchThread(tid))
    }

    fn thread_mut(&mut self, tid: ThreadId) -> MachineResult<&mut Thread<S>> {
        self.threads.get_mut(tid.0).ok_or(MachineError::NoSuchThread(tid))
    }

    /// Adds a thread that will run `programs` as a sequence of
    /// transactions (each element is one `tx c` body). The first
    /// transaction begins immediately.
    pub fn add_thread(&mut self, programs: Vec<Code<S::Method>>) -> ThreadId {
        let tid = ThreadId(self.threads.len());
        let mut pending: VecDeque<Code<S::Method>> = programs.into();
        let (code, original) = match pending.pop_front() {
            Some(c) => (Some(c.clone()), c),
            None => (None, Code::Skip),
        };
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        self.threads.push(Thread {
            txn,
            code,
            original,
            stack: Vec::new(),
            local: LocalLog::new(),
            pending,
            commits: 0,
            aborts: 0,
        });
        if self.threads[tid.0].code.is_some() {
            self.trace.record(Event::Begin { thread: tid, txn });
        }
        tid
    }

    /// Enqueues another transaction body on an existing thread.
    pub fn enqueue_txn(&mut self, tid: ThreadId, program: Code<S::Method>) -> MachineResult<()> {
        let begins_now;
        {
            let t = self.thread_mut(tid)?;
            if t.code.is_none() && t.pending.is_empty() {
                // Thread was done: restart it with this program.
                t.code = Some(program.clone());
                t.original = program;
                begins_now = Some(t.txn);
            } else {
                t.pending.push_back(program);
                begins_now = None;
            }
        }
        if begins_now.is_some() {
            // Mint a fresh txn id for the restarted thread.
            let txn = TxnId(self.next_txn);
            self.next_txn += 1;
            let t = self.thread_mut(tid)?;
            t.txn = txn;
            self.trace.record(Event::Begin { thread: tid, txn });
        }
        Ok(())
    }

    fn active_code(&self, tid: ThreadId) -> MachineResult<&Code<S::Method>> {
        self.thread(tid)?.code.as_ref().ok_or(MachineError::ThreadFinished(tid))
    }

    /// `step(c)` for the thread's current code: every next reachable
    /// method with its continuation.
    pub fn step_options(&self, tid: ThreadId) -> MachineResult<StepOptions<S::Method>> {
        Ok(self.active_code(tid)?.step())
    }

    /// `fin(c)` for the thread's current code.
    pub fn can_finish(&self, tid: ThreadId) -> MachineResult<bool> {
        Ok(self.active_code(tid)?.fin())
    }

    /// Return values `r` such that the local log allows `⟨m, r⟩`
    /// (APP criterion (ii) candidates).
    pub fn allowed_results(&self, tid: ThreadId, method: &S::Method) -> MachineResult<Vec<S::Ret>> {
        let t = self.thread(tid)?;
        let states = self.spec.denote(&t.local.ops());
        let mut out: Vec<S::Ret> = Vec::new();
        for s in &states {
            for r in self.spec.results(s, method) {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        // Filter to those actually allowed from the full state set.
        out.retain(|r| {
            let op = Op::new(OpId(u64::MAX), t.txn, method.clone(), r.clone());
            !self.spec.denote_from(&states, std::slice::from_ref(&op)).is_empty()
        });
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Structural reductions (Figure 6).
    // ------------------------------------------------------------------

    /// The structural steps (Figure 6) applicable to the thread's current
    /// code at its leftmost redex.
    pub fn struct_options(&self, tid: ThreadId) -> MachineResult<Vec<crate::structural::StructStep>> {
        Ok(crate::structural::applicable(self.active_code(tid)?))
    }

    /// Applies one structural reduction (NONDETL/NONDETR/LOOP/SEMISKIP,
    /// with the SEMI congruence locating the redex) to the thread's code.
    ///
    /// Drivers normally work through `step`/`fin` and never need this;
    /// it exists for fidelity with the paper's `→rt` relation and for
    /// testing. Structural steps change no logs, so they record no trace
    /// event (they are invisible to the serializability argument).
    ///
    /// # Errors
    ///
    /// [`MachineError::NoSuchStep`] when the step does not apply.
    pub fn struct_step(
        &mut self,
        tid: ThreadId,
        step: crate::structural::StructStep,
    ) -> MachineResult<()> {
        let code = self.active_code(tid)?;
        match crate::structural::apply(code, step) {
            Some(next) => {
                self.thread_mut(tid)?.code = Some(next);
                Ok(())
            }
            None => Err(MachineError::NoSuchStep(tid)),
        }
    }

    // ------------------------------------------------------------------
    // The seven rules of Figure 5.
    // ------------------------------------------------------------------

    /// **APP**: applies `method` with continuation `cont` and return `ret`.
    ///
    /// Criteria: (i) `(method, cont) ∈ step(c)`; (ii) the local log allows
    /// `⟨m, σ, σ′, id⟩`; (iii) `id` fresh (by construction).
    ///
    /// # Errors
    ///
    /// [`MachineError::NoSuchStep`] if (i) fails,
    /// [`MachineError::Criterion`] if (ii) fails.
    pub fn app(
        &mut self,
        tid: ThreadId,
        method: S::Method,
        cont: Code<S::Method>,
        ret: S::Ret,
    ) -> MachineResult<OpId> {
        let checked = self.mode != CheckMode::Unchecked;
        let txn = self.thread(tid)?.txn;
        // Criterion (i): (m, c') ∈ step(c).
        let code = self.active_code(tid)?.clone();
        if checked && !code.step().iter().any(|(m, k)| *m == method && *k == cont) {
            return Err(MachineError::NoSuchStep(tid));
        }
        let id = self.ids.fresh();
        let op = Op::new(id, txn, method.clone(), ret.clone());
        // Criterion (ii): L allows op.
        if checked {
            let local_ops = self.thread(tid)?.local.ops();
            if !self.allows_q(&local_ops, &op) {
                self.audit_fail(Rule::App, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::App,
                    Clause::Ii,
                    format!("local log does not allow {:?} -> {:?}", method, ret),
                ));
            }
            self.audit_pass(Rule::App, Clause::Ii);
        }
        let t = self.thread_mut(tid)?;
        let saved_code = code;
        let saved_stack = t.stack.clone();
        t.stack.push((method.clone(), ret.clone()));
        t.code = Some(cont);
        t.local.push_entry(LocalEntry {
            op,
            flag: LocalFlag::NotPushed { saved_code, saved_stack },
        });
        self.trace.record(Event::App { thread: tid, op: id, method, ret });
        Ok(id)
    }

    /// **APP**, selecting the first `step(c)` option whose method equals
    /// `method` and the first allowed return value.
    pub fn app_method(&mut self, tid: ThreadId, method: &S::Method) -> MachineResult<OpId> {
        let options = self.step_options(tid)?;
        let (m, cont) = options
            .into_iter()
            .find(|(m, _)| m == method)
            .ok_or(MachineError::NoSuchStep(tid))?;
        let rets = self.allowed_results(tid, &m)?;
        let ret = rets.into_iter().next().ok_or(MachineError::NoAllowedResult(tid))?;
        self.app(tid, m, cont, ret)
    }

    /// **APP**, selecting the first `step(c)` option and the first allowed
    /// return value.
    pub fn app_auto(&mut self, tid: ThreadId) -> MachineResult<OpId> {
        let options = self.step_options(tid)?;
        let (m, cont) = options.into_iter().next().ok_or(MachineError::NoSuchStep(tid))?;
        let rets = self.allowed_results(tid, &m)?;
        let ret = rets.into_iter().next().ok_or(MachineError::NoAllowedResult(tid))?;
        self.app(tid, m, cont, ret)
    }

    /// **UNAPP**: rewinds the most recent local entry, which must be
    /// `npshd`; restores the saved code and stack.
    ///
    /// # Errors
    ///
    /// [`MachineError::NothingToUnapply`] if the local log is empty or its
    /// last entry is not `npshd`.
    pub fn unapp(&mut self, tid: ThreadId) -> MachineResult<OpId> {
        let t = self.thread_mut(tid)?;
        let entry = match t.local.entries().last() {
            Some(e) if e.flag.is_not_pushed() => t.local.pop_entry().expect("non-empty"),
            _ => return Err(MachineError::NothingToUnapply(tid)),
        };
        let (saved_code, saved_stack) = match entry.flag {
            LocalFlag::NotPushed { saved_code, saved_stack } => (saved_code, saved_stack),
            _ => unreachable!("checked above"),
        };
        t.code = Some(saved_code);
        t.stack = saved_stack;
        self.trace.record(Event::UnApp { thread: tid, op: entry.op.id, method: entry.op.method });
        Ok(entry.op.id)
    }

    /// **PUSH**: publishes a local `npshd` operation to the shared log.
    ///
    /// Criteria: (i) `op` moves across every *earlier* unpushed own
    /// operation (`op ◁ op′`, Def 4.1 — trivial when pushing in APP
    /// order); (ii) every uncommitted operation of *other* transactions in
    /// `G` moves right of `op` (`op_u ◁ op` fails ⇒ conflict), ensuring
    /// the pusher can still serialize before all concurrent uncommitted
    /// transactions; (iii) `G` allows `op`.
    ///
    /// # Errors
    ///
    /// [`MachineError::Criterion`] with the failing clause; `WrongFlag` /
    /// `NoSuchOp` on structural misuse.
    pub fn push(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        let checked = self.mode != CheckMode::Unchecked;
        let txn = self.thread(tid)?.txn;
        let (op, pos) = {
            let t = self.thread(tid)?;
            let pos = t.local.position(op_id).ok_or(MachineError::NoSuchOp(op_id))?;
            let entry = &t.local.entries()[pos];
            match entry.flag {
                LocalFlag::NotPushed { .. } => {}
                LocalFlag::Pushed { .. } => {
                    return Err(MachineError::WrongFlag { op: op_id, expected: "npshd", found: "pshd" })
                }
                LocalFlag::Pulled => {
                    return Err(MachineError::WrongFlag { op: op_id, expected: "npshd", found: "pld" })
                }
            }
            (entry.op.clone(), pos)
        };
        if checked {
            // Criterion (i): op ◁ op' for every earlier npshd own op'.
            let t = self.thread(tid)?;
            for e in &t.local.entries()[..pos] {
                if e.flag.is_not_pushed() && !self.mover_q(&op, &e.op) {
                    self.audit_fail(Rule::Push, Clause::I);
                    return Err(MachineError::criterion(
                        Rule::Push,
                        Clause::I,
                        format!("{} does not move across earlier unpushed {}", op.id, e.op.id),
                    ));
                }
            }
            self.audit_pass(Rule::Push, Clause::I);
            // Criterion (ii): every uncommitted op of other txns moves right of op.
            for g in self.global.iter() {
                if g.flag == GlobalFlag::Uncommitted && g.op.txn != txn && !self.mover_q(&g.op, &op)
                {
                    self.audit_fail(Rule::Push, Clause::Ii);
                    return Err(MachineError::criterion(
                        Rule::Push,
                        Clause::Ii,
                        format!(
                            "uncommitted {} of {} cannot move right of {}",
                            g.op.id, g.op.txn, op.id
                        ),
                    ));
                }
            }
            self.audit_pass(Rule::Push, Clause::Ii);
            // Criterion (iii): G allows op.
            if !self.allows_q(&self.global.ops(), &op) {
                self.audit_fail(Rule::Push, Clause::Iii);
                return Err(MachineError::criterion(
                    Rule::Push,
                    Clause::Iii,
                    format!("global log does not allow {}", op.id),
                ));
            }
            self.audit_pass(Rule::Push, Clause::Iii);
        }
        // Effect: flip flag, append to G.
        let t = self.thread_mut(tid)?;
        let entry = t.local.entry_mut(op_id).expect("position found above");
        let (saved_code, saved_stack) = match &entry.flag {
            LocalFlag::NotPushed { saved_code, saved_stack } => {
                (saved_code.clone(), saved_stack.clone())
            }
            _ => unreachable!("flag checked above"),
        };
        entry.flag = LocalFlag::Pushed { saved_code, saved_stack };
        self.global.push_uncommitted(op.clone());
        self.trace.record(Event::Push { thread: tid, op: op_id, method: op.method });
        Ok(())
    }

    /// **UNPUSH**: recalls a pushed operation from the shared log
    /// (implemented by real systems as an inverse operation).
    ///
    /// Criteria: (i, gray) `op` moves across everything after it in `G`
    /// (so the suffix does not depend on it); (ii) the remaining global
    /// log is still allowed.
    pub fn unpush(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        let checked = self.mode != CheckMode::Unchecked;
        let check_gray = self.mode == CheckMode::Checked;
        {
            let t = self.thread(tid)?;
            let entry = t.local.entry(op_id).ok_or(MachineError::NoSuchOp(op_id))?;
            match entry.flag {
                LocalFlag::Pushed { .. } => {}
                LocalFlag::NotPushed { .. } => {
                    return Err(MachineError::WrongFlag { op: op_id, expected: "pshd", found: "npshd" })
                }
                LocalFlag::Pulled => {
                    return Err(MachineError::WrongFlag { op: op_id, expected: "pshd", found: "pld" })
                }
            }
        }
        let gpos = self.global.position(op_id).ok_or(MachineError::NoSuchOp(op_id))?;
        let op = self.global.entries()[gpos].op.clone();
        if checked {
            // Criterion (i), gray: op slides right across the suffix.
            if check_gray {
                for g in &self.global.entries()[gpos + 1..] {
                    if !self.mover_q(&op, &g.op) {
                        self.audit_fail(Rule::UnPush, Clause::I);
                        return Err(MachineError::criterion(
                            Rule::UnPush,
                            Clause::I,
                            format!("{} cannot slide past later {}", op.id, g.op.id),
                        ));
                    }
                }
                self.audit_pass(Rule::UnPush, Clause::I);
            }
            // Criterion (ii): G without op is still allowed.
            let remaining: Vec<_> = self
                .global
                .iter()
                .filter(|e| e.op.id != op_id)
                .map(|e| e.op.clone())
                .collect();
            if !self.allowed_q(&remaining) {
                self.audit_fail(Rule::UnPush, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::UnPush,
                    Clause::Ii,
                    format!("global log without {} is not allowed", op.id),
                ));
            }
            self.audit_pass(Rule::UnPush, Clause::Ii);
        }
        self.global.remove_by_id(op_id);
        let t = self.thread_mut(tid)?;
        let entry = t.local.entry_mut(op_id).expect("checked above");
        let (saved_code, saved_stack) = match &entry.flag {
            LocalFlag::Pushed { saved_code, saved_stack } => {
                (saved_code.clone(), saved_stack.clone())
            }
            _ => unreachable!("flag checked above"),
        };
        entry.flag = LocalFlag::NotPushed { saved_code, saved_stack };
        self.trace.record(Event::UnPush { thread: tid, op: op_id, method: op.method });
        Ok(())
    }

    /// **PULL**: imports another transaction's published operation into
    /// the local view.
    ///
    /// Criteria: (i) not already pulled (`op ∉ L`); (ii) the local log
    /// allows `op`; (iii, gray) everything the transaction has done
    /// locally moves right of `op` (so the pull can be seen as having
    /// preceded the transaction).
    pub fn pull(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        let checked = self.mode != CheckMode::Unchecked;
        let check_gray = self.mode == CheckMode::Checked;
        let txn = self.thread(tid)?.txn;
        let gentry = self.global.entry(op_id).ok_or(MachineError::NoSuchOp(op_id))?.clone();
        if gentry.op.txn == txn {
            return Err(MachineError::WrongFlag {
                op: op_id,
                expected: "another transaction's op",
                found: "own op",
            });
        }
        // Criterion (i): op ∉ L. (Enforced in every mode — a duplicate
        // entry would corrupt the log structure — but only audited when
        // criteria checking is on, so Unchecked runs audit nothing.)
        if self.thread(tid)?.local.contains_id(op_id) {
            if checked {
                self.audit_fail(Rule::Pull, Clause::I);
            }
            return Err(MachineError::criterion(
                Rule::Pull,
                Clause::I,
                format!("{op_id} already pulled"),
            ));
        }
        if checked {
            self.audit_pass(Rule::Pull, Clause::I);
        }
        if checked {
            // Criterion (ii): L allows op.
            let local_ops = self.thread(tid)?.local.ops();
            if !self.allows_q(&local_ops, &gentry.op) {
                self.audit_fail(Rule::Pull, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::Pull,
                    Clause::Ii,
                    format!("local log does not allow pulled {}", op_id),
                ));
            }
            self.audit_pass(Rule::Pull, Clause::Ii);
            // Criterion (iii), gray: own local ops move right of op.
            if check_gray {
                for own in self.thread(tid)?.local.own_ops() {
                    if !self.mover_q(&own, &gentry.op) {
                        self.audit_fail(Rule::Pull, Clause::Iii);
                        return Err(MachineError::criterion(
                            Rule::Pull,
                            Clause::Iii,
                            format!("own {} cannot move right of pulled {}", own.id, op_id),
                        ));
                    }
                }
                self.audit_pass(Rule::Pull, Clause::Iii);
            }
        }
        let reachable_after = self
            .active_code(tid)
            .map(|c| c.reachable_methods())
            .unwrap_or_default();
        let t = self.thread_mut(tid)?;
        t.local.push_entry(LocalEntry { op: gentry.op.clone(), flag: LocalFlag::Pulled });
        self.trace.record(Event::Pull {
            thread: tid,
            op: op_id,
            from: gentry.op.txn,
            status_at_pull: gentry.flag,
            method: gentry.op.method,
            ret: gentry.op.ret,
            reachable_after,
        });
        Ok(())
    }

    /// **UNPULL**: discards a pulled operation from the local view.
    ///
    /// Criterion (i): the local log without `op` is still allowed (the
    /// transaction did nothing that depended on it).
    pub fn unpull(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        let checked = self.mode != CheckMode::Unchecked;
        {
            let t = self.thread(tid)?;
            let entry = t.local.entry(op_id).ok_or(MachineError::NoSuchOp(op_id))?;
            if !entry.flag.is_pulled() {
                return Err(MachineError::WrongFlag { op: op_id, expected: "pld", found: "npshd/pshd" });
            }
        }
        if checked {
            let remaining: Vec<_> = self
                .thread(tid)?
                .local
                .iter()
                .filter(|e| e.op.id != op_id)
                .map(|e| e.op.clone())
                .collect();
            if !self.allowed_q(&remaining) {
                self.audit_fail(Rule::UnPull, Clause::I);
                return Err(MachineError::criterion(
                    Rule::UnPull,
                    Clause::I,
                    format!("local log without {} is not allowed", op_id),
                ));
            }
            self.audit_pass(Rule::UnPull, Clause::I);
        }
        let t = self.thread_mut(tid)?;
        let entry = t.local.remove_by_id(op_id).expect("checked above");
        self.trace.record(Event::UnPull { thread: tid, op: op_id, method: entry.op.method });
        Ok(())
    }

    /// **CMT**: commits the current transaction.
    ///
    /// Criteria: (i) `fin(c)` — some path reaches `skip`; (ii) `L ⊆ G` —
    /// every own operation has been pushed; (iii) every pulled operation
    /// belongs to a committed transaction; (iv) own entries in `G` flip to
    /// `gCmt` (the `cmt` predicate — this is the effect).
    ///
    /// On success the thread's next pending transaction (if any) begins.
    pub fn commit(&mut self, tid: ThreadId) -> MachineResult<TxnId> {
        let checked = self.mode != CheckMode::Unchecked;
        let txn = self.thread(tid)?.txn;
        if checked {
            // Criterion (i): fin(c).
            if !self.active_code(tid)?.fin() {
                self.audit_fail(Rule::Cmt, Clause::I);
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::I,
                    "no method-free path to skip remains".to_string(),
                ));
            }
            self.audit_pass(Rule::Cmt, Clause::I);
            // Criterion (ii): all own ops pushed.
            if !self.thread(tid)?.local.fully_pushed() {
                self.audit_fail(Rule::Cmt, Clause::Ii);
                return Err(MachineError::criterion(
                    Rule::Cmt,
                    Clause::Ii,
                    "local log contains npshd operations".to_string(),
                ));
            }
            self.audit_pass(Rule::Cmt, Clause::Ii);
            // Criterion (iii): every pulled op is committed.
            for pulled in self.thread(tid)?.local.pulled_ops() {
                match self.global.entry(pulled.id) {
                    Some(e) if e.flag == GlobalFlag::Committed => {}
                    Some(_) => {
                        self.audit_fail(Rule::Cmt, Clause::Iii);
                        return Err(MachineError::criterion(
                            Rule::Cmt,
                            Clause::Iii,
                            format!("pulled {} is still uncommitted", pulled.id),
                        ))
                    }
                    None => {
                        self.audit_fail(Rule::Cmt, Clause::Iii);
                        return Err(MachineError::criterion(
                            Rule::Cmt,
                            Clause::Iii,
                            format!("pulled {} vanished from the global log", pulled.id),
                        ))
                    }
                }
            }
            self.audit_pass(Rule::Cmt, Clause::Iii);
        }
        // Criterion (iv) / effect: cmt(G, L, G').
        let (own_ops, pulled_from) = {
            let t = self.thread(tid)?;
            let pulled = t
                .local
                .iter()
                .filter(|e| e.flag.is_pulled())
                .map(|e| (e.op.id, e.op.txn))
                .collect();
            (t.local.own_ops(), pulled)
        };
        let local_snapshot = self.thread(tid)?.local.clone();
        let code = self.thread(tid)?.original.clone();
        let flipped = self.global.commit_local(&local_snapshot);
        self.committed.push(CommittedTxn { txn, thread: tid, code, ops: own_ops, pulled_from });
        self.trace.record(Event::Commit { thread: tid, txn, ops: flipped });
        let next_txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let t = self.thread_mut(tid)?;
        t.commits += 1;
        t.local = LocalLog::new();
        t.stack = Vec::new();
        match t.pending.pop_front() {
            Some(c) => {
                t.code = Some(c.clone());
                t.original = c;
                t.txn = next_txn;
                self.trace.record(Event::Begin { thread: tid, txn: next_txn });
            }
            None => {
                t.code = None;
            }
        }
        Ok(txn)
    }

    // ------------------------------------------------------------------
    // Derived operations (compositions of ⃗back rules).
    // ------------------------------------------------------------------

    /// Fully rewinds the current transaction (the composition of `⃗back`
    /// rules: UNPULL/UNPUSH/UNAPP from the tail) and restarts it as a
    /// fresh transaction instance with the original code.
    ///
    /// Records an `Abort` plus a `Begin` event.
    pub fn abort_and_retry(&mut self, tid: ThreadId) -> MachineResult<TxnId> {
        if self.thread(tid)?.code.is_none() {
            // A finished thread has nothing to abort; restarting its last
            // transaction here would resurrect committed work.
            return Err(MachineError::ThreadFinished(tid));
        }
        self.rewind_all(tid)?;
        let old = self.thread(tid)?.txn;
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let t = self.thread_mut(tid)?;
        t.aborts += 1;
        t.code = Some(t.original.clone());
        t.stack = Vec::new();
        t.txn = txn;
        self.trace.record(Event::Abort { thread: tid, txn: old });
        self.trace.record(Event::Begin { thread: tid, txn });
        Ok(txn)
    }

    /// Rewinds the current transaction completely: walking the local log
    /// from the tail, pulled entries are UNPULLed, pushed entries are
    /// UNPUSHed then UNAPPed, unpushed entries are UNAPPed.
    pub fn rewind_all(&mut self, tid: ThreadId) -> MachineResult<()> {
        loop {
            let last = match self.thread(tid)?.local.entries().last() {
                None => return Ok(()),
                Some(e) => (e.op.id, e.flag.clone()),
            };
            match last.1 {
                LocalFlag::Pulled => {
                    self.unpull(tid, last.0)?;
                }
                LocalFlag::Pushed { .. } => {
                    self.unpush(tid, last.0)?;
                    self.unapp(tid)?;
                }
                LocalFlag::NotPushed { .. } => {
                    self.unapp(tid)?;
                }
            }
        }
    }

    /// Rewinds the current transaction's local log down to `target_len`
    /// entries, taking whatever back rules the tail requires — the
    /// checkpoint/partial-abort mechanism of §6.2 ("placemarkers are set
    /// so that UNAPP only needs to be performed for some operations";
    /// the paper's model of checkpoints \[19\] and closed nesting \[27\]).
    ///
    /// # Errors
    ///
    /// Propagates criterion violations from the constituent UNPUSH/UNPULL
    /// steps (an UNAPP at the tail never fails).
    pub fn rewind_to(&mut self, tid: ThreadId, target_len: usize) -> MachineResult<()> {
        loop {
            let (len, last) = {
                let t = self.thread(tid)?;
                (
                    t.local.len(),
                    t.local.entries().last().map(|e| (e.op.id, e.flag.clone())),
                )
            };
            if len <= target_len {
                return Ok(());
            }
            match last {
                None => return Ok(()),
                Some((id, LocalFlag::Pulled)) => self.unpull(tid, id)?,
                Some((id, LocalFlag::Pushed { .. })) => {
                    self.unpush(tid, id)?;
                    self.unapp(tid)?;
                }
                Some((_, LocalFlag::NotPushed { .. })) => {
                    self.unapp(tid)?;
                }
            }
        }
    }

    /// Pushes every unpushed own operation in local order, then commits —
    /// the optimistic commit sequence ("PUSH everything and CMT at an
    /// uninterleaved moment", §6.2).
    pub fn push_all_and_commit(&mut self, tid: ThreadId) -> MachineResult<TxnId> {
        let unpushed: Vec<OpId> =
            self.thread(tid)?.local.not_pushed_ops().iter().map(|o| o.id).collect();
        for id in unpushed {
            self.push(tid, id)?;
        }
        self.commit(tid)
    }

    /// Ids of the current transaction's unpushed operations, in order.
    pub fn unpushed_ids(&self, tid: ThreadId) -> MachineResult<Vec<OpId>> {
        Ok(self.thread(tid)?.local.not_pushed_ops().iter().map(|o| o.id).collect())
    }

    /// Pulls every *committed* global operation not yet in the local log,
    /// in global-log order — how opaque transactions snapshot the shared
    /// state (§6.2: "transactions begin by PULLing all operations").
    pub fn pull_all_committed(&mut self, tid: ThreadId) -> MachineResult<usize> {
        let candidates: Vec<OpId> = {
            let t = self.thread(tid)?;
            self.global
                .iter()
                .filter(|e| e.flag == GlobalFlag::Committed && !t.local.contains_id(e.op.id))
                .map(|e| e.op.id)
                .collect()
        };
        let mut n = 0;
        for id in candidates {
            self.pull(tid, id)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{CounterMethod, ToyCounter};

    fn inc_code() -> Code<CounterMethod> {
        Code::method(CounterMethod::Inc)
    }

    fn machine() -> Machine<ToyCounter> {
        Machine::new(ToyCounter::with_bound(32))
    }

    #[test]
    fn app_push_commit_roundtrip() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        let txn = m.commit(t).unwrap();
        assert_eq!(m.global().committed_ops().len(), 1);
        assert!(m.thread(t).unwrap().is_done());
        assert_eq!(m.committed_txns().len(), 1);
        assert_eq!(m.committed_txns()[0].txn, txn);
        assert_eq!(m.trace().rule_names(t), vec!["BEGIN", "APP", "PUSH", "CMT"]);
    }

    #[test]
    fn commit_requires_fin() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        let err = m.commit(t).unwrap_err();
        assert_eq!(err.violated_rule(), Some(Rule::Cmt));
    }

    #[test]
    fn commit_requires_all_pushed() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        m.app_auto(t).unwrap();
        let err = m.commit(t).unwrap_err();
        match err {
            MachineError::Criterion(v) => {
                assert_eq!(v.rule, Rule::Cmt);
                assert_eq!(v.clause, Clause::Ii);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unapp_restores_code_and_stack() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), Code::method(CounterMethod::Get))]);
        let before = m.thread(t).unwrap().code().unwrap().clone();
        m.app_auto(t).unwrap();
        assert_ne!(m.thread(t).unwrap().code().unwrap(), &before);
        m.unapp(t).unwrap();
        assert_eq!(m.thread(t).unwrap().code().unwrap(), &before);
        assert!(m.thread(t).unwrap().stack().is_empty());
        assert!(m.thread(t).unwrap().local().is_empty());
    }

    #[test]
    fn unapp_requires_npshd_tail() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        assert!(matches!(m.unapp(t), Err(MachineError::NothingToUnapply(_))));
    }

    #[test]
    fn unpush_then_unapp_rewinds() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        assert_eq!(m.global().len(), 1);
        m.unpush(t, op).unwrap();
        assert_eq!(m.global().len(), 0);
        m.unapp(t).unwrap();
        assert!(m.thread(t).unwrap().local().is_empty());
    }

    #[test]
    fn push_criterion_ii_detects_conflict() {
        // Thread A pushes get(0); thread B then tries to push inc:
        // get(=0) cannot move right of inc (the read would change), so
        // PUSH criterion (ii) must fire.
        let mut m = machine();
        let a = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let b = m.add_thread(vec![inc_code()]);
        let ga = m.app_auto(a).unwrap();
        m.push(a, ga).unwrap();
        let ib = m.app_auto(b).unwrap();
        let err = m.push(b, ib).unwrap_err();
        match err {
            MachineError::Criterion(v) => {
                assert_eq!(v.rule, Rule::Push);
                assert_eq!(v.clause, Clause::Ii);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // After A commits, B's push succeeds.
        m.commit(a).unwrap();
        m.push(b, ib).unwrap();
        m.commit(b).unwrap();
    }

    #[test]
    fn pull_and_commit_dependency_gating() {
        // B pulls A's uncommitted op; B cannot commit until A commits.
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        // B observes the inc: get returns 1.
        let gb = m.app_method(b, &CounterMethod::Get).unwrap();
        let get_ret = m.thread(b).unwrap().stack().last().unwrap().1;
        assert_eq!(get_ret, 1, "pull made A's effect visible");
        m.push(b, gb).unwrap_err(); // get(=1) conflicts with A's uncommitted inc? No:
                                    // inc ◁ get(=1) must hold for push. inc·get1 ≼ get1·inc?
                                    // From 0: inc·get1 = {1}; get1·inc: get1 disallowed at 0 → ∅.
                                    // {1} ⊄ ∅ → criterion (ii) fires. B must wait for A.
        m.commit(a).unwrap();
        m.push(b, gb).unwrap();
        let err = m.commit(b);
        assert!(err.is_ok(), "pulled op now committed: {err:?}");
    }

    #[test]
    fn unpull_requires_independence() {
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        let _gb = m.app_method(b, &CounterMethod::Get).unwrap();
        // B's get observed 1; dropping the pulled inc would make the local
        // log disallowed, so UNPULL criterion (i) fires.
        let err = m.unpull(b, ia).unwrap_err();
        assert_eq!(err.violated_rule(), Some(Rule::UnPull));
        // Rewind the get, then the unpull goes through.
        m.unapp(b).unwrap();
        m.unpull(b, ia).unwrap();
        assert!(m.thread(b).unwrap().local().is_empty());
    }

    #[test]
    fn abort_and_retry_resets_everything() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.app_auto(t).unwrap();
        let txn0 = m.thread(t).unwrap().txn();
        let txn1 = m.abort_and_retry(t).unwrap();
        assert_ne!(txn0, txn1);
        assert!(m.thread(t).unwrap().local().is_empty());
        assert!(m.global().is_empty());
        assert_eq!(m.thread(t).unwrap().aborts(), 1);
        // Retry to completion.
        let a = m.app_auto(t).unwrap();
        let b = m.app_auto(t).unwrap();
        m.push(t, a).unwrap();
        m.push(t, b).unwrap();
        m.commit(t).unwrap();
        assert_eq!(m.global().committed_ops().len(), 2);
    }

    #[test]
    fn push_all_and_commit_is_the_optimistic_pattern() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        m.app_auto(t).unwrap();
        m.app_auto(t).unwrap();
        m.push_all_and_commit(t).unwrap();
        assert_eq!(m.global().committed_ops().len(), 2);
        assert_eq!(
            m.trace().rule_names(t),
            vec!["BEGIN", "APP", "APP", "PUSH", "PUSH", "CMT"]
        );
    }

    #[test]
    fn pull_all_committed_snapshots() {
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        let n = m.pull_all_committed(b).unwrap();
        assert_eq!(n, 1);
        let gb = m.app_method(b, &CounterMethod::Get).unwrap();
        assert_eq!(m.thread(b).unwrap().stack().last().unwrap().1, 1);
        m.push(b, gb).unwrap();
        m.commit(b).unwrap();
    }

    #[test]
    fn sequences_of_transactions_get_fresh_ids() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code(), inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        let txn0 = m.commit(t).unwrap();
        assert!(!m.thread(t).unwrap().is_done());
        let op2 = m.app_auto(t).unwrap();
        m.push(t, op2).unwrap();
        let txn1 = m.commit(t).unwrap();
        assert_ne!(txn0, txn1);
        assert!(m.thread(t).unwrap().is_done());
        assert_eq!(m.thread(t).unwrap().commits(), 2);
    }

    #[test]
    fn unchecked_mode_skips_criteria() {
        let mut m = Machine::with_mode(ToyCounter::with_bound(32), CheckMode::Unchecked);
        let a = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let b = m.add_thread(vec![inc_code()]);
        let ga = m.app_auto(a).unwrap();
        m.push(a, ga).unwrap();
        let ib = m.app_auto(b).unwrap();
        // Would violate PUSH (ii) in checked mode; unchecked lets it through.
        m.push(b, ib).unwrap();
    }

    #[test]
    fn enqueue_txn_restarts_done_thread() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.commit(t).unwrap();
        assert!(m.thread(t).unwrap().is_done());
        m.enqueue_txn(t, inc_code()).unwrap();
        assert!(!m.thread(t).unwrap().is_done());
        let op2 = m.app_auto(t).unwrap();
        m.push(t, op2).unwrap();
        m.commit(t).unwrap();
        assert_eq!(m.thread(t).unwrap().commits(), 2);
    }

    #[test]
    fn structural_steps_resolve_choices_before_app() {
        use crate::structural::StructStep;
        let mut m = machine();
        let t = m.add_thread(vec![Code::choice(
            Code::method(CounterMethod::Inc),
            Code::method(CounterMethod::Dec),
        )]);
        assert_eq!(
            m.struct_options(t).unwrap(),
            vec![StructStep::NondetL, StructStep::NondetR]
        );
        m.struct_step(t, StructStep::NondetR).unwrap();
        // Only Dec remains reachable.
        let opts = m.step_options(t).unwrap();
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].0, CounterMethod::Dec);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.commit(t).unwrap();
        // A structural step on finished code is refused.
        assert!(m.struct_step(t, StructStep::Loop).is_err());
    }

    #[test]
    fn app_rejects_methods_not_in_step() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let err = m.app_method(t, &CounterMethod::Get).unwrap_err();
        assert!(matches!(err, MachineError::NoSuchStep(_)));
    }
}
