//! The PUSH/PULL machine (paper §4, Figures 4–6) — a facade over the
//! split state.
//!
//! A [`Machine`] owns one [`GlobalState`] (the shared log `G`, the
//! committed-transaction list, the criteria audit — see
//! [`crate::global`]) and one [`TxnHandle`] per thread (code, stack and
//! local log `L` — see [`crate::handle`]). The seven rules of Figure 5
//! are methods: [`Machine::app`], [`Machine::unapp`], [`Machine::push`],
//! [`Machine::unpush`], [`Machine::pull`], [`Machine::unpull`] and
//! [`Machine::commit`]; each delegates to the thread's handle, which is
//! where the rule logic and its lock discipline live. In
//! [`CheckMode::Checked`] every rule *criterion* is verified before the
//! step is taken; a failing criterion returns [`MachineError::Criterion`]
//! naming the rule and clause. Because Theorem 5.17 proves any
//! criteria-respecting run serializable, algorithms driven through a
//! checked machine are serializable **by construction** on every run they
//! take — the independent oracle in [`crate::serializability`] re-verifies
//! this in the test suites.
//!
//! Sequential drivers use the machine as a single object; the parallel
//! harness instead borrows the handles individually
//! ([`Machine::handles_mut`]) and hands one to each OS worker — that is
//! the point of the split: APP/UNAPP proceed with no global lock, and
//! only PUSH/UNPUSH/PULL/CMT serialize on the short [`GlobalState`]
//! critical section.
//!
//! Threads execute a *sequence of transactions* (each program in the list
//! passed to [`Machine::add_thread`] is one `tx c` body). Nested
//! transactions are flattened, as in the paper.

use std::sync::Arc;

use crate::audit::CriteriaAudit;
use crate::error::{MachineError, MachineResult};
use crate::global::GlobalState;
use crate::handle::TxnHandle;
use crate::lang::Code;
use crate::log::GlobalLog;
use crate::op::{OpId, ThreadId, TxnId};
use crate::scope::ScopeKind;
use crate::spec::SeqSpec;
use crate::trace::Trace;

pub use crate::global::CommittedTxn;

/// The `(method, continuation)` pairs `step(c)` offers a thread.
pub type StepOptions<M> = Vec<(M, Code<M>)>;

/// A thread of the machine — alias kept from before the
/// [`GlobalState`]/[`TxnHandle`] split.
pub type Thread<S> = TxnHandle<S>;

/// How strictly rule criteria are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Enforce every criterion of Figure 5, including the ones the paper
    /// grays out as "not strictly necessary" (PULL (iii), UNPUSH (i)).
    #[default]
    Checked,
    /// Enforce all black criteria but skip the grayed-out ones.
    RelaxedGray,
    /// Enforce only structural well-formedness (flags, membership), no
    /// commutativity or allowedness checks. Exists so benchmarks can
    /// measure the cost of checking; never use for correctness arguments.
    Unchecked,
}

/// The PUSH/PULL machine: per-thread [`TxnHandle`]s sharing one
/// [`GlobalState`].
#[derive(Debug)]
pub struct Machine<S: SeqSpec> {
    global: Arc<GlobalState<S>>,
    handles: Vec<TxnHandle<S>>,
}

impl<S: SeqSpec + Clone> Clone for Machine<S> {
    /// Deep copy: the shared state is cloned (fresh generators, audit and
    /// log) and every handle is re-pointed at the copy, so clones share
    /// nothing — the property the model checker's branching relies on.
    fn clone(&self) -> Self {
        let global = Arc::new(self.global.deep_clone());
        let handles = self
            .handles
            .iter()
            .map(|h| h.clone_with(Arc::clone(&global)))
            .collect();
        Self { global, handles }
    }
}

impl<S: SeqSpec> Machine<S> {
    /// Creates a machine over the given sequential specification, in
    /// [`CheckMode::Checked`].
    ///
    /// # Examples
    ///
    /// ```
    /// use pushpull_core::machine::Machine;
    /// use pushpull_core::lang::Code;
    /// use pushpull_core::toy::{ToyCounter, CounterMethod};
    ///
    /// let mut m = Machine::new(ToyCounter::with_bound(8));
    /// let t = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
    /// let op = m.app_auto(t)?;
    /// m.push(t, op)?;
    /// m.commit(t)?;
    /// assert_eq!(m.global().committed_ops().len(), 1);
    /// # Ok::<(), pushpull_core::error::MachineError>(())
    /// ```
    pub fn new(spec: S) -> Self {
        Self::with_mode(spec, CheckMode::Checked)
    }

    /// Creates a machine with an explicit [`CheckMode`].
    pub fn with_mode(spec: S, mode: CheckMode) -> Self {
        Self {
            global: Arc::new(GlobalState::new(spec, mode)),
            handles: Vec::new(),
        }
    }

    /// A snapshot of the criteria audit: which proof obligations this
    /// run has discharged (checked-and-passed) or violated, and how many
    /// primitive mover/`allowed` queries they cost.
    pub fn audit(&self) -> CriteriaAudit {
        self.global.audit_snapshot()
    }

    /// Clears the criteria audit counters.
    pub fn reset_audit(&mut self) {
        self.global.audit.reset();
    }

    /// The sequential specification.
    pub fn spec(&self) -> &S {
        self.global.spec()
    }

    /// The shared half of the machine.
    pub fn global_state(&self) -> &Arc<GlobalState<S>> {
        &self.global
    }

    /// Arms (or, with `None`, disarms) a fault-injection hook; see
    /// [`crate::faults::FaultHook`].
    pub fn set_fault_hook(&self, hook: Option<std::sync::Arc<dyn crate::faults::FaultHook>>) {
        self.global.set_fault_hook(hook);
    }

    /// Arms (or, with `None`, disarms) statically proven criteria facts;
    /// see [`GlobalState::set_static_discharge`].
    pub fn set_static_discharge(
        &self,
        facts: Option<std::sync::Arc<crate::static_facts::StaticDischarge>>,
    ) {
        self.global.set_static_discharge(facts);
    }

    /// Installs (or, with `None`, removes) a spec certificate — the
    /// machine-checked verdict that the spec's footprint/mover
    /// declarations agree with the exhaustive ground truth; see
    /// [`GlobalState::install_certificate`].
    pub fn install_certificate(
        &self,
        cert: Option<std::sync::Arc<crate::certificate::SpecCertificate>>,
    ) {
        self.global.install_certificate(cert);
    }

    /// The installed spec certificate, if any.
    pub fn certificate(&self) -> Option<std::sync::Arc<crate::certificate::SpecCertificate>> {
        self.global.certificate()
    }

    /// Turns strict certificate-gated arming on or off; see
    /// [`GlobalState::set_require_certificate`]. When strict mode finds
    /// the log already sharded and uncertified it demotes to coarse
    /// routing immediately.
    pub fn set_require_certificate(&self, on: bool) {
        self.global.set_require_certificate(on);
    }

    /// The diagnostics recorded by the certificate gate (refused arming
    /// requests, coarse demotions), in order.
    pub fn arming_diagnostics(&self) -> Vec<String> {
        self.global.arming_diagnostics()
    }

    /// Routes the single-shard PUSH/UNPUSH critical sections through
    /// [`LocalTransport`](crate::transport::LocalTransport): inline
    /// execution under the shard mutex, identical behaviour to the
    /// default no-transport machine except that transport requests are
    /// counted. The reference point the channel transport is measured
    /// (and golden-tested) against.
    pub fn set_local_transport(&self) {
        self.global
            .set_transport(Some(Arc::new(crate::transport::LocalTransport)));
    }

    /// Removes the installed shard transport: back to the in-place
    /// locked path.
    pub fn clear_transport(&self) {
        self.global.set_transport(None);
    }

    /// The installed transport's short name (`"local"` / `"channel"`),
    /// or `None` when no transport is installed.
    pub fn transport_name(&self) -> Option<&'static str> {
        self.global.transport_name()
    }

    /// A snapshot of the transport envelope counters (requests, retries,
    /// timeouts, degradations, recoveries). All-zero without a transport.
    pub fn transport_stats(&self) -> crate::transport::TransportStats {
        self.global.transport_stats()
    }

    /// A snapshot of the group-commit batch counters (batches sealed,
    /// transactions/operations batched, lock acquisitions saved, batch
    /// size histogram). All-zero until [`Self::commit_group`] runs.
    pub fn group_stats(&self) -> crate::global::GroupStats {
        self.global.group_stats()
    }

    /// Commits the commit-ready transactions of `tids` through the
    /// per-shard group-commit path (see [`crate::group::commit_group`]):
    /// one shard-lock acquisition and one contiguous stamp range per
    /// shard batch, with ineligible threads reported back for the
    /// per-transaction fallback. Duplicate or out-of-range tids error.
    pub fn commit_group(&mut self, tids: &[ThreadId]) -> MachineResult<crate::group::GroupOutcome> {
        let mut want = vec![false; self.handles.len()];
        for t in tids {
            if t.0 >= self.handles.len() {
                return Err(MachineError::NoSuchThread(*t));
            }
            if std::mem::replace(&mut want[t.0], true) {
                return Err(MachineError::NoSuchThread(*t));
            }
        }
        // Disjoint `&mut` handles, in the caller's tid order.
        let mut by_tid: Vec<Option<&mut TxnHandle<S>>> = self
            .handles
            .iter_mut()
            .zip(&want)
            .map(|(h, w)| if *w { Some(h) } else { None })
            .collect();
        let mut selected: Vec<&mut TxnHandle<S>> = Vec::with_capacity(tids.len());
        for t in tids {
            selected.push(by_tid[t.0].take().expect("validated above"));
        }
        Ok(crate::group::commit_group(&mut selected))
    }

    /// Is the incremental (committed-prefix cached) `allowed` evaluation
    /// enabled? See [`GlobalState::set_incremental`].
    pub fn incremental(&self) -> bool {
        self.global.incremental()
    }

    /// Switches between incremental and full-replay criteria evaluation;
    /// both produce identical verdicts and audit counts.
    pub fn set_incremental(&self, on: bool) {
        self.global.set_incremental(on);
    }

    /// A snapshot of the shared log `G`, merged across the footprint
    /// shards in commit-stamp order.
    pub fn global(&self) -> GlobalLog<S::Method, S::Ret> {
        self.global.global_snapshot()
    }

    /// Number of footprint shards the shared log is split into.
    pub fn log_shards(&self) -> usize {
        self.global.shard_count()
    }

    /// Total `(lock acquisitions, contended acquisitions)` across the
    /// shard locks — the observability counters behind B9.
    pub fn lock_stats(&self) -> (u64, u64) {
        self.global.lock_stats()
    }

    /// Per-shard `(lock acquisitions, contended acquisitions)`, indexed
    /// by shard — the deterministic per-shard breakdown the watchdog
    /// dumps.
    pub fn lock_stats_per_shard(&self) -> Vec<(u64, u64)> {
        self.global.lock_stats_per_shard()
    }

    /// Seqlock-path counters `(snapshot reads, validation retries,
    /// fallbacks)` — the observability behind the lock-free criteria
    /// path (B10). Reads are criteria evaluations that took zero locks;
    /// fallbacks took the mutex ladder (unpublished cell, reader
    /// contention, or a stale speculation).
    pub fn seqlock_stats(&self) -> (u64, u64, u64) {
        self.global.seqlock_stats()
    }

    /// Arena occupancy over all shards: `(live entries, slot capacity,
    /// cumulative slot reuses)`.
    pub fn arena_stats(&self) -> (u64, u64, u64) {
        self.global.arena_stats()
    }

    /// Read-only, unaudited "would PUSH accept this op right now?" —
    /// zero locks on the declared-footprint fast path. See
    /// [`TxnHandle::can_push`].
    pub fn can_push(&self, tid: ThreadId, op_id: OpId) -> MachineResult<bool> {
        self.thread(tid)?.can_push(op_id)
    }

    /// Re-shards the global log into `shards` footprint shards (clamped
    /// to at least one), re-routing every existing entry by its method's
    /// declared footprint and re-pointing every handle at the rebuilt
    /// shared state. Commit-sequence stamps, the commit order, the audit
    /// and all generators are preserved, so resharding mid-run changes
    /// the cost of the criteria, never their verdicts — and `shards == 1`
    /// reproduces the historical single-lock machine bit-for-bit.
    ///
    /// An installed shard transport **detaches** (it is bound to the old
    /// layout's server set and degraded marks); re-install one after
    /// resharding if the seam is wanted. Transport counters carry over.
    ///
    /// Under strict certificate mode
    /// ([`Machine::set_require_certificate`]) a shard count above one
    /// without a valid [`SpecCertificate`](crate::certificate) still
    /// reshards, but the rebuilt log is demoted to the sticky coarse
    /// path (every critical section takes all shard locks — sound,
    /// never mis-routed, with a diagnostic recorded in
    /// [`Machine::arming_diagnostics`]) instead of trusting the
    /// uncertified footprint declarations for fine-grained routing.
    pub fn set_log_shards(&mut self, shards: usize) {
        let n = shards.max(1);
        let gate_demote = n > 1 && self.global.require_certificate() && !self.global.certified();
        if n == self.global.shard_count() {
            if gate_demote && !self.global.coarse_mode() {
                self.global.demote_to_coarse(
                    "strict mode: fine-grained shard routing requested without a valid \
                     spec certificate; demoting to coarse routing",
                );
            }
            return;
        }
        let global = Arc::new(self.global.rebuilt_with_shards(n));
        if gate_demote {
            global.demote_to_coarse(
                "strict mode: fine-grained shard routing requested without a valid \
                 spec certificate; demoting to coarse routing",
            );
        }
        for h in &mut self.handles {
            h.rebind(Arc::clone(&global));
        }
        self.global = global;
    }

    /// The recorded trace: every handle's sequence-stamped event buffer,
    /// merged into the real-time total order.
    pub fn trace(&self) -> Trace<S::Method, S::Ret> {
        let mut stamped: Vec<&crate::handle::StampedEvent<S>> = self
            .handles
            .iter()
            .flat_map(|h| h.events().iter())
            .collect();
        stamped.sort_by_key(|(seq, _)| *seq);
        let mut trace = Trace::new();
        for (_, e) in stamped {
            trace.record(e.clone());
        }
        trace
    }

    /// The current check mode.
    pub fn mode(&self) -> CheckMode {
        self.global.mode()
    }

    /// Committed transactions in commit order (the serial witness).
    pub fn committed_txns(&self) -> Vec<CommittedTxn<S::Method, S::Ret>> {
        self.global.committed_txns()
    }

    /// Number of threads (live and done).
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Immutable access to a thread's handle.
    pub fn thread(&self, tid: ThreadId) -> MachineResult<&TxnHandle<S>> {
        self.handles
            .get(tid.0)
            .ok_or(MachineError::NoSuchThread(tid))
    }

    /// Mutable access to a thread's handle — how drivers and the parallel
    /// harness run rules directly on the per-thread half.
    pub fn handle_mut(&mut self, tid: ThreadId) -> MachineResult<&mut TxnHandle<S>> {
        self.handles
            .get_mut(tid.0)
            .ok_or(MachineError::NoSuchThread(tid))
    }

    /// Mutable access to every handle at once. The parallel harness uses
    /// this to give each OS worker its own handle; the handles all share
    /// the machine's [`GlobalState`].
    pub fn handles_mut(&mut self) -> &mut [TxnHandle<S>] {
        &mut self.handles
    }

    /// Adds a thread that will run `programs` as a sequence of
    /// transactions (each element is one `tx c` body). The first
    /// transaction begins immediately.
    pub fn add_thread(&mut self, programs: Vec<Code<S::Method>>) -> ThreadId {
        let tid = ThreadId(self.handles.len());
        self.handles
            .push(TxnHandle::new(Arc::clone(&self.global), tid, programs));
        tid
    }

    /// Enqueues another transaction body on an existing thread.
    pub fn enqueue_txn(&mut self, tid: ThreadId, program: Code<S::Method>) -> MachineResult<()> {
        self.handle_mut(tid)?.enqueue(program);
        Ok(())
    }

    /// `step(c)` for the thread's current code: every next reachable
    /// method with its continuation.
    pub fn step_options(&self, tid: ThreadId) -> MachineResult<StepOptions<S::Method>> {
        self.thread(tid)?.step_options()
    }

    /// `fin(c)` for the thread's current code.
    pub fn can_finish(&self, tid: ThreadId) -> MachineResult<bool> {
        self.thread(tid)?.can_finish()
    }

    /// Return values `r` such that the local log allows `⟨m, r⟩`
    /// (APP criterion (ii) candidates).
    pub fn allowed_results(&self, tid: ThreadId, method: &S::Method) -> MachineResult<Vec<S::Ret>> {
        self.thread(tid)?.allowed_results(method)
    }

    /// The structural steps (Figure 6) applicable to the thread's current
    /// code at its leftmost redex.
    pub fn struct_options(
        &self,
        tid: ThreadId,
    ) -> MachineResult<Vec<crate::structural::StructStep>> {
        self.thread(tid)?.struct_options()
    }

    /// Applies one structural reduction (NONDETL/NONDETR/LOOP/SEMISKIP,
    /// with the SEMI congruence locating the redex) to the thread's code.
    ///
    /// Drivers normally work through `step`/`fin` and never need this;
    /// it exists for fidelity with the paper's `→rt` relation and for
    /// testing. Structural steps change no logs, so they record no trace
    /// event (they are invisible to the serializability argument).
    ///
    /// # Errors
    ///
    /// [`MachineError::NoSuchStep`] when the step does not apply.
    pub fn struct_step(
        &mut self,
        tid: ThreadId,
        step: crate::structural::StructStep,
    ) -> MachineResult<()> {
        self.handle_mut(tid)?.struct_step(step)
    }

    // ------------------------------------------------------------------
    // The seven rules of Figure 5 (delegated to the thread's handle).
    // ------------------------------------------------------------------

    /// **APP** (Figure 5): applies `method` with continuation `cont` and
    /// return value `ret`, recording the operation `npshd` in `L`.
    /// Thread-local; see [`TxnHandle::app`] for the criteria.
    pub fn app(
        &mut self,
        tid: ThreadId,
        method: S::Method,
        cont: Code<S::Method>,
        ret: S::Ret,
    ) -> MachineResult<OpId> {
        self.handle_mut(tid)?.app(method, cont, ret)
    }

    /// **APP**, selecting the first `step(c)` option whose method equals
    /// `method` and the first allowed return value.
    pub fn app_method(&mut self, tid: ThreadId, method: &S::Method) -> MachineResult<OpId> {
        self.handle_mut(tid)?.app_method(method)
    }

    /// **APP**, selecting the first `step(c)` option and the first
    /// allowed return value.
    pub fn app_auto(&mut self, tid: ThreadId) -> MachineResult<OpId> {
        self.handle_mut(tid)?.app_auto()
    }

    /// **UNAPP**: rewinds the most recent local entry (which must be
    /// `npshd`), restoring the saved code and stack.
    pub fn unapp(&mut self, tid: ThreadId) -> MachineResult<OpId> {
        self.handle_mut(tid)?.unapp()
    }

    /// **PUSH**: publishes a local operation to the shared log. See
    /// [`TxnHandle::push`] for the criteria and the critical section.
    pub fn push(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        self.handle_mut(tid)?.push(op_id)
    }

    /// **UNPUSH**: recalls a pushed operation from the shared log. See
    /// [`TxnHandle::unpush`].
    pub fn unpush(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        self.handle_mut(tid)?.unpush(op_id)
    }

    /// **PULL**: imports another transaction's published operation into
    /// the local view. See [`TxnHandle::pull`].
    pub fn pull(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        self.handle_mut(tid)?.pull(op_id)
    }

    /// **UNPULL**: discards a pulled operation from the local view. See
    /// [`TxnHandle::unpull`].
    pub fn unpull(&mut self, tid: ThreadId, op_id: OpId) -> MachineResult<()> {
        self.handle_mut(tid)?.unpull(op_id)
    }

    /// **CMT**: commits the thread's current transaction. See
    /// [`TxnHandle::commit`] for the criteria; on success the thread's
    /// next pending transaction (if any) begins.
    pub fn commit(&mut self, tid: ThreadId) -> MachineResult<TxnId> {
        self.handle_mut(tid)?.commit()
    }

    // ------------------------------------------------------------------
    // Derived operations (compositions of the rules).
    // ------------------------------------------------------------------

    /// Fully rewinds the current transaction (the composition of `⃗back`
    /// rules) and restarts it as a fresh transaction instance with the
    /// original code. Records an `Abort` plus a `Begin` event.
    pub fn abort_and_retry(&mut self, tid: ThreadId) -> MachineResult<TxnId> {
        self.handle_mut(tid)?.abort_and_retry()
    }

    /// Rewinds the current transaction completely: walking the local log
    /// from the tail, pulled entries are UNPULLed, pushed entries are
    /// UNPUSHed then UNAPPed, unpushed entries are UNAPPed.
    pub fn rewind_all(&mut self, tid: ThreadId) -> MachineResult<()> {
        self.handle_mut(tid)?.rewind_all()
    }

    /// Rewinds the current transaction's local log down to `target_len`
    /// entries, taking whatever back rules the tail requires — the
    /// checkpoint/partial-abort mechanism of §6.2 ("placemarkers are set
    /// so that UNAPP only needs to be performed for some operations";
    /// the paper's model of checkpoints \[19\] and closed nesting \[27\]).
    ///
    /// # Errors
    ///
    /// Propagates criterion violations from the constituent UNPUSH/UNPULL
    /// steps (an UNAPP at the tail never fails).
    pub fn rewind_to(&mut self, tid: ThreadId, target_len: usize) -> MachineResult<()> {
        self.handle_mut(tid)?.rewind_to(target_len)
    }

    /// Pushes every unpushed own operation in local order, then commits —
    /// the optimistic commit sequence ("PUSH everything and CMT at an
    /// uninterleaved moment", §6.2).
    pub fn push_all_and_commit(&mut self, tid: ThreadId) -> MachineResult<TxnId> {
        self.handle_mut(tid)?.push_all_and_commit()
    }

    /// Ids of the current transaction's unpushed operations, in order.
    pub fn unpushed_ids(&self, tid: ThreadId) -> MachineResult<Vec<OpId>> {
        Ok(self.thread(tid)?.unpushed_ids())
    }

    /// Pulls every *committed* global operation not yet in the local log,
    /// in global-log order — how opaque transactions snapshot the shared
    /// state (§6.2: "transactions begin by PULLing all operations").
    pub fn pull_all_committed(&mut self, tid: ThreadId) -> MachineResult<usize> {
        self.handle_mut(tid)?.pull_all_committed()
    }

    // ------------------------------------------------------------------
    // Nested transaction scopes (§6.2 checkpoints, closed/open nesting).
    // ------------------------------------------------------------------

    /// Opens a nested scope on `tid` explicitly (no syntax involved):
    /// subsequent operations belong to the scope until
    /// [`commit_nested`](Machine::commit_nested) merges it or
    /// [`abort_nested`](Machine::abort_nested) rewinds it. Returns the
    /// local-log length at entry (the scope's base). See
    /// [`TxnHandle::begin_nested`].
    pub fn begin_nested(&mut self, tid: ThreadId, kind: ScopeKind) -> MachineResult<usize> {
        self.handle_mut(tid)?.begin_nested(kind)
    }

    /// Commits `tid`'s innermost scope: a closed scope merges into its
    /// parent (observationally free); an open scope commits straight to
    /// the shared log as its own transaction and registers a
    /// compensation with the parent. See [`TxnHandle::commit_nested`].
    pub fn commit_nested(&mut self, tid: ThreadId) -> MachineResult<()> {
        self.handle_mut(tid)?.commit_nested()
    }

    /// Aborts `tid`'s innermost scope, rewinding only its log suffix —
    /// the partial abort of §6.2. The enclosing transaction survives.
    /// See [`TxnHandle::abort_nested`].
    pub fn abort_nested(&mut self, tid: ThreadId) -> MachineResult<()> {
        self.handle_mut(tid)?.abort_nested()
    }

    /// Sets a checkpoint placemarker (a closed scope used purely as a
    /// rewind target) and returns its position for
    /// [`abort_to_checkpoint`](Machine::abort_to_checkpoint).
    pub fn begin_checkpoint(&mut self, tid: ThreadId) -> MachineResult<usize> {
        self.handle_mut(tid)?.begin_checkpoint()
    }

    /// Partially aborts back to the checkpoint whose base is
    /// `target_len`, consuming it and every scope above it. See
    /// [`TxnHandle::abort_to_checkpoint`].
    pub fn abort_to_checkpoint(&mut self, tid: ThreadId, target_len: usize) -> MachineResult<()> {
        self.handle_mut(tid)?.abort_to_checkpoint(target_len)
    }

    /// Number of scopes currently open on `tid` (0 = flat).
    pub fn scope_depth(&self, tid: ThreadId) -> MachineResult<usize> {
        Ok(self.thread(tid)?.scope_depth())
    }

    /// Compensations `tid`'s current transaction would replay if it
    /// aborted now (committed open-nested children awaiting the parent's
    /// fate).
    pub fn pending_compensations(&self, tid: ThreadId) -> MachineResult<usize> {
        Ok(self.thread(tid)?.pending_compensations())
    }

    /// Machine-wide nesting counters: scope traffic, open-nested commits,
    /// compensations replayed, undo inverses derived.
    pub fn nesting_stats(&self) -> crate::scope::NestingStats {
        self.global.nesting_stats()
    }
}

impl<S> Machine<S>
where
    S: SeqSpec + Send + Sync + 'static,
    S::Method: Send + Sync + 'static,
    S::Ret: Send + Sync + 'static,
    S::State: Send + Sync + 'static,
{
    /// Routes the single-shard PUSH/UNPUSH critical sections through a
    /// [`ChannelTransport`](crate::transport::ChannelTransport): each
    /// shard owned by a dedicated server thread, requests serialized
    /// over in-process channels, every call wrapped in the robustness
    /// envelope `config` describes (deadline, bounded seeded-backoff
    /// retries, idempotent request ids, fault injection, degradation to
    /// the coarse path). Bit-identical ledgers and traces to
    /// [`Machine::set_local_transport`] — the transport equivalence
    /// suite pins this down for every driver.
    ///
    /// The `Send + Sync + 'static` bounds exist only here: the rest of
    /// the machine never requires them, so specs that are not shareable
    /// across threads simply cannot install this transport.
    pub fn set_channel_transport(&self, config: crate::transport::TransportConfig) {
        crate::transport::ChannelTransport::install(&self.global, config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{Clause, Rule};
    use crate::toy::{CounterMethod, ToyCounter};

    fn inc_code() -> Code<CounterMethod> {
        Code::method(CounterMethod::Inc)
    }

    fn machine() -> Machine<ToyCounter> {
        Machine::new(ToyCounter::with_bound(32))
    }

    #[test]
    fn app_push_commit_roundtrip() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        let txn = m.commit(t).unwrap();
        assert_eq!(m.global().committed_ops().len(), 1);
        assert!(m.thread(t).unwrap().is_done());
        assert_eq!(m.committed_txns().len(), 1);
        assert_eq!(m.committed_txns()[0].txn, txn);
        assert_eq!(m.trace().rule_names(t), vec!["BEGIN", "APP", "PUSH", "CMT"]);
    }

    #[test]
    fn commit_requires_fin() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        let err = m.commit(t).unwrap_err();
        assert_eq!(err.violated_rule(), Some(Rule::Cmt));
    }

    #[test]
    fn commit_requires_all_pushed() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        m.app_auto(t).unwrap();
        let err = m.commit(t).unwrap_err();
        match err {
            MachineError::Criterion(v) => {
                assert_eq!(v.rule, Rule::Cmt);
                assert_eq!(v.clause, Clause::Ii);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unapp_restores_code_and_stack() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(
            inc_code(),
            Code::method(CounterMethod::Get),
        )]);
        let before = m.thread(t).unwrap().code().unwrap().clone();
        m.app_auto(t).unwrap();
        assert_ne!(m.thread(t).unwrap().code().unwrap(), &before);
        m.unapp(t).unwrap();
        assert_eq!(m.thread(t).unwrap().code().unwrap(), &before);
        assert!(m.thread(t).unwrap().stack().is_empty());
        assert!(m.thread(t).unwrap().local().is_empty());
    }

    #[test]
    fn unapp_requires_npshd_tail() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        assert!(matches!(m.unapp(t), Err(MachineError::NothingToUnapply(_))));
    }

    #[test]
    fn unpush_then_unapp_rewinds() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        assert_eq!(m.global().len(), 1);
        m.unpush(t, op).unwrap();
        assert_eq!(m.global().len(), 0);
        m.unapp(t).unwrap();
        assert!(m.thread(t).unwrap().local().is_empty());
    }

    #[test]
    fn push_criterion_ii_detects_conflict() {
        // Thread A pushes get(0); thread B then tries to push inc:
        // get(=0) cannot move right of inc (the read would change), so
        // PUSH criterion (ii) must fire.
        let mut m = machine();
        let a = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let b = m.add_thread(vec![inc_code()]);
        let ga = m.app_auto(a).unwrap();
        m.push(a, ga).unwrap();
        let ib = m.app_auto(b).unwrap();
        let err = m.push(b, ib).unwrap_err();
        match err {
            MachineError::Criterion(v) => {
                assert_eq!(v.rule, Rule::Push);
                assert_eq!(v.clause, Clause::Ii);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // After A commits, B's push succeeds.
        m.commit(a).unwrap();
        m.push(b, ib).unwrap();
        m.commit(b).unwrap();
    }

    #[test]
    fn pull_and_commit_dependency_gating() {
        // B pulls A's uncommitted op; B cannot commit until A commits.
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        // B observes the inc: get returns 1.
        let gb = m.app_method(b, &CounterMethod::Get).unwrap();
        let get_ret = m.thread(b).unwrap().stack().last().unwrap().1;
        assert_eq!(get_ret, 1, "pull made A's effect visible");
        m.push(b, gb).unwrap_err(); // get(=1) conflicts with A's uncommitted inc? No:
                                    // inc ◁ get(=1) must hold for push. inc·get1 ≼ get1·inc?
                                    // From 0: inc·get1 = {1}; get1·inc: get1 disallowed at 0 → ∅.
                                    // {1} ⊄ ∅ → criterion (ii) fires. B must wait for A.
        m.commit(a).unwrap();
        m.push(b, gb).unwrap();
        let err = m.commit(b);
        assert!(err.is_ok(), "pulled op now committed: {err:?}");
    }

    #[test]
    fn unpull_requires_independence() {
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        let _gb = m.app_method(b, &CounterMethod::Get).unwrap();
        // B's get observed 1; dropping the pulled inc would make the local
        // log disallowed, so UNPULL criterion (i) fires.
        let err = m.unpull(b, ia).unwrap_err();
        assert_eq!(err.violated_rule(), Some(Rule::UnPull));
        // Rewind the get, then the unpull goes through.
        m.unapp(b).unwrap();
        m.unpull(b, ia).unwrap();
        assert!(m.thread(b).unwrap().local().is_empty());
    }

    #[test]
    fn abort_and_retry_resets_everything() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.app_auto(t).unwrap();
        let txn0 = m.thread(t).unwrap().txn();
        let txn1 = m.abort_and_retry(t).unwrap();
        assert_ne!(txn0, txn1);
        assert!(m.thread(t).unwrap().local().is_empty());
        assert!(m.global().is_empty());
        assert_eq!(m.thread(t).unwrap().aborts(), 1);
        // Retry to completion.
        let a = m.app_auto(t).unwrap();
        let b = m.app_auto(t).unwrap();
        m.push(t, a).unwrap();
        m.push(t, b).unwrap();
        m.commit(t).unwrap();
        assert_eq!(m.global().committed_ops().len(), 2);
    }

    #[test]
    fn push_all_and_commit_is_the_optimistic_pattern() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        m.app_auto(t).unwrap();
        m.app_auto(t).unwrap();
        m.push_all_and_commit(t).unwrap();
        assert_eq!(m.global().committed_ops().len(), 2);
        assert_eq!(
            m.trace().rule_names(t),
            vec!["BEGIN", "APP", "APP", "PUSH", "PUSH", "CMT"]
        );
    }

    #[test]
    fn pull_all_committed_snapshots() {
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        let n = m.pull_all_committed(b).unwrap();
        assert_eq!(n, 1);
        let gb = m.app_method(b, &CounterMethod::Get).unwrap();
        assert_eq!(m.thread(b).unwrap().stack().last().unwrap().1, 1);
        m.push(b, gb).unwrap();
        m.commit(b).unwrap();
    }

    #[test]
    fn sequences_of_transactions_get_fresh_ids() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code(), inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        let txn0 = m.commit(t).unwrap();
        assert!(!m.thread(t).unwrap().is_done());
        let op2 = m.app_auto(t).unwrap();
        m.push(t, op2).unwrap();
        let txn1 = m.commit(t).unwrap();
        assert_ne!(txn0, txn1);
        assert!(m.thread(t).unwrap().is_done());
        assert_eq!(m.thread(t).unwrap().commits(), 2);
    }

    #[test]
    fn unchecked_mode_skips_criteria() {
        let mut m = Machine::with_mode(ToyCounter::with_bound(32), CheckMode::Unchecked);
        let a = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let b = m.add_thread(vec![inc_code()]);
        let ga = m.app_auto(a).unwrap();
        m.push(a, ga).unwrap();
        let ib = m.app_auto(b).unwrap();
        // Would violate PUSH (ii) in checked mode; unchecked lets it through.
        m.push(b, ib).unwrap();
    }

    #[test]
    fn enqueue_txn_restarts_done_thread() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.commit(t).unwrap();
        assert!(m.thread(t).unwrap().is_done());
        m.enqueue_txn(t, inc_code()).unwrap();
        assert!(!m.thread(t).unwrap().is_done());
        let op2 = m.app_auto(t).unwrap();
        m.push(t, op2).unwrap();
        m.commit(t).unwrap();
        assert_eq!(m.thread(t).unwrap().commits(), 2);
    }

    #[test]
    fn structural_steps_resolve_choices_before_app() {
        use crate::structural::StructStep;
        let mut m = machine();
        let t = m.add_thread(vec![Code::choice(
            Code::method(CounterMethod::Inc),
            Code::method(CounterMethod::Dec),
        )]);
        assert_eq!(
            m.struct_options(t).unwrap(),
            vec![StructStep::NondetL, StructStep::NondetR]
        );
        m.struct_step(t, StructStep::NondetR).unwrap();
        // Only Dec remains reachable.
        let opts = m.step_options(t).unwrap();
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].0, CounterMethod::Dec);
        let op = m.app_auto(t).unwrap();
        m.push(t, op).unwrap();
        m.commit(t).unwrap();
        // A structural step on finished code is refused.
        assert!(m.struct_step(t, StructStep::Loop).is_err());
    }

    #[test]
    fn app_rejects_methods_not_in_step() {
        let mut m = machine();
        let t = m.add_thread(vec![inc_code()]);
        let err = m.app_method(t, &CounterMethod::Get).unwrap_err();
        assert!(matches!(err, MachineError::NoSuchStep(_)));
    }

    /// The split halves stay consistent under direct handle use: rules run
    /// on a borrowed handle are visible through the machine facade.
    #[test]
    fn handles_and_facade_agree() {
        let mut m = machine();
        let a = m.add_thread(vec![inc_code()]);
        let b = m.add_thread(vec![inc_code()]);
        {
            let h = m.handle_mut(a).unwrap();
            let op = h.app_auto().unwrap();
            h.push(op).unwrap();
            h.commit().unwrap();
        }
        {
            let h = m.handle_mut(b).unwrap();
            h.app_auto().unwrap();
            h.push_all_and_commit().unwrap();
        }
        assert_eq!(m.global().committed_ops().len(), 2);
        assert_eq!(m.committed_txns().len(), 2);
        assert_eq!(m.trace().rule_names(a), vec!["BEGIN", "APP", "PUSH", "CMT"]);
        assert_eq!(m.thread(b).unwrap().commits(), 1);
    }

    /// Clones deep-copy the shared state: divergent futures don't interact.
    #[test]
    fn clone_shares_nothing() {
        let mut m = machine();
        let t = m.add_thread(vec![Code::seq(inc_code(), inc_code())]);
        m.app_auto(t).unwrap();
        let mut m2 = m.clone();
        m2.app_auto(t).unwrap();
        m2.push_all_and_commit(t).unwrap();
        assert_eq!(m2.global().committed_ops().len(), 2);
        assert!(m.global().is_empty(), "clone's commits must not leak back");
        assert_eq!(m.thread(t).unwrap().local().len(), 1);
    }

    /// Incremental and full-replay criteria evaluation agree — verdicts
    /// and audit counts — on the same run.
    #[test]
    fn incremental_matches_full_replay() {
        let run = |incremental: bool| {
            let mut m = machine();
            m.set_incremental(incremental);
            let a = m.add_thread(vec![inc_code(), inc_code()]);
            let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
            let ia = m.app_auto(a).unwrap();
            m.push(a, ia).unwrap();
            m.commit(a).unwrap();
            m.pull_all_committed(b).unwrap();
            let gb = m.app_method(b, &CounterMethod::Get).unwrap();
            let ia2 = m.app_auto(a).unwrap();
            m.push(a, ia2).unwrap();
            m.commit(a).unwrap();
            // b's stale get now fails PUSH (iii)/(ii) the same way in
            // both modes.
            let push_res = m.push(b, gb).map_err(|e| e.violated_rule());
            (m.audit().render(), m.trace().render(), push_res)
        };
        assert_eq!(run(true), run(false));
    }
}
