//! Fault-injection hooks: the checked machine's seam for chaos testing.
//!
//! The paper's §6/§7 algorithm classes differ in *how they recover* from
//! a failed criterion — UNAPP-based abort, UNPUSH rollback, checkpoint
//! UNPULL, HTM fallback. To exercise those recovery rules on demand, the
//! machine exposes a [`FaultHook`]: an object consulted at the entry of
//! every *forward* rule (APP, PUSH, PULL, CMT) and at driver-defined
//! boundaries (tick start, HTM access). A hook can
//!
//! - **deny** a forward rule with a spurious criterion failure (the rule
//!   has no effect; the driver sees an ordinary
//!   [`MachineError::Criterion`](crate::error::MachineError) and takes
//!   its recovery path),
//! - **kill** a transaction at a rule boundary (the driver aborts and
//!   restarts it), or **stall** a thread for k ticks,
//! - force an **HTM capacity/conflict abort** in the simulated-HTM
//!   drivers.
//!
//! Injection is deliberately *not* wired into the reverse rules (UNAPP,
//! UNPUSH, UNPULL): drivers run those inside their recovery paths, where
//! a spurious failure would wedge recovery itself rather than exercise
//! it.
//!
//! Every injected fault is tallied in the audit (see
//! [`CriteriaAudit::injected`](crate::audit::CriteriaAudit)), so a test
//! can assert *exactly which* obligations a fault plan exercised. The
//! harness crate provides the deterministic seeded `FaultPlan`
//! implementation; core only defines the seam.

use crate::error::{Clause, Rule};
use crate::op::ThreadId;

/// The kinds of fault the machine (or a driver) can inject, used as the
/// audit key for injected-fault tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A spurious criterion failure denying one forward rule.
    Deny(Rule),
    /// A transaction killed (aborted and restarted) at a rule boundary.
    Kill,
    /// A thread stalled for a fixed number of ticks.
    Stall,
    /// A simulated-HTM capacity abort.
    HtmCapacity,
    /// A simulated-HTM conflict abort.
    HtmConflict,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Deny(rule) => write!(f, "deny-{rule}"),
            FaultKind::Kill => write!(f, "kill"),
            FaultKind::Stall => write!(f, "stall"),
            FaultKind::HtmCapacity => write!(f, "htm-capacity"),
            FaultKind::HtmConflict => write!(f, "htm-conflict"),
        }
    }
}

/// Every fault kind, for iterating a chaos matrix.
pub const ALL_FAULT_KINDS: [FaultKind; 8] = [
    FaultKind::Deny(Rule::App),
    FaultKind::Deny(Rule::Push),
    FaultKind::Deny(Rule::Pull),
    FaultKind::Deny(Rule::Cmt),
    FaultKind::Kill,
    FaultKind::Stall,
    FaultKind::HtmCapacity,
    FaultKind::HtmConflict,
];

/// A fault fired at a tick boundary, before the driver runs any rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryFault {
    /// Abort and restart the thread's current transaction.
    Kill,
    /// Park the thread for this many ticks.
    Stall(u64),
}

/// A fault fired at a simulated-HTM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtmFault {
    /// The transaction overflowed the simulated read/write capacity.
    Capacity,
    /// The hardware detected a (possibly spurious) conflict.
    Conflict,
}

/// The clause an injected denial of `rule` reports. Chosen to be the
/// clause the rule most commonly fails under real contention, so a
/// driver cannot distinguish an injected denial from a genuine one.
pub fn deny_clause(rule: Rule) -> Clause {
    match rule {
        Rule::App => Clause::Ii,
        Rule::Push => Clause::Iii,
        Rule::Pull => Clause::Ii,
        Rule::Cmt => Clause::Iii,
        Rule::UnApp | Rule::UnPush | Rule::UnPull => Clause::I,
    }
}

/// A pluggable fault source, consulted by the machine at rule entry and
/// by drivers at tick/HTM boundaries. Implementations must be
/// deterministic given their own state (the harness `FaultPlan` keys
/// decisions on per-thread attempt counters, never on wall-clock or OS
/// scheduling), `Sync` (hooks are consulted concurrently from worker
/// threads), and cheap — they sit on the hot path of every rule.
///
/// All methods default to "no fault", so an implementation overrides
/// only the boundaries it cares about.
pub trait FaultHook: std::fmt::Debug + Send + Sync {
    /// Consulted at the entry of a forward rule (APP, PUSH, PULL, CMT)
    /// on `tid`, *before* the rule checks criteria or has any effect.
    /// Returning `Some(clause)` denies the rule: the caller sees a
    /// criterion failure for `(rule, clause)` and the machine records an
    /// injected `Deny(rule)` fault.
    fn deny_rule(&self, tid: ThreadId, rule: Rule) -> Option<Clause> {
        let _ = (tid, rule);
        None
    }

    /// Consulted by drivers at the start of a tick, at a rule boundary
    /// (no rule mid-flight). A returned fault is always acted on and
    /// recorded.
    fn at_boundary(&self, tid: ThreadId) -> Option<BoundaryFault> {
        let _ = tid;
        None
    }

    /// Consulted by the simulated-HTM drivers once per transactional
    /// memory access, before the access is recorded in the conflict
    /// tables.
    fn htm_access(&self, tid: ThreadId) -> Option<HtmFault> {
        let _ = tid;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_are_ordered_and_displayable() {
        let mut v = ALL_FAULT_KINDS.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), ALL_FAULT_KINDS.len());
        assert_eq!(FaultKind::Deny(Rule::Push).to_string(), "deny-PUSH");
        assert_eq!(FaultKind::HtmCapacity.to_string(), "htm-capacity");
    }

    #[test]
    fn deny_clause_covers_forward_rules() {
        assert_eq!(deny_clause(Rule::App), Clause::Ii);
        assert_eq!(deny_clause(Rule::Push), Clause::Iii);
        assert_eq!(deny_clause(Rule::Pull), Clause::Ii);
        assert_eq!(deny_clause(Rule::Cmt), Clause::Iii);
    }

    #[derive(Debug)]
    struct DenyAllPush;
    impl FaultHook for DenyAllPush {
        fn deny_rule(&self, _tid: ThreadId, rule: Rule) -> Option<Clause> {
            (rule == Rule::Push).then_some(deny_clause(rule))
        }
    }

    #[test]
    fn default_hook_methods_are_no_faults() {
        let h = DenyAllPush;
        assert_eq!(h.deny_rule(ThreadId(0), Rule::Push), Some(Clause::Iii));
        assert_eq!(h.deny_rule(ThreadId(0), Rule::App), None);
        assert_eq!(h.at_boundary(ThreadId(0)), None);
        assert_eq!(h.htm_access(ThreadId(0)), None);
    }
}
