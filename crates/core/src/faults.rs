//! Fault-injection hooks: the checked machine's seam for chaos testing.
//!
//! The paper's §6/§7 algorithm classes differ in *how they recover* from
//! a failed criterion — UNAPP-based abort, UNPUSH rollback, checkpoint
//! UNPULL, HTM fallback. To exercise those recovery rules on demand, the
//! machine exposes a [`FaultHook`]: an object consulted at the entry of
//! every *forward* rule (APP, PUSH, PULL, CMT), at driver-defined
//! boundaries (tick start, HTM access), and at every delivery attempt of
//! a shard-transport request. A hook can
//!
//! - **deny** a forward rule with a spurious criterion failure (the rule
//!   has no effect; the driver sees an ordinary
//!   [`MachineError::Criterion`](crate::error::MachineError) and takes
//!   its recovery path),
//! - **kill** a transaction at a rule boundary (the driver aborts and
//!   restarts it), or **stall** a thread for k ticks,
//! - force an **HTM capacity/conflict abort** in the simulated-HTM
//!   drivers,
//! - **fail a transport delivery** (partition the shard, drop or
//!   duplicate the request, delay the reply, crash the shard server),
//!   exercising the retry/degrade/recover envelope of
//!   [`transport`](crate::transport).
//!
//! Injection is deliberately *not* wired into the reverse rules (UNAPP,
//! UNPUSH, UNPULL): drivers run those inside their recovery paths, where
//! a spurious failure would wedge recovery itself rather than exercise
//! it.
//!
//! Every injected fault is tallied in the audit (see
//! [`CriteriaAudit::injected`](crate::audit::CriteriaAudit)), so a test
//! can assert *exactly which* obligations a fault plan exercised. The
//! harness crate provides the deterministic seeded `FaultPlan`
//! implementation; core only defines the seam.

use crate::error::{Clause, Rule};
use crate::op::ThreadId;

/// The kinds of fault the machine (or a driver) can inject, used as the
/// audit key for injected-fault tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A spurious criterion failure denying one forward rule.
    Deny(Rule),
    /// A transaction killed (aborted and restarted) at a rule boundary.
    Kill,
    /// A thread stalled for a fixed number of ticks.
    Stall,
    /// A simulated-HTM capacity abort.
    HtmCapacity,
    /// A simulated-HTM conflict abort.
    HtmConflict,
    /// A shard unreachable for the duration of the injection: the
    /// request is never delivered and the client times out.
    PartitionShard,
    /// The request is delivered and executed, but the reply is delayed
    /// past the client's deadline — the retry must hit the idempotency
    /// layer, never double-apply.
    DelayReply,
    /// The request is lost before reaching the shard server.
    DropRequest,
    /// The request is delivered twice with the same request id — the
    /// duplicate must be absorbed by the server's dedup layer.
    DuplicateRequest,
    /// The shard server thread is killed mid-run and restarted from the
    /// durable shard log (its volatile dedup cache is lost).
    CrashShardServer,
}

/// Everything derived from a [`FaultKind`] variant: its display label
/// and (for non-deny kinds) its dense slot in the audit's fixed-size
/// injected-fault table.
///
/// [`FaultKind::descriptor`] is the **single exhaustive match** from
/// which `Display`, the audit plumbing and the `ALL_*` iteration lists
/// are all derived — adding a variant fails to compile until this
/// descriptor is extended, and the `fault_descriptor_is_exhaustive_*`
/// tests pin the derived tables to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDescriptor {
    /// Kebab-case display label ("deny" kinds append the rule name).
    pub label: &'static str,
    /// Dense index into the audit's non-deny injected table, `None` for
    /// `Deny` (which is audited per-rule instead).
    pub audit_slot: Option<usize>,
}

/// Number of non-`Deny` fault kinds — the size of the audit's dense
/// injected-fault table. Derived from [`FaultKind::descriptor`]'s slot
/// numbering and pinned by tests.
pub const NON_DENY_FAULT_COUNT: usize = 9;

/// Every non-`Deny` fault kind, ordered by audit slot. Pinned against
/// [`FaultKind::descriptor`] by tests: `NON_DENY_FAULT_KINDS[i]` has
/// `audit_slot == Some(i)`.
pub const NON_DENY_FAULT_KINDS: [FaultKind; NON_DENY_FAULT_COUNT] = [
    FaultKind::Kill,
    FaultKind::Stall,
    FaultKind::HtmCapacity,
    FaultKind::HtmConflict,
    FaultKind::PartitionShard,
    FaultKind::DelayReply,
    FaultKind::DropRequest,
    FaultKind::DuplicateRequest,
    FaultKind::CrashShardServer,
];

impl FaultKind {
    /// The single source of truth for per-kind plumbing. Exhaustive by
    /// construction: a new variant cannot compile without a descriptor,
    /// and the descriptor tests force its slot/label to be reviewed.
    pub const fn descriptor(self) -> FaultDescriptor {
        const fn d(label: &'static str, slot: usize) -> FaultDescriptor {
            FaultDescriptor {
                label,
                audit_slot: Some(slot),
            }
        }
        match self {
            FaultKind::Deny(_) => FaultDescriptor {
                label: "deny",
                audit_slot: None,
            },
            FaultKind::Kill => d("kill", 0),
            FaultKind::Stall => d("stall", 1),
            FaultKind::HtmCapacity => d("htm-capacity", 2),
            FaultKind::HtmConflict => d("htm-conflict", 3),
            FaultKind::PartitionShard => d("partition-shard", 4),
            FaultKind::DelayReply => d("delay-reply", 5),
            FaultKind::DropRequest => d("drop-request", 6),
            FaultKind::DuplicateRequest => d("duplicate-request", 7),
            FaultKind::CrashShardServer => d("crash-shard-server", 8),
        }
    }

    /// Dense audit-table index for non-deny kinds (`None` for `Deny`).
    pub const fn audit_slot(self) -> Option<usize> {
        self.descriptor().audit_slot
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = self.descriptor().label;
        match self {
            FaultKind::Deny(rule) => write!(f, "{label}-{rule}"),
            _ => f.write_str(label),
        }
    }
}

/// The machine-rule and boundary fault kinds, for iterating the original
/// chaos matrix (transport kinds have their own list below — they only
/// fire when a channel transport is installed).
pub const ALL_FAULT_KINDS: [FaultKind; 8] = [
    FaultKind::Deny(Rule::App),
    FaultKind::Deny(Rule::Push),
    FaultKind::Deny(Rule::Pull),
    FaultKind::Deny(Rule::Cmt),
    FaultKind::Kill,
    FaultKind::Stall,
    FaultKind::HtmCapacity,
    FaultKind::HtmConflict,
];

/// Every transport fault kind, for iterating the transport chaos matrix.
pub const ALL_TRANSPORT_FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::PartitionShard,
    FaultKind::DelayReply,
    FaultKind::DropRequest,
    FaultKind::DuplicateRequest,
    FaultKind::CrashShardServer,
];

/// A fault fired at a tick boundary, before the driver runs any rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryFault {
    /// Abort and restart the thread's current transaction.
    Kill,
    /// Park the thread for this many ticks.
    Stall(u64),
}

/// A fault fired at a simulated-HTM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtmFault {
    /// The transaction overflowed the simulated read/write capacity.
    Capacity,
    /// The hardware detected a (possibly spurious) conflict.
    Conflict,
}

/// A fault fired at one delivery attempt of a shard-transport request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// The shard is unreachable: the request is not delivered.
    Partition,
    /// Deliver and execute, but the reply misses the deadline.
    DelayReply,
    /// The request is lost in flight.
    DropRequest,
    /// The request is delivered twice under the same request id.
    DuplicateRequest,
    /// Kill the shard server thread; it restarts from the shard log.
    CrashServer,
}

impl TransportFault {
    /// The audit key this fault is tallied under.
    pub const fn kind(self) -> FaultKind {
        match self {
            TransportFault::Partition => FaultKind::PartitionShard,
            TransportFault::DelayReply => FaultKind::DelayReply,
            TransportFault::DropRequest => FaultKind::DropRequest,
            TransportFault::DuplicateRequest => FaultKind::DuplicateRequest,
            TransportFault::CrashServer => FaultKind::CrashShardServer,
        }
    }
}

/// The clause an injected denial of `rule` reports. Chosen to be the
/// clause the rule most commonly fails under real contention, so a
/// driver cannot distinguish an injected denial from a genuine one.
pub fn deny_clause(rule: Rule) -> Clause {
    match rule {
        Rule::App => Clause::Ii,
        Rule::Push => Clause::Iii,
        Rule::Pull => Clause::Ii,
        Rule::Cmt => Clause::Iii,
        Rule::UnApp | Rule::UnPush | Rule::UnPull => Clause::I,
    }
}

/// A pluggable fault source, consulted by the machine at rule entry, by
/// drivers at tick/HTM boundaries, and by the channel transport at every
/// delivery attempt. Implementations must be deterministic given their
/// own state (the harness `FaultPlan` keys decisions on per-thread
/// attempt counters, never on wall-clock or OS scheduling), `Sync`
/// (hooks are consulted concurrently from worker threads), and cheap —
/// they sit on the hot path of every rule.
///
/// All methods default to "no fault", so an implementation overrides
/// only the boundaries it cares about.
pub trait FaultHook: std::fmt::Debug + Send + Sync {
    /// Consulted at the entry of a forward rule (APP, PUSH, PULL, CMT)
    /// on `tid`, *before* the rule checks criteria or has any effect.
    /// Returning `Some(clause)` denies the rule: the caller sees a
    /// criterion failure for `(rule, clause)` and the machine records an
    /// injected `Deny(rule)` fault.
    fn deny_rule(&self, tid: ThreadId, rule: Rule) -> Option<Clause> {
        let _ = (tid, rule);
        None
    }

    /// Consulted by drivers at the start of a tick, at a rule boundary
    /// (no rule mid-flight). A returned fault is always acted on and
    /// recorded.
    fn at_boundary(&self, tid: ThreadId) -> Option<BoundaryFault> {
        let _ = tid;
        None
    }

    /// Consulted by the simulated-HTM drivers once per transactional
    /// memory access, before the access is recorded in the conflict
    /// tables.
    fn htm_access(&self, tid: ThreadId) -> Option<HtmFault> {
        let _ = tid;
        None
    }

    /// Consulted by the channel transport once per **delivery attempt**
    /// (initial send, each retry, and each recovery probe) of a request
    /// from `tid` to `shard`. A returned fault is acted on by the
    /// transport envelope and recorded on both sides (the plan's `fired`
    /// tally and the machine audit's `injected` tally), keeping the
    /// injected-vs-fired accounting exact.
    fn transport_fault(&self, tid: ThreadId, shard: usize) -> Option<TransportFault> {
        let _ = (tid, shard);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_are_ordered_and_displayable() {
        let mut v = ALL_FAULT_KINDS.to_vec();
        v.extend_from_slice(&ALL_TRANSPORT_FAULT_KINDS);
        v.sort();
        v.dedup();
        assert_eq!(
            v.len(),
            ALL_FAULT_KINDS.len() + ALL_TRANSPORT_FAULT_KINDS.len()
        );
        assert_eq!(FaultKind::Deny(Rule::Push).to_string(), "deny-PUSH");
        assert_eq!(FaultKind::HtmCapacity.to_string(), "htm-capacity");
        assert_eq!(FaultKind::PartitionShard.to_string(), "partition-shard");
        assert_eq!(
            FaultKind::CrashShardServer.to_string(),
            "crash-shard-server"
        );
    }

    /// The compile guard's runtime half: the descriptor match is
    /// exhaustive by construction (a new variant will not compile
    /// without a descriptor arm); this pins the *derived* tables —
    /// dense, bijective audit slots and unique labels — so extending
    /// the descriptor forces the slot table to be reviewed too.
    #[test]
    fn fault_descriptor_is_exhaustive_and_slots_are_dense() {
        for (i, kind) in NON_DENY_FAULT_KINDS.iter().enumerate() {
            assert_eq!(
                kind.audit_slot(),
                Some(i),
                "{kind}: NON_DENY_FAULT_KINDS order must match audit slots"
            );
        }
        let mut labels: Vec<&str> = NON_DENY_FAULT_KINDS
            .iter()
            .map(|k| k.descriptor().label)
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NON_DENY_FAULT_COUNT, "labels must be unique");
        // Deny kinds have no dense slot: they are audited per-rule.
        for rule in [Rule::App, Rule::Push, Rule::Pull, Rule::Cmt] {
            assert_eq!(FaultKind::Deny(rule).audit_slot(), None);
        }
        // Every transport fault maps onto a transport fault kind.
        for tf in [
            TransportFault::Partition,
            TransportFault::DelayReply,
            TransportFault::DropRequest,
            TransportFault::DuplicateRequest,
            TransportFault::CrashServer,
        ] {
            assert!(ALL_TRANSPORT_FAULT_KINDS.contains(&tf.kind()));
        }
    }

    #[test]
    fn deny_clause_covers_forward_rules() {
        assert_eq!(deny_clause(Rule::App), Clause::Ii);
        assert_eq!(deny_clause(Rule::Push), Clause::Iii);
        assert_eq!(deny_clause(Rule::Pull), Clause::Ii);
        assert_eq!(deny_clause(Rule::Cmt), Clause::Iii);
    }

    #[derive(Debug)]
    struct DenyAllPush;
    impl FaultHook for DenyAllPush {
        fn deny_rule(&self, _tid: ThreadId, rule: Rule) -> Option<Clause> {
            (rule == Rule::Push).then_some(deny_clause(rule))
        }
    }

    #[test]
    fn default_hook_methods_are_no_faults() {
        let h = DenyAllPush;
        assert_eq!(h.deny_rule(ThreadId(0), Rule::Push), Some(Clause::Iii));
        assert_eq!(h.deny_rule(ThreadId(0), Rule::App), None);
        assert_eq!(h.at_boundary(ThreadId(0)), None);
        assert_eq!(h.htm_access(ThreadId(0)), None);
        assert_eq!(h.transport_fault(ThreadId(0), 0), None);
    }
}
