//! The structural reductions of Figure 6 (NONDETL, NONDETR, LOOP, SEMI,
//! SEMISKIP) as explicit small steps on [`Code`].
//!
//! The machine's APP/CMT rules work through `step`/`fin`, which *scan
//! through* this nondeterminism — so drivers never need these. They are
//! provided (and tested) for fidelity: the paper's `→rt` relation
//! includes them, and the equivalence `step(c) = { leftover method steps
//! after any sequence of structural steps }` is part of what Example 1's
//! equations mean. The `SEMI` rule of Figure 6 is the congruence that
//! lets a step fire on the left of a `;` — realized here by locating the
//! leftmost structural redex through `Seq`/`Tx` spines.

use crate::lang::Code;

/// A structural reduction applicable to the leftmost redex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructStep {
    /// NONDETL: `c₁ + c₂ → c₁`.
    NondetL,
    /// NONDETR: `c₁ + c₂ → c₂`.
    NondetR,
    /// LOOP: `(c)* → (c ; (c)*) + skip`.
    Loop,
    /// SEMISKIP: `skip ; c → c`.
    SemiSkip,
}

/// The structural steps applicable at the leftmost redex of `code`
/// (through `Seq`-left and `Tx` spines, the SEMI congruence).
pub fn applicable<M: Clone>(code: &Code<M>) -> Vec<StructStep> {
    match leftmost(code) {
        Some(Code::Choice(_, _)) => vec![StructStep::NondetL, StructStep::NondetR],
        Some(Code::Star(_)) => vec![StructStep::Loop],
        Some(Code::Seq(a, _)) if matches!(**a, Code::Skip) => vec![StructStep::SemiSkip],
        _ => vec![],
    }
}

/// Applies one structural step at the leftmost redex, returning the
/// reduced code, or `None` when the step does not apply there.
pub fn apply<M: Clone>(code: &Code<M>, step: StructStep) -> Option<Code<M>> {
    match code {
        // SEMI congruence: reduce inside the left of a `;` … unless the
        // redex is the `skip ; c` spine itself.
        Code::Seq(a, b) => {
            if matches!(**a, Code::Skip) && step == StructStep::SemiSkip {
                return Some((**b).clone());
            }
            let a2 = apply(a, step)?;
            Some(Code::seq(a2, (**b).clone()))
        }
        Code::Tx(a) => {
            let a2 = apply(a, step)?;
            Some(Code::tx(a2))
        }
        Code::OpenTx(a) => {
            let a2 = apply(a, step)?;
            Some(Code::otx(a2))
        }
        Code::Choice(a, b) => match step {
            StructStep::NondetL => Some((**a).clone()),
            StructStep::NondetR => Some((**b).clone()),
            _ => None,
        },
        Code::Star(a) => match step {
            StructStep::Loop => Some(Code::choice(
                Code::seq((**a).clone(), Code::star((**a).clone())),
                Code::Skip,
            )),
            _ => None,
        },
        Code::Skip | Code::Method(_) => None,
    }
}

fn leftmost<M: Clone>(code: &Code<M>) -> Option<&Code<M>> {
    match code {
        Code::Seq(a, _) => {
            if matches!(**a, Code::Skip) {
                Some(code)
            } else {
                leftmost(a)
            }
        }
        Code::Tx(a) | Code::OpenTx(a) => leftmost(a),
        Code::Choice(_, _) | Code::Star(_) => Some(code),
        Code::Skip | Code::Method(_) => None,
    }
}

/// The soundness statement connecting Figure 6 to `step`/`fin`: a
/// structural step never invents behaviours — the `step` set of the
/// reduct is a subset of the original's, and likewise for `fin`.
/// (`NondetL`/`NondetR` genuinely shrink the set; `Loop` and `SemiSkip`
/// preserve it.) Used by property tests.
pub fn preserves_step_inclusion<M: Clone + Eq>(code: &Code<M>, step: StructStep) -> bool {
    let Some(reduct) = apply(code, step) else {
        return true;
    };
    let before = code.step();
    let after = reduct.step();
    after
        .iter()
        .all(|(m, k)| before.iter().any(|(m2, k2)| m2 == m && k2 == k))
        && (!reduct.fin() || code.fin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &'static str) -> Code<&'static str> {
        Code::method(s)
    }

    #[test]
    fn nondet_resolves_either_branch() {
        let c = Code::choice(m("a"), m("b"));
        assert_eq!(apply(&c, StructStep::NondetL), Some(m("a")));
        assert_eq!(apply(&c, StructStep::NondetR), Some(m("b")));
    }

    #[test]
    fn loop_unfolds_as_figure_6() {
        let c = Code::star(m("a"));
        let unfolded = apply(&c, StructStep::Loop).unwrap();
        assert_eq!(
            unfolded,
            Code::choice(Code::seq(m("a"), Code::star(m("a"))), Code::Skip)
        );
    }

    #[test]
    fn semiskip_eliminates_leading_skip() {
        let c = Code::seq(Code::Skip, m("a"));
        assert_eq!(apply(&c, StructStep::SemiSkip), Some(m("a")));
    }

    #[test]
    fn semi_congruence_reduces_on_the_left() {
        // (a + b) ; c — the choice resolves under the seq.
        let c = Code::seq(Code::choice(m("a"), m("b")), m("c"));
        let r = apply(&c, StructStep::NondetL).unwrap();
        assert_eq!(r, Code::seq(m("a"), m("c")));
    }

    #[test]
    fn tx_congruence() {
        let c = Code::tx(Code::choice(m("a"), m("b")));
        let r = apply(&c, StructStep::NondetR).unwrap();
        assert_eq!(r, Code::tx(m("b")));
    }

    #[test]
    fn applicable_finds_leftmost_redex() {
        let c = Code::seq(Code::Skip, Code::choice(m("a"), m("b")));
        assert_eq!(applicable(&c), vec![StructStep::SemiSkip]);
        let c2 = apply(&c, StructStep::SemiSkip).unwrap();
        assert_eq!(
            applicable(&c2),
            vec![StructStep::NondetL, StructStep::NondetR]
        );
        assert!(applicable(&m("a")).is_empty());
    }

    #[test]
    fn structural_steps_never_invent_behaviours() {
        let cases: Vec<Code<&'static str>> = vec![
            Code::choice(m("a"), m("b")),
            Code::star(m("a")),
            Code::seq(Code::Skip, m("a")),
            Code::seq(Code::choice(m("a"), Code::Skip), m("c")),
            Code::tx(Code::seq(Code::star(m("x")), m("y"))),
        ];
        for c in &cases {
            for s in [
                StructStep::NondetL,
                StructStep::NondetR,
                StructStep::Loop,
                StructStep::SemiSkip,
            ] {
                assert!(preserves_step_inclusion(c, s), "{c} under {s:?}");
            }
        }
    }

    #[test]
    fn fully_resolving_leaves_only_method_steps() {
        // Repeatedly apply structural steps (taking NondetL) until none
        // apply; the result's step set is a subset of the original's.
        let mut c = Code::tx(Code::seq(Code::choice(m("a"), m("b")), Code::star(m("c"))));
        let original_steps = c.step();
        loop {
            let apps = applicable(&c);
            let Some(&s) = apps.first() else { break };
            c = apply(&c, s).unwrap();
        }
        for (mm, _) in c.step() {
            assert!(original_steps.iter().any(|(m2, _)| *m2 == mm));
        }
    }
}
