//! Per-shard **group commit**: the PUSH/CMT critical sections of many
//! commit-ready transactions destined for the same footprint shard,
//! executed under **one** shard-lock acquisition and one contiguous
//! commit-stamp range.
//!
//! ## Why this is sound (the stamp-range argument)
//!
//! The per-transaction path interleaves, for each transaction, one lock
//! acquisition per PUSH (minting one stamp under the lock) plus one per
//! CMT. The batch path acquires the destination shard's lock once,
//! reserves a contiguous stamp block of the batch's total op count
//! ([`GlobalState::reserve_stamps`] — *after* acquiring the lock, so
//! every stamp already in the shard is strictly below the block's base),
//! and then replays the transactions **one at a time, in batch order**,
//! inside the held view: each transaction runs its full PUSH criteria
//! per op (appending with the next stamp from the block) followed by its
//! full CMT criteria and effect. Because each transaction fully commits
//! (or fully rolls back, see below) before the next one's criteria are
//! evaluated, every criterion sees exactly the global log the
//! per-transaction path would have shown it — the batch is
//! observationally identical to running the same transactions back to
//! back, which is what the golden equivalence suite pins down
//! bit-for-bit. Serializability is therefore inherited from the
//! per-rule argument of Theorem 5.17 unchanged; batching only removes
//! lock round-trips, never reorders criteria against effects.
//!
//! A transaction denied mid-batch is aborted *inside the held view*
//! ([`TxnHandle::batch_abort_in_view`]) with the same tail-first rewind
//! the per-transaction path performs, so its partial appends never leak
//! into the next batched transaction's criteria. Stamps it consumed are
//! simply skipped — stamp gaps are already routine (UNPUSH leaves them)
//! and only relative stamp order matters for replay.
//!
//! Eligibility is conservative: every operation of the transaction must
//! route [`Route::Single`] to one common shard, coarse mode must be off
//! and no transport installed ([`TxnHandle::group_route`]); everything
//! else falls back to the unchanged per-transaction path.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::MachineError;
use crate::global::Route;
use crate::handle::{BatchTally, TxnHandle};
use crate::op::{ThreadId, TxnId};
use crate::spec::SeqSpec;

/// Per-transaction outcome of a [`commit_group`] call, in input order.
#[derive(Debug)]
pub enum GroupTxnResult {
    /// Committed through a batch.
    Committed(TxnId),
    /// A criterion (or injected fault) denied a batched PUSH/CMT. The
    /// transaction was aborted and restarted in place — same code, fresh
    /// transaction id, exactly as
    /// [`TxnHandle::abort_and_retry`] — before the next batched
    /// transaction ran. The caller re-drives its operations.
    Aborted {
        /// The denial that failed the batched attempt.
        denied: MachineError,
        /// The fresh transaction id of the restarted attempt.
        restarted: TxnId,
    },
    /// The inline abort itself failed — structural misuse, not reachable
    /// from well-formed drives. The handle is left mid-rewind.
    Wedged(MachineError),
    /// Not eligible for batching (mixed shards, coarse route or coarse
    /// mode, an installed transport, or nothing to commit) — the caller
    /// falls back to the per-transaction path.
    Ineligible,
}

impl GroupTxnResult {
    /// Did this transaction commit through the batch?
    pub fn is_committed(&self) -> bool {
        matches!(self, GroupTxnResult::Committed(_))
    }
}

/// What one [`commit_group`] call did.
#[derive(Debug)]
pub struct GroupOutcome {
    /// One entry per input handle, in input order.
    pub results: Vec<(ThreadId, GroupTxnResult)>,
    /// Batches sealed (shards that committed at least one transaction
    /// under their single acquisition).
    pub batches: u64,
    /// Transactions committed through those batches.
    pub batched_txns: u64,
}

impl GroupOutcome {
    fn empty() -> Self {
        Self {
            results: Vec::new(),
            batches: 0,
            batched_txns: 0,
        }
    }
}

/// Commits the given commit-ready transactions through the per-shard
/// group-commit path: handles are grouped by their (single) destination
/// shard, each shard group executes under one lock acquisition and one
/// contiguous reserved stamp range, and ineligible handles are reported
/// back untouched for the caller's per-transaction fallback.
///
/// Every handle must be bound to the same machine. Shard groups run in
/// ascending shard order and preserve input order within a group, so a
/// deterministic drive produces a deterministic trace.
pub fn commit_group<S: SeqSpec>(handles: &mut [&mut TxnHandle<S>]) -> GroupOutcome {
    let mut out = GroupOutcome::empty();
    let first = match handles.first() {
        Some(h) => Arc::clone(h.global_state()),
        None => return out,
    };
    out.results = handles
        .iter()
        .map(|h| (h.tid(), GroupTxnResult::Ineligible))
        .collect();
    // Group eligible handles by destination shard, ascending.
    let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, h) in handles.iter().enumerate() {
        assert!(
            Arc::ptr_eq(h.global_state(), &first),
            "commit_group handles must share one machine"
        );
        if let Some(shard) = h.group_route() {
            by_shard.entry(shard).or_default().push(idx);
        }
    }
    for (shard, members) in by_shard {
        let mut tally = BatchTally::default();
        let mut committed_here = 0u64;
        let mut ops_here = 0u64;
        {
            let mut view = first.acquire_route(Route::Single(shard));
            if !view.is_single_shard(shard) {
                // Coarse mode raced in between eligibility and
                // acquisition: the single-shard premise is gone. Leave
                // the members Ineligible for the per-txn fallback.
                continue;
            }
            // The contiguous stamp block, reserved under the shard lock:
            // everything already in this shard is stamped strictly below
            // `base`, and no other thread can append to it while we hold
            // the view, so handing the block out in order preserves the
            // shard's strict stamp monotonicity.
            let total_ops: u64 = members
                .iter()
                .map(|&i| handles[i].unpushed_ids().len() as u64)
                .sum();
            let base = first.reserve_stamps(total_ops);
            let mut cursor = base;
            for &i in &members {
                let h = &mut *handles[i];
                let ids = h.unpushed_ids();
                let mut denied: Option<MachineError> = None;
                let mut appended = 0u64;
                for id in ids {
                    match h.batch_push_in_view(&mut view, shard, cursor, id, &mut tally) {
                        Ok(()) => {
                            cursor += 1;
                            appended += 1;
                        }
                        Err(e) => {
                            denied = Some(e);
                            break;
                        }
                    }
                }
                let result = match denied {
                    None => match h.batch_commit_in_view(&mut view, &mut tally) {
                        Ok(txn) => {
                            committed_here += 1;
                            ops_here += appended;
                            GroupTxnResult::Committed(txn)
                        }
                        Err(e) => match h.batch_abort_in_view(&mut view, &mut tally) {
                            Ok(restarted) => GroupTxnResult::Aborted {
                                denied: e,
                                restarted,
                            },
                            Err(abort_err) => GroupTxnResult::Wedged(abort_err),
                        },
                    },
                    Some(e) => match h.batch_abort_in_view(&mut view, &mut tally) {
                        Ok(restarted) => GroupTxnResult::Aborted {
                            denied: e,
                            restarted,
                        },
                        Err(abort_err) => GroupTxnResult::Wedged(abort_err),
                    },
                };
                out.results[i].1 = result;
            }
        }
        // Satellite invariant: the batched path re-asserts the audit
        // ledger closure (discharged + violated + static == reaches)
        // over its locally tracked tallies in debug builds.
        tally.assert_closed();
        if committed_here > 0 {
            first.note_group_batch(committed_here, ops_here);
            out.batches += 1;
            out.batched_txns += committed_here;
        }
    }
    out
}
