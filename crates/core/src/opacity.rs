//! Opacity as a fragment of PUSH/PULL (paper §6.1).
//!
//! General PUSH/PULL transactions are *not* opaque [Guerraoui & Kapalka]:
//! a transaction may PULL the uncommitted effects of another. The paper
//! identifies two opaque fragments:
//!
//! 1. **No uncommitted pulls** — if transactions never PULL an operation
//!    whose global flag is `gUCmt`, the run is opaque. [`check_trace`]
//!    decides this syntactically on the recorded trace.
//! 2. **Commutativity refinement** — a transaction `T` *may* PULL an
//!    uncommitted `m′` of `T′` provided `T` will never execute a method
//!    that does not commute with `m′` ("examining, statically or
//!    dynamically, the set of all reachable operations"). Each PULL event
//!    records the puller's reachable methods at pull time, so
//!    [`check_trace_refined`] decides this given a commutation oracle for
//!    (method, pulled operation) pairs.
//!
//! Note the checkers classify *runs*; an algorithm is opaque when all its
//! runs are (which the harness's model checker establishes for small
//! configurations).

use crate::log::GlobalFlag;
use crate::op::{Op, OpId, ThreadId};
use crate::trace::{Event, Trace};

/// Outcome of an opacity check on one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpacityVerdict {
    /// No uncommitted effect was ever pulled: the run lies in the opaque
    /// fragment of §6.1.
    Opaque,
    /// Uncommitted effects were pulled, but each pull is covered by the
    /// commutativity refinement: all methods the puller could still
    /// perform commute with the pulled operation.
    OpaqueByCommutativity,
    /// The run leaves the opaque fragment; each violation names the
    /// pulling thread and the pulled operation.
    NotOpaque {
        /// (puller, pulled operation) pairs that violate opacity.
        violations: Vec<(ThreadId, OpId)>,
    },
}

impl OpacityVerdict {
    /// Is the run opaque (under either fragment)?
    pub fn is_opaque(&self) -> bool {
        !matches!(self, OpacityVerdict::NotOpaque { .. })
    }
}

/// Classifies a trace against the plain fragment: opaque iff no PULL ever
/// imported an operation that was uncommitted at pull time.
///
/// # Examples
///
/// ```
/// use pushpull_core::machine::Machine;
/// use pushpull_core::lang::Code;
/// use pushpull_core::toy::{ToyCounter, CounterMethod};
/// use pushpull_core::opacity::{check_trace, OpacityVerdict};
///
/// let mut m = Machine::new(ToyCounter::with_bound(8));
/// let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
/// let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
/// let ia = m.app_auto(a)?;
/// m.push(a, ia)?;
/// m.commit(a)?;
/// m.pull_all_committed(b)?; // pulls a *committed* effect: opaque
/// assert_eq!(check_trace(&m.trace()), OpacityVerdict::Opaque);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
pub fn check_trace<M, R>(trace: &Trace<M, R>) -> OpacityVerdict {
    let violations: Vec<(ThreadId, OpId)> = trace
        .iter()
        .filter_map(|e| match e {
            Event::Pull {
                thread,
                op,
                status_at_pull: GlobalFlag::Uncommitted,
                ..
            } => Some((*thread, *op)),
            _ => None,
        })
        .collect();
    if violations.is_empty() {
        OpacityVerdict::Opaque
    } else {
        OpacityVerdict::NotOpaque { violations }
    }
}

/// Classifies a trace against the commutativity-refined fragment.
///
/// `commutes(method, pulled_op_id, pulled_method)` must answer whether an
/// invocation of `method` (any arguments/results the puller could produce)
/// commutes with the pulled operation. The `pushpull-spec` crate provides
/// such oracles for its specifications.
pub fn check_trace_refined<M, R>(
    trace: &Trace<M, R>,
    mut commutes: impl FnMut(&M, OpId, &M) -> bool,
) -> OpacityVerdict {
    let mut uncommitted_pulls = 0usize;
    let mut violations = Vec::new();
    for e in trace.iter() {
        if let Event::Pull {
            thread,
            op,
            status_at_pull: GlobalFlag::Uncommitted,
            method,
            reachable_after,
            ..
        } = e
        {
            uncommitted_pulls += 1;
            if !reachable_after.iter().all(|m| commutes(m, *op, method)) {
                violations.push((*thread, *op));
            }
        }
    }
    if !violations.is_empty() {
        OpacityVerdict::NotOpaque { violations }
    } else if uncommitted_pulls > 0 {
        OpacityVerdict::OpaqueByCommutativity
    } else {
        OpacityVerdict::Opaque
    }
}

/// Convenience: do these events describe a run in the *plain* opaque
/// fragment (no uncommitted pull at all)?
pub fn is_opaque_fragment<M, R>(trace: &Trace<M, R>) -> bool {
    matches!(check_trace(trace), OpacityVerdict::Opaque)
}

/// Snapshot-consistency check, the semantic core of opacity: every
/// committed *and aborted* transaction attempt must only ever have held an
/// `allowed` local log. The checked machine enforces this through APP/PULL
/// criteria; this function re-verifies it for unchecked runs by replaying
/// the trace's per-thread APP observations.
///
/// Returns the threads whose observation history was inconsistent with
/// *some* serial state, i.e. could not be produced by any prefix of
/// their own local log. (A coarse but useful diagnostic for unchecked
/// executions; checked executions always pass by construction.)
pub fn inconsistent_observers<S, M, R>(spec: &S, trace: &Trace<M, R>) -> Vec<ThreadId>
where
    S: crate::spec::SeqSpec<Method = M, Ret = R>,
    M: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    R: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    use std::collections::HashMap;
    // Reconstruct each transaction attempt's local observation log from
    // the trace and check allowedness at every prefix.
    let mut local: HashMap<ThreadId, Vec<Op<M, R>>> = HashMap::new();
    let mut bad: Vec<ThreadId> = Vec::new();
    for e in trace.iter() {
        match e {
            Event::Begin { thread, .. }
            | Event::Commit { thread, .. }
            | Event::Abort { thread, .. } => {
                local.remove(thread);
            }
            Event::App {
                thread,
                op,
                method,
                ret,
            } => {
                let l = local.entry(*thread).or_default();
                l.push(Op::new(
                    *op,
                    crate::op::TxnId(0),
                    method.clone(),
                    ret.clone(),
                ));
                if !spec.allowed(l) && !bad.contains(thread) {
                    bad.push(*thread);
                }
            }
            Event::Pull {
                thread,
                op,
                method,
                ret,
                ..
            } => {
                let l = local.entry(*thread).or_default();
                l.push(Op::new(
                    *op,
                    crate::op::TxnId(0),
                    method.clone(),
                    ret.clone(),
                ));
            }
            Event::UnApp { thread, .. } => {
                if let Some(l) = local.get_mut(thread) {
                    l.pop();
                }
            }
            Event::UnPull { thread, op, .. } => {
                if let Some(l) = local.get_mut(thread) {
                    l.retain(|o| o.id != *op);
                }
            }
            _ => {}
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Code;
    use crate::machine::Machine;
    use crate::toy::{CounterMethod, ToyCounter};

    #[test]
    fn committed_pull_is_opaque() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        m.pull_all_committed(b).unwrap();
        assert_eq!(check_trace(&m.trace()), OpacityVerdict::Opaque);
        assert!(is_opaque_fragment(&m.trace()));
    }

    #[test]
    fn uncommitted_pull_breaks_plain_fragment() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        match check_trace(&m.trace()) {
            OpacityVerdict::NotOpaque { violations } => {
                assert_eq!(violations.len(), 1);
                assert_eq!(violations[0].1, ia);
            }
            other => panic!("expected NotOpaque, got {other:?}"),
        }
    }

    #[test]
    fn refinement_admits_commuting_remainder() {
        // Puller's remaining code is inc-only; inc commutes with the
        // pulled inc, so the refined fragment admits the pull.
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        let verdict = check_trace_refined(&m.trace(), |method, _, pulled| {
            matches!(
                (method, pulled),
                (CounterMethod::Inc, CounterMethod::Inc) | (CounterMethod::Dec, CounterMethod::Inc)
            )
        });
        assert_eq!(verdict, OpacityVerdict::OpaqueByCommutativity);
    }

    #[test]
    fn refinement_rejects_noncommuting_remainder() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.pull(b, ia).unwrap();
        let verdict = check_trace_refined(&m.trace(), |method, _, _| {
            !matches!(method, CounterMethod::Get)
        });
        assert!(!verdict.is_opaque());
    }

    #[test]
    fn checked_runs_have_no_inconsistent_observers() {
        let mut m = Machine::new(ToyCounter::with_bound(8));
        let a = m.add_thread(vec![Code::seq(
            Code::method(CounterMethod::Inc),
            Code::method(CounterMethod::Get),
        )]);
        m.app_auto(a).unwrap();
        m.app_auto(a).unwrap();
        m.push_all_and_commit(a).unwrap();
        assert!(inconsistent_observers(m.spec(), &m.trace()).is_empty());
    }
}
