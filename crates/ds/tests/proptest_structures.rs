//! Property-based differential tests: the substrate data structures
//! against `std` reference models, over arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

use pushpull_ds::hashtable::ChainedHashTable;
use pushpull_ds::skiplist::SkipListMap;

#[derive(Debug, Clone)]
enum MapAction {
    Insert(u16, i32),
    Remove(u16),
    Get(u16),
}

fn actions(len: usize) -> impl Strategy<Value = Vec<MapAction>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<i32>()).prop_map(|(k, v)| MapAction::Insert(k % 64, v)),
            any::<u16>().prop_map(|k| MapAction::Remove(k % 64)),
            any::<u16>().prop_map(|k| MapAction::Get(k % 64)),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn skiplist_matches_btreemap(ops in actions(200), seed in any::<u64>()) {
        let mut sl = SkipListMap::with_seed(seed | 1);
        let mut model: BTreeMap<u16, i32> = BTreeMap::new();
        for op in &ops {
            match op {
                MapAction::Insert(k, v) => prop_assert_eq!(sl.insert(*k, *v), model.insert(*k, *v)),
                MapAction::Remove(k) => prop_assert_eq!(sl.remove(k), model.remove(k)),
                MapAction::Get(k) => prop_assert_eq!(sl.get(k), model.get(k)),
            }
            prop_assert_eq!(sl.len(), model.len());
        }
        // Iteration agrees, in order.
        let a: Vec<(u16, i32)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u16, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hashtable_matches_hashmap(ops in actions(200)) {
        let mut ht = ChainedHashTable::new();
        let mut model: HashMap<u16, i32> = HashMap::new();
        for op in &ops {
            match op {
                MapAction::Insert(k, v) => prop_assert_eq!(ht.insert(*k, *v), model.insert(*k, *v)),
                MapAction::Remove(k) => prop_assert_eq!(ht.remove(k), model.remove(k)),
                MapAction::Get(k) => prop_assert_eq!(ht.get(k), model.get(k)),
            }
            prop_assert_eq!(ht.len(), model.len());
        }
        // Contents agree as sets.
        let mut a: Vec<(u16, i32)> = ht.iter().map(|(k, v)| (*k, *v)).collect();
        let mut b: Vec<(u16, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Skip-list structure is independent of operation interleaving with
    /// no-op queries: gets never perturb state.
    #[test]
    fn skiplist_gets_are_pure(keys in prop::collection::vec(any::<u16>(), 1..50)) {
        let mut sl = SkipListMap::new();
        for (i, k) in keys.iter().enumerate() {
            sl.insert(*k, i);
        }
        let before: Vec<(u16, usize)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        for k in &keys {
            let _ = sl.get(k);
            let _ = sl.contains_key(k);
        }
        let after: Vec<(u16, usize)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(before, after);
    }
}

#[derive(Debug, Clone)]
enum LockAction {
    Lock(u8, u8),
    ReleaseAll(u8),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The abstract lock manager never double-grants a key and always
    /// fully releases.
    #[test]
    fn lock_manager_exclusivity(acts in prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(t, k)| LockAction::Lock(t % 4, k % 8)),
            any::<u8>().prop_map(|t| LockAction::ReleaseAll(t % 4)),
        ],
        0..100,
    )) {
        use pushpull_core::op::TxnId;
        use pushpull_ds::locks::{AbstractLockManager, LockOutcome};
        use std::collections::HashMap;

        let mut mgr: AbstractLockManager<u8> = AbstractLockManager::new();
        let mut model: HashMap<u8, u64> = HashMap::new(); // key -> txn
        for a in &acts {
            match a {
                LockAction::Lock(t, k) => {
                    let txn = TxnId(u64::from(*t));
                    match mgr.try_lock(txn, *k) {
                        LockOutcome::Acquired => {
                            prop_assert!(!model.contains_key(k), "double grant of {k}");
                            model.insert(*k, u64::from(*t));
                        }
                        LockOutcome::AlreadyHeld => {
                            prop_assert_eq!(model.get(k), Some(&u64::from(*t)));
                        }
                        LockOutcome::Busy { owner } => {
                            prop_assert_eq!(model.get(k).copied(), Some(owner.0));
                        }
                        LockOutcome::WouldDeadlock { .. } => {
                            prop_assert!(model.contains_key(k));
                        }
                    }
                }
                LockAction::ReleaseAll(t) => {
                    mgr.release_all(TxnId(u64::from(*t)));
                    model.retain(|_, owner| *owner != u64::from(*t));
                }
            }
            prop_assert_eq!(mgr.locked_count(), model.len());
        }
    }
}
