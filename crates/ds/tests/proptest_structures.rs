//! Property-based differential tests: the substrate data structures
//! against `std` reference models, over arbitrary operation sequences.
//!
//! Cases are generated with the seeded [`Xorshift64`] PRNG, so every run
//! checks the same case set and failures reproduce exactly.

use std::collections::{BTreeMap, HashMap};

use pushpull_core::rng::Xorshift64;
use pushpull_ds::hashtable::ChainedHashTable;
use pushpull_ds::skiplist::SkipListMap;

#[derive(Debug, Clone)]
enum MapAction {
    Insert(u16, i32),
    Remove(u16),
    Get(u16),
}

fn actions(rng: &mut Xorshift64, max_len: usize) -> Vec<MapAction> {
    let len = rng.gen_index(max_len.max(1));
    (0..len)
        .map(|_| {
            let k = (rng.next_u64() % 64) as u16;
            match rng.gen_range(0..3) {
                0 => MapAction::Insert(k, rng.next_u64() as i32),
                1 => MapAction::Remove(k),
                _ => MapAction::Get(k),
            }
        })
        .collect()
}

#[test]
fn skiplist_matches_btreemap() {
    let mut rng = Xorshift64::new(0xD5_01);
    for case in 0..128 {
        let ops = actions(&mut rng, 200);
        let seed = rng.next_u64() | 1;
        let mut sl = SkipListMap::with_seed(seed);
        let mut model: BTreeMap<u16, i32> = BTreeMap::new();
        for op in &ops {
            match op {
                MapAction::Insert(k, v) => {
                    assert_eq!(sl.insert(*k, *v), model.insert(*k, *v), "case {case}")
                }
                MapAction::Remove(k) => assert_eq!(sl.remove(k), model.remove(k), "case {case}"),
                MapAction::Get(k) => assert_eq!(sl.get(k), model.get(k), "case {case}"),
            }
            assert_eq!(sl.len(), model.len(), "case {case}");
        }
        // Iteration agrees, in order.
        let a: Vec<(u16, i32)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u16, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn hashtable_matches_hashmap() {
    let mut rng = Xorshift64::new(0xD5_02);
    for case in 0..128 {
        let ops = actions(&mut rng, 200);
        let mut ht = ChainedHashTable::new();
        let mut model: HashMap<u16, i32> = HashMap::new();
        for op in &ops {
            match op {
                MapAction::Insert(k, v) => {
                    assert_eq!(ht.insert(*k, *v), model.insert(*k, *v), "case {case}")
                }
                MapAction::Remove(k) => assert_eq!(ht.remove(k), model.remove(k), "case {case}"),
                MapAction::Get(k) => assert_eq!(ht.get(k), model.get(k), "case {case}"),
            }
            assert_eq!(ht.len(), model.len(), "case {case}");
        }
        // Contents agree as sets.
        let mut a: Vec<(u16, i32)> = ht.iter().map(|(k, v)| (*k, *v)).collect();
        let mut b: Vec<(u16, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "case {case}");
    }
}

/// Skip-list structure is independent of operation interleaving with
/// no-op queries: gets never perturb state.
#[test]
fn skiplist_gets_are_pure() {
    let mut rng = Xorshift64::new(0xD5_03);
    for case in 0..128 {
        let keys: Vec<u16> = (0..rng.gen_range(1..50))
            .map(|_| rng.next_u64() as u16)
            .collect();
        let mut sl = SkipListMap::new();
        for (i, k) in keys.iter().enumerate() {
            sl.insert(*k, i);
        }
        let before: Vec<(u16, usize)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        for k in &keys {
            let _ = sl.get(k);
            let _ = sl.contains_key(k);
        }
        let after: Vec<(u16, usize)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(before, after, "case {case}");
    }
}

/// The abstract lock manager never double-grants a key and always
/// fully releases.
#[test]
fn lock_manager_exclusivity() {
    use pushpull_core::op::TxnId;
    use pushpull_ds::locks::{AbstractLockManager, LockOutcome};

    let mut rng = Xorshift64::new(0xD5_04);
    for case in 0..128 {
        let n_acts = rng.gen_index(100);
        let mut mgr: AbstractLockManager<u8> = AbstractLockManager::new();
        let mut model: HashMap<u8, u64> = HashMap::new(); // key -> txn
        for _ in 0..n_acts {
            let t = (rng.next_u64() % 4) as u8;
            if rng.gen_bool(0.67) {
                let k = (rng.next_u64() % 8) as u8;
                let txn = TxnId(u64::from(t));
                match mgr.try_lock(txn, k) {
                    LockOutcome::Acquired => {
                        assert!(!model.contains_key(&k), "case {case}: double grant of {k}");
                        model.insert(k, u64::from(t));
                    }
                    LockOutcome::AlreadyHeld => {
                        assert_eq!(model.get(&k), Some(&u64::from(t)), "case {case}");
                    }
                    LockOutcome::Busy { owner } => {
                        assert_eq!(model.get(&k).copied(), Some(owner.0), "case {case}");
                    }
                    LockOutcome::WouldDeadlock { .. } => {
                        assert!(model.contains_key(&k), "case {case}");
                    }
                }
            } else {
                mgr.release_all(TxnId(u64::from(t)));
                model.retain(|_, owner| *owner != u64::from(t));
            }
            assert_eq!(mgr.locked_count(), model.len(), "case {case}");
        }
    }
}
