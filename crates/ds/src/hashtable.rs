//! A chained hash table with incremental resizing — the other base object
//! of Figure 2 (the boosted `HashTable<K,V>` facade stores its bindings
//! here in our reproduction).

use std::borrow::Borrow;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// A simple deterministic FNV-1a hasher, so table layout is reproducible
/// across runs (useful for golden tests).
#[derive(Debug, Default, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.state == 0 {
            0xcbf29ce484222325
        } else {
            self.state
        };
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        self.state = h;
    }
}

/// A chained hash table.
///
/// # Examples
///
/// ```
/// use pushpull_ds::hashtable::ChainedHashTable;
///
/// let mut t = ChainedHashTable::new();
/// assert_eq!(t.insert("x", 1), None);
/// assert_eq!(t.insert("x", 2), Some(1));
/// assert_eq!(t.get("x"), Some(&2));
/// assert_eq!(t.remove("x"), Some(2));
/// assert!(t.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ChainedHashTable<K, V, S = BuildHasherDefault<Fnv1a>> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
    hasher: S,
}

impl<K: Hash + Eq, V> ChainedHashTable<K, V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// Creates an empty table with at least `cap` buckets.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(1);
        Self {
            buckets: (0..cap).map(|_| Vec::new()).collect(),
            len: 0,
            hasher: BuildHasherDefault::default(),
        }
    }
}

impl<K: Hash + Eq, V, S: BuildHasher> ChainedHashTable<K, V, S> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        (self.hasher.hash_one(key) as usize) & (self.buckets.len() - 1)
    }

    /// Looks up `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// Does the table contain `key`?
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Inserts a binding, returning the previous value if any.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        if self.len + 1 > self.buckets.len() * 2 {
            self.grow();
        }
        let b = self.bucket_of(&key);
        for (k, v) in &mut self.buckets[b] {
            if *k == key {
                return Some(std::mem::replace(v, val));
            }
        }
        self.buckets[b].push((key, val));
        self.len += 1;
        None
    }

    /// Removes a binding, returning its value if present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let b = self.bucket_of(key);
        let pos = self.buckets[b]
            .iter()
            .position(|(k, _)| k.borrow() == key)?;
        let (_, v) = self.buckets[b].swap_remove(pos);
        self.len -= 1;
        Some(v)
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets.iter().flatten().map(|(k, v)| (k, v))
    }

    fn grow(&mut self) {
        let new_cap = self.buckets.len() * 2;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_cap).map(|_| Vec::new()).collect(),
        );
        for (k, v) in old.into_iter().flatten() {
            let b = self.bucket_of(&k);
            self.buckets[b].push((k, v));
        }
    }
}

impl<K: Hash + Eq, V> Default for ChainedHashTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for ChainedHashTable<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut t = Self::new();
        for (k, v) in iter {
            t.insert(k, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = ChainedHashTable::new();
        for k in 0..100 {
            assert_eq!(t.insert(k, k * 2), None);
        }
        assert_eq!(t.len(), 100);
        for k in 0..100 {
            assert_eq!(t.get(&k), Some(&(k * 2)));
        }
        for k in (0..100).step_by(2) {
            assert_eq!(t.remove(&k), Some(k * 2));
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.get(&0), None);
        assert_eq!(t.get(&1), Some(&2));
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = ChainedHashTable::with_capacity(1);
        for k in 0..1000 {
            t.insert(k, k);
        }
        assert!(t.buckets.len() >= 512);
        for k in 0..1000 {
            assert_eq!(t.get(&k), Some(&k));
        }
    }

    #[test]
    fn matches_std_hashmap_on_random_workload() {
        use std::collections::HashMap;
        let mut t = ChainedHashTable::new();
        let mut h = HashMap::new();
        let mut x = 99u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 61) as u32;
            match (x >> 9) % 3 {
                0 => assert_eq!(t.insert(k, x), h.insert(k, x)),
                1 => assert_eq!(t.remove(&k), h.remove(&k)),
                _ => assert_eq!(t.get(&k), h.get(&k)),
            }
            assert_eq!(t.len(), h.len());
        }
    }

    #[test]
    fn string_keys_with_borrowed_lookup() {
        let mut t: ChainedHashTable<String, i32> = ChainedHashTable::new();
        t.insert("alpha".to_string(), 1);
        assert_eq!(t.get("alpha"), Some(&1));
        assert_eq!(t.remove("alpha"), Some(1));
    }
}
