//! Linearization wrapper for base objects.
//!
//! Transactional boosting assumes a *linearizable* base object (the
//! paper's `ConcurrentSkipListMap`). Our substitution gives the
//! sequential [`SkipListMap`](crate::skiplist::SkipListMap) and
//! [`ChainedHashTable`](crate::hashtable::ChainedHashTable) linearizable
//! concurrent interfaces the cheapest sound way: one lock around each
//! operation. Linearization points coincide with the critical sections,
//! which is all boosting needs — scalability of the base object is
//! orthogonal to the transaction-level behaviour the reproduction
//! studies.

use std::sync::{Arc, Mutex};

/// A shareable, linearizable wrapper around a sequential object.
///
/// # Examples
///
/// ```
/// use pushpull_ds::sync::Linearized;
/// use pushpull_ds::skiplist::SkipListMap;
///
/// let shared = Linearized::new(SkipListMap::new());
/// let clone = shared.clone();
/// shared.with(|m| m.insert(1, "a"));
/// assert_eq!(clone.with(|m| m.get(&1).copied()), Some("a"));
/// ```
#[derive(Debug, Default)]
pub struct Linearized<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Linearized<T> {
    /// Wraps a sequential object.
    pub fn new(inner: T) -> Self {
        Self {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Runs `f` atomically on the object; the critical section is the
    /// linearization point.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().expect("linearized object poisoned");
        f(&mut guard)
    }
}

impl<T> Clone for Linearized<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skiplist::SkipListMap;

    #[test]
    fn concurrent_inserts_are_all_applied() {
        let shared = Linearized::new(SkipListMap::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    s.with(|m| m.insert(t * 1000 + i, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.with(|m| m.len()), 1000);
    }
}
