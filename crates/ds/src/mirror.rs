//! Substrate mirrors: apply a committed operation log to the *real* data
//! structures and check the recorded observations.
//!
//! The PUSH/PULL model has no concrete state — only logs. A real
//! implementation (Figure 2) mutates base objects in place. A mirror
//! replays a committed log into the substrate and verifies that every
//! recorded return value matches what the implementation would actually
//! have produced — the model-level and implementation-level views of the
//! same execution must agree. Divergence means either the specification
//! mis-models the structure or the structure mis-implements the
//! specification; either way [`MirrorError`] pinpoints the operation.

use std::fmt;

use pushpull_core::op::{Op, OpId};
use pushpull_spec::kvmap::{MapMethod, MapRet};
use pushpull_spec::set::{SetMethod, SetRet};

use crate::hashtable::ChainedHashTable;
use crate::skiplist::SkipListMap;

/// A committed operation whose recorded observation disagrees with the
/// substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorError {
    /// The diverging operation.
    pub op: OpId,
    /// What the substrate produced.
    pub substrate: String,
    /// What the log recorded.
    pub recorded: String,
}

impl fmt::Display for MirrorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operation {} diverged: substrate produced {}, log recorded {}",
            self.op, self.substrate, self.recorded
        )
    }
}

impl std::error::Error for MirrorError {}

/// A skip-list-backed mirror of the [`KvMap`](pushpull_spec::kvmap::KvMap)
/// specification — the paper's `ConcurrentSkipListMap` base object.
///
/// # Examples
///
/// ```
/// use pushpull_ds::mirror::SkipListMirror;
/// use pushpull_spec::kvmap::ops;
///
/// let mut mirror = SkipListMirror::new();
/// mirror.apply(&ops::put(0, 0, 1, 10, None))?;
/// mirror.apply(&ops::get(1, 0, 1, Some(10)))?;
/// assert_eq!(mirror.map().len(), 1);
/// // A divergent observation is caught:
/// assert!(mirror.apply(&ops::get(2, 0, 1, Some(99))).is_err());
/// # Ok::<(), pushpull_ds::mirror::MirrorError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SkipListMirror {
    map: SkipListMap<u64, i64>,
}

impl SkipListMirror {
    /// Creates an empty mirror.
    pub fn new() -> Self {
        Self {
            map: SkipListMap::new(),
        }
    }

    /// The mirrored structure.
    pub fn map(&self) -> &SkipListMap<u64, i64> {
        &self.map
    }

    /// Applies one committed operation, checking its observation.
    ///
    /// # Errors
    ///
    /// [`MirrorError`] when the substrate's result differs from the
    /// recorded return value.
    pub fn apply(&mut self, op: &Op<MapMethod, MapRet>) -> Result<(), MirrorError> {
        let produced = match op.method {
            MapMethod::Put(k, v) => MapRet::Prev(self.map.insert(k, v)),
            MapMethod::Remove(k) => MapRet::Prev(self.map.remove(&k)),
            MapMethod::Get(k) => MapRet::Val(self.map.get(&k).copied()),
            MapMethod::ContainsKey(k) => MapRet::Bool(self.map.contains_key(&k)),
            MapMethod::Size => MapRet::Count(self.map.len()),
        };
        if produced == op.ret {
            Ok(())
        } else {
            Err(MirrorError {
                op: op.id,
                substrate: format!("{produced:?}"),
                recorded: format!("{:?}", op.ret),
            })
        }
    }

    /// Replays a whole committed log.
    ///
    /// # Errors
    ///
    /// The first divergence, if any.
    pub fn replay<'a>(
        &mut self,
        ops: impl IntoIterator<Item = &'a Op<MapMethod, MapRet>>,
    ) -> Result<usize, MirrorError> {
        let mut n = 0;
        for op in ops {
            self.apply(op)?;
            n += 1;
        }
        Ok(n)
    }
}

/// A hashtable-backed mirror of the
/// [`SetSpec`](pushpull_spec::set::SetSpec) specification — Figure 2's
/// boosted set, stored in the chained hashtable.
#[derive(Debug, Clone, Default)]
pub struct SetMirror {
    table: ChainedHashTable<u64, ()>,
}

impl SetMirror {
    /// Creates an empty mirror.
    pub fn new() -> Self {
        Self {
            table: ChainedHashTable::new(),
        }
    }

    /// Number of elements currently present.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Applies one committed operation, checking its observation.
    ///
    /// # Errors
    ///
    /// [`MirrorError`] on divergence.
    pub fn apply(&mut self, op: &Op<SetMethod, SetRet>) -> Result<(), MirrorError> {
        let produced = match op.method {
            SetMethod::Add(x) => SetRet(self.table.insert(x, ()).is_none()),
            SetMethod::Remove(x) => SetRet(self.table.remove(&x).is_some()),
            SetMethod::Contains(x) => SetRet(self.table.contains_key(&x)),
        };
        if produced == op.ret {
            Ok(())
        } else {
            Err(MirrorError {
                op: op.id,
                substrate: format!("{produced:?}"),
                recorded: format!("{:?}", op.ret),
            })
        }
    }

    /// Replays a whole committed log.
    ///
    /// # Errors
    ///
    /// The first divergence, if any.
    pub fn replay<'a>(
        &mut self,
        ops: impl IntoIterator<Item = &'a Op<SetMethod, SetRet>>,
    ) -> Result<usize, MirrorError> {
        let mut n = 0;
        for op in ops {
            self.apply(op)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_spec::kvmap::ops as mops;
    use pushpull_spec::set::ops as sops;

    #[test]
    fn map_mirror_accepts_consistent_logs() {
        let mut m = SkipListMirror::new();
        let n = m
            .replay(&[
                mops::put(0, 0, 1, 10, None),
                mops::put(1, 1, 1, 20, Some(10)),
                mops::remove(2, 0, 1, Some(20)),
                mops::get(3, 1, 1, None),
                mops::size(4, 0, 0),
            ])
            .unwrap();
        assert_eq!(n, 5);
        assert!(m.map().is_empty());
    }

    #[test]
    fn map_mirror_pinpoints_divergence() {
        let mut m = SkipListMirror::new();
        m.apply(&mops::put(0, 0, 1, 10, None)).unwrap();
        let err = m.apply(&mops::put(1, 0, 1, 20, None)).unwrap_err();
        assert_eq!(err.op, pushpull_core::op::OpId(1));
        assert!(err.to_string().contains("diverged"));
    }

    #[test]
    fn set_mirror_roundtrip() {
        let mut s = SetMirror::new();
        s.replay(&[
            sops::add(0, 0, 5, true),
            sops::add(1, 1, 5, false),
            sops::contains(2, 0, 5, true),
            sops::remove(3, 1, 5, true),
        ])
        .unwrap();
        assert!(s.is_empty());
        assert!(s.apply(&sops::remove(4, 0, 5, true)).is_err());
    }
}
