//! Abstract locks with deadlock detection — the synchronization substrate
//! of transactional boosting (Figure 2's `abstractLock(key).lock()`).
//!
//! Boosting associates a lock with each *abstract* key (not each memory
//! word); two transactions proceed in parallel iff their operations
//! commute, which the per-key discipline guarantees for key-local
//! specifications (see `pushpull-spec`'s mover tables). A transaction
//! that would block on a lock held by a transaction transitively waiting
//! on *it* must abort instead — detected here with an explicit waits-for
//! graph, as deadlock (and its resolution by abort) is exactly the
//! "boosted transaction aborts (e.g. due to deadlock)" path of §4's
//! UNPUSH discussion.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use pushpull_core::op::TxnId;

/// Result of a lock acquisition attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was free (or freshly granted) and is now held.
    Acquired,
    /// The requesting transaction already holds it.
    AlreadyHeld,
    /// Held by another transaction; a waits-for edge was recorded. Retry
    /// later or abort.
    Busy {
        /// The current owner.
        owner: TxnId,
    },
    /// Waiting would close a cycle in the waits-for graph; the requester
    /// should abort (releasing its locks) instead of waiting.
    WouldDeadlock {
        /// The cycle, starting and ending at the requester.
        cycle: Vec<TxnId>,
    },
}

/// A table of abstract locks keyed by `K`, with waits-for deadlock
/// detection.
///
/// # Examples
///
/// ```
/// use pushpull_ds::locks::{AbstractLockManager, LockOutcome};
/// use pushpull_core::op::TxnId;
///
/// let mut locks = AbstractLockManager::new();
/// assert_eq!(locks.try_lock(TxnId(1), "k"), LockOutcome::Acquired);
/// assert_eq!(locks.try_lock(TxnId(1), "k"), LockOutcome::AlreadyHeld);
/// assert_eq!(locks.try_lock(TxnId(2), "k"), LockOutcome::Busy { owner: TxnId(1) });
/// locks.release_all(TxnId(1));
/// assert_eq!(locks.try_lock(TxnId(2), "k"), LockOutcome::Acquired);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbstractLockManager<K> {
    owners: HashMap<K, TxnId>,
    held: HashMap<TxnId, HashSet<K>>,
    /// waiter → owner it waits on (single outstanding request per txn).
    waiting: HashMap<TxnId, TxnId>,
}

impl<K: Eq + Hash + Ord + Clone> AbstractLockManager<K> {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self {
            owners: HashMap::new(),
            held: HashMap::new(),
            waiting: HashMap::new(),
        }
    }

    /// Attempts to acquire `key` for `txn`.
    ///
    /// On contention, records a waits-for edge and reports
    /// [`LockOutcome::Busy`] — unless waiting would close a cycle, in
    /// which case no edge is recorded and
    /// [`LockOutcome::WouldDeadlock`] tells the caller to abort.
    pub fn try_lock(&mut self, txn: TxnId, key: K) -> LockOutcome {
        match self.owners.get(&key) {
            None => {
                self.owners.insert(key.clone(), txn);
                self.held.entry(txn).or_default().insert(key);
                self.waiting.remove(&txn);
                LockOutcome::Acquired
            }
            Some(owner) if *owner == txn => LockOutcome::AlreadyHeld,
            Some(owner) => {
                let owner = *owner;
                if let Some(cycle) = self.would_deadlock(txn, owner) {
                    LockOutcome::WouldDeadlock { cycle }
                } else {
                    self.waiting.insert(txn, owner);
                    LockOutcome::Busy { owner }
                }
            }
        }
    }

    /// Would `txn` waiting on `owner` close a waits-for cycle? Returns the
    /// cycle if so.
    fn would_deadlock(&self, txn: TxnId, owner: TxnId) -> Option<Vec<TxnId>> {
        let mut path = vec![txn, owner];
        let mut cur = owner;
        let mut steps = 0;
        while let Some(next) = self.waiting.get(&cur) {
            if *next == txn {
                path.push(txn);
                return Some(path);
            }
            path.push(*next);
            cur = *next;
            steps += 1;
            if steps > self.waiting.len() {
                break; // defensive: graph changed under us
            }
        }
        None
    }

    /// Releases every lock held by `txn` and clears its waits-for edge.
    /// Returns the released keys in ascending order (the hash set's own
    /// order is seeded per process; sorting keeps release order — and
    /// everything downstream of it — deterministic across runs).
    pub fn release_all(&mut self, txn: TxnId) -> Vec<K> {
        self.waiting.remove(&txn);
        let mut keys: Vec<K> = self
            .held
            .remove(&txn)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        keys.sort_unstable();
        for k in &keys {
            self.owners.remove(k);
        }
        keys
    }

    /// Clears `txn`'s waits-for edge (call when giving up a blocked
    /// request without aborting).
    pub fn clear_waiting(&mut self, txn: TxnId) {
        self.waiting.remove(&txn);
    }

    /// Does `txn` hold `key`?
    pub fn holds(&self, txn: TxnId, key: &K) -> bool {
        self.owners.get(key) == Some(&txn)
    }

    /// Current owner of `key`, if locked.
    pub fn owner(&self, key: &K) -> Option<TxnId> {
        self.owners.get(key).copied()
    }

    /// Number of currently held locks.
    pub fn locked_count(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut l = AbstractLockManager::new();
        assert_eq!(l.try_lock(TxnId(1), 10), LockOutcome::Acquired);
        assert_eq!(l.try_lock(TxnId(1), 11), LockOutcome::Acquired);
        assert!(l.holds(TxnId(1), &10));
        let mut released = l.release_all(TxnId(1));
        released.sort();
        assert_eq!(released, vec![10, 11]);
        assert_eq!(l.locked_count(), 0);
    }

    #[test]
    fn contention_reports_owner() {
        let mut l = AbstractLockManager::new();
        l.try_lock(TxnId(1), "k");
        assert_eq!(
            l.try_lock(TxnId(2), "k"),
            LockOutcome::Busy { owner: TxnId(1) }
        );
        assert_eq!(l.owner(&"k"), Some(TxnId(1)));
    }

    #[test]
    fn two_party_deadlock_detected() {
        let mut l = AbstractLockManager::new();
        l.try_lock(TxnId(1), "a");
        l.try_lock(TxnId(2), "b");
        // 1 waits on b (held by 2).
        assert_eq!(
            l.try_lock(TxnId(1), "b"),
            LockOutcome::Busy { owner: TxnId(2) }
        );
        // 2 requesting a would close the cycle.
        match l.try_lock(TxnId(2), "a") {
            LockOutcome::WouldDeadlock { cycle } => {
                assert_eq!(cycle.first(), Some(&TxnId(2)));
                assert_eq!(cycle.last(), Some(&TxnId(2)));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn three_party_deadlock_detected() {
        let mut l = AbstractLockManager::new();
        l.try_lock(TxnId(1), "a");
        l.try_lock(TxnId(2), "b");
        l.try_lock(TxnId(3), "c");
        assert!(matches!(
            l.try_lock(TxnId(1), "b"),
            LockOutcome::Busy { .. }
        ));
        assert!(matches!(
            l.try_lock(TxnId(2), "c"),
            LockOutcome::Busy { .. }
        ));
        assert!(matches!(
            l.try_lock(TxnId(3), "a"),
            LockOutcome::WouldDeadlock { .. }
        ));
    }

    #[test]
    fn release_breaks_wait_chains() {
        let mut l = AbstractLockManager::new();
        l.try_lock(TxnId(1), "a");
        assert!(matches!(
            l.try_lock(TxnId(2), "a"),
            LockOutcome::Busy { .. }
        ));
        l.release_all(TxnId(1));
        assert_eq!(l.try_lock(TxnId(2), "a"), LockOutcome::Acquired);
        // No stale deadlock from the old edge.
        assert!(matches!(
            l.try_lock(TxnId(1), "a"),
            LockOutcome::Busy { .. }
        ));
    }

    #[test]
    fn already_held_is_idempotent() {
        let mut l = AbstractLockManager::new();
        l.try_lock(TxnId(1), 1);
        assert_eq!(l.try_lock(TxnId(1), 1), LockOutcome::AlreadyHeld);
        assert_eq!(l.locked_count(), 1);
    }
}
