//! # pushpull-ds
//!
//! Substrate data structures for the Push/Pull reproduction — everything
//! the paper's evaluated systems assume and we therefore build:
//!
//! * [`skiplist`] — a probabilistic skip-list map, standing in for the
//!   `ConcurrentSkipListMap`/`ConcurrentSkipList` base objects of
//!   Figure 2 and §7;
//! * [`hashtable`] — a chained hash table (the boosted `HashTable<K,V>`
//!   facade of Figure 2);
//! * [`locks`] — abstract locks with waits-for deadlock detection,
//!   boosting's synchronization substrate;
//! * [`memory`] — a TL2-style versioned memory with a global version
//!   clock, and an HTM-style eager conflict tracker (the simulated
//!   hardware of §7);
//! * [`sync`] — a linearization wrapper turning the sequential base
//!   objects into linearizable shared ones.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hashtable;
pub mod locks;
pub mod memory;
pub mod mirror;
pub mod rwlocks;
pub mod skiplist;
pub mod sync;

pub use hashtable::ChainedHashTable;
pub use locks::{AbstractLockManager, LockOutcome};
pub use memory::{GlobalClock, HtmConflicts, VersionedMemory};
pub use mirror::{MirrorError, SetMirror, SkipListMirror};
pub use rwlocks::{Mode, RwLockTable, RwOutcome};
pub use skiplist::SkipListMap;
pub use sync::Linearized;
