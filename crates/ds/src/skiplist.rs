//! A probabilistic skip-list map.
//!
//! This is the *base object* of the paper's running examples: Figure 2's
//! boosted hashtable stores its data in a `ConcurrentSkipListMap`, and §7
//! boosts a `ConcurrentSkipList` directly. We substitute an in-crate
//! sequential skip list used behind a lock (see
//! [`crate::sync::Linearized`]); transactional boosting only requires the
//! base object to be linearizable, which a lock provides trivially, and
//! all contention management happens at the abstract-lock level anyway.
//!
//! The implementation is arena-based (indices instead of pointers), fully
//! safe, with an internal xorshift generator for tower heights so
//! behaviour is deterministic per seed.

use std::borrow::Borrow;

const MAX_LEVEL: usize = 16;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    val: V,
    /// `next[l]` is the arena index of the successor at level `l`.
    next: Vec<Option<usize>>,
}

/// A sequential skip-list map with expected `O(log n)` search, insert and
/// remove.
///
/// # Examples
///
/// ```
/// use pushpull_ds::skiplist::SkipListMap;
///
/// let mut m = SkipListMap::new();
/// assert_eq!(m.insert(2, "b"), None);
/// assert_eq!(m.insert(1, "a"), None);
/// assert_eq!(m.insert(2, "B"), Some("b"));
/// assert_eq!(m.get(&1), Some(&"a"));
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.remove(&1), Some("a"));
/// assert_eq!(m.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![2]);
/// ```
#[derive(Debug, Clone)]
pub struct SkipListMap<K, V> {
    /// Arena of nodes; freed slots are recycled through `free`.
    arena: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    /// Head tower: successors of the sentinel at each level.
    head: Vec<Option<usize>>,
    len: usize,
    level: usize,
    rng: u64,
}

impl<K: Ord, V> SkipListMap<K, V> {
    /// Creates an empty map with a fixed default seed.
    pub fn new() -> Self {
        Self::with_seed(0x9E3779B97F4A7C15)
    }

    /// Creates an empty map whose tower heights are drawn from the given
    /// seed (deterministic structure for reproducible tests).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            arena: Vec::new(),
            free: Vec::new(),
            head: vec![None; MAX_LEVEL],
            len: 0,
            level: 1,
            rng: seed | 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_level(&mut self) -> usize {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545F4914F6CDD1D);
        let mut level = 1;
        while level < MAX_LEVEL && (bits >> level) & 1 == 1 {
            level += 1;
        }
        level
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        self.arena[idx].as_ref().expect("live node")
    }

    /// For each level, the index of the last node strictly before `key`
    /// (`None` meaning the head sentinel).
    fn predecessors<Q>(&self, key: &Q) -> Vec<Option<usize>>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut preds = vec![None; MAX_LEVEL];
        let mut pred: Option<usize> = None;
        for l in (0..self.level).rev() {
            loop {
                let next = match pred {
                    None => self.head[l],
                    Some(p) => self.node(p).next[l],
                };
                match next {
                    Some(n) if self.node(n).key.borrow() < key => pred = Some(n),
                    _ => break,
                }
            }
            preds[l] = pred;
        }
        preds
    }

    fn successor_at(&self, pred: Option<usize>, level: usize) -> Option<usize> {
        match pred {
            None => self.head[level],
            Some(p) => self.node(p).next[level],
        }
    }

    /// Looks up `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let preds = self.predecessors(key);
        let cand = self.successor_at(preds[0], 0)?;
        let node = self.node(cand);
        if node.key.borrow() == key {
            Some(&node.val)
        } else {
            None
        }
    }

    /// Does the map contain `key`?
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Inserts a binding, returning the previous value if any.
    #[allow(clippy::needless_range_loop)] // lockstep walk over preds/head/arena
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let preds = self.predecessors(&key);
        if let Some(cand) = self.successor_at(preds[0], 0) {
            if self.node(cand).key == key {
                let node = self.arena[cand].as_mut().expect("live node");
                return Some(std::mem::replace(&mut node.val, val));
            }
        }
        let height = self.next_level();
        if height > self.level {
            self.level = height;
        }
        let next: Vec<Option<usize>> = (0..height)
            .map(|l| self.successor_at(preds[l], l))
            .collect();
        let node = Node { key, val, next };
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i] = Some(node);
                i
            }
            None => {
                self.arena.push(Some(node));
                self.arena.len() - 1
            }
        };
        for l in 0..height {
            match preds[l] {
                None => self.head[l] = Some(idx),
                Some(p) => self.arena[p].as_mut().expect("live node").next[l] = Some(idx),
            }
        }
        self.len += 1;
        None
    }

    /// Removes a binding, returning its value if present.
    #[allow(clippy::needless_range_loop)] // lockstep walk over preds/head/arena
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let preds = self.predecessors(key);
        let target = self.successor_at(preds[0], 0)?;
        if self.node(target).key.borrow() != key {
            return None;
        }
        let height = self.node(target).next.len();
        for l in 0..height {
            let succ = self.node(target).next[l];
            match preds[l] {
                None => self.head[l] = succ,
                Some(p) => self.arena[p].as_mut().expect("live node").next[l] = succ,
            }
        }
        let node = self.arena[target].take().expect("live node");
        self.free.push(target);
        self.len -= 1;
        while self.level > 1 && self.head[self.level - 1].is_none() {
            self.level -= 1;
        }
        Some(node.val)
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            map: self,
            cur: self.head[0],
        }
    }
}

impl<K: Ord, V> Default for SkipListMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for SkipListMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Ord, V> Extend<(K, V)> for SkipListMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// In-order iterator over a [`SkipListMap`], produced by
/// [`SkipListMap::iter`].
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    map: &'a SkipListMap<K, V>,
    cur: Option<usize>,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.cur?;
        let node = self.map.node(idx);
        self.cur = node.next[0];
        Some((&node.key, &node.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SkipListMap::new();
        for k in [5, 1, 9, 3, 7] {
            assert_eq!(m.insert(k, k * 10), None);
        }
        assert_eq!(m.len(), 5);
        for k in [1, 3, 5, 7, 9] {
            assert_eq!(m.get(&k), Some(&(k * 10)));
        }
        assert_eq!(m.get(&2), None);
        assert_eq!(m.remove(&5), Some(50));
        assert_eq!(m.remove(&5), None);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn insert_overwrites_and_returns_old() {
        let mut m = SkipListMap::new();
        assert_eq!(m.insert("k", 1), None);
        assert_eq!(m.insert("k", 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&2));
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut m = SkipListMap::new();
        let keys = [42, 7, 19, 3, 88, 21, 56, 1];
        for k in keys {
            m.insert(k, ());
        }
        let seen: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.to_vec();
        sorted.sort();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn matches_btreemap_on_random_workload() {
        use std::collections::BTreeMap;
        let mut sl = SkipListMap::with_seed(12345);
        let mut bt = BTreeMap::new();
        let mut x = 777u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 97) as u32;
            match (x >> 8) % 3 {
                0 => assert_eq!(sl.insert(k, x), bt.insert(k, x)),
                1 => assert_eq!(sl.remove(&k), bt.remove(&k)),
                _ => assert_eq!(sl.get(&k), bt.get(&k)),
            }
            assert_eq!(sl.len(), bt.len());
        }
        let a: Vec<(u32, u64)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u32, u64)> = bt.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut m = SkipListMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        for k in 0..100 {
            m.remove(&k);
        }
        let high_water = m.arena.len();
        for k in 0..100 {
            m.insert(k, k);
        }
        assert_eq!(m.arena.len(), high_water, "freed slots must be reused");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: SkipListMap<i32, i32> = (0..5).map(|k| (k, k)).collect();
        m.extend((5..8).map(|k| (k, k)));
        assert_eq!(m.len(), 8);
    }
}
