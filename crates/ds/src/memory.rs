//! Memory substrates: a TL2-style versioned memory with a global version
//! clock, and an HTM-style eager conflict tracker.
//!
//! These simulate the hardware/runtime machinery the paper's evaluated
//! systems rely on — Intel/IBM HTM (§1, §7) and version-clock STMs
//! (TL2 \[6\], TinySTM \[8\], §6.2) — at the granularity the PUSH/PULL model
//! observes: which location was touched by whom, and whether a conflict
//! arises. Values themselves live in the machine's logs (the model has no
//! concrete state), so these trackers carry versions and ownership only.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use pushpull_core::op::TxnId;

/// A global version clock (TL2's `GV`).
#[derive(Debug, Default)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock at time 0.
    pub fn new() -> Self {
        Self {
            now: AtomicU64::new(0),
        }
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances the clock, returning the new time (a commit timestamp).
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }
}

impl Clone for GlobalClock {
    fn clone(&self) -> Self {
        Self {
            now: AtomicU64::new(self.now()),
        }
    }
}

/// Per-location version metadata for a TL2-style optimistic STM.
///
/// Tracks, per location: the version (commit timestamp of the last
/// writer) and an optional commit-time lock. The optimistic driver uses
/// it exactly as TL2 does: record read versions during the run, lock the
/// write set at commit, validate the read set against the clock, then
/// publish and bump versions.
///
/// # Examples
///
/// ```
/// use pushpull_ds::memory::{VersionedMemory, GlobalClock};
/// use pushpull_core::op::TxnId;
///
/// let clock = GlobalClock::new();
/// let mut vm: VersionedMemory<u32> = VersionedMemory::new();
/// let v0 = vm.version(&7);
/// assert_eq!(v0, 0);
/// assert!(vm.try_lock(TxnId(1), 7));
/// let t = clock.tick();
/// vm.publish(TxnId(1), &[7], t);
/// assert_eq!(vm.version(&7), t);
/// assert!(!vm.is_locked(&7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionedMemory<L> {
    versions: HashMap<L, u64>,
    locks: HashMap<L, TxnId>,
}

impl<L: Eq + Hash + Ord + Clone> VersionedMemory<L> {
    /// Creates an empty versioned memory (all locations at version 0).
    pub fn new() -> Self {
        Self {
            versions: HashMap::new(),
            locks: HashMap::new(),
        }
    }

    /// The version of a location (0 if never written).
    pub fn version(&self, loc: &L) -> u64 {
        self.versions.get(loc).copied().unwrap_or(0)
    }

    /// Is the location commit-locked?
    pub fn is_locked(&self, loc: &L) -> bool {
        self.locks.contains_key(loc)
    }

    /// Is the location commit-locked by someone other than `txn`?
    pub fn locked_by_other(&self, loc: &L, txn: TxnId) -> bool {
        matches!(self.locks.get(loc), Some(o) if *o != txn)
    }

    /// Tries to take the commit lock on `loc` for `txn`. Idempotent for
    /// the holder.
    pub fn try_lock(&mut self, txn: TxnId, loc: L) -> bool {
        match self.locks.get(&loc) {
            None => {
                self.locks.insert(loc, txn);
                true
            }
            Some(o) => *o == txn,
        }
    }

    /// Releases every commit lock held by `txn` (abort path).
    pub fn unlock_all(&mut self, txn: TxnId) {
        self.locks.retain(|_, o| *o != txn);
    }

    /// TL2 read-set validation: every location still carries the version
    /// observed at read time and is not locked by another transaction.
    pub fn validate(&self, txn: TxnId, read_set: &[(L, u64)]) -> bool {
        read_set
            .iter()
            .all(|(l, ver)| self.version(l) == *ver && !self.locked_by_other(l, txn))
    }

    /// Publishes `txn`'s write set at commit timestamp `ts`: bumps the
    /// versions and releases its locks.
    pub fn publish(&mut self, txn: TxnId, write_set: &[L], ts: u64) {
        for l in write_set {
            debug_assert!(
                self.locks.get(l) == Some(&txn),
                "publishing unlocked location"
            );
            self.versions.insert(l.clone(), ts);
        }
        self.unlock_all(txn);
    }
}

/// An eagerly-conflicting access tracker — the observable behaviour of a
/// best-effort HTM (Intel Haswell-style, §7): the first conflicting
/// access between two live transactions aborts one of them.
#[derive(Debug, Clone, Default)]
pub struct HtmConflicts<L> {
    readers: HashMap<L, HashSet<TxnId>>,
    writers: HashMap<L, TxnId>,
}

/// A detected HTM conflict: `loc` is contended with `other`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmConflict<L> {
    /// The contended location.
    pub loc: L,
    /// The transaction already holding a conflicting access.
    pub other: TxnId,
}

impl<L: Eq + Hash + Ord + Clone> HtmConflicts<L> {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            readers: HashMap::new(),
            writers: HashMap::new(),
        }
    }

    /// Records a transactional read. Conflicts with a foreign writer.
    pub fn record_read(&mut self, txn: TxnId, loc: L) -> Result<(), HtmConflict<L>> {
        if let Some(w) = self.writers.get(&loc) {
            if *w != txn {
                return Err(HtmConflict { loc, other: *w });
            }
        }
        self.readers.entry(loc).or_default().insert(txn);
        Ok(())
    }

    /// Records a transactional write. Conflicts with any foreign reader
    /// or writer.
    pub fn record_write(&mut self, txn: TxnId, loc: L) -> Result<(), HtmConflict<L>> {
        if let Some(w) = self.writers.get(&loc) {
            if *w != txn {
                return Err(HtmConflict { loc, other: *w });
            }
        }
        if let Some(rs) = self.readers.get(&loc) {
            // Smallest foreign reader: deterministic conflict report.
            if let Some(other) = rs.iter().filter(|r| **r != txn).min() {
                return Err(HtmConflict { loc, other: *other });
            }
        }
        self.writers.insert(loc.clone(), txn);
        self.readers.entry(loc).or_default().insert(txn);
        Ok(())
    }

    /// Forgets every access of `txn` (commit or abort).
    pub fn clear(&mut self, txn: TxnId) {
        self.writers.retain(|_, w| *w != txn);
        for rs in self.readers.values_mut() {
            rs.remove(&txn);
        }
        self.readers.retain(|_, rs| !rs.is_empty());
    }

    /// Locations currently written by `txn`, in ascending order (map
    /// iteration order is seeded per process; sorting keeps the report
    /// deterministic across runs).
    pub fn writes_of(&self, txn: TxnId) -> Vec<L> {
        let mut locs: Vec<L> = self
            .writers
            .iter()
            .filter(|(_, w)| **w == txn)
            .map(|(l, _)| l.clone())
            .collect();
        locs.sort_unstable();
        locs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_monotonically() {
        let c = GlobalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn tl2_validate_detects_version_bumps() {
        let mut vm: VersionedMemory<u32> = VersionedMemory::new();
        let read_set = vec![(1u32, vm.version(&1))];
        // Another txn commits to loc 1.
        assert!(vm.try_lock(TxnId(9), 1));
        vm.publish(TxnId(9), &[1], 5);
        assert!(
            !vm.validate(TxnId(1), &read_set),
            "stale read must fail validation"
        );
        let fresh = vec![(1u32, vm.version(&1))];
        assert!(vm.validate(TxnId(1), &fresh));
    }

    #[test]
    fn tl2_validate_detects_foreign_locks() {
        let mut vm: VersionedMemory<u32> = VersionedMemory::new();
        let read_set = vec![(1u32, 0)];
        assert!(vm.try_lock(TxnId(2), 1));
        assert!(!vm.validate(TxnId(1), &read_set));
        assert!(
            vm.validate(TxnId(2), &read_set),
            "own lock does not invalidate"
        );
        vm.unlock_all(TxnId(2));
        assert!(vm.validate(TxnId(1), &read_set));
    }

    #[test]
    fn lock_is_exclusive_but_reentrant() {
        let mut vm: VersionedMemory<u32> = VersionedMemory::new();
        assert!(vm.try_lock(TxnId(1), 3));
        assert!(vm.try_lock(TxnId(1), 3));
        assert!(!vm.try_lock(TxnId(2), 3));
    }

    #[test]
    fn htm_read_write_conflicts() {
        let mut h: HtmConflicts<u32> = HtmConflicts::new();
        assert!(h.record_read(TxnId(1), 7).is_ok());
        assert!(h.record_read(TxnId(2), 7).is_ok(), "readers share");
        let err = h.record_write(TxnId(1), 7).unwrap_err();
        assert_eq!(err.other, TxnId(2), "write conflicts with foreign reader");
        h.clear(TxnId(2));
        assert!(h.record_write(TxnId(1), 7).is_ok());
        let err = h.record_read(TxnId(2), 7).unwrap_err();
        assert_eq!(err.other, TxnId(1), "read conflicts with foreign writer");
    }

    #[test]
    fn htm_clear_releases_everything() {
        let mut h: HtmConflicts<u32> = HtmConflicts::new();
        h.record_write(TxnId(1), 1).unwrap();
        h.record_write(TxnId(1), 2).unwrap();
        let mut w = h.writes_of(TxnId(1));
        w.sort();
        assert_eq!(w, vec![1, 2]);
        h.clear(TxnId(1));
        assert!(h.writes_of(TxnId(1)).is_empty());
        assert!(h.record_write(TxnId(2), 1).is_ok());
    }
}
