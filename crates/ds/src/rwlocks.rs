//! Shared/exclusive (reader–writer) lock tables with deadlock detection —
//! the substrate for strict two-phase locking, the lock-inference style
//! of pessimistic atomic sections the paper cites as \[4\] (Cherem et al.).
//!
//! Unlike [`crate::locks::AbstractLockManager`] (exclusive-only, the
//! boosting discipline), this table distinguishes read and write modes:
//! readers share, writers exclude, and a sole reader may upgrade.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use pushpull_core::op::TxnId;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Shared (read) access.
    Shared,
    /// Exclusive (write) access.
    Exclusive,
}

/// Result of an acquisition attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RwOutcome {
    /// Granted (or already held in a sufficient mode).
    Granted,
    /// Held incompatibly by others; a waits-for edge was recorded.
    Busy {
        /// One current incompatible holder.
        holder: TxnId,
    },
    /// Waiting would close a waits-for cycle; abort instead.
    WouldDeadlock,
}

#[derive(Debug, Clone, Default)]
struct Entry {
    readers: HashSet<TxnId>,
    writer: Option<TxnId>,
}

/// A reader–writer lock table keyed by `K`.
///
/// # Examples
///
/// ```
/// use pushpull_ds::rwlocks::{RwLockTable, Mode, RwOutcome};
/// use pushpull_core::op::TxnId;
///
/// let mut t = RwLockTable::new();
/// assert_eq!(t.try_lock(TxnId(1), "k", Mode::Shared), RwOutcome::Granted);
/// assert_eq!(t.try_lock(TxnId(2), "k", Mode::Shared), RwOutcome::Granted);
/// // A writer is refused while readers hold the key (the reported
/// // holder is whichever reader the table finds first).
/// assert!(matches!(t.try_lock(TxnId(3), "k", Mode::Exclusive), RwOutcome::Busy { .. }));
/// t.release_all(TxnId(1));
/// t.release_all(TxnId(2));
/// assert_eq!(t.try_lock(TxnId(3), "k", Mode::Exclusive), RwOutcome::Granted);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RwLockTable<K> {
    entries: HashMap<K, Entry>,
    held: HashMap<TxnId, HashSet<K>>,
    waiting: HashMap<TxnId, TxnId>,
}

impl<K: Eq + Hash + Ord + Clone> RwLockTable<K> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            held: HashMap::new(),
            waiting: HashMap::new(),
        }
    }

    /// Attempts to acquire `key` in `mode` for `txn`. A sole reader
    /// upgrades to exclusive in place.
    pub fn try_lock(&mut self, txn: TxnId, key: K, mode: Mode) -> RwOutcome {
        let entry = self.entries.entry(key.clone()).or_default();
        let incompatible_holder = match mode {
            Mode::Shared => match entry.writer {
                Some(w) if w != txn => Some(w),
                _ => None,
            },
            Mode::Exclusive => {
                if let Some(w) = entry.writer.filter(|w| *w != txn) {
                    Some(w)
                } else {
                    // Smallest foreign reader: a deterministic pick
                    // (set iteration order is seeded per process).
                    entry.readers.iter().filter(|r| **r != txn).min().copied()
                }
            }
        };
        if let Some(holder) = incompatible_holder {
            if self.would_deadlock(txn, holder) {
                return RwOutcome::WouldDeadlock;
            }
            self.waiting.insert(txn, holder);
            return RwOutcome::Busy { holder };
        }
        match mode {
            Mode::Shared => {
                entry.readers.insert(txn);
            }
            Mode::Exclusive => {
                entry.readers.remove(&txn); // upgrade
                entry.writer = Some(txn);
            }
        }
        self.held.entry(txn).or_default().insert(key);
        self.waiting.remove(&txn);
        RwOutcome::Granted
    }

    fn would_deadlock(&self, txn: TxnId, holder: TxnId) -> bool {
        let mut cur = holder;
        let mut steps = 0;
        loop {
            if cur == txn {
                return true;
            }
            match self.waiting.get(&cur) {
                Some(next) => cur = *next,
                None => return false,
            }
            steps += 1;
            if steps > self.waiting.len() {
                return false;
            }
        }
    }

    /// Releases everything `txn` holds and clears its wait edge.
    pub fn release_all(&mut self, txn: TxnId) {
        self.waiting.remove(&txn);
        if let Some(keys) = self.held.remove(&txn) {
            for k in keys {
                if let Some(e) = self.entries.get_mut(&k) {
                    e.readers.remove(&txn);
                    if e.writer == Some(txn) {
                        e.writer = None;
                    }
                    if e.readers.is_empty() && e.writer.is_none() {
                        self.entries.remove(&k);
                    }
                }
            }
        }
    }

    /// Does `txn` hold `key` at least in `mode`?
    pub fn holds(&self, txn: TxnId, key: &K, mode: Mode) -> bool {
        match self.entries.get(key) {
            None => false,
            Some(e) => match mode {
                Mode::Shared => e.readers.contains(&txn) || e.writer == Some(txn),
                Mode::Exclusive => e.writer == Some(txn),
            },
        }
    }

    /// Number of keys with any holder.
    pub fn locked_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share_writers_exclude() {
        let mut t = RwLockTable::new();
        assert_eq!(t.try_lock(TxnId(1), 0, Mode::Shared), RwOutcome::Granted);
        assert_eq!(t.try_lock(TxnId(2), 0, Mode::Shared), RwOutcome::Granted);
        assert!(matches!(
            t.try_lock(TxnId(3), 0, Mode::Exclusive),
            RwOutcome::Busy { .. }
        ));
        assert!(t.holds(TxnId(1), &0, Mode::Shared));
        assert!(!t.holds(TxnId(1), &0, Mode::Exclusive));
    }

    #[test]
    fn writer_blocks_readers() {
        let mut t = RwLockTable::new();
        assert_eq!(t.try_lock(TxnId(1), 0, Mode::Exclusive), RwOutcome::Granted);
        assert_eq!(
            t.try_lock(TxnId(2), 0, Mode::Shared),
            RwOutcome::Busy { holder: TxnId(1) }
        );
        // The writer itself may read.
        assert_eq!(t.try_lock(TxnId(1), 0, Mode::Shared), RwOutcome::Granted);
    }

    #[test]
    fn sole_reader_upgrades() {
        let mut t = RwLockTable::new();
        t.try_lock(TxnId(1), 0, Mode::Shared);
        assert_eq!(t.try_lock(TxnId(1), 0, Mode::Exclusive), RwOutcome::Granted);
        assert!(t.holds(TxnId(1), &0, Mode::Exclusive));
    }

    #[test]
    fn contended_upgrade_is_refused() {
        let mut t = RwLockTable::new();
        t.try_lock(TxnId(1), 0, Mode::Shared);
        t.try_lock(TxnId(2), 0, Mode::Shared);
        assert!(matches!(
            t.try_lock(TxnId(1), 0, Mode::Exclusive),
            RwOutcome::Busy { .. }
        ));
    }

    #[test]
    fn upgrade_deadlock_detected() {
        // Both readers want to upgrade: classic conversion deadlock.
        let mut t = RwLockTable::new();
        t.try_lock(TxnId(1), 0, Mode::Shared);
        t.try_lock(TxnId(2), 0, Mode::Shared);
        assert!(matches!(
            t.try_lock(TxnId(1), 0, Mode::Exclusive),
            RwOutcome::Busy { .. }
        ));
        assert_eq!(
            t.try_lock(TxnId(2), 0, Mode::Exclusive),
            RwOutcome::WouldDeadlock
        );
    }

    #[test]
    fn release_clears_entries() {
        let mut t = RwLockTable::new();
        t.try_lock(TxnId(1), 0, Mode::Exclusive);
        t.try_lock(TxnId(1), 1, Mode::Shared);
        assert_eq!(t.locked_count(), 2);
        t.release_all(TxnId(1));
        assert_eq!(t.locked_count(), 0);
        assert_eq!(t.try_lock(TxnId(2), 0, Mode::Exclusive), RwOutcome::Granted);
    }

    #[test]
    fn two_key_deadlock_detected() {
        let mut t = RwLockTable::new();
        t.try_lock(TxnId(1), 0, Mode::Exclusive);
        t.try_lock(TxnId(2), 1, Mode::Exclusive);
        assert!(matches!(
            t.try_lock(TxnId(1), 1, Mode::Exclusive),
            RwOutcome::Busy { .. }
        ));
        assert_eq!(
            t.try_lock(TxnId(2), 0, Mode::Exclusive),
            RwOutcome::WouldDeadlock
        );
    }
}
