//! Read/write memory: the sequential specification of classic word-based
//! STMs (TL2 \[6\], TinySTM \[8\]) and of the simulated HTM of §7.
//!
//! Methods are `Read(loc)` and `Write(loc, val)` over integer locations;
//! the state is a total map from locations to values (default `0`). The
//! paper's §3 example — `allowed ℓ·⟨a := x, [x↦5], [x↦5, a↦5], id⟩` — is
//! exactly [`MemMethod::Read`] observing the current binding.
//!
//! The mover oracle is *exact* on a per-value basis (more precise than a
//! read/write-set approximation):
//!
//! | `op₁ ◁ op₂`? | distinct locs | same loc |
//! |---|---|---|
//! | `Read(v₁)`, `Read(v₂)` | yes | yes |
//! | `Read(v)`, `Write(w)` | yes | iff `v == w` |
//! | `Write(w)`, `Read(v)` | yes | iff `v != w` (then vacuous) |
//! | `Write(w₁)`, `Write(w₂)` | yes | iff `w₁ == w₂` |
//!
//! These equivalences are proved by the exhaustive checker in the tests
//! over a bounded sub-universe.

use std::collections::BTreeMap;
use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// A memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Methods of the read/write memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemMethod {
    /// Read a location; observes its current value.
    Read(Loc),
    /// Write a value to a location; observes an ack.
    Write(Loc, i64),
}

impl MemMethod {
    /// The location this method touches.
    pub fn loc(&self) -> Loc {
        match self {
            MemMethod::Read(l) | MemMethod::Write(l, _) => *l,
        }
    }

    /// Is this a read?
    pub fn is_read(&self) -> bool {
        matches!(self, MemMethod::Read(_))
    }
}

impl fmt::Display for MemMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemMethod::Read(l) => write!(f, "rd({l})"),
            MemMethod::Write(l, v) => write!(f, "wr({l},{v})"),
        }
    }
}

/// Return values of the read/write memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRet {
    /// The value observed by a read.
    Val(i64),
    /// Acknowledgement of a write.
    Ack,
}

/// Memory state: a finite map, with absent locations reading as `0`.
pub type MemState = BTreeMap<Loc, i64>;

/// Operation records of the read/write memory.
pub type MemOp = Op<MemMethod, MemRet>;

/// The read/write memory specification.
///
/// Unbounded by default (no state universe); [`RwMem::bounded`] produces a
/// variant with a finite universe so the exhaustive mover checker can
/// cross-validate the algebraic oracle.
///
/// # Examples
///
/// ```
/// use pushpull_spec::rwmem::{RwMem, MemMethod, MemRet, Loc};
/// use pushpull_core::spec::SeqSpec;
/// use pushpull_core::op::{Op, OpId, TxnId};
///
/// let spec = RwMem::new();
/// let w = Op::new(OpId(0), TxnId(0), MemMethod::Write(Loc(0), 5), MemRet::Ack);
/// let r = Op::new(OpId(1), TxnId(0), MemMethod::Read(Loc(0)), MemRet::Val(5));
/// assert!(spec.allowed(&[w, r]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RwMem {
    bound: Option<(Vec<Loc>, Vec<i64>)>,
}

impl RwMem {
    /// An unbounded memory (algebraic movers only).
    pub fn new() -> Self {
        Self { bound: None }
    }

    /// A bounded memory over the given locations and values, providing a
    /// finite state universe of all total assignments.
    pub fn bounded(locs: Vec<Loc>, vals: Vec<i64>) -> Self {
        Self {
            bound: Some((locs, vals)),
        }
    }
}

impl Default for RwMem {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSpec for RwMem {
    type Method = MemMethod;
    type Ret = MemRet;
    type State = MemState;

    fn initial_states(&self) -> Vec<MemState> {
        vec![MemState::new()]
    }

    fn post_states(&self, state: &MemState, method: &MemMethod, ret: &MemRet) -> Vec<MemState> {
        match (method, ret) {
            (MemMethod::Read(l), MemRet::Val(v)) => {
                if state.get(l).copied().unwrap_or(0) == *v {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            (MemMethod::Write(l, v), MemRet::Ack) => {
                if let Some((_, vals)) = &self.bound {
                    if !vals.contains(v) {
                        return vec![];
                    }
                }
                let mut s = state.clone();
                s.insert(*l, *v);
                vec![s]
            }
            _ => vec![],
        }
    }

    fn results(&self, state: &MemState, method: &MemMethod) -> Vec<MemRet> {
        match method {
            MemMethod::Read(l) => vec![MemRet::Val(state.get(l).copied().unwrap_or(0))],
            MemMethod::Write(_, _) => vec![MemRet::Ack],
        }
    }

    fn state_universe(&self) -> Option<Vec<MemState>> {
        let (locs, vals) = self.bound.as_ref()?;
        let mut states = vec![MemState::new()];
        for l in locs {
            let mut next = Vec::new();
            for s in &states {
                for v in vals {
                    let mut s2 = s.clone();
                    s2.insert(*l, *v);
                    next.push(s2);
                }
            }
            states = next;
        }
        Some(states)
    }

    fn mover(&self, op1: &MemOp, op2: &MemOp) -> bool {
        let (m1, m2) = (&op1.method, &op2.method);
        if m1.loc() != m2.loc() {
            return true;
        }
        match (m1, &op1.ret, m2, &op2.ret) {
            (MemMethod::Read(_), _, MemMethod::Read(_), _) => true,
            (MemMethod::Read(_), MemRet::Val(v), MemMethod::Write(_, w), _) => v == w,
            (MemMethod::Write(_, w), _, MemMethod::Read(_), MemRet::Val(v)) => v != w,
            (MemMethod::Write(_, w1), _, MemMethod::Write(_, w2), _) => w1 == w2,
            _ => false,
        }
    }

    fn method_mover(&self, m1: &MemMethod, m2: &MemMethod) -> Option<bool> {
        if m1.loc() != m2.loc() {
            return Some(true);
        }
        Some(match (m1, m2) {
            (MemMethod::Read(_), MemMethod::Read(_)) => true,
            // Same-value blind writes are idempotent in either order.
            (MemMethod::Write(_, w1), MemMethod::Write(_, w2)) => w1 == w2,
            // Read/write on one location is return-dependent (the read
            // must observe the written value, or provably not).
            _ => false,
        })
    }

    /// Footprint: exactly the touched location. Reads/writes on distinct
    /// locations are both-movers (the first arm of `mover`), so the
    /// disjointness law holds by construction.
    fn method_keys(&self, m: &MemMethod) -> Option<KeySet> {
        Some(KeySet::one(u64::from(m.loc().0)))
    }

    /// A read plus one write per bounded value, per location — the
    /// same-value write-write arm of `method_mover` included.
    fn method_universe(&self) -> Option<Vec<MemMethod>> {
        let (locs, vals) = self.bound.as_ref()?;
        let mut ms = Vec::new();
        for l in locs {
            ms.push(MemMethod::Read(*l));
            for v in vals {
                ms.push(MemMethod::Write(*l, *v));
            }
        }
        Some(ms)
    }

    /// Reads are undo-free, but an absolute `Write` destroys the
    /// previous binding and has no context-free inverse — use
    /// [`MemInverse`] (whose writes record the overwritten value) when
    /// open nesting or boosting-style undo is needed.
    fn inverse(&self, op: &MemOp) -> pushpull_core::spec::OpInverse<MemMethod, MemRet> {
        match op.method {
            MemMethod::Read(_) => pushpull_core::spec::OpInverse::ReadOnly,
            MemMethod::Write(_, _) => pushpull_core::spec::OpInverse::NotInvertible,
        }
    }
}

/// Return values of the undo-logging memory [`MemInverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UndoRet {
    /// The value observed by a read.
    Val(i64),
    /// The *previous* value observed by a write — the undo-log entry a
    /// word-based STM records alongside the store.
    Prev(i64),
}

/// Operation records of the undo-logging memory.
pub type UndoOp = Op<MemMethod, UndoRet>;

/// Read/write memory whose writes observe the overwritten value —
/// the undo-logging variant of [`RwMem`].
///
/// A plain `Write(l, v) / Ack` destroys information (the previous
/// binding of `l` is gone), so [`RwMem`] is not invertible and cannot
/// host open-nested scopes. Word-based STMs solve this by keeping an
/// undo log: each store records the value it overwrote. `MemInverse`
/// bakes that into the specification — `Write` returns
/// [`UndoRet::Prev`], and the inverse of `Write(l, v) / Prev(p)` is
/// `Write(l, p) / Prev(v)`, which restores every pre-state exactly.
///
/// The extra observation makes writes order-sensitive (the second
/// write observes the first), so same-location movers are strictly
/// rarer than [`RwMem`]'s; the algebraic fast path below only claims
/// distinct-location commutation and defers same-location questions to
/// the exhaustive oracle on bounded instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemInverse {
    bound: Option<(Vec<Loc>, Vec<i64>)>,
}

impl MemInverse {
    /// An unbounded undo-logging memory.
    pub fn new() -> Self {
        Self { bound: None }
    }

    /// A bounded undo-logging memory over the given locations and
    /// values, providing a finite state universe of all total
    /// assignments (and a finite method alphabet).
    pub fn bounded(locs: Vec<Loc>, vals: Vec<i64>) -> Self {
        Self {
            bound: Some((locs, vals)),
        }
    }
}

impl Default for MemInverse {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSpec for MemInverse {
    type Method = MemMethod;
    type Ret = UndoRet;
    type State = MemState;

    fn initial_states(&self) -> Vec<MemState> {
        vec![MemState::new()]
    }

    fn post_states(&self, state: &MemState, method: &MemMethod, ret: &UndoRet) -> Vec<MemState> {
        match (method, ret) {
            (MemMethod::Read(l), UndoRet::Val(v)) => {
                if state.get(l).copied().unwrap_or(0) == *v {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            // A write is allowed exactly where its recorded previous
            // value matches the current binding — the undo log pins the
            // pre-state.
            (MemMethod::Write(l, v), UndoRet::Prev(p)) => {
                if state.get(l).copied().unwrap_or(0) != *p {
                    return vec![];
                }
                if let Some((_, vals)) = &self.bound {
                    if !vals.contains(v) {
                        return vec![];
                    }
                }
                let mut s = state.clone();
                s.insert(*l, *v);
                vec![s]
            }
            _ => vec![],
        }
    }

    fn results(&self, state: &MemState, method: &MemMethod) -> Vec<UndoRet> {
        match method {
            MemMethod::Read(l) => vec![UndoRet::Val(state.get(l).copied().unwrap_or(0))],
            MemMethod::Write(l, _) => vec![UndoRet::Prev(state.get(l).copied().unwrap_or(0))],
        }
    }

    fn state_universe(&self) -> Option<Vec<MemState>> {
        let (locs, vals) = self.bound.as_ref()?;
        let mut states = vec![MemState::new()];
        for l in locs {
            let mut next = Vec::new();
            for s in &states {
                for v in vals {
                    let mut s2 = s.clone();
                    s2.insert(*l, *v);
                    next.push(s2);
                }
            }
            states = next;
        }
        Some(states)
    }

    /// Distinct locations always commute; same-location pairs are
    /// decided exhaustively on bounded instances (and conservatively
    /// refused on unbounded ones — Prev-observing writes see each
    /// other, so the algebraic table for [`RwMem`] does not carry over).
    fn mover(&self, op1: &UndoOp, op2: &UndoOp) -> bool {
        if op1.method.loc() != op2.method.loc() {
            return true;
        }
        match self.state_universe() {
            Some(universe) => pushpull_core::spec::mover_exhaustive(self, &universe, op1, op2),
            None => matches!(
                (&op1.method, &op2.method),
                (MemMethod::Read(_), MemMethod::Read(_))
            ),
        }
    }

    fn method_mover(&self, m1: &MemMethod, m2: &MemMethod) -> Option<bool> {
        if m1.loc() != m2.loc() {
            return Some(true);
        }
        match self.state_universe() {
            Some(universe) => Some(pushpull_core::spec::method_mover_exhaustive(
                self, &universe, m1, m2,
            )),
            None => Some(matches!((m1, m2), (MemMethod::Read(_), MemMethod::Read(_)))),
        }
    }

    fn method_keys(&self, m: &MemMethod) -> Option<KeySet> {
        Some(KeySet::one(u64::from(m.loc().0)))
    }

    fn method_universe(&self) -> Option<Vec<MemMethod>> {
        let (locs, vals) = self.bound.as_ref()?;
        let mut ms = Vec::new();
        for l in locs {
            ms.push(MemMethod::Read(*l));
            for v in vals {
                ms.push(MemMethod::Write(*l, *v));
            }
        }
        Some(ms)
    }

    fn inverse(&self, op: &UndoOp) -> pushpull_core::spec::OpInverse<MemMethod, UndoRet> {
        crate::inverse::lift::<Self>(op)
    }

    fn has_inverses(&self) -> bool {
        true
    }
}

/// Convenience constructors for memory operations in tests and examples.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// `read(id, txn, loc, observed)` — a read observing `observed`.
    pub fn read(id: u64, txn: u64, loc: u32, observed: i64) -> MemOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MemMethod::Read(Loc(loc)),
            MemRet::Val(observed),
        )
    }

    /// `write(id, txn, loc, val)` — a write of `val`.
    pub fn write(id: u64, txn: u64, loc: u32, val: i64) -> MemOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MemMethod::Write(Loc(loc), val),
            MemRet::Ack,
        )
    }

    /// `undo_read(id, txn, loc, observed)` — a [`MemInverse`] read.
    pub fn undo_read(id: u64, txn: u64, loc: u32, observed: i64) -> UndoOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MemMethod::Read(Loc(loc)),
            UndoRet::Val(observed),
        )
    }

    /// `undo_write(id, txn, loc, val, prev)` — a [`MemInverse`] write of
    /// `val` that recorded previous value `prev`.
    pub fn undo_write(id: u64, txn: u64, loc: u32, val: i64, prev: i64) -> UndoOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MemMethod::Write(Loc(loc), val),
            UndoRet::Prev(prev),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::ops::{read, write};
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    fn bounded() -> RwMem {
        RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1, 2])
    }

    #[test]
    fn read_observes_latest_write() {
        let spec = RwMem::new();
        let log = vec![write(0, 0, 0, 1), write(1, 0, 0, 2), read(2, 0, 0, 2)];
        assert!(spec.allowed(&log));
        let bad = vec![write(0, 0, 0, 1), read(1, 0, 0, 2)];
        assert!(!spec.allowed(&bad));
    }

    #[test]
    fn unwritten_locations_read_zero() {
        let spec = RwMem::new();
        assert!(spec.allowed(&[read(0, 0, 7, 0)]));
        assert!(!spec.allowed(&[read(0, 0, 7, 1)]));
    }

    #[test]
    fn distinct_locations_always_move() {
        let spec = RwMem::new();
        assert!(spec.mover(&write(0, 0, 0, 1), &write(1, 1, 1, 2)));
        assert!(spec.mover(&read(0, 0, 0, 0), &write(1, 1, 1, 2)));
    }

    #[test]
    fn same_location_mover_table() {
        let spec = RwMem::new();
        // Read/Read: yes.
        assert!(spec.mover(&read(0, 0, 0, 1), &read(1, 1, 0, 1)));
        // Read(v) ◁ Write(w): iff v == w.
        assert!(spec.mover(&read(0, 0, 0, 2), &write(1, 1, 0, 2)));
        assert!(!spec.mover(&read(0, 0, 0, 1), &write(1, 1, 0, 2)));
        // Write(w) ◁ Read(v): iff v != w (vacuous).
        assert!(spec.mover(&write(0, 0, 0, 2), &read(1, 1, 0, 1)));
        assert!(!spec.mover(&write(0, 0, 0, 2), &read(1, 1, 0, 2)));
        // Write/Write: iff same value.
        assert!(spec.mover(&write(0, 0, 0, 2), &write(1, 1, 0, 2)));
        assert!(!spec.mover(&write(0, 0, 0, 1), &write(1, 1, 0, 2)));
    }

    #[test]
    fn algebraic_movers_match_exhaustive_exactly() {
        let spec = bounded();
        let universe = spec.state_universe().unwrap();
        assert_eq!(universe.len(), 9);
        let mut ops: Vec<MemOp> = Vec::new();
        let mut id = 0;
        for loc in [0u32, 1] {
            for v in [0i64, 1, 2] {
                ops.push(read(id, 0, loc, v));
                id += 1;
                ops.push(write(id, 1, loc, v));
                id += 1;
            }
        }
        for a in &ops {
            for b in &ops {
                let algebraic = spec.mover(a, b);
                let exhaustive = mover_exhaustive(&spec, &universe, a, b);
                assert_eq!(
                    algebraic, exhaustive,
                    "mover mismatch for {:?} vs {:?}",
                    a.method, b.method
                );
            }
        }
    }

    #[test]
    fn results_are_deterministic() {
        let spec = RwMem::new();
        let mut s = MemState::new();
        s.insert(Loc(3), 9);
        assert_eq!(
            spec.results(&s, &MemMethod::Read(Loc(3))),
            vec![MemRet::Val(9)]
        );
        assert_eq!(
            spec.results(&s, &MemMethod::Write(Loc(3), 1)),
            vec![MemRet::Ack]
        );
    }
}
