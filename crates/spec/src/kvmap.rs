//! A key-value map — the sequential specification behind the boosted
//! hashtable of Figure 2 and the boosted `ConcurrentSkipListMap` of §7.
//!
//! Transactional boosting's abstract locks guarantee that concurrently
//! executing operations target distinct keys; the mover oracle here
//! certifies exactly why that is safe: **operations on distinct keys
//! commute**, and (for `Size`) mutations that do not change key presence
//! commute with size reads.

use std::collections::BTreeMap;
use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Map keys.
pub type Key = u64;
/// Map values.
pub type Val = i64;

/// Methods of the key-value map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapMethod {
    /// Bind `key` to `val`; observes the previous binding.
    Put(Key, Val),
    /// Remove `key`; observes the previous binding.
    Remove(Key),
    /// Look up `key`; observes the current binding.
    Get(Key),
    /// Is `key` bound? Observes a boolean.
    ContainsKey(Key),
    /// Number of bindings; observes a count.
    Size,
}

impl MapMethod {
    /// The key this method touches, if key-local.
    pub fn key(&self) -> Option<Key> {
        match self {
            MapMethod::Put(k, _)
            | MapMethod::Remove(k)
            | MapMethod::Get(k)
            | MapMethod::ContainsKey(k) => Some(*k),
            MapMethod::Size => None,
        }
    }

    /// Is this a read-only method?
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            MapMethod::Get(_) | MapMethod::ContainsKey(_) | MapMethod::Size
        )
    }
}

impl fmt::Display for MapMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapMethod::Put(k, v) => write!(f, "put({k},{v})"),
            MapMethod::Remove(k) => write!(f, "remove({k})"),
            MapMethod::Get(k) => write!(f, "get({k})"),
            MapMethod::ContainsKey(k) => write!(f, "containsKey({k})"),
            MapMethod::Size => write!(f, "size()"),
        }
    }
}

/// Return values of the key-value map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapRet {
    /// Previous binding observed by `Put`/`Remove`.
    Prev(Option<Val>),
    /// Binding observed by `Get`.
    Val(Option<Val>),
    /// Presence observed by `ContainsKey`.
    Bool(bool),
    /// Count observed by `Size`.
    Count(usize),
}

/// Map state.
pub type MapState = BTreeMap<Key, Val>;

/// Operation records of the map.
pub type MapOp = Op<MapMethod, MapRet>;

/// The key-value map specification.
///
/// # Examples
///
/// ```
/// use pushpull_spec::kvmap::{KvMap, ops};
/// use pushpull_core::spec::SeqSpec;
///
/// let spec = KvMap::new();
/// // Puts on distinct keys commute — the heart of boosting's abstract locks:
/// assert!(spec.mover(&ops::put(0, 0, 1, 10, None), &ops::put(1, 1, 2, 20, None)));
/// // Puts on the same key do not:
/// assert!(!spec.mover(&ops::put(0, 0, 1, 10, None), &ops::put(1, 1, 1, 20, Some(10))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvMap {
    bound: Option<(Vec<Key>, Vec<Val>)>,
}

impl KvMap {
    /// An unbounded map (algebraic movers only).
    pub fn new() -> Self {
        Self { bound: None }
    }

    /// A bounded map over the given keys and values, with a finite state
    /// universe (every partial assignment) for exhaustive cross-checks.
    pub fn bounded(keys: Vec<Key>, vals: Vec<Val>) -> Self {
        Self {
            bound: Some((keys, vals)),
        }
    }
}

impl Default for KvMap {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSpec for KvMap {
    type Method = MapMethod;
    type Ret = MapRet;
    type State = MapState;

    fn initial_states(&self) -> Vec<MapState> {
        vec![MapState::new()]
    }

    fn post_states(&self, state: &MapState, method: &MapMethod, ret: &MapRet) -> Vec<MapState> {
        match (method, ret) {
            (MapMethod::Put(k, v), MapRet::Prev(prev)) => {
                if state.get(k).copied() != *prev {
                    return vec![];
                }
                let mut s = state.clone();
                s.insert(*k, *v);
                vec![s]
            }
            (MapMethod::Remove(k), MapRet::Prev(prev)) => {
                if state.get(k).copied() != *prev {
                    return vec![];
                }
                let mut s = state.clone();
                s.remove(k);
                vec![s]
            }
            (MapMethod::Get(k), MapRet::Val(v)) => {
                if state.get(k).copied() == *v {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            (MapMethod::ContainsKey(k), MapRet::Bool(b)) => {
                if state.contains_key(k) == *b {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            (MapMethod::Size, MapRet::Count(n)) => {
                if state.len() == *n {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }

    fn results(&self, state: &MapState, method: &MapMethod) -> Vec<MapRet> {
        match method {
            MapMethod::Put(k, _) | MapMethod::Remove(k) => {
                vec![MapRet::Prev(state.get(k).copied())]
            }
            MapMethod::Get(k) => vec![MapRet::Val(state.get(k).copied())],
            MapMethod::ContainsKey(k) => vec![MapRet::Bool(state.contains_key(k))],
            MapMethod::Size => vec![MapRet::Count(state.len())],
        }
    }

    fn state_universe(&self) -> Option<Vec<MapState>> {
        let (keys, vals) = self.bound.as_ref()?;
        let mut states = vec![MapState::new()];
        for k in keys {
            let mut next = Vec::new();
            for s in &states {
                next.push(s.clone()); // key absent
                for v in vals {
                    let mut s2 = s.clone();
                    s2.insert(*k, *v);
                    next.push(s2);
                }
            }
            states = next;
        }
        Some(states)
    }

    fn mover(&self, op1: &MapOp, op2: &MapOp) -> bool {
        let (m1, m2) = (&op1.method, &op2.method);
        match (m1.key(), m2.key()) {
            (Some(k1), Some(k2)) if k1 != k2 => true,
            (Some(_), Some(_)) => {
                // Same key: only read/read pairs commute (conservative —
                // value-exact refinements exist but boosting never
                // co-schedules same-key writers).
                m1.is_read() && m2.is_read()
            }
            // Size against key-local ops: commutes with reads, and with
            // mutations that preserved key presence (visible in the ret).
            (None, None) => true, // Size vs Size
            (None, Some(_)) => size_commutes_with(m2, &op2.ret),
            (Some(_), None) => size_commutes_with(m1, &op1.ret),
        }
    }

    fn method_mover(&self, m1: &MapMethod, m2: &MapMethod) -> Option<bool> {
        Some(match (m1.key(), m2.key()) {
            (Some(k1), Some(k2)) if k1 != k2 => true,
            (Some(_), Some(_)) => m1.is_read() && m2.is_read(),
            (None, None) => true, // Size vs Size
            // Size against a mutator is return-dependent (only
            // presence-preserving mutations commute), so universally
            // over returns it holds only for reads.
            (None, Some(_)) => m2.is_read(),
            (Some(_), None) => m1.is_read(),
        })
    }

    /// Footprint: the touched key. `Size` reads every binding, so it
    /// declares no footprint (`None`) and soundly degrades a sharded
    /// log to the coarse whole-log path.
    fn method_keys(&self, m: &MapMethod) -> Option<KeySet> {
        m.key().map(KeySet::one)
    }

    /// Every method on every bounded key (writes per value), plus the
    /// footprint-less `Size` — the certifier's coarse-forcing case.
    fn method_universe(&self) -> Option<Vec<MapMethod>> {
        let (keys, vals) = self.bound.as_ref()?;
        let mut ms = Vec::new();
        for k in keys {
            for v in vals {
                ms.push(MapMethod::Put(*k, *v));
            }
            ms.push(MapMethod::Remove(*k));
            ms.push(MapMethod::Get(*k));
            ms.push(MapMethod::ContainsKey(*k));
        }
        ms.push(MapMethod::Size);
        Some(ms)
    }

    /// The inverse oracle delegates to [`crate::inverse::Inverses`]: the
    /// `Prev`-carrying ret of `put`/`remove` is the undo-log entry.
    fn inverse(&self, op: &MapOp) -> pushpull_core::spec::OpInverse<MapMethod, MapRet> {
        crate::inverse::lift::<Self>(op)
    }

    fn has_inverses(&self) -> bool {
        true
    }
}

/// Does a key-local operation (with its observed ret) preserve key
/// presence, and hence commute with `Size`?
fn size_commutes_with(m: &MapMethod, ret: &MapRet) -> bool {
    match (m, ret) {
        (MapMethod::Get(_), _) | (MapMethod::ContainsKey(_), _) => true,
        (MapMethod::Put(_, _), MapRet::Prev(Some(_))) => true, // overwrite: size unchanged
        (MapMethod::Remove(_), MapRet::Prev(None)) => true,    // no-op remove
        _ => false,
    }
}

/// Convenience constructors for map operations.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// A `Put(key, val)` observing previous binding `prev`.
    pub fn put(id: u64, txn: u64, key: Key, val: Val, prev: Option<Val>) -> MapOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MapMethod::Put(key, val),
            MapRet::Prev(prev),
        )
    }

    /// A `Remove(key)` observing previous binding `prev`.
    pub fn remove(id: u64, txn: u64, key: Key, prev: Option<Val>) -> MapOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MapMethod::Remove(key),
            MapRet::Prev(prev),
        )
    }

    /// A `Get(key)` observing `val`.
    pub fn get(id: u64, txn: u64, key: Key, val: Option<Val>) -> MapOp {
        Op::new(OpId(id), TxnId(txn), MapMethod::Get(key), MapRet::Val(val))
    }

    /// A `ContainsKey(key)` observing `b`.
    pub fn contains(id: u64, txn: u64, key: Key, b: bool) -> MapOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            MapMethod::ContainsKey(key),
            MapRet::Bool(b),
        )
    }

    /// A `Size` observing `n`.
    pub fn size(id: u64, txn: u64, n: usize) -> MapOp {
        Op::new(OpId(id), TxnId(txn), MapMethod::Size, MapRet::Count(n))
    }
}

#[cfg(test)]
mod tests {
    use super::ops as o;
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    #[test]
    fn put_get_remove_sequence() {
        let spec = KvMap::new();
        let log = vec![
            o::put(0, 0, 1, 10, None),
            o::get(1, 0, 1, Some(10)),
            o::remove(2, 0, 1, Some(10)),
            o::get(3, 0, 1, None),
        ];
        assert!(spec.allowed(&log));
    }

    #[test]
    fn put_ret_must_match_previous_binding() {
        let spec = KvMap::new();
        let bad = vec![o::put(0, 0, 1, 10, None), o::put(1, 0, 1, 20, None)];
        assert!(!spec.allowed(&bad), "second put must observe Some(10)");
        let good = vec![o::put(0, 0, 1, 10, None), o::put(1, 0, 1, 20, Some(10))];
        assert!(spec.allowed(&good));
    }

    #[test]
    fn distinct_keys_commute() {
        let spec = KvMap::new();
        assert!(spec.mover(&o::put(0, 0, 1, 10, None), &o::remove(1, 1, 2, None)));
        assert!(spec.mover(&o::get(0, 0, 1, None), &o::put(1, 1, 2, 5, None)));
    }

    #[test]
    fn same_key_reads_commute_writes_do_not() {
        let spec = KvMap::new();
        assert!(spec.mover(&o::get(0, 0, 1, Some(5)), &o::contains(1, 1, 1, true)));
        assert!(!spec.mover(&o::put(0, 0, 1, 10, None), &o::get(1, 1, 1, Some(10))));
        assert!(!spec.mover(&o::put(0, 0, 1, 10, None), &o::put(1, 1, 1, 20, Some(10))));
    }

    #[test]
    fn size_commutes_with_presence_preserving_ops() {
        let spec = KvMap::new();
        // Overwrite put preserves size.
        assert!(spec.mover(&o::size(0, 0, 3), &o::put(1, 1, 1, 10, Some(5))));
        // Fresh insert does not.
        assert!(!spec.mover(&o::size(0, 0, 3), &o::put(1, 1, 1, 10, None)));
        // No-op remove preserves size.
        assert!(spec.mover(&o::size(0, 0, 3), &o::remove(1, 1, 1, None)));
        // Real remove does not.
        assert!(!spec.mover(&o::size(0, 0, 3), &o::remove(1, 1, 1, Some(10))));
    }

    #[test]
    fn algebraic_movers_sound_wrt_exhaustive() {
        let spec = KvMap::bounded(vec![1, 2], vec![10, 20]);
        let universe = spec.state_universe().unwrap();
        assert_eq!(universe.len(), 9); // (absent|10|20)^2
        let mut sample: Vec<MapOp> = Vec::new();
        let mut id = 0;
        for k in [1u64, 2] {
            for prev in [None, Some(10), Some(20)] {
                sample.push(o::put(id, 0, k, 10, prev));
                id += 1;
                sample.push(o::remove(id, 0, k, prev));
                id += 1;
                sample.push(o::get(id, 0, k, prev));
                id += 1;
            }
            sample.push(o::contains(id, 0, k, true));
            id += 1;
            sample.push(o::contains(id, 0, k, false));
            id += 1;
        }
        for n in 0..=2 {
            sample.push(o::size(id, 0, n));
            id += 1;
        }
        for a in &sample {
            for b in &sample {
                if spec.mover(a, b) {
                    assert!(
                        mover_exhaustive(&spec, &universe, a, b),
                        "algebraic mover unsound for {:?}/{:?} vs {:?}/{:?}",
                        a.method,
                        a.ret,
                        b.method,
                        b.ret
                    );
                }
            }
        }
    }
}
