//! An unbounded commutative counter — the simplest abstract-conflict
//! specification (e.g. the `size` field of §7's example, boosted rather
//! than tracked at memory level).
//!
//! `Add(k)` observes an ack, so additions commute with each other
//! regardless of `k` — the abstract-level commutativity that transactional
//! boosting \[11\] exploits and a read/write-level system would miss
//! (every `size++` is a read-modify-write conflict at memory level).

use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Methods of the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrMethod {
    /// Add `k` (may be negative); observes an ack.
    Add(i64),
    /// Read the current value.
    Get,
}

impl fmt::Display for CtrMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrMethod::Add(k) => write!(f, "add({k})"),
            CtrMethod::Get => write!(f, "get"),
        }
    }
}

/// Return values of the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrRet {
    /// Acknowledgement of an `Add`.
    Ack,
    /// Value observed by a `Get`.
    Val(i64),
}

/// Operation records of the counter.
pub type CtrOp = Op<CtrMethod, CtrRet>;

/// The unbounded counter specification.
///
/// # Examples
///
/// ```
/// use pushpull_spec::counter::{Counter, ops};
/// use pushpull_core::spec::SeqSpec;
///
/// let spec = Counter::new();
/// let log = vec![ops::add(0, 0, 5), ops::add(1, 1, -2), ops::get(2, 0, 3)];
/// assert!(spec.allowed(&log));
/// // Adds commute:
/// assert!(spec.mover(&ops::add(0, 0, 5), &ops::add(1, 1, 7)));
/// // A get does not move across an add that changes what it saw:
/// assert!(!spec.mover(&ops::get(0, 0, 0), &ops::add(1, 1, 7)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    bounded: Option<i64>,
}

impl Counter {
    /// An unbounded counter.
    pub fn new() -> Self {
        Self { bounded: None }
    }

    /// A counter whose state universe is `-bound..=bound`, enabling
    /// exhaustive mover cross-validation.
    pub fn with_universe(bound: i64) -> Self {
        Self {
            bounded: Some(bound),
        }
    }
}

impl SeqSpec for Counter {
    type Method = CtrMethod;
    type Ret = CtrRet;
    type State = i64;

    fn initial_states(&self) -> Vec<i64> {
        vec![0]
    }

    fn post_states(&self, state: &i64, method: &CtrMethod, ret: &CtrRet) -> Vec<i64> {
        match (method, ret) {
            (CtrMethod::Add(k), CtrRet::Ack) => vec![state + k],
            (CtrMethod::Get, CtrRet::Val(v)) if v == state => vec![*state],
            _ => vec![],
        }
    }

    fn results(&self, state: &i64, method: &CtrMethod) -> Vec<CtrRet> {
        match method {
            CtrMethod::Add(_) => vec![CtrRet::Ack],
            CtrMethod::Get => vec![CtrRet::Val(*state)],
        }
    }

    fn state_universe(&self) -> Option<Vec<i64>> {
        self.bounded.map(|b| (-b..=b).collect())
    }

    fn mover(&self, op1: &CtrOp, op2: &CtrOp) -> bool {
        match (&op1.method, &op2.method) {
            // Adds commute with adds.
            (CtrMethod::Add(_), CtrMethod::Add(_)) => true,
            // Gets commute with gets.
            (CtrMethod::Get, CtrMethod::Get) => true,
            // Get(v) ◁ Add(k): only when k == 0.
            (CtrMethod::Get, CtrMethod::Add(k)) => *k == 0,
            // Add(k) ◁ Get(v): swapping means the get sees v without the
            // add; holds only when k == 0 (otherwise the forward
            // composition pins a different value than the hypothetical).
            (CtrMethod::Add(k), CtrMethod::Get) => *k == 0,
        }
    }

    fn method_mover(&self, m1: &CtrMethod, m2: &CtrMethod) -> Option<bool> {
        // The op-level oracle above never looks at returns, so it *is*
        // the method-level relation.
        Some(match (m1, m2) {
            (CtrMethod::Add(_), CtrMethod::Add(_)) => true,
            (CtrMethod::Get, CtrMethod::Get) => true,
            (CtrMethod::Get, CtrMethod::Add(k)) | (CtrMethod::Add(k), CtrMethod::Get) => *k == 0,
        })
    }

    /// Footprint: every method touches the one shared tally — a single
    /// key class, so a sharded log keeps all counter traffic together
    /// (the disjointness law is vacuous).
    fn method_keys(&self, _m: &CtrMethod) -> Option<KeySet> {
        Some(KeySet::one(0))
    }

    /// Small positive, negative, and zero increments (the zero arm is
    /// the `method_mover` special case) plus the read.
    fn method_universe(&self) -> Option<Vec<CtrMethod>> {
        self.bounded?;
        Some(vec![
            CtrMethod::Add(0),
            CtrMethod::Add(1),
            CtrMethod::Add(-1),
            CtrMethod::Add(2),
            CtrMethod::Get,
        ])
    }

    /// The inverse oracle delegates to [`crate::inverse::Inverses`]:
    /// `Add(k)` is undone by `Add(-k)` (the counter is unsaturated, so
    /// every add is invertible); `Get` and `Add(0)` change nothing.
    fn inverse(&self, op: &CtrOp) -> pushpull_core::spec::OpInverse<CtrMethod, CtrRet> {
        crate::inverse::lift::<Self>(op)
    }

    fn has_inverses(&self) -> bool {
        true
    }
}

/// Convenience constructors for counter operations.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// An `Add(k)` operation.
    pub fn add(id: u64, txn: u64, k: i64) -> CtrOp {
        Op::new(OpId(id), TxnId(txn), CtrMethod::Add(k), CtrRet::Ack)
    }

    /// A `Get` operation observing `v`.
    pub fn get(id: u64, txn: u64, v: i64) -> CtrOp {
        Op::new(OpId(id), TxnId(txn), CtrMethod::Get, CtrRet::Val(v))
    }
}

#[cfg(test)]
mod tests {
    use super::ops::{add, get};
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    #[test]
    fn adds_accumulate() {
        let spec = Counter::new();
        assert!(spec.allowed(&[add(0, 0, 2), add(1, 0, 3), get(2, 0, 5)]));
        assert!(!spec.allowed(&[add(0, 0, 2), get(1, 0, 3)]));
    }

    #[test]
    fn algebraic_movers_sound_wrt_exhaustive() {
        let spec = Counter::with_universe(6);
        let universe = spec.state_universe().unwrap();
        let mut sample: Vec<CtrOp> = vec![add(0, 0, 0), add(1, 0, 1), add(2, 0, -2)];
        for v in -2..=2 {
            sample.push(get(10 + (v + 2) as u64, 0, v));
        }
        for a in &sample {
            for b in &sample {
                if spec.mover(a, b) {
                    assert!(
                        mover_exhaustive(&spec, &universe, a, b),
                        "algebraic claimed mover for {:?} vs {:?} but exhaustive refutes",
                        a.method,
                        b.method
                    );
                }
            }
        }
    }

    #[test]
    fn add_get_asymmetry_is_conservative() {
        // Add(k≠0) ◁ Get(v) is vacuously true exhaustively only for
        // specific v; the algebraic oracle is conservatively false, which
        // is sound (criteria only need `true` to be trustworthy).
        let spec = Counter::with_universe(6);
        let universe = spec.state_universe().unwrap();
        // Exhaustive: add(1) then get(v): forward requires post state v,
        // i.e. pre v-1; hypothetical requires pre state v. Different
        // states -> refuted (for v reachable in universe).
        assert!(!mover_exhaustive(
            &spec,
            &universe,
            &add(0, 0, 1),
            &get(1, 0, 0)
        ));
        assert!(!spec.mover(&add(0, 0, 1), &get(1, 0, 0)));
    }

    #[test]
    fn zero_add_moves_both_ways() {
        let spec = Counter::new();
        assert!(spec.mover(&add(0, 0, 0), &get(1, 0, 5)));
        assert!(spec.mover(&get(1, 0, 5), &add(0, 0, 0)));
    }
}
