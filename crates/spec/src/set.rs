//! A mathematical set — the "shared Set, implemented as a
//! ConcurrentSkipList" that Figure 2's boosted hashtable stores, and the
//! canonical example of transactional boosting \[11\]: `add(x)` and
//! `add(y)` commute whenever `x ≠ y`.

use std::collections::BTreeSet;
use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Set elements.
pub type Elem = u64;

/// Methods of the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetMethod {
    /// Insert an element; observes whether it was newly added.
    Add(Elem),
    /// Remove an element; observes whether it was present.
    Remove(Elem),
    /// Membership test.
    Contains(Elem),
}

impl SetMethod {
    /// The element this method touches.
    pub fn elem(&self) -> Elem {
        match self {
            SetMethod::Add(x) | SetMethod::Remove(x) | SetMethod::Contains(x) => *x,
        }
    }

    /// Is this a read-only method?
    pub fn is_read(&self) -> bool {
        matches!(self, SetMethod::Contains(_))
    }
}

impl fmt::Display for SetMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetMethod::Add(x) => write!(f, "add({x})"),
            SetMethod::Remove(x) => write!(f, "remove({x})"),
            SetMethod::Contains(x) => write!(f, "contains({x})"),
        }
    }
}

/// Return values of the set (all boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetRet(pub bool);

/// Set state.
pub type SetState = BTreeSet<Elem>;

/// Operation records of the set.
pub type SetOp = Op<SetMethod, SetRet>;

/// The set specification.
///
/// # Examples
///
/// ```
/// use pushpull_spec::set::{SetSpec, ops};
/// use pushpull_core::spec::SeqSpec;
///
/// let spec = SetSpec::new();
/// // Boosting's bread and butter: distinct-element adds commute.
/// assert!(spec.mover(&ops::add(0, 0, 1, true), &ops::add(1, 1, 2, true)));
/// // Same element: an add does not move across a contains that saw it.
/// assert!(!spec.mover(&ops::add(0, 0, 1, true), &ops::contains(1, 1, 1, true)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetSpec {
    bound: Option<Vec<Elem>>,
}

impl SetSpec {
    /// An unbounded set (algebraic movers only).
    pub fn new() -> Self {
        Self { bound: None }
    }

    /// A bounded set over the given elements, with a finite state universe
    /// (every subset) for exhaustive cross-checks.
    pub fn bounded(elems: Vec<Elem>) -> Self {
        Self { bound: Some(elems) }
    }
}

impl Default for SetSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSpec for SetSpec {
    type Method = SetMethod;
    type Ret = SetRet;
    type State = SetState;

    fn initial_states(&self) -> Vec<SetState> {
        vec![SetState::new()]
    }

    fn post_states(&self, state: &SetState, method: &SetMethod, ret: &SetRet) -> Vec<SetState> {
        match method {
            SetMethod::Add(x) => {
                let newly = !state.contains(x);
                if ret.0 != newly {
                    return vec![];
                }
                let mut s = state.clone();
                s.insert(*x);
                vec![s]
            }
            SetMethod::Remove(x) => {
                let present = state.contains(x);
                if ret.0 != present {
                    return vec![];
                }
                let mut s = state.clone();
                s.remove(x);
                vec![s]
            }
            SetMethod::Contains(x) => {
                if ret.0 == state.contains(x) {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
        }
    }

    fn results(&self, state: &SetState, method: &SetMethod) -> Vec<SetRet> {
        match method {
            SetMethod::Add(x) => vec![SetRet(!state.contains(x))],
            SetMethod::Remove(x) | SetMethod::Contains(x) => vec![SetRet(state.contains(x))],
        }
    }

    fn state_universe(&self) -> Option<Vec<SetState>> {
        let elems = self.bound.as_ref()?;
        let mut states = vec![SetState::new()];
        for x in elems {
            let mut next = Vec::new();
            for s in &states {
                next.push(s.clone());
                let mut s2 = s.clone();
                s2.insert(*x);
                next.push(s2);
            }
            states = next;
        }
        Some(states)
    }

    fn mover(&self, op1: &SetOp, op2: &SetOp) -> bool {
        if op1.method.elem() != op2.method.elem() {
            return true;
        }
        op1.method.is_read() && op2.method.is_read()
    }

    fn method_mover(&self, m1: &SetMethod, m2: &SetMethod) -> Option<bool> {
        // The op-level oracle never looks at returns: exact at the
        // method level.
        Some(m1.elem() != m2.elem() || (m1.is_read() && m2.is_read()))
    }

    /// Footprint: the touched element — distinct elements are
    /// both-movers (first disjunct of `method_mover`).
    fn method_keys(&self, m: &SetMethod) -> Option<KeySet> {
        Some(KeySet::one(m.elem()))
    }

    /// Every method on every bounded element.
    fn method_universe(&self) -> Option<Vec<SetMethod>> {
        let elems = self.bound.as_ref()?;
        let mut ms = Vec::new();
        for x in elems {
            ms.push(SetMethod::Add(*x));
            ms.push(SetMethod::Remove(*x));
            ms.push(SetMethod::Contains(*x));
        }
        Some(ms)
    }

    /// The inverse oracle delegates to [`crate::inverse::Inverses`]: a
    /// successful `add` is undone by `remove` (and vice versa); failed
    /// updates and `contains` leave the state untouched.
    fn inverse(&self, op: &SetOp) -> pushpull_core::spec::OpInverse<SetMethod, SetRet> {
        crate::inverse::lift::<Self>(op)
    }

    fn has_inverses(&self) -> bool {
        true
    }
}

/// Convenience constructors for set operations.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// An `Add(x)` observing `added`.
    pub fn add(id: u64, txn: u64, x: Elem, added: bool) -> SetOp {
        Op::new(OpId(id), TxnId(txn), SetMethod::Add(x), SetRet(added))
    }

    /// A `Remove(x)` observing `present`.
    pub fn remove(id: u64, txn: u64, x: Elem, present: bool) -> SetOp {
        Op::new(OpId(id), TxnId(txn), SetMethod::Remove(x), SetRet(present))
    }

    /// A `Contains(x)` observing `present`.
    pub fn contains(id: u64, txn: u64, x: Elem, present: bool) -> SetOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            SetMethod::Contains(x),
            SetRet(present),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::ops as o;
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    #[test]
    fn add_remove_contains_sequence() {
        let spec = SetSpec::new();
        let log = vec![
            o::add(0, 0, 5, true),
            o::add(1, 0, 5, false),
            o::contains(2, 0, 5, true),
            o::remove(3, 0, 5, true),
            o::contains(4, 0, 5, false),
        ];
        assert!(spec.allowed(&log));
    }

    #[test]
    fn rets_are_forced_by_state() {
        let spec = SetSpec::new();
        assert!(
            !spec.allowed(&[o::add(0, 0, 5, false)]),
            "first add must return true"
        );
        assert!(
            !spec.allowed(&[o::remove(0, 0, 5, true)]),
            "remove from empty must return false"
        );
    }

    #[test]
    fn distinct_elements_commute() {
        let spec = SetSpec::new();
        assert!(spec.mover(&o::add(0, 0, 1, true), &o::remove(1, 1, 2, false)));
    }

    #[test]
    fn algebraic_movers_sound_wrt_exhaustive() {
        let spec = SetSpec::bounded(vec![1, 2]);
        let universe = spec.state_universe().unwrap();
        assert_eq!(universe.len(), 4);
        let mut sample = Vec::new();
        let mut id = 0;
        for x in [1u64, 2] {
            for b in [true, false] {
                sample.push(o::add(id, 0, x, b));
                id += 1;
                sample.push(o::remove(id, 0, x, b));
                id += 1;
                sample.push(o::contains(id, 0, x, b));
                id += 1;
            }
        }
        for a in &sample {
            for b in &sample {
                if spec.mover(a, b) {
                    assert!(
                        mover_exhaustive(&spec, &universe, a, b),
                        "unsound mover {:?} vs {:?}",
                        a.method,
                        b.method
                    );
                }
            }
        }
    }
}
