//! Bank accounts — the classic *asymmetric* mover example.
//!
//! `Deposit` always commutes with `Deposit`. A successful `Withdraw`
//! moves **right** across a `Deposit` (withdraw-then-deposit can be
//! reordered to deposit-then-withdraw: more money never hurts), but a
//! `Deposit` does *not* move right across a successful `Withdraw` (the
//! withdraw might only have succeeded because of the deposit). This is
//! the textbook Lipton left/right-mover asymmetry, and the tests verify
//! it exhaustively.

use std::collections::BTreeMap;
use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Account identifiers.
pub type Acct = u32;
/// Money amounts (non-negative in well-formed methods).
pub type Amount = i64;

/// Methods of the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankMethod {
    /// Deposit `amount` into `acct`; observes an ack.
    Deposit(Acct, Amount),
    /// Withdraw `amount` from `acct` if the balance suffices; observes
    /// success.
    Withdraw(Acct, Amount),
    /// Read the balance of `acct`.
    Balance(Acct),
}

impl BankMethod {
    /// The account this method touches.
    pub fn acct(&self) -> Acct {
        match self {
            BankMethod::Deposit(a, _) | BankMethod::Withdraw(a, _) | BankMethod::Balance(a) => *a,
        }
    }
}

impl fmt::Display for BankMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankMethod::Deposit(a, n) => write!(f, "deposit(a{a},{n})"),
            BankMethod::Withdraw(a, n) => write!(f, "withdraw(a{a},{n})"),
            BankMethod::Balance(a) => write!(f, "balance(a{a})"),
        }
    }
}

/// Return values of the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankRet {
    /// Acknowledgement of a deposit.
    Ack,
    /// Success flag of a withdraw.
    Ok(bool),
    /// Balance observed.
    Amount(Amount),
}

/// Bank state: account balances (absent accounts have balance 0).
pub type BankState = BTreeMap<Acct, Amount>;

/// Operation records of the bank.
pub type BankOp = Op<BankMethod, BankRet>;

/// The bank specification.
///
/// # Examples
///
/// ```
/// use pushpull_spec::bank::{Bank, ops};
/// use pushpull_core::spec::SeqSpec;
///
/// let spec = Bank::new();
/// // The Lipton asymmetry: a successful withdraw moves across a deposit…
/// assert!(spec.mover(&ops::withdraw(0, 0, 1, 5, true), &ops::deposit(1, 1, 1, 3)));
/// // …but a deposit does not move across a successful withdraw.
/// assert!(!spec.mover(&ops::deposit(0, 0, 1, 3), &ops::withdraw(1, 1, 1, 5, true)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    bound: Option<(Vec<Acct>, Amount)>,
}

impl Bank {
    /// An unbounded bank (algebraic movers only).
    pub fn new() -> Self {
        Self { bound: None }
    }

    /// A bounded bank over the given accounts with balances `0..=max`,
    /// with a finite state universe for exhaustive cross-checks.
    pub fn bounded(accts: Vec<Acct>, max: Amount) -> Self {
        Self {
            bound: Some((accts, max)),
        }
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSpec for Bank {
    type Method = BankMethod;
    type Ret = BankRet;
    type State = BankState;

    fn initial_states(&self) -> Vec<BankState> {
        vec![BankState::new()]
    }

    fn post_states(&self, state: &BankState, method: &BankMethod, ret: &BankRet) -> Vec<BankState> {
        let bal = |s: &BankState, a: &Acct| s.get(a).copied().unwrap_or(0);
        // Canonical representation: a zero balance is never stored, so
        // states that agree on every balance are *equal* — which is what
        // lets `deposit ∘ withdraw` round-trip exactly (the open-nesting
        // restoration law compares states, not observations).
        let set = |s: &mut BankState, a: Acct, v: Amount| {
            if v == 0 {
                s.remove(&a);
            } else {
                s.insert(a, v);
            }
        };
        match (method, ret) {
            (BankMethod::Deposit(a, n), BankRet::Ack) => {
                if *n < 0 {
                    return vec![];
                }
                let mut s = state.clone();
                set(&mut s, *a, bal(state, a) + n);
                vec![s]
            }
            (BankMethod::Withdraw(a, n), BankRet::Ok(ok)) => {
                if *n < 0 {
                    return vec![];
                }
                let can = bal(state, a) >= *n;
                if can != *ok {
                    return vec![];
                }
                if *ok {
                    let mut s = state.clone();
                    set(&mut s, *a, bal(state, a) - n);
                    vec![s]
                } else {
                    vec![state.clone()]
                }
            }
            (BankMethod::Balance(a), BankRet::Amount(v)) => {
                if bal(state, a) == *v {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }

    fn results(&self, state: &BankState, method: &BankMethod) -> Vec<BankRet> {
        let bal = |a: &Acct| state.get(a).copied().unwrap_or(0);
        match method {
            BankMethod::Deposit(_, _) => vec![BankRet::Ack],
            BankMethod::Withdraw(a, n) => vec![BankRet::Ok(bal(a) >= *n)],
            BankMethod::Balance(a) => vec![BankRet::Amount(bal(a))],
        }
    }

    fn state_universe(&self) -> Option<Vec<BankState>> {
        let (accts, max) = self.bound.as_ref()?;
        let mut states = vec![BankState::new()];
        for a in accts {
            let mut next = Vec::new();
            for s in &states {
                // v = 0 is represented by absence (canonical states).
                for v in 0..=*max {
                    let mut s2 = s.clone();
                    if v != 0 {
                        s2.insert(*a, v);
                    }
                    next.push(s2);
                }
            }
            states = next;
        }
        Some(states)
    }

    fn mover(&self, op1: &BankOp, op2: &BankOp) -> bool {
        use BankMethod::*;
        if op1.method.acct() != op2.method.acct() {
            return true;
        }
        let ok = |op: &BankOp| matches!(op.ret, BankRet::Ok(true));
        match (&op1.method, &op2.method) {
            // Deposits always commute.
            (Deposit(_, _), Deposit(_, _)) => true,
            // Balance reads commute with each other.
            (Balance(_), Balance(_)) => true,
            // Successful withdraws commute with each other (both succeed
            // iff bal ≥ n₁+n₂ in either order; failed ones are
            // state-pinned — conservative no unless both failed with the
            // same threshold... keep simple: both-success only).
            (Withdraw(_, _), Withdraw(_, _)) => ok(op1) && ok(op2),
            // Successful withdraw moves right across a deposit (more
            // money never turns success into failure, and the resulting
            // balance is the same either way).
            (Withdraw(_, _), Deposit(_, _)) => ok(op1),
            // Deposit·Withdraw(failed) reorders to Withdraw(failed)·
            // Deposit: if the withdraw failed despite the deposit it
            // certainly fails without it, and the balances agree.
            (Deposit(_, _), Withdraw(_, _)) => matches!(op2.ret, BankRet::Ok(false)),
            // Balance against mutators: pinned values, conservative no
            // (zero-amount refinements aside).
            (Balance(_), Deposit(_, n)) | (Balance(_), Withdraw(_, n)) => *n == 0,
            (Deposit(_, n), Balance(_)) | (Withdraw(_, n), Balance(_)) => *n == 0,
        }
    }

    fn method_mover(&self, m1: &BankMethod, m2: &BankMethod) -> Option<bool> {
        use BankMethod::*;
        if m1.acct() != m2.acct() {
            return Some(true);
        }
        Some(match (m1, m2) {
            (Deposit(_, _), Deposit(_, _)) => true,
            (Balance(_), Balance(_)) => true,
            // Withdraw pairs and balance-vs-mutator movers depend on the
            // observed returns (success/failure, zero amounts); they do
            // not hold universally — except for zero-amount mutators,
            // which are no-ops against a balance read.
            (Balance(_), Deposit(_, n)) | (Balance(_), Withdraw(_, n)) => *n == 0,
            (Deposit(_, n), Balance(_)) | (Withdraw(_, n), Balance(_)) => *n == 0,
            // A zero-amount withdraw always succeeds (balances never go
            // negative), so the pair observes `Ok(true)`/`Ok(true)` —
            // exactly the both-success case the op-level oracle accepts.
            (Withdraw(_, 0), Withdraw(_, 0)) => true,
            _ => false,
        })
    }

    /// Footprint: the touched account — distinct accounts are
    /// both-movers (the first arm of `method_mover`).
    fn method_keys(&self, m: &BankMethod) -> Option<KeySet> {
        Some(KeySet::one(u64::from(m.acct())))
    }

    /// Deposits and withdraws over small amounts (including the
    /// zero-amount no-ops the mover oracle special-cases) plus balance
    /// reads, per bounded account.
    fn method_universe(&self) -> Option<Vec<BankMethod>> {
        let (accts, max) = self.bound.as_ref()?;
        let mut ms = Vec::new();
        for a in accts {
            for n in 0..=(*max).min(2) {
                ms.push(BankMethod::Deposit(*a, n));
                ms.push(BankMethod::Withdraw(*a, n));
            }
            ms.push(BankMethod::Balance(*a));
        }
        Some(ms)
    }

    /// The inverse oracle delegates to [`crate::inverse::Inverses`]:
    /// a deposit is undone by a withdrawal of the same amount and vice
    /// versa; failed withdrawals and `Balance` leave the state
    /// untouched.
    fn inverse(&self, op: &BankOp) -> pushpull_core::spec::OpInverse<BankMethod, BankRet> {
        crate::inverse::lift::<Self>(op)
    }

    fn has_inverses(&self) -> bool {
        true
    }
}

/// Convenience constructors for bank operations.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// A `Deposit(acct, amount)`.
    pub fn deposit(id: u64, txn: u64, acct: Acct, amount: Amount) -> BankOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            BankMethod::Deposit(acct, amount),
            BankRet::Ack,
        )
    }

    /// A `Withdraw(acct, amount)` observing `ok`.
    pub fn withdraw(id: u64, txn: u64, acct: Acct, amount: Amount, ok: bool) -> BankOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            BankMethod::Withdraw(acct, amount),
            BankRet::Ok(ok),
        )
    }

    /// A `Balance(acct)` observing `v`.
    pub fn balance(id: u64, txn: u64, acct: Acct, v: Amount) -> BankOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            BankMethod::Balance(acct),
            BankRet::Amount(v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::ops as o;
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    #[test]
    fn balances_track_deposits_and_withdraws() {
        let spec = Bank::new();
        let log = vec![
            o::deposit(0, 0, 1, 10),
            o::withdraw(1, 0, 1, 4, true),
            o::balance(2, 0, 1, 6),
            o::withdraw(3, 0, 1, 100, false),
            o::balance(4, 0, 1, 6),
        ];
        assert!(spec.allowed(&log));
    }

    #[test]
    fn overdraft_is_refused() {
        let spec = Bank::new();
        assert!(!spec.allowed(&[o::withdraw(0, 0, 1, 5, true)]));
        assert!(spec.allowed(&[o::withdraw(0, 0, 1, 5, false)]));
    }

    #[test]
    fn lipton_asymmetry() {
        let spec = Bank::new();
        assert!(spec.mover(&o::withdraw(0, 0, 1, 5, true), &o::deposit(1, 1, 1, 3)));
        assert!(!spec.mover(&o::deposit(0, 0, 1, 3), &o::withdraw(1, 1, 1, 5, true)));
    }

    #[test]
    fn algebraic_movers_sound_wrt_exhaustive() {
        let spec = Bank::bounded(vec![1, 2], 6);
        let universe = spec.state_universe().unwrap();
        let mut sample = Vec::new();
        let mut id = 0;
        for a in [1u32, 2] {
            for n in [0i64, 2, 3] {
                sample.push(o::deposit(id, 0, a, n));
                id += 1;
                sample.push(o::withdraw(id, 0, a, n, true));
                id += 1;
                sample.push(o::withdraw(id, 0, a, n, false));
                id += 1;
            }
            for v in [0i64, 3] {
                sample.push(o::balance(id, 0, a, v));
                id += 1;
            }
        }
        for x in &sample {
            for y in &sample {
                if spec.mover(x, y) {
                    assert!(
                        mover_exhaustive(&spec, &universe, x, y),
                        "unsound mover {:?}/{:?} vs {:?}/{:?}",
                        x.method,
                        x.ret,
                        y.method,
                        y.ret
                    );
                }
            }
        }
    }
}
