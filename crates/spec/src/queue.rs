//! A FIFO queue — a deliberately *non-commutative* specification.
//!
//! Almost nothing moves across anything here (enqueue order is observable
//! through dequeues), so PUSH criterion (ii) forces transactions touching
//! the queue to serialize: the pessimistic end of the spectrum. The test
//! suites use it to exercise mover-failure paths and the machine's
//! conflict reporting.

use std::collections::VecDeque;
use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Queue items.
pub type Item = i64;

/// Methods of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueMethod {
    /// Enqueue an item at the tail; observes an ack.
    Enq(Item),
    /// Dequeue from the head; observes the item (or `None` when empty).
    Deq,
    /// Peek the head without removing; observes the item (or `None`).
    Peek,
}

impl fmt::Display for QueueMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueMethod::Enq(v) => write!(f, "enq({v})"),
            QueueMethod::Deq => write!(f, "deq()"),
            QueueMethod::Peek => write!(f, "peek()"),
        }
    }
}

/// Return values of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueRet {
    /// Acknowledgement of an enqueue.
    Ack,
    /// Item observed by a dequeue or peek.
    Item(Option<Item>),
}

/// Queue state.
pub type QueueState = VecDeque<Item>;

/// Operation records of the queue.
pub type QueueOp = Op<QueueMethod, QueueRet>;

/// The FIFO queue specification.
///
/// # Examples
///
/// ```
/// use pushpull_spec::queue::{QueueSpec, ops};
/// use pushpull_core::spec::SeqSpec;
///
/// let spec = QueueSpec::new();
/// let log = vec![ops::enq(0, 0, 7), ops::enq(1, 0, 8), ops::deq(2, 1, Some(7))];
/// assert!(spec.allowed(&log));
/// // Enqueues do not commute — FIFO order is observable:
/// assert!(!spec.mover(&ops::enq(0, 0, 7), &ops::enq(1, 1, 8)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSpec {
    bound: Option<(Vec<Item>, usize)>,
}

impl QueueSpec {
    /// An unbounded queue (algebraic movers only).
    pub fn new() -> Self {
        Self { bound: None }
    }

    /// A bounded queue over the given items up to `max_len`, with a finite
    /// state universe for exhaustive cross-checks.
    pub fn bounded(items: Vec<Item>, max_len: usize) -> Self {
        Self {
            bound: Some((items, max_len)),
        }
    }
}

impl Default for QueueSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSpec for QueueSpec {
    type Method = QueueMethod;
    type Ret = QueueRet;
    type State = QueueState;

    fn initial_states(&self) -> Vec<QueueState> {
        vec![QueueState::new()]
    }

    fn post_states(
        &self,
        state: &QueueState,
        method: &QueueMethod,
        ret: &QueueRet,
    ) -> Vec<QueueState> {
        match (method, ret) {
            (QueueMethod::Enq(v), QueueRet::Ack) => {
                if let Some((items, max_len)) = &self.bound {
                    if !items.contains(v) || state.len() >= *max_len {
                        return vec![];
                    }
                }
                let mut s = state.clone();
                s.push_back(*v);
                vec![s]
            }
            (QueueMethod::Deq, QueueRet::Item(observed)) => {
                if state.front().copied() != *observed {
                    return vec![];
                }
                let mut s = state.clone();
                s.pop_front();
                vec![s]
            }
            (QueueMethod::Peek, QueueRet::Item(observed)) => {
                if state.front().copied() == *observed {
                    vec![state.clone()]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }

    fn results(&self, state: &QueueState, method: &QueueMethod) -> Vec<QueueRet> {
        match method {
            QueueMethod::Enq(v) => {
                if let Some((items, max_len)) = &self.bound {
                    if !items.contains(v) || state.len() >= *max_len {
                        return vec![];
                    }
                }
                vec![QueueRet::Ack]
            }
            QueueMethod::Deq | QueueMethod::Peek => {
                vec![QueueRet::Item(state.front().copied())]
            }
        }
    }

    fn state_universe(&self) -> Option<Vec<QueueState>> {
        let (items, max_len) = self.bound.as_ref()?;
        let mut states: Vec<QueueState> = vec![QueueState::new()];
        let mut frontier = states.clone();
        for _ in 0..*max_len {
            let mut next = Vec::new();
            for s in &frontier {
                for v in items {
                    let mut s2 = s.clone();
                    s2.push_back(*v);
                    next.push(s2);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        Some(states)
    }

    fn mover(&self, op1: &QueueOp, op2: &QueueOp) -> bool {
        match (&op1.method, &op2.method) {
            // Peeks commute with peeks.
            (QueueMethod::Peek, QueueMethod::Peek) => true,
            // Same-item enqueues are the same log in either order (both
            // observe an ack; the queue contents end up identical).
            (QueueMethod::Enq(a), QueueMethod::Enq(b)) if a == b => true,
            // Everything else is order-observable: conservative no.
            _ => false,
        }
    }

    fn method_mover(&self, m1: &QueueMethod, m2: &QueueMethod) -> Option<bool> {
        // Return-independent already: peek/peek pairs and same-item
        // enqueue pairs move; nothing else does.
        Some(match (m1, m2) {
            (QueueMethod::Peek, QueueMethod::Peek) => true,
            (QueueMethod::Enq(a), QueueMethod::Enq(b)) => a == b,
            _ => false,
        })
    }

    /// Footprint: every method touches the one FIFO order — a single key
    /// class (queues admit no disjoint-access parallelism).
    fn method_keys(&self, _m: &QueueMethod) -> Option<KeySet> {
        Some(KeySet::one(0))
    }

    /// One enqueue per bounded item, plus the observers — every arm of
    /// `method_mover` is exercised.
    fn method_universe(&self) -> Option<Vec<QueueMethod>> {
        let (items, _) = self.bound.as_ref()?;
        let mut ms: Vec<QueueMethod> = items.iter().map(|v| QueueMethod::Enq(*v)).collect();
        ms.push(QueueMethod::Deq);
        ms.push(QueueMethod::Peek);
        Some(ms)
    }
}

/// Convenience constructors for queue operations.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// An `Enq(v)`.
    pub fn enq(id: u64, txn: u64, v: Item) -> QueueOp {
        Op::new(OpId(id), TxnId(txn), QueueMethod::Enq(v), QueueRet::Ack)
    }

    /// A `Deq` observing `v`.
    pub fn deq(id: u64, txn: u64, v: Option<Item>) -> QueueOp {
        Op::new(OpId(id), TxnId(txn), QueueMethod::Deq, QueueRet::Item(v))
    }

    /// A `Peek` observing `v`.
    pub fn peek(id: u64, txn: u64, v: Option<Item>) -> QueueOp {
        Op::new(OpId(id), TxnId(txn), QueueMethod::Peek, QueueRet::Item(v))
    }
}

#[cfg(test)]
mod tests {
    use super::ops as o;
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    #[test]
    fn fifo_order_enforced() {
        let spec = QueueSpec::new();
        assert!(spec.allowed(&[o::enq(0, 0, 1), o::enq(1, 0, 2), o::deq(2, 0, Some(1))]));
        assert!(!spec.allowed(&[o::enq(0, 0, 1), o::enq(1, 0, 2), o::deq(2, 0, Some(2))]));
    }

    #[test]
    fn empty_deq_observes_none() {
        let spec = QueueSpec::new();
        assert!(spec.allowed(&[o::deq(0, 0, None)]));
        assert!(!spec.allowed(&[o::deq(0, 0, Some(1))]));
    }

    #[test]
    fn almost_nothing_moves() {
        let spec = QueueSpec::new();
        assert!(!spec.mover(&o::enq(0, 0, 1), &o::enq(1, 1, 2)));
        assert!(!spec.mover(&o::deq(0, 0, Some(1)), &o::enq(1, 1, 2)));
        assert!(spec.mover(&o::peek(0, 0, Some(1)), &o::peek(1, 1, Some(1))));
    }

    #[test]
    fn algebraic_movers_sound_wrt_exhaustive() {
        let spec = QueueSpec::bounded(vec![1, 2], 2);
        let universe = spec.state_universe().unwrap();
        // ε, [1], [2], [1,1], [1,2], [2,1], [2,2]
        assert_eq!(universe.len(), 7);
        let sample = vec![
            o::enq(0, 0, 1),
            o::enq(1, 0, 2),
            o::deq(2, 0, Some(1)),
            o::deq(3, 0, None),
            o::peek(4, 0, Some(1)),
            o::peek(5, 0, None),
        ];
        for a in &sample {
            for b in &sample {
                if spec.mover(a, b) {
                    assert!(
                        mover_exhaustive(&spec, &universe, a, b),
                        "unsound mover {:?} vs {:?}",
                        a.method,
                        b.method
                    );
                }
            }
        }
    }
}
