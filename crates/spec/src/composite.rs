//! Product of two sequential specifications.
//!
//! §7's example transaction touches a boosted skip list, a boosted hash
//! table, and HTM-managed integers *in one transaction*. In the model
//! that is a single sequential specification whose state is the product
//! of the components' states and whose methods are the disjoint union of
//! the components' methods. Operations on *different* components always
//! commute (they act on disjoint state); within a component the
//! component's own mover oracle decides.
//!
//! [`Product`] composes two specifications; nesting products composes any
//! number.

use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Disjoint union of two method (or return) types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Either<L, R> {
    /// A value of the left component.
    L(L),
    /// A value of the right component.
    R(R),
}

impl<L: fmt::Display, R: fmt::Display> fmt::Display for Either<L, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Either::L(l) => l.fmt(f),
            Either::R(r) => r.fmt(f),
        }
    }
}

/// The product specification of two components.
///
/// # Examples
///
/// ```
/// use pushpull_spec::composite::{Product, Either};
/// use pushpull_spec::counter::{Counter, CtrMethod, CtrRet};
/// use pushpull_spec::set::{SetSpec, SetMethod, SetRet};
/// use pushpull_core::spec::SeqSpec;
/// use pushpull_core::op::{Op, OpId, TxnId};
///
/// let spec = Product::new(SetSpec::new(), Counter::new());
/// let add = Op::new(OpId(0), TxnId(0), Either::L(SetMethod::Add(1)), Either::L(SetRet(true)));
/// let inc = Op::new(OpId(1), TxnId(1), Either::R(CtrMethod::Add(1)), Either::R(CtrRet::Ack));
/// // Cross-component operations always commute:
/// assert!(spec.mover(&add, &inc));
/// assert!(spec.allowed(&[add, inc]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Product<A, B> {
    left: A,
    right: B,
}

impl<A, B> Product<A, B> {
    /// Composes two specifications.
    pub fn new(left: A, right: B) -> Self {
        Self { left, right }
    }

    /// The left component.
    pub fn left(&self) -> &A {
        &self.left
    }

    /// The right component.
    pub fn right(&self) -> &B {
        &self.right
    }
}

/// An operation of a [`Product`] specification.
pub type ProductOp<A, B> = Op<
    Either<<A as SeqSpec>::Method, <B as SeqSpec>::Method>,
    Either<<A as SeqSpec>::Ret, <B as SeqSpec>::Ret>,
>;

/// A [`Product`] operation resolved to one component.
pub type SplitOp<A, B> = Either<
    Op<<A as SeqSpec>::Method, <A as SeqSpec>::Ret>,
    Op<<B as SeqSpec>::Method, <B as SeqSpec>::Ret>,
>;

impl<A: SeqSpec, B: SeqSpec> Product<A, B> {
    fn split_op(op: &ProductOp<A, B>) -> Option<SplitOp<A, B>> {
        match (&op.method, &op.ret) {
            (Either::L(m), Either::L(r)) => {
                Some(Either::L(Op::new(op.id, op.txn, m.clone(), r.clone())))
            }
            (Either::R(m), Either::R(r)) => {
                Some(Either::R(Op::new(op.id, op.txn, m.clone(), r.clone())))
            }
            _ => None, // mismatched method/ret component: never allowed
        }
    }
}

impl<A: SeqSpec, B: SeqSpec> SeqSpec for Product<A, B> {
    type Method = Either<A::Method, B::Method>;
    type Ret = Either<A::Ret, B::Ret>;
    type State = (A::State, B::State);

    fn initial_states(&self) -> Vec<(A::State, B::State)> {
        let rs = self.right.initial_states();
        self.left
            .initial_states()
            .into_iter()
            .flat_map(|l| rs.iter().map(move |r| (l.clone(), r.clone())))
            .collect()
    }

    fn post_states(
        &self,
        state: &(A::State, B::State),
        method: &Self::Method,
        ret: &Self::Ret,
    ) -> Vec<(A::State, B::State)> {
        match (method, ret) {
            (Either::L(m), Either::L(r)) => self
                .left
                .post_states(&state.0, m, r)
                .into_iter()
                .map(|s| (s, state.1.clone()))
                .collect(),
            (Either::R(m), Either::R(r)) => self
                .right
                .post_states(&state.1, m, r)
                .into_iter()
                .map(|s| (state.0.clone(), s))
                .collect(),
            _ => vec![],
        }
    }

    fn results(&self, state: &(A::State, B::State), method: &Self::Method) -> Vec<Self::Ret> {
        match method {
            Either::L(m) => self
                .left
                .results(&state.0, m)
                .into_iter()
                .map(Either::L)
                .collect(),
            Either::R(m) => self
                .right
                .results(&state.1, m)
                .into_iter()
                .map(Either::R)
                .collect(),
        }
    }

    fn state_universe(&self) -> Option<Vec<(A::State, B::State)>> {
        let ls = self.left.state_universe()?;
        let rs = self.right.state_universe()?;
        Some(
            ls.into_iter()
                .flat_map(|l| rs.iter().map(move |r| (l.clone(), r.clone())))
                .collect(),
        )
    }

    fn mover(&self, op1: &Op<Self::Method, Self::Ret>, op2: &Op<Self::Method, Self::Ret>) -> bool {
        match (Self::split_op(op1), Self::split_op(op2)) {
            (Some(Either::L(a)), Some(Either::L(b))) => self.left.mover(&a, &b),
            (Some(Either::R(a)), Some(Either::R(b))) => self.right.mover(&a, &b),
            // Different components act on disjoint state: always movers.
            (Some(_), Some(_)) => true,
            // Ill-formed op (mismatched method/ret): never allowed anywhere,
            // so the mover holds vacuously.
            _ => true,
        }
    }

    fn method_mover(&self, m1: &Self::Method, m2: &Self::Method) -> Option<bool> {
        match (m1, m2) {
            (Either::L(a), Either::L(b)) => self.left.method_mover(a, b),
            (Either::R(a), Either::R(b)) => self.right.method_mover(a, b),
            // Different components act on disjoint state: always movers.
            _ => Some(true),
        }
    }

    /// Footprint: the component's keys, tagged even/odd so left and
    /// right classes never collide (`2k` vs `2k + 1`). Wrapping overflow
    /// can only *merge* classes — a conservative (sound) degradation,
    /// never a split — and a component without footprints propagates
    /// `None`, degrading the whole product to the coarse path.
    fn method_keys(&self, m: &Self::Method) -> Option<KeySet> {
        match m {
            Either::L(a) => Some(
                self.left
                    .method_keys(a)?
                    .iter()
                    .map(|k| k.wrapping_mul(2))
                    .collect(),
            ),
            Either::R(b) => Some(
                self.right
                    .method_keys(b)?
                    .iter()
                    .map(|k| k.wrapping_mul(2).wrapping_add(1))
                    .collect(),
            ),
        }
    }

    /// The disjoint union of the components' method universes; both
    /// sides must be bounded for the product to certify.
    fn method_universe(&self) -> Option<Vec<Self::Method>> {
        let ls = self.left.method_universe()?;
        let rs = self.right.method_universe()?;
        Some(
            ls.into_iter()
                .map(Either::L)
                .chain(rs.into_iter().map(Either::R))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{ops as cops, Counter};
    use crate::set::{ops as sops, SetSpec};
    use pushpull_core::op::{OpId, TxnId};
    use pushpull_core::spec::mover_exhaustive;

    type Pair = Product<SetSpec, Counter>;

    fn lift_set(op: crate::set::SetOp) -> Op<<Pair as SeqSpec>::Method, <Pair as SeqSpec>::Ret> {
        Op::new(op.id, op.txn, Either::L(op.method), Either::L(op.ret))
    }

    fn lift_ctr(
        op: crate::counter::CtrOp,
    ) -> Op<<Pair as SeqSpec>::Method, <Pair as SeqSpec>::Ret> {
        Op::new(op.id, op.txn, Either::R(op.method), Either::R(op.ret))
    }

    #[test]
    fn components_evolve_independently() {
        let spec = Pair::new(SetSpec::new(), Counter::new());
        let log = vec![
            lift_set(sops::add(0, 0, 5, true)),
            lift_ctr(cops::add(1, 0, 3)),
            lift_set(sops::contains(2, 0, 5, true)),
            lift_ctr(cops::get(3, 0, 3)),
        ];
        assert!(spec.allowed(&log));
    }

    #[test]
    fn cross_component_ops_commute() {
        let spec = Pair::new(SetSpec::new(), Counter::new());
        let a = lift_set(sops::add(0, 0, 1, true));
        let g = lift_ctr(cops::get(1, 1, 0));
        assert!(spec.mover(&a, &g));
        assert!(spec.mover(&g, &a));
    }

    #[test]
    fn within_component_movers_delegate() {
        let spec = Pair::new(SetSpec::new(), Counter::new());
        // Set: same-element add/contains must not move.
        let add = lift_set(sops::add(0, 0, 1, true));
        let has = lift_set(sops::contains(1, 1, 1, true));
        assert!(!spec.mover(&add, &has));
        // Counter: adds commute.
        let c1 = lift_ctr(cops::add(2, 0, 1));
        let c2 = lift_ctr(cops::add(3, 1, 2));
        assert!(spec.mover(&c1, &c2));
    }

    #[test]
    fn mismatched_component_ops_are_disallowed() {
        let spec = Pair::new(SetSpec::new(), Counter::new());
        let bad = Op::new(
            OpId(0),
            TxnId(0),
            Either::<crate::set::SetMethod, crate::counter::CtrMethod>::L(
                crate::set::SetMethod::Add(1),
            ),
            Either::R(crate::counter::CtrRet::Ack),
        );
        assert!(!spec.allowed(&[bad]));
    }

    #[test]
    fn product_movers_sound_exhaustively() {
        let spec = Product::new(SetSpec::bounded(vec![1]), Counter::with_universe(3));
        let universe = spec.state_universe().unwrap();
        let sample = vec![
            lift_set(sops::add(0, 0, 1, true)),
            lift_set(sops::contains(1, 0, 1, false)),
            lift_ctr(cops::add(2, 0, 1)),
            lift_ctr(cops::get(3, 0, 0)),
        ];
        for a in &sample {
            for b in &sample {
                if spec.mover(a, b) {
                    assert!(mover_exhaustive(&spec, &universe, a, b));
                }
            }
        }
    }
}
