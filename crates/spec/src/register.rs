//! A compare-and-swap register — conditional operations, the semantic
//! middle ground between commutative counters and order-pinned queues.
//!
//! `Cas(e, n)` succeeds iff the register holds `e`. Failed CAS's are
//! read-like (they only observe); successful CAS's are write-like. The
//! mover table is value-sensitive:
//!
//! * `Read(v)`/`Read(v′)` and failed-CAS pairs commute (pure observers);
//! * a successful `Cas(e→n)` moves across a failed `Cas(e′, _)` only if
//!   the failure is preserved in both orders (`e′ ≠ e` and `e′ ≠ n`);
//! * two successful CAS's never commute (each consumes the other's
//!   precondition) — except the degenerate `e = n` no-ops.
//!
//! All claims are cross-validated against the exhaustive Definition 4.1
//! checker in the tests.

use std::fmt;

use pushpull_core::op::Op;
use pushpull_core::spec::{KeySet, SeqSpec};

/// Methods of the CAS register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegMethod {
    /// Read the register.
    Read,
    /// Unconditional store.
    Write(i64),
    /// Compare-and-swap: if the value equals `expected`, store `new`.
    /// Observes success.
    Cas {
        /// Value the register must currently hold.
        expected: i64,
        /// Value stored on success.
        new: i64,
    },
}

impl fmt::Display for RegMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegMethod::Read => write!(f, "read()"),
            RegMethod::Write(v) => write!(f, "write({v})"),
            RegMethod::Cas { expected, new } => write!(f, "cas({expected}->{new})"),
        }
    }
}

/// Return values of the CAS register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRet {
    /// Value observed by a read.
    Val(i64),
    /// Acknowledgement of a write.
    Ack,
    /// Success flag of a CAS.
    Swapped(bool),
}

/// Operation records of the register.
pub type RegOp = Op<RegMethod, RegRet>;

/// The CAS register specification. The register starts at `0`.
///
/// # Examples
///
/// ```
/// use pushpull_spec::register::{CasRegister, ops};
/// use pushpull_core::spec::SeqSpec;
///
/// let spec = CasRegister::new();
/// let log = vec![
///     ops::cas(0, 0, 0, 5, true),   // 0 -> 5
///     ops::cas(1, 1, 0, 9, false),  // loses the race
///     ops::read(2, 1, 5),
/// ];
/// assert!(spec.allowed(&log));
/// // Two successful CAS's on the same expectation cannot both happen:
/// assert!(!spec.mover(&ops::cas(0, 0, 0, 5, true), &ops::cas(1, 1, 0, 9, true)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CasRegister {
    universe: Option<i64>,
}

impl CasRegister {
    /// An unbounded register (algebraic movers only).
    pub fn new() -> Self {
        Self { universe: None }
    }

    /// A register whose state universe is `0..=max`, enabling exhaustive
    /// mover cross-validation.
    pub fn with_universe(max: i64) -> Self {
        Self {
            universe: Some(max),
        }
    }
}

impl SeqSpec for CasRegister {
    type Method = RegMethod;
    type Ret = RegRet;
    type State = i64;

    fn initial_states(&self) -> Vec<i64> {
        vec![0]
    }

    fn post_states(&self, state: &i64, method: &RegMethod, ret: &RegRet) -> Vec<i64> {
        match (method, ret) {
            (RegMethod::Read, RegRet::Val(v)) => {
                if v == state {
                    vec![*state]
                } else {
                    vec![]
                }
            }
            (RegMethod::Write(v), RegRet::Ack) => vec![*v],
            (RegMethod::Cas { expected, new }, RegRet::Swapped(ok)) => {
                let matches = state == expected;
                if matches != *ok {
                    vec![]
                } else if *ok {
                    vec![*new]
                } else {
                    vec![*state]
                }
            }
            _ => vec![],
        }
    }

    fn results(&self, state: &i64, method: &RegMethod) -> Vec<RegRet> {
        match method {
            RegMethod::Read => vec![RegRet::Val(*state)],
            RegMethod::Write(_) => vec![RegRet::Ack],
            RegMethod::Cas { expected, .. } => vec![RegRet::Swapped(state == expected)],
        }
    }

    fn state_universe(&self) -> Option<Vec<i64>> {
        self.universe.map(|m| (0..=m).collect())
    }

    fn mover(&self, op1: &RegOp, op2: &RegOp) -> bool {
        use RegMethod::*;
        use RegRet::*;
        // Classify each op: Some(value it pins) for observers, and the
        // state transition for mutators.
        let read_like = |op: &RegOp| -> Option<()> {
            match (&op.method, &op.ret) {
                (Read, Val(_)) => Some(()),
                (Cas { .. }, Swapped(false)) => Some(()),
                _ => None,
            }
        };
        match (&op1.method, &op1.ret, &op2.method, &op2.ret) {
            // Two observers always commute (each pins the same state in
            // either order, or the pair is jointly impossible).
            _ if read_like(op1).is_some() && read_like(op2).is_some() => {
                // Except: two failed CAS's are fine; a failed CAS and a
                // read are fine; handled uniformly. But a failed CAS
                // whose *expected* equals the read's value pins nothing
                // inconsistent either. Observers never change state.
                true
            }
            // Successful CAS moving across a failed CAS: failure must be
            // preserved when the successful one runs first (post-value
            // `new` must also not match the failer's expectation), and
            // the success precondition must be untouched (trivially —
            // the failer does not change state).
            (
                Cas {
                    expected: e1,
                    new: n1,
                },
                Swapped(true),
                Cas { expected: e2, .. },
                Swapped(false),
            ) => {
                // forward: s==e1, then fail: n1 != e2; backward: fail
                // first needs s != e2 (s==e1, so e1 != e2).
                n1 != e2 && e1 != e2
            }
            (
                Cas { expected: e1, .. },
                Swapped(false),
                Cas {
                    expected: e2,
                    new: n2,
                },
                Swapped(true),
            ) => {
                // forward: s != e1 and s == e2; backward: after the swap
                // the failer must still fail: n2 != e1.
                n2 != e1 && e1 != e2
            }
            // Degenerate no-op successful CAS (e == n) is an observer.
            (
                Cas {
                    expected: e,
                    new: n,
                },
                Swapped(true),
                _,
                _,
            ) if e == n => self.mover(&RegOp::new(op1.id, op1.txn, Read, Val(*e)), op2),
            (
                _,
                _,
                Cas {
                    expected: e,
                    new: n,
                },
                Swapped(true),
            ) if e == n => self.mover(op1, &RegOp::new(op2.id, op2.txn, Read, Val(*e))),
            // Writes of the same value commute with each other.
            (Write(a), Ack, Write(b), Ack) => a == b,
            // Everything else involving a mutator: conservative no.
            _ => false,
        }
    }

    /// Footprint: every method touches the one register cell — a single
    /// key class (a register admits no disjoint-access parallelism).
    fn method_keys(&self, _m: &RegMethod) -> Option<KeySet> {
        Some(KeySet::one(0))
    }

    /// Reads, writes, and CAS's over a small value range (including the
    /// degenerate `expected == new` no-op CAS's).
    fn method_universe(&self) -> Option<Vec<RegMethod>> {
        let max = self.universe?.min(2);
        let mut ms = vec![RegMethod::Read];
        for v in 0..=max {
            ms.push(RegMethod::Write(v));
            for n in 0..=max {
                ms.push(RegMethod::Cas {
                    expected: v,
                    new: n,
                });
            }
        }
        Some(ms)
    }
}

/// Convenience constructors for register operations.
pub mod ops {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};

    /// A `Read` observing `v`.
    pub fn read(id: u64, txn: u64, v: i64) -> RegOp {
        Op::new(OpId(id), TxnId(txn), RegMethod::Read, RegRet::Val(v))
    }

    /// A `Write(v)`.
    pub fn write(id: u64, txn: u64, v: i64) -> RegOp {
        Op::new(OpId(id), TxnId(txn), RegMethod::Write(v), RegRet::Ack)
    }

    /// A `Cas(expected → new)` observing `ok`.
    pub fn cas(id: u64, txn: u64, expected: i64, new: i64, ok: bool) -> RegOp {
        Op::new(
            OpId(id),
            TxnId(txn),
            RegMethod::Cas { expected, new },
            RegRet::Swapped(ok),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::ops as o;
    use super::*;
    use pushpull_core::spec::mover_exhaustive;

    #[test]
    fn cas_succeeds_iff_expectation_holds() {
        let spec = CasRegister::new();
        assert!(spec.allowed(&[o::cas(0, 0, 0, 5, true), o::read(1, 0, 5)]));
        assert!(!spec.allowed(&[o::cas(0, 0, 1, 5, true)]));
        assert!(spec.allowed(&[o::cas(0, 0, 1, 5, false), o::read(1, 0, 0)]));
    }

    #[test]
    fn winner_loser_pattern() {
        // The lock-acquisition idiom: two CAS(0->tid), one wins.
        let spec = CasRegister::new();
        let log = vec![o::cas(0, 0, 0, 1, true), o::cas(1, 1, 0, 2, false)];
        assert!(spec.allowed(&log));
        let both = vec![o::cas(0, 0, 0, 1, true), o::cas(1, 1, 0, 2, true)];
        assert!(!spec.allowed(&both));
    }

    #[test]
    fn algebraic_movers_sound_wrt_exhaustive() {
        let spec = CasRegister::with_universe(3);
        let universe = spec.state_universe().unwrap();
        let mut sample = Vec::new();
        let mut id = 0;
        for v in 0..=2i64 {
            sample.push(o::read(id, 0, v));
            id += 1;
            sample.push(o::write(id, 0, v));
            id += 1;
            for n in 0..=2i64 {
                sample.push(o::cas(id, 0, v, n, true));
                id += 1;
                sample.push(o::cas(id, 0, v, n, false));
                id += 1;
            }
        }
        for a in &sample {
            for b in &sample {
                if spec.mover(a, b) {
                    assert!(
                        mover_exhaustive(&spec, &universe, a, b),
                        "unsound mover {:?}/{:?} vs {:?}/{:?}",
                        a.method,
                        a.ret,
                        b.method,
                        b.ret
                    );
                }
            }
        }
    }

    #[test]
    fn successful_cas_vs_failed_cas_table() {
        let spec = CasRegister::new();
        // cas(0->1, ok) vs cas(2->9, fail): 1≠2 and 0≠2 → movers.
        assert!(spec.mover(&o::cas(0, 0, 0, 1, true), &o::cas(1, 1, 2, 9, false)));
        // cas(0->2, ok) vs cas(2->9, fail): new == failer's expected → no.
        assert!(!spec.mover(&o::cas(0, 0, 0, 2, true), &o::cas(1, 1, 2, 9, false)));
    }

    #[test]
    fn noop_cas_is_an_observer() {
        let spec = CasRegister::new();
        // cas(1->1, ok) pins the state at 1 but changes nothing: moves
        // across a read of 1.
        assert!(spec.mover(&o::cas(0, 0, 1, 1, true), &o::read(1, 1, 1)));
        assert!(spec.mover(&o::read(1, 1, 1), &o::cas(0, 0, 1, 1, true)));
    }
}
