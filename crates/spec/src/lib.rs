//! # pushpull-spec
//!
//! Sequential specifications for the Push/Pull model of transactions
//! (Koskinen & Parkinson, PLDI 2015), instantiating
//! [`pushpull_core::spec::SeqSpec`]:
//!
//! * [`rwmem`] — read/write memory, the substrate of word-based STMs
//!   (TL2, TinySTM) and the simulated HTM, with an *exact* per-value
//!   mover oracle;
//! * [`counter`] — an unbounded commutative counter (abstract-level
//!   conflict, as in boosted `size` fields);
//! * [`kvmap`] — a key-value map (the boosted hashtable of Figure 2 and
//!   the boosted skip-list map of §7), with per-key commutativity and a
//!   presence-aware `Size` rule;
//! * [`set`] — a mathematical set, boosting's canonical example;
//! * [`queue`] — a FIFO queue, deliberately non-commutative, exercising
//!   the pessimistic end of the spectrum;
//! * [`bank`] — bank accounts with the textbook Lipton left/right-mover
//!   asymmetry (withdraw moves across deposit, not vice versa);
//! * [`composite`] — products of specifications (§7's multi-object
//!   transactions), cross-component operations always commuting;
//! * [`inverse`] — inverse-operation oracles, validating the paper's
//!   "UNPUSH … typically implemented via inverse operations";
//! * [`refinement`] — the §6.1 opacity-refinement oracle (may a
//!   transaction pull this uncommitted effect?).
//!
//! Every specification ships an **algebraic** mover oracle (usable on the
//! unbounded state space) and a **bounded** constructor exposing a finite
//! state universe; the test suites prove the algebraic oracles *sound*
//! against exhaustive checking of Definition 4.1 on the bounded variants.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod composite;
pub mod counter;
pub mod inverse;
pub mod kvmap;
pub mod queue;
pub mod refinement;
pub mod register;
pub mod rwmem;
pub mod set;

pub use bank::Bank;
pub use composite::{Either, Product};
pub use counter::Counter;
pub use inverse::Inverses;
pub use kvmap::KvMap;
pub use queue::QueueSpec;
pub use register::CasRegister;
pub use rwmem::RwMem;
pub use set::SetSpec;
