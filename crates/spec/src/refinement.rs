//! The §6.1 opacity-refinement oracle, generically.
//!
//! §6.1: "An active transaction T may PULL an operation m′ that is due
//! to an uncommitted transaction T′ provided that T will never execute a
//! method m that does not commute with m′." Deciding that requires a
//! *method-level* commutation judgement — quantifying over every return
//! value an invocation of `m` could produce. For bounded specifications
//! this module derives that judgement from the state universe; drivers
//! and the opacity checker consume it as a closure.

use std::collections::HashSet;

use pushpull_core::op::{Op, OpId, TxnId};
use pushpull_core::spec::{commute, SeqSpec};

/// All return values `method` can produce anywhere in the specification's
/// state universe.
///
/// Returns `None` for unbounded specifications (no universe to quantify
/// over).
pub fn possible_rets<S: SeqSpec>(spec: &S, method: &S::Method) -> Option<Vec<S::Ret>> {
    let universe = spec.state_universe()?;
    let mut out: Vec<S::Ret> = Vec::new();
    let mut seen: HashSet<S::Ret> = HashSet::new();
    for s in &universe {
        for r in spec.results(s, method) {
            if seen.insert(r.clone()) {
                out.push(r);
            }
        }
    }
    Some(out)
}

/// Does *every possible invocation* of `method` commute (both mover
/// directions) with the concrete operation `op`? Conservatively `false`
/// for unbounded specifications.
pub fn method_commutes_with_op<S: SeqSpec>(
    spec: &S,
    method: &S::Method,
    op: &Op<S::Method, S::Ret>,
) -> bool {
    let Some(rets) = possible_rets(spec, method) else {
        return false;
    };
    rets.iter().all(|r| {
        let candidate = Op::new(
            OpId(u64::MAX - 1),
            TxnId(u64::MAX),
            method.clone(),
            r.clone(),
        );
        commute(spec, &candidate, op)
    })
}

/// Builds the closure shape `check_trace_refined` expects, judging
/// `(reachable method, pulled op)` pairs via [`method_commutes_with_op`].
///
/// The pulled operation is reconstructed from the trace data (`id`,
/// method) using the provided `ret` lookup — the opacity checker only
/// carries the pulled op's method, so callers supply the machine's
/// global log to resolve rets.
///
/// # Examples
///
/// ```
/// use pushpull_spec::counter::{Counter, CtrMethod};
/// use pushpull_spec::refinement::method_commutes_with_op;
/// use pushpull_core::op::{Op, OpId, TxnId};
/// use pushpull_spec::counter::CtrRet;
///
/// let spec = Counter::with_universe(6);
/// let pulled = Op::new(OpId(0), TxnId(0), CtrMethod::Add(1), CtrRet::Ack);
/// // Any Add commutes with the pulled Add; a Get never does.
/// assert!(method_commutes_with_op(&spec, &CtrMethod::Add(3), &pulled));
/// assert!(!method_commutes_with_op(&spec, &CtrMethod::Get, &pulled));
/// ```
#[derive(Debug)]
pub struct RefinementOracle<'a, S: SeqSpec> {
    spec: &'a S,
}

impl<'a, S: SeqSpec> RefinementOracle<'a, S> {
    /// Wraps a bounded specification.
    pub fn new(spec: &'a S) -> Self {
        Self { spec }
    }

    /// The judgement for one `(reachable method, pulled op)` pair.
    pub fn judge(&self, method: &S::Method, pulled: &Op<S::Method, S::Ret>) -> bool {
        method_commutes_with_op(self.spec, method, pulled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{ops as cops, Counter, CtrMethod, CtrRet};
    use crate::set::{ops as sops, SetMethod, SetSpec};

    #[test]
    fn possible_rets_enumerates_universe_observations() {
        let spec = Counter::with_universe(2);
        let rets = possible_rets(&spec, &CtrMethod::Get).unwrap();
        assert_eq!(rets.len(), 5); // -2..=2
        let rets = possible_rets(&spec, &CtrMethod::Add(1)).unwrap();
        assert_eq!(rets, vec![CtrRet::Ack]);
    }

    #[test]
    fn unbounded_specs_are_conservative() {
        let spec = Counter::new();
        let pulled = cops::add(0, 0, 1);
        assert!(!method_commutes_with_op(&spec, &CtrMethod::Add(1), &pulled));
    }

    #[test]
    fn set_refinement_by_element() {
        let spec = SetSpec::bounded(vec![1, 2]);
        let pulled = sops::add(0, 0, 1, true);
        // Methods on the other element commute with the pulled add…
        assert!(method_commutes_with_op(&spec, &SetMethod::Add(2), &pulled));
        assert!(method_commutes_with_op(
            &spec,
            &SetMethod::Contains(2),
            &pulled
        ));
        // …same-element methods do not.
        assert!(!method_commutes_with_op(
            &spec,
            &SetMethod::Contains(1),
            &pulled
        ));
        assert!(!method_commutes_with_op(&spec, &SetMethod::Add(1), &pulled));
    }

    #[test]
    fn oracle_wrapper_delegates() {
        let spec = Counter::with_universe(4);
        let oracle = RefinementOracle::new(&spec);
        let pulled = cops::add(0, 0, 2);
        assert!(oracle.judge(&CtrMethod::Add(5), &pulled));
        assert!(!oracle.judge(&CtrMethod::Get, &pulled));
    }
}
