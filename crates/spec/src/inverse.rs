//! Inverse operations — how real systems *implement* UNPUSH.
//!
//! The model's UNPUSH removes an operation from the shared log; §4 notes
//! it is "typically implemented via inverse operations (such as `remove`
//! on an element that had been `added`)", and Figure 2's abort path calls
//! "the appropriate inverse operation". This module provides the inverse
//! oracle for each specification and the law that makes the
//! implementation strategy sound:
//!
//! > applying `op` and then `inverse(op)` denotes the same states as
//! > applying nothing.
//!
//! (That is why removing `op` from the log — what UNPUSH does — and
//! appending the inverse — what the implementation does — agree up to
//! `≼` for logs whose suffix commutes with `op`, i.e. exactly under
//! UNPUSH criterion (i).)
//!
//! Operations whose observation cannot be undone (a `Get` pinning a
//! value) are their own inverses in the trivial sense that they do not
//! change state; operations that *destroy information* (an absolute
//! `Write` over an unknown previous value) have no context-free inverse,
//! which is precisely why word-based STMs keep undo-logs — the inverse
//! is manufactured from the recorded previous value, as
//! [`MemInverse`](crate::rwmem::MemInverse) shows with `Prev`-carrying
//! rets.

use pushpull_core::op::Op;
use pushpull_core::spec::OpInverse;

use crate::bank::{BankMethod, BankOp, BankRet};
use crate::counter::{CtrMethod, CtrOp, CtrRet};
use crate::kvmap::{MapMethod, MapOp, MapRet};
use crate::rwmem::{MemInverse, MemMethod, UndoOp, UndoRet};
use crate::set::{SetMethod, SetOp, SetRet};

/// A specification whose operations admit inverses.
pub trait Inverses {
    /// Method and return types mirror the spec's.
    type Method;
    /// Return type.
    type Ret;

    /// The method that undoes `op`'s state change, with the expected
    /// observation, or `None` when the operation is read-only (nothing
    /// to undo).
    fn inverse(op: &Op<Self::Method, Self::Ret>) -> Option<(Self::Method, Self::Ret)>;
}

/// Lifts the [`Inverses`] oracle into the core machine's three-way
/// [`OpInverse`] verdict. `Some` becomes [`OpInverse::Inverse`]; `None`
/// becomes [`OpInverse::ReadOnly`], which is sound exactly because every
/// `None` below is a state-preserving operation — a read, a failed
/// update (`add` that was already present, `remove`/`Withdraw` that
/// found nothing), or a no-op (`Add(0)`, `Deposit(_, 0)`).
///
/// Specs with genuinely destructive operations (an absolute `Write`
/// without a recorded previous value) must *not* route through this
/// helper — they override [`pushpull_core::SeqSpec::inverse`] directly
/// to return [`OpInverse::NotInvertible`], as
/// [`RwMem`](crate::rwmem::RwMem) does.
pub fn lift<I>(op: &Op<I::Method, I::Ret>) -> OpInverse<I::Method, I::Ret>
where
    I: Inverses,
{
    match I::inverse(op) {
        Some((m, r)) => OpInverse::Inverse(m, r),
        None => OpInverse::ReadOnly,
    }
}

impl Inverses for crate::set::SetSpec {
    type Method = SetMethod;
    type Ret = SetRet;

    fn inverse(op: &SetOp) -> Option<(SetMethod, SetRet)> {
        match (op.method, op.ret) {
            // add that inserted ⇒ remove it; add that was a no-op ⇒ nothing.
            (SetMethod::Add(x), SetRet(true)) => Some((SetMethod::Remove(x), SetRet(true))),
            (SetMethod::Add(_), SetRet(false)) => None,
            // remove that removed ⇒ add it back.
            (SetMethod::Remove(x), SetRet(true)) => Some((SetMethod::Add(x), SetRet(true))),
            (SetMethod::Remove(_), SetRet(false)) => None,
            (SetMethod::Contains(_), _) => None,
        }
    }
}

impl Inverses for crate::kvmap::KvMap {
    type Method = MapMethod;
    type Ret = MapRet;

    fn inverse(op: &MapOp) -> Option<(MapMethod, MapRet)> {
        match (op.method, op.ret) {
            // The Prev-carrying ret is the undo log entry.
            (MapMethod::Put(k, v), MapRet::Prev(Some(old))) => {
                Some((MapMethod::Put(k, old), MapRet::Prev(Some(v))))
            }
            (MapMethod::Put(k, v), MapRet::Prev(None)) => {
                Some((MapMethod::Remove(k), MapRet::Prev(Some(v))))
            }
            (MapMethod::Remove(k), MapRet::Prev(Some(old))) => {
                Some((MapMethod::Put(k, old), MapRet::Prev(None)))
            }
            (MapMethod::Remove(_), MapRet::Prev(None)) => None,
            _ => None, // reads
        }
    }
}

impl Inverses for crate::counter::Counter {
    type Method = CtrMethod;
    type Ret = CtrRet;

    fn inverse(op: &CtrOp) -> Option<(CtrMethod, CtrRet)> {
        match op.method {
            CtrMethod::Add(0) => None,
            CtrMethod::Add(k) => Some((CtrMethod::Add(-k), CtrRet::Ack)),
            CtrMethod::Get => None,
        }
    }
}

impl Inverses for crate::bank::Bank {
    type Method = BankMethod;
    type Ret = BankRet;

    fn inverse(op: &BankOp) -> Option<(BankMethod, BankRet)> {
        match (op.method, op.ret) {
            (BankMethod::Deposit(a, n), BankRet::Ack) if n > 0 => {
                Some((BankMethod::Withdraw(a, n), BankRet::Ok(true)))
            }
            (BankMethod::Withdraw(a, n), BankRet::Ok(true)) if n > 0 => {
                Some((BankMethod::Deposit(a, n), BankRet::Ack))
            }
            _ => None,
        }
    }
}

impl Inverses for MemInverse {
    type Method = MemMethod;
    type Ret = UndoRet;

    fn inverse(op: &UndoOp) -> Option<(MemMethod, UndoRet)> {
        match (op.method, op.ret) {
            // The recorded previous value *is* the undo-log entry: write
            // it back, observing the value we are undoing.
            (MemMethod::Write(l, v), UndoRet::Prev(p)) => {
                Some((MemMethod::Write(l, p), UndoRet::Prev(v)))
            }
            _ => None, // reads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::op::{OpId, TxnId};
    use pushpull_core::spec::SeqSpec;

    /// The inverse law: `⟦ℓ · op · op⁻¹⟧ = ⟦ℓ⟧` whenever `ℓ · op` is
    /// allowed — checked over the whole bounded state universe by
    /// running from every state. A `None` verdict lifts to
    /// [`OpInverse::ReadOnly`], so it carries its own obligation:
    /// `⟦ℓ · op⟧ = ⟦ℓ⟧` (the operation must be state-preserving).
    fn check_inverse_law<S>(spec: &S, ops: &[Op<<S as SeqSpec>::Method, <S as SeqSpec>::Ret>])
    where
        S: SeqSpec + Inverses<Method = <S as SeqSpec>::Method, Ret = <S as SeqSpec>::Ret>,
    {
        let universe = spec.state_universe().expect("bounded spec");
        for op in ops {
            let inv = <S as Inverses>::inverse(op)
                .map(|(im, ir)| Op::new(OpId(op.id.0 + 1000), TxnId(0), im, ir));
            for s in &universe {
                let start: std::collections::HashSet<_> = std::iter::once(s.clone()).collect();
                let fwd = spec.denote_from(&start, std::slice::from_ref(op));
                if fwd.is_empty() {
                    continue; // op not allowed here
                }
                match &inv {
                    Some(inv) => {
                        let round = spec.denote_from(&fwd, std::slice::from_ref(inv));
                        assert_eq!(
                            round, start,
                            "inverse law fails for {:?}/{:?} from {:?}",
                            op.method, op.ret, s
                        );
                    }
                    None => assert_eq!(
                        fwd, start,
                        "read-only law fails for {:?}/{:?} from {:?}",
                        op.method, op.ret, s
                    ),
                }
            }
        }
    }

    #[test]
    fn set_inverses_satisfy_the_law() {
        use crate::set::{ops as o, SetSpec};
        let spec = SetSpec::bounded(vec![1, 2]);
        let ops = vec![
            o::add(0, 0, 1, true),
            o::add(1, 0, 1, false),
            o::remove(2, 0, 2, true),
            o::remove(3, 0, 2, false),
            o::contains(4, 0, 1, true),
        ];
        check_inverse_law(&spec, &ops);
    }

    #[test]
    fn map_inverses_satisfy_the_law() {
        use crate::kvmap::{ops as o, KvMap};
        let spec = KvMap::bounded(vec![1, 2], vec![10, 20]);
        let ops = vec![
            o::put(0, 0, 1, 10, None),
            o::put(1, 0, 1, 20, Some(10)),
            o::remove(2, 0, 2, Some(20)),
            o::remove(3, 0, 2, None),
            o::get(4, 0, 1, Some(10)),
        ];
        check_inverse_law(&spec, &ops);
    }

    #[test]
    fn counter_inverses_satisfy_the_law() {
        use crate::counter::{ops as o, Counter};
        let spec = Counter::with_universe(5);
        let ops = vec![o::add(0, 0, 2), o::add(1, 0, -3), o::get(2, 0, 1)];
        check_inverse_law(&spec, &ops);
    }

    #[test]
    fn bank_inverses_satisfy_the_law() {
        use crate::bank::{ops as o, Bank};
        let spec = Bank::bounded(vec![1], 6);
        let ops = vec![
            o::deposit(0, 0, 1, 2),
            o::withdraw(1, 0, 1, 3, true),
            o::balance(2, 0, 1, 4),
        ];
        check_inverse_law(&spec, &ops);
    }

    #[test]
    fn mem_inverse_satisfies_the_law() {
        use crate::rwmem::{ops as o, Loc, MemInverse};
        let spec = MemInverse::bounded(vec![Loc(0), Loc(1)], vec![0, 1, 2]);
        let ops = vec![
            o::undo_write(0, 0, 0, 2, 0),
            o::undo_write(1, 0, 0, 1, 2),
            o::undo_write(2, 0, 1, 0, 1),
            o::undo_read(3, 0, 1, 0),
        ];
        check_inverse_law(&spec, &ops);
    }

    /// The lifted verdicts agree with the core oracle: `Some` lifts to
    /// `Inverse`, `None` to `ReadOnly`, and `RwMem`'s absolute writes —
    /// which destroy the overwritten value — stay `NotInvertible`.
    #[test]
    fn lift_matches_core_verdicts() {
        use pushpull_core::spec::OpInverse;
        {
            use crate::set::{ops as o, SetSpec};
            let spec = SetSpec::new();
            assert_eq!(
                spec.inverse(&o::add(0, 0, 1, true)),
                OpInverse::Inverse(SetMethod::Remove(1), SetRet(true))
            );
            assert_eq!(spec.inverse(&o::add(1, 0, 1, false)), OpInverse::ReadOnly);
            assert!(spec.has_inverses());
        }
        {
            use crate::rwmem::{ops as o, Loc, MemInverse, RwMem};
            let rw = RwMem::new();
            assert_eq!(rw.inverse(&o::read(0, 0, 1, 0)), OpInverse::ReadOnly);
            assert_eq!(rw.inverse(&o::write(1, 0, 1, 5)), OpInverse::NotInvertible);
            assert!(!rw.has_inverses());
            let undo = MemInverse::new();
            assert_eq!(
                undo.inverse(&o::undo_write(2, 0, 1, 5, 3)),
                OpInverse::Inverse(MemMethod::Write(Loc(1), 3), UndoRet::Prev(5))
            );
            assert!(undo.has_inverses());
        }
    }

    /// Figure 2's abort path as the implementation sees it: a boosted put
    /// aborts by applying the inverse put/remove to the base object —
    /// equivalently, removing the op from the log. Both views agree.
    #[test]
    fn unpush_agrees_with_inverse_application() {
        use crate::kvmap::{ops as o, KvMap};
        let spec = KvMap::new();
        // Log with an op to "unpush": [put(1,10,None), put(2,20,None)].
        let with_op = vec![o::put(0, 0, 1, 10, None), o::put(1, 1, 2, 20, None)];
        // View 1 (the model): remove put(2) from the log.
        let unpushed = vec![with_op[0].clone()];
        // View 2 (the implementation): append the inverse of put(2).
        let (im, ir) = <KvMap as Inverses>::inverse(&with_op[1]).unwrap();
        let mut inversed = with_op.clone();
        inversed.push(Op::new(OpId(99), TxnId(1), im, ir));
        use pushpull_core::spec::SeqSpec as _;
        assert_eq!(spec.denote(&unpushed), spec.denote(&inversed));
    }
}
