//! Algebraic validation of the `method_keys` footprint declarations.
//!
//! A footprint declaration is only sound to use for log sharding if two
//! laws hold (documented on [`SeqSpec::method_keys`]):
//!
//! 1. **Disjointness ⇒ both-mover:** methods with disjoint declared
//!    footprints must commute in every state
//!    ([`disjoint_commute_violations`] cross-checks against the
//!    exhaustive Definition 4.1 oracle on a bounded state universe).
//! 2. **Factorization:** `allowed` over a mixed-key log must equal the
//!    conjunction of `allowed` over its per-key-class projections
//!    ([`factorization_violations`] enumerates short logs).
//!
//! These are the *shared* law checkers: the `pushpull-analysis` spec
//! certifier calls the same two functions to produce its
//! `unsound-footprint`/`unsound-factorization` diagnostics, and the
//! legacy `check_*` wrappers reduce to "first violation, stringified".
//!
//! Counter, register, and queue declare a single key class for every
//! method, so both laws are vacuous there; the interesting cases are the
//! keyed specs (rwmem, kvmap, set, bank) and the product encoding.

use pushpull_core::spec::{
    check_allowed_factorization, check_disjoint_footprints_commute, disjoint_commute_violations,
    factorization_violations, KeySet, SeqSpec,
};
use pushpull_spec::bank::{self, Bank, BankMethod};
use pushpull_spec::composite::{Either, Product};
use pushpull_spec::counter::{self, Counter, CtrMethod};
use pushpull_spec::kvmap::{self, KvMap, MapMethod};
use pushpull_spec::queue::{QueueMethod, QueueSpec};
use pushpull_spec::register::{CasRegister, RegMethod};
use pushpull_spec::rwmem::{self, Loc, MemMethod, RwMem};
use pushpull_spec::set::{self, SetMethod, SetSpec};

#[test]
fn rwmem_footprints_satisfy_both_laws() {
    let spec = RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1]);
    let universe = spec.state_universe().unwrap();
    let methods = vec![
        MemMethod::Read(Loc(0)),
        MemMethod::Read(Loc(1)),
        MemMethod::Write(Loc(0), 1),
        MemMethod::Write(Loc(1), 1),
    ];
    assert!(disjoint_commute_violations(&spec, &universe, &methods).is_empty());
    let sample = vec![
        rwmem::ops::write(0, 0, 0, 1),
        rwmem::ops::read(1, 0, 0, 1),
        rwmem::ops::write(2, 1, 1, 1),
        rwmem::ops::read(3, 1, 1, 0),
    ];
    assert!(factorization_violations(&spec, &sample, 3).is_empty());
}

#[test]
fn kvmap_footprints_satisfy_both_laws() {
    let spec = KvMap::bounded(vec![1, 2], vec![7]);
    let universe = spec.state_universe().unwrap();
    let methods = vec![
        MapMethod::Get(1),
        MapMethod::Put(1, 7),
        MapMethod::Remove(2),
        MapMethod::ContainsKey(2),
        MapMethod::Size, // no footprint: exempt from both laws
    ];
    assert!(disjoint_commute_violations(&spec, &universe, &methods).is_empty());
    let sample = vec![
        kvmap::ops::put(0, 0, 1, 7, None),
        kvmap::ops::get(1, 0, 1, Some(7)),
        kvmap::ops::remove(2, 1, 2, None),
        kvmap::ops::contains(3, 1, 2, false),
    ];
    assert!(factorization_violations(&spec, &sample, 3).is_empty());
}

#[test]
fn set_footprints_satisfy_both_laws() {
    let spec = SetSpec::bounded(vec![1, 2]);
    let universe = spec.state_universe().unwrap();
    let methods = vec![
        SetMethod::Add(1),
        SetMethod::Remove(1),
        SetMethod::Contains(2),
        SetMethod::Add(2),
    ];
    assert!(disjoint_commute_violations(&spec, &universe, &methods).is_empty());
    let sample = vec![
        set::ops::add(0, 0, 1, true),
        set::ops::contains(1, 0, 1, true),
        set::ops::add(2, 1, 2, true),
        set::ops::remove(3, 1, 2, true),
    ];
    assert!(factorization_violations(&spec, &sample, 3).is_empty());
}

#[test]
fn bank_footprints_satisfy_both_laws() {
    let spec = Bank::bounded(vec![1, 2], 4);
    let universe = spec.state_universe().unwrap();
    let methods = vec![
        BankMethod::Deposit(1, 2),
        BankMethod::Withdraw(1, 1),
        BankMethod::Balance(2),
        BankMethod::Deposit(2, 1),
    ];
    assert!(disjoint_commute_violations(&spec, &universe, &methods).is_empty());
    let sample = vec![
        bank::ops::deposit(0, 0, 1, 2),
        bank::ops::withdraw(1, 0, 1, 1, true),
        bank::ops::deposit(2, 1, 2, 1),
        bank::ops::balance(3, 1, 2, 0),
    ];
    assert!(factorization_violations(&spec, &sample, 3).is_empty());
}

#[test]
fn product_footprints_satisfy_both_laws() {
    // Left keys map to even classes, right keys to odd — cross-component
    // methods therefore always declare disjoint footprints, and the
    // disjointness law reduces to "components act on disjoint state".
    let spec = Product::new(SetSpec::bounded(vec![1, 2]), Counter::with_universe(2));
    let universe = spec.state_universe().unwrap();
    let methods = vec![
        Either::L(SetMethod::Add(1)),
        Either::L(SetMethod::Contains(2)),
        Either::R(CtrMethod::Add(1)),
        Either::R(CtrMethod::Get),
    ];
    // Exercise the legacy wrappers here: thin shells over the shared
    // violation enumerators, Err on the first hit.
    check_disjoint_footprints_commute(&spec, &universe, &methods).unwrap();
    let lift_set = |op: pushpull_spec::set::SetOp| {
        pushpull_core::op::Op::new(op.id, op.txn, Either::L(op.method), Either::L(op.ret))
    };
    let lift_ctr = |op: pushpull_spec::counter::CtrOp| {
        pushpull_core::op::Op::new(op.id, op.txn, Either::R(op.method), Either::R(op.ret))
    };
    let sample = vec![
        lift_set(set::ops::add(0, 0, 1, true)),
        lift_set(set::ops::contains(1, 0, 2, false)),
        lift_ctr(counter::ops::add(2, 1, 1)),
        lift_ctr(counter::ops::get(3, 1, 0)),
    ];
    check_allowed_factorization(&spec, &sample, 3).unwrap();
}

#[test]
fn product_key_encoding_separates_components() {
    let spec = Product::new(SetSpec::new(), Counter::new());
    let l = spec.method_keys(&Either::L(SetMethod::Add(3))).unwrap();
    let r = spec.method_keys(&Either::R(CtrMethod::Get)).unwrap();
    assert_eq!(l.as_slice(), &[6]); // 3 * 2
    assert_eq!(r.as_slice(), &[1]); // 0 * 2 + 1
    assert!(l.iter().all(|k| k % 2 == 0));
    assert!(r.iter().all(|k| k % 2 == 1));
}

#[test]
fn single_class_specs_declare_one_key() {
    // Counter, register, and queue funnel everything into one class —
    // sharding them is a sound no-op (all traffic on one shard).
    assert_eq!(
        Counter::new().method_keys(&CtrMethod::Get),
        Some(KeySet::one(0))
    );
    assert_eq!(
        CasRegister::new().method_keys(&RegMethod::Read),
        Some(KeySet::one(0))
    );
    assert_eq!(
        QueueSpec::new().method_keys(&QueueMethod::Deq),
        Some(KeySet::one(0))
    );
}
