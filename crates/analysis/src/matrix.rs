//! The static mover/conflict matrix: every ordered method pair of a
//! finite alphabet, resolved through the spec's *method-level* mover
//! oracle ([`SeqSpec::method_mover`]) and cached.
//!
//! A cell holds three-valued knowledge:
//!
//! * `Some(true)` — `m₁ ◁ m₂` holds for **every** observable return
//!   pair, so any runtime mover query between operations of these
//!   methods is guaranteed to pass;
//! * `Some(false)` — some return pair refutes the mover (the runtime
//!   outcome depends on the actual returns);
//! * `None` — the spec cannot decide at the method level (no override
//!   and no finite state universe).
//!
//! Only `Some(true)` cells contribute to static discharge; the other two
//! keep the runtime check.

use std::fmt;

use pushpull_core::spec::{method_mover_exhaustive, SeqSpec};

/// A cached method-level mover matrix over a finite method alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoverMatrix<M> {
    alphabet: Vec<M>,
    cells: Vec<Option<bool>>,
}

impl<M: Clone + Eq> MoverMatrix<M> {
    /// Builds the matrix by querying `spec.method_mover` once per ordered
    /// pair of the (deduplicated) alphabet.
    pub fn build<S: SeqSpec<Method = M>>(spec: &S, methods: &[M]) -> Self {
        let mut alphabet: Vec<M> = Vec::new();
        for m in methods {
            if !alphabet.contains(m) {
                alphabet.push(m.clone());
            }
        }
        let n = alphabet.len();
        let mut cells = Vec::with_capacity(n * n);
        for m1 in &alphabet {
            for m2 in &alphabet {
                cells.push(spec.method_mover(m1, m2));
            }
        }
        Self { alphabet, cells }
    }

    /// Builds the *ground-truth* matrix by running the exhaustive
    /// Definition 4.1 derivation ([`method_mover_exhaustive`]) over
    /// `universe` for every ordered pair of the (deduplicated) alphabet
    /// — bypassing any `method_mover` override. Every cell is decided
    /// (`Some`); this is what the whole-spec certifier checks the
    /// declared matrix against.
    pub fn build_exhaustive<S: SeqSpec<Method = M>>(
        spec: &S,
        universe: &[S::State],
        methods: &[M],
    ) -> Self {
        let mut alphabet: Vec<M> = Vec::new();
        for m in methods {
            if !alphabet.contains(m) {
                alphabet.push(m.clone());
            }
        }
        let n = alphabet.len();
        let mut cells = Vec::with_capacity(n * n);
        for m1 in &alphabet {
            for m2 in &alphabet {
                cells.push(Some(method_mover_exhaustive(spec, universe, m1, m2)));
            }
        }
        Self { alphabet, cells }
    }

    /// The raw row-major cells (alphabet order), for serialization into
    /// a [`SpecCertificate`](pushpull_core::SpecCertificate).
    pub fn cells(&self) -> &[Option<bool>] {
        &self.cells
    }

    fn index(&self, m: &M) -> Option<usize> {
        self.alphabet.iter().position(|a| a == m)
    }

    /// The cached verdict for `m₁ ◁ m₂`; `None` also when either method
    /// is outside the alphabet.
    pub fn query(&self, m1: &M, m2: &M) -> Option<bool> {
        let i = self.index(m1)?;
        let j = self.index(m2)?;
        self.cells[i * self.alphabet.len() + j]
    }

    /// Is `m₁ ◁ m₂` proven for every observable return pair?
    pub fn proven(&self, m1: &M, m2: &M) -> bool {
        self.query(m1, m2) == Some(true)
    }

    /// Are *all* ordered pairs of the alphabet proven movers? Vacuously
    /// true for an empty alphabet.
    pub fn all_pairs_proven(&self) -> bool {
        self.cells.iter().all(|c| *c == Some(true))
    }

    /// Are all ordered pairs drawn from `methods` (in both positions)
    /// proven movers? Methods outside the alphabet count as unproven.
    pub fn pairs_proven_within(&self, methods: &[M]) -> bool {
        methods
            .iter()
            .all(|m1| methods.iter().all(|m2| self.proven(m1, m2)))
    }

    /// The deduplicated method alphabet, in first-occurrence order.
    pub fn alphabet(&self) -> &[M] {
        &self.alphabet
    }

    /// Number of methods in the alphabet.
    pub fn len(&self) -> usize {
        self.alphabet.len()
    }

    /// Is the alphabet empty?
    pub fn is_empty(&self) -> bool {
        self.alphabet.is_empty()
    }

    /// Number of ordered pairs proven (`Some(true)` cells).
    pub fn proven_pairs(&self) -> usize {
        self.cells.iter().filter(|c| **c == Some(true)).count()
    }
}

impl<M: Clone + Eq + fmt::Display> MoverMatrix<M> {
    /// Renders the matrix as a table: `✓` proven mover, `✗` refuted at
    /// the method level (return-dependent), `?` undecided.
    pub fn render(&self) -> String {
        let names: Vec<String> = self.alphabet.iter().map(|m| m.to_string()).collect();
        let width = names.iter().map(String::len).max().unwrap_or(1).max(1);
        let mut out = String::new();
        out.push_str(&format!("{:>width$} │", "◁"));
        for name in &names {
            out.push_str(&format!(" {name:^width$}"));
        }
        out.push('\n');
        out.push_str(&format!("{:─>width$}─┼", ""));
        for _ in &names {
            out.push_str(&format!("─{:─^width$}", ""));
        }
        out.push('\n');
        for (i, name) in names.iter().enumerate() {
            out.push_str(&format!("{name:>width$} │"));
            for j in 0..names.len() {
                let mark = match self.cells[i * names.len() + j] {
                    Some(true) => "✓",
                    Some(false) => "✗",
                    None => "?",
                };
                out.push_str(&format!(" {mark:^width$}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::kvmap::{KvMap, MapMethod};

    #[test]
    fn counter_matrix_is_fully_proven_without_get() {
        let spec = Counter::new();
        let matrix = MoverMatrix::build(&spec, &[CtrMethod::Add(1), CtrMethod::Add(2)]);
        assert!(matrix.all_pairs_proven());
        assert_eq!(matrix.proven_pairs(), 4);
        assert_eq!(matrix.len(), 2);
    }

    #[test]
    fn kvmap_matrix_mixes_verdicts() {
        let spec = KvMap::new();
        let alphabet = vec![
            MapMethod::Put(0, 1),
            MapMethod::Get(0),
            MapMethod::Get(1),
            MapMethod::Put(0, 1), // duplicate: deduped
        ];
        let matrix = MoverMatrix::build(&spec, &alphabet);
        assert_eq!(matrix.len(), 3);
        // Same key, write vs read: refuted at the method level.
        assert_eq!(
            matrix.query(&MapMethod::Put(0, 1), &MapMethod::Get(0)),
            Some(false)
        );
        // Distinct keys: proven.
        assert!(matrix.proven(&MapMethod::Put(0, 1), &MapMethod::Get(1)));
        assert!(!matrix.all_pairs_proven());
        assert!(matrix.pairs_proven_within(&[MapMethod::Get(0), MapMethod::Get(1)]));
        // Outside the alphabet: unknown, not proven.
        assert_eq!(matrix.query(&MapMethod::Get(7), &MapMethod::Get(7)), None);
    }

    #[test]
    fn render_marks_all_three_verdicts() {
        let spec = KvMap::new();
        let matrix = MoverMatrix::build(&spec, &[MapMethod::Put(0, 1), MapMethod::Get(0)]);
        let table = matrix.render();
        assert!(table.contains('✓'), "{table}");
        assert!(table.contains('✗'), "{table}");
    }
}
