//! Whole-spec inference: the ground-truth mover matrix and the minimal
//! sound footprint assignment, derived exhaustively from a spec's
//! denotational semantics alone.
//!
//! The certifier ([`crate::certify`]) never trusts a hand-written
//! [`method_mover`](pushpull_core::spec::SeqSpec::method_mover) or
//! [`method_keys`](pushpull_core::spec::SeqSpec::method_keys) override.
//! Instead, for any spec that exposes both a finite
//! [`state_universe`](pushpull_core::spec::SeqSpec::state_universe) and a
//! finite [`method_universe`](pushpull_core::spec::SeqSpec::method_universe),
//! this module reruns Definition 4.1 over every ordered method pair
//! (via [`MoverMatrix::build_exhaustive`]) and then reads the *minimal
//! sound footprint assignment* off the resulting conflict graph: two
//! methods may share a key class only if some order of some observable
//! return pair fails to commute, so the connected components of the
//! "not both-mover" graph are exactly the coarsest sound sharding — any
//! finer split would put a conflicting pair on different shards.

use pushpull_core::spec::{observable_rets, SeqSpec};

use crate::matrix::MoverMatrix;

/// Everything inference learns about a spec: the exhaustive mover
/// matrix over the method universe, the conflict-graph components
/// (= minimal sound footprint assignment), and per-method structural
/// facts the certifier uses to grade findings.
#[derive(Debug, Clone)]
pub struct InferredSpec<M> {
    /// The deduplicated method universe, in declaration order. All the
    /// parallel `Vec`s below are indexed by position in this alphabet.
    pub methods: Vec<M>,
    /// The ground-truth mover matrix: every cell decided (`Some`) by the
    /// exhaustive Definition 4.1 derivation, bypassing overrides.
    pub matrix: MoverMatrix<M>,
    /// Conflict-graph component id per method: `components[i] ==
    /// components[j]` iff `i` and `j` are connected through pairs that
    /// fail to commute. Methods in different components provably
    /// commute (transitively through both-movers), so distinct
    /// components may live on distinct shards — this is the minimal
    /// sound footprint cover.
    pub components: Vec<usize>,
    /// Is the method a both-mover against *every* method (itself
    /// included)? Such methods conflict with nothing; routing them
    /// anywhere is sound, so the certifier skips them when judging
    /// whether a declared cover is needlessly coarse.
    pub conflict_free: Vec<bool>,
    /// Does the method observe exactly one return value across the
    /// whole universe? For single-return methods the exhaustive mover
    /// is immune to universe-bound artifacts on the *return* side of
    /// the quantifier, which upgrades some findings from note to
    /// warning (see [`crate::certify`]).
    pub single_ret: Vec<bool>,
}

impl<M: Clone + Eq> InferredSpec<M> {
    /// Position of `m` in [`InferredSpec::methods`].
    pub fn index(&self, m: &M) -> Option<usize> {
        self.methods.iter().position(|x| x == m)
    }

    /// Number of distinct conflict components.
    pub fn component_count(&self) -> usize {
        let mut seen: Vec<usize> = Vec::new();
        for &c in &self.components {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen.len()
    }
}

/// Derives the ground truth for `spec`, or `None` when the spec does not
/// expose both finite universes (such specs cannot be certified
/// exhaustively; their overrides remain trusted-but-unchecked).
pub fn infer<S: SeqSpec>(spec: &S) -> Option<InferredSpec<S::Method>> {
    let states = spec.state_universe()?;
    let methods_raw = spec.method_universe()?;
    let matrix = MoverMatrix::build_exhaustive(spec, &states, &methods_raw);
    let methods: Vec<S::Method> = matrix.alphabet().to_vec();
    let n = methods.len();

    // Conflict graph: edge iff NOT both-mover. Union-find the components.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let both_mover = |i: usize, j: usize| {
        matrix.proven(&methods[i], &methods[j]) && matrix.proven(&methods[j], &methods[i])
    };
    for i in 0..n {
        for j in (i + 1)..n {
            if !both_mover(i, j) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    // Canonicalize to dense component ids in first-occurrence order.
    let mut components = vec![usize::MAX; n];
    let mut next_id = 0;
    for i in 0..n {
        let root = find(&mut parent, i);
        if components[root] == usize::MAX {
            components[root] = next_id;
            next_id += 1;
        }
        components[i] = components[root];
    }

    let conflict_free: Vec<bool> = (0..n).map(|i| (0..n).all(|j| both_mover(i, j))).collect();
    let single_ret: Vec<bool> = methods
        .iter()
        .map(|m| observable_rets(spec, &states, m).len() == 1)
        .collect();

    Some(InferredSpec {
        methods,
        matrix,
        components,
        conflict_free,
        single_ret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_spec::counter::Counter;
    use pushpull_spec::kvmap::KvMap;

    #[test]
    fn unbounded_spec_cannot_be_inferred() {
        assert!(infer(&Counter::new()).is_none());
    }

    #[test]
    fn counter_universe_is_one_component() {
        let spec = Counter::with_universe(2);
        let inf = infer(&spec).expect("bounded counter must infer");
        assert!(!inf.methods.is_empty());
        // Get conflicts with Add(k≠0), so everything funnels into the
        // component holding Get — plus possibly a conflict-free island
        // for Add(0) (both-mover with everything keeps its own id only
        // if nothing drags it in).
        let n = inf.methods.len();
        assert_eq!(inf.components.len(), n);
        assert_eq!(inf.conflict_free.len(), n);
        // Every cell of the exhaustive matrix is decided.
        assert!(inf.matrix.cells().iter().all(Option::is_some));
    }

    #[test]
    fn kvmap_components_split_by_key() {
        let spec = KvMap::bounded(vec![0, 1], vec![1]);
        let inf = infer(&spec).expect("bounded kvmap must infer");
        use pushpull_spec::kvmap::MapMethod;
        let (Some(p0), Some(p1)) = (
            inf.index(&MapMethod::Put(0, 1)),
            inf.index(&MapMethod::Put(1, 1)),
        ) else {
            panic!("universe must include Put on both keys: {:?}", inf.methods);
        };
        // Size conflicts with writes on every key, merging the key
        // components through it — but writes on distinct keys must
        // still commute pairwise.
        assert!(inf
            .matrix
            .proven(&MapMethod::Put(0, 1), &MapMethod::Put(1, 1)));
        assert!(inf
            .matrix
            .proven(&MapMethod::Put(1, 1), &MapMethod::Put(0, 1)));
        let _ = (p0, p1);
    }
}
