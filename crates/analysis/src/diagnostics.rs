//! Rustc-style diagnostics for the program linter: a severity, a lint
//! name, a span *into the `Code` tree*, and a rendered report.
//!
//! Spans are structural paths ([`PathStep`]) from a transaction's root
//! to the offending subterm, so they survive pretty-printing and can be
//! resolved back to the exact grammar node with [`resolve`].

use std::fmt;

use pushpull_core::lang::Code;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing wrong, but worth knowing.
    Note,
    /// Probably a mistake; the run will still be serializable.
    Warning,
    /// The program or declaration is wrong (e.g. a transaction that can
    /// never commit).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structural step from a `Code` node to one of its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathStep {
    /// Left operand of `c₁ ; c₂`.
    SeqL,
    /// Right operand of `c₁ ; c₂`.
    SeqR,
    /// Left operand of `c₁ + c₂`.
    ChoiceL,
    /// Right operand of `c₁ + c₂`.
    ChoiceR,
    /// Body of `(c)*`.
    Star,
    /// Body of `tx c`.
    Tx,
    /// Body of `otx c` (an open-nested scope).
    OpenTx,
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PathStep::SeqL => "seq.0",
            PathStep::SeqR => "seq.1",
            PathStep::ChoiceL => "choice.0",
            PathStep::ChoiceR => "choice.1",
            PathStep::Star => "star",
            PathStep::Tx => "tx",
            PathStep::OpenTx => "otx",
        })
    }
}

/// A location inside a thread set: which transaction, and where in its
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Thread index.
    pub thread: usize,
    /// Transaction index within the thread.
    pub txn: usize,
    /// Structural path from the transaction's root to the subterm; empty
    /// means the whole body.
    pub path: Vec<PathStep>,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread {}, txn {}", self.thread, self.txn)?;
        if !self.path.is_empty() {
            write!(f, ", at ")?;
            for (i, step) in self.path.iter().enumerate() {
                if i > 0 {
                    write!(f, ".")?;
                }
                write!(f, "{step}")?;
            }
        }
        Ok(())
    }
}

/// Follows a structural path from `code`; `None` if the path does not
/// fit the tree.
pub fn resolve<'c, M>(code: &'c Code<M>, path: &[PathStep]) -> Option<&'c Code<M>> {
    let mut cur = code;
    for step in path {
        cur = match (step, cur) {
            (PathStep::SeqL, Code::Seq(a, _)) => a,
            (PathStep::SeqR, Code::Seq(_, b)) => b,
            (PathStep::ChoiceL, Code::Choice(a, _)) => a,
            (PathStep::ChoiceR, Code::Choice(_, b)) => b,
            (PathStep::Star, Code::Star(a)) => a,
            (PathStep::Tx, Code::Tx(a)) => a,
            (PathStep::OpenTx, Code::OpenTx(a)) => a,
            _ => return None,
        };
    }
    Some(cur)
}

/// The path to the first syntactic occurrence of method `m` in `code`,
/// if any.
pub fn find_method<M: PartialEq>(code: &Code<M>, m: &M) -> Option<Vec<PathStep>> {
    fn go<M: PartialEq>(code: &Code<M>, m: &M, path: &mut Vec<PathStep>) -> bool {
        match code {
            Code::Skip => false,
            Code::Method(n) => n == m,
            Code::Seq(a, b) => {
                path.push(PathStep::SeqL);
                if go(a, m, path) {
                    return true;
                }
                path.pop();
                path.push(PathStep::SeqR);
                if go(b, m, path) {
                    return true;
                }
                path.pop();
                false
            }
            Code::Choice(a, b) => {
                path.push(PathStep::ChoiceL);
                if go(a, m, path) {
                    return true;
                }
                path.pop();
                path.push(PathStep::ChoiceR);
                if go(b, m, path) {
                    return true;
                }
                path.pop();
                false
            }
            Code::Star(a) => {
                path.push(PathStep::Star);
                if go(a, m, path) {
                    return true;
                }
                path.pop();
                false
            }
            Code::Tx(a) => {
                path.push(PathStep::Tx);
                if go(a, m, path) {
                    return true;
                }
                path.pop();
                false
            }
            Code::OpenTx(a) => {
                path.push(PathStep::OpenTx);
                if go(a, m, path) {
                    return true;
                }
                path.pop();
                false
            }
        }
    }
    let mut path = Vec::new();
    go(code, m, &mut path).then_some(path)
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable lint name (e.g. `never-commits`).
    pub lint: &'static str,
    /// One-line description of the finding.
    pub message: String,
    /// Where it is, when it points into a program.
    pub span: Option<Span>,
    /// The offending subterm, pretty-printed.
    pub snippet: Option<String>,
    /// Extra context lines, rendered as `= note:` trailers.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no span (e.g. a declaration-level finding).
    pub fn global(severity: Severity, lint: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            lint,
            message: message.into(),
            span: None,
            snippet: None,
            notes: Vec::new(),
        }
    }

    /// A diagnostic anchored at a span, with the subterm it points at.
    pub fn spanned(
        severity: Severity,
        lint: &'static str,
        message: impl Into<String>,
        span: Span,
        snippet: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            lint,
            message: message.into(),
            span: Some(span),
            snippet: Some(snippet.into()),
            notes: Vec::new(),
        }
    }

    /// Appends a `= note:` trailer (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.lint, self.message)?;
        if let Some(span) = &self.span {
            writeln!(f, "  --> {span}")?;
        }
        if let Some(snippet) = &self.snippet {
            writeln!(f, "   |")?;
            for line in snippet.lines() {
                writeln!(f, "   | {line}")?;
            }
            writeln!(f, "   |")?;
        }
        for note in &self.notes {
            writeln!(f, "   = note: {note}")?;
        }
        Ok(())
    }
}

/// Renders a batch of diagnostics plus a `N errors, M warnings` footer —
/// the shape of a compiler run's stderr.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    out.push_str(&format!(
        "{errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &'static str) -> Code<&'static str> {
        Code::method(s)
    }

    #[test]
    fn resolve_follows_paths() {
        let c = Code::tx(Code::seq(m("a"), Code::star(Code::choice(m("b"), m("c")))));
        let sub = resolve(
            &c,
            &[
                PathStep::Tx,
                PathStep::SeqR,
                PathStep::Star,
                PathStep::ChoiceR,
            ],
        );
        assert_eq!(sub, Some(&m("c")));
        assert_eq!(resolve(&c, &[PathStep::Star]), None, "wrong shape");
        assert_eq!(resolve(&c, &[]), Some(&c));
    }

    #[test]
    fn find_method_returns_first_occurrence_path() {
        let c = Code::tx(Code::seq(m("a"), Code::choice(m("b"), m("a"))));
        let path = find_method(&c, &"b").unwrap();
        assert_eq!(resolve(&c, &path), Some(&m("b")));
        assert_eq!(
            find_method(&c, &"a").unwrap(),
            vec![PathStep::Tx, PathStep::SeqL]
        );
        assert!(find_method(&c, &"zz").is_none());
    }

    #[test]
    fn rendering_is_rustc_shaped() {
        let d = Diagnostic::spanned(
            Severity::Warning,
            "unreachable-method",
            "method `deq()` is unreachable",
            Span {
                thread: 1,
                txn: 0,
                path: vec![PathStep::SeqR],
            },
            "(enq(9) ; deq())",
        )
        .with_note("every execution is stuck before this call");
        let text = d.to_string();
        assert!(text.starts_with("warning[unreachable-method]:"), "{text}");
        assert!(text.contains("--> thread 1, txn 0, at seq.1"), "{text}");
        assert!(text.contains("| (enq(9) ; deq())"), "{text}");
        assert!(text.contains("= note: every execution"), "{text}");
        let report = render_report(&[d]);
        assert!(report.ends_with("0 errors, 1 warning\n"), "{report}");
    }
}
