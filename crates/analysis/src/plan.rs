//! The analyzer entry point: one call that summarizes the programs,
//! builds the mover matrix, proves whatever criteria it can, runs the
//! lints, and packages everything as an [`AnalysisPlan`] the harness can
//! install on any driver.

use std::fmt;
use std::sync::Arc;

use pushpull_core::certificate::SpecCertificate;
use pushpull_core::lang::Code;
use pushpull_core::spec::SeqSpec;
use pushpull_core::static_facts::{RulePattern, StaticDischarge};

use crate::certify::certify_in;
use crate::diagnostics::{render_report, Diagnostic, Severity};
use crate::discharge::prove;
use crate::lint::{lint_declaration, lint_programs, LintConfig};
use crate::matrix::MoverMatrix;
use crate::summary::{summarize, ProgramSummary};

/// Tunables for [`analyze_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisConfig {
    /// Exploration caps for the semantic lints.
    pub lint: LintConfig,
    /// Skip the semantic lints entirely (the prover still runs).
    pub skip_lints: bool,
}

/// Everything the static analysis learned about a workload, type-erased
/// enough for the harness to carry: proven discharge facts, diagnostics,
/// and a rendered report.
#[derive(Debug, Clone)]
pub struct AnalysisPlan {
    /// Proven obligations, `Some` only when at least one clause was
    /// discharged — ready for
    /// [`GlobalState::set_static_discharge`](pushpull_core::GlobalState::set_static_discharge).
    pub discharge: Option<Arc<StaticDischarge>>,
    /// The spec's soundness certificate, `Some` only when
    /// [`analyze_certified`] ran and the spec certified without errors —
    /// ready for
    /// [`GlobalState::install_certificate`](pushpull_core::GlobalState::install_certificate),
    /// and what strict-mode arming demands before trusting `discharge`
    /// or fine-grained shard routing.
    pub certificate: Option<Arc<SpecCertificate>>,
    /// Linter findings, program-level and declaration-level.
    pub diagnostics: Vec<Diagnostic>,
    /// Rules every completed run of the workload must exercise.
    pub required: RulePattern,
    /// Size of the union method footprint.
    pub footprint: usize,
    /// Distinct key classes declared (via `SeqSpec::method_keys`) across
    /// the footprint, or `0` when any method declares no footprint — the
    /// workload then degrades a sharded log to its coarse path anyway.
    pub shard_keys: usize,
    /// Number of transactions analyzed.
    pub txns: usize,
    /// Number of threads.
    pub threads: usize,
    /// Human-readable report: mover matrix (when small), discharge facts,
    /// and rendered diagnostics.
    pub report: String,
}

impl AnalysisPlan {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// A log shard count matched to the workload's declared key classes:
    /// one shard per key class, capped at 16. Workloads whose footprint
    /// is partly undeclared (`shard_keys == 0`) get `1` — every append
    /// would take the coarse path, so extra shards only add lock hops.
    pub fn recommended_shards(&self) -> usize {
        self.shard_keys.clamp(1, 16)
    }
}

impl fmt::Display for AnalysisPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report)
    }
}

/// Analyzes a thread set with default settings.
pub fn analyze<S: SeqSpec>(spec: &S, programs: &[Vec<Code<S::Method>>]) -> AnalysisPlan
where
    S::Method: fmt::Display,
{
    analyze_with(spec, programs, &AnalysisConfig::default())
}

/// Analyzes a thread set: summary → mover matrix → criteria proofs →
/// lints → plan.
pub fn analyze_with<S: SeqSpec>(
    spec: &S,
    programs: &[Vec<Code<S::Method>>],
    cfg: &AnalysisConfig,
) -> AnalysisPlan
where
    S::Method: fmt::Display,
{
    let summary = summarize(programs);
    let outcome = prove(spec, &summary);
    let diagnostics = if cfg.skip_lints {
        Vec::new()
    } else {
        lint_programs(spec, programs, &summary, &outcome.matrix, &cfg.lint)
    };
    let shard_keys = count_shard_keys(spec, &summary);
    let report = render(
        &summary,
        &outcome.matrix,
        &outcome.facts,
        &diagnostics,
        shard_keys,
    );
    AnalysisPlan {
        discharge: outcome.facts.any().then(|| Arc::new(outcome.facts.clone())),
        certificate: None,
        diagnostics,
        required: summary.required,
        footprint: summary.footprint.len(),
        shard_keys,
        txns: summary.txns.len(),
        threads: summary.threads,
        report,
    }
}

/// [`analyze`], then the whole-spec certifier: runs [`certify_in`] over
/// the spec's finite universes, folds its findings into the plan's
/// diagnostics and report, and attaches the resulting certificate when
/// it carries no errors (an invalid certificate is withheld — installing
/// it would make strict-mode arming refuse anyway, and the diagnostics
/// say why). Uncertifiable specs (no finite universes) get a note and
/// no certificate.
pub fn analyze_certified<S: SeqSpec>(
    spec: &S,
    programs: &[Vec<Code<S::Method>>],
    spec_name: &str,
) -> AnalysisPlan
where
    S::Method: fmt::Display,
{
    let mut plan = analyze(spec, programs);
    match certify_in(spec, spec_name, programs) {
        Ok(cert) => {
            if !cert.diagnostics.is_empty() {
                plan.report
                    .push_str(&format!("spec certifier (`{spec_name}`):\n"));
                plan.report.push_str(&render_report(&cert.diagnostics));
            }
            plan.report.push_str(&format!("{}\n", cert.certificate));
            plan.diagnostics.extend(cert.diagnostics);
            if cert.certificate.is_valid() {
                plan.certificate = Some(cert.certificate);
            }
        }
        Err(diag) => {
            plan.report.push_str(&diag.to_string());
            plan.diagnostics.push(*diag);
        }
    }
    plan
}

/// Distinct declared key classes across the footprint; `0` when any
/// method declares `None` (the whole workload routes coarse).
fn count_shard_keys<S: SeqSpec>(spec: &S, summary: &ProgramSummary<S::Method>) -> usize {
    let mut keys = std::collections::BTreeSet::new();
    for m in &summary.footprint {
        match spec.method_keys(m) {
            Some(ks) => keys.extend(ks.iter().copied()),
            None => return 0,
        }
    }
    keys.len()
}

/// Checks a driver's declared rule pattern against an existing plan's
/// workload, appending any finding to the plan's diagnostics and report.
///
/// Call after [`analyze`] with the values from
/// `TmSystem::{name, declared_pattern}`; a `None` declaration is not a
/// finding.
pub fn check_declaration<S: SeqSpec>(
    plan: &mut AnalysisPlan,
    spec: &S,
    programs: &[Vec<Code<S::Method>>],
    driver: &str,
    declared: Option<RulePattern>,
) -> Option<Diagnostic>
where
    S::Method: fmt::Display,
{
    let declared = declared?;
    let summary = summarize(programs);
    let matrix = MoverMatrix::build(spec, &summary.footprint);
    let diag = lint_declaration(driver, declared, &summary, &matrix)?;
    plan.diagnostics.push(diag.clone());
    plan.report.push_str(&diag.to_string());
    Some(diag)
}

fn render<M: Clone + Eq + fmt::Display>(
    summary: &ProgramSummary<M>,
    matrix: &MoverMatrix<M>,
    facts: &StaticDischarge,
    diagnostics: &[Diagnostic],
    shard_keys: usize,
) -> String {
    const MATRIX_RENDER_CAP: usize = 12;
    let mut out = String::new();
    out.push_str(&format!(
        "analyzed {} txns on {} threads, footprint {} methods, required rules {}\n",
        summary.txns.len(),
        summary.threads,
        summary.footprint.len(),
        summary.required,
    ));
    if shard_keys == 0 {
        out.push_str("footprint partly undeclared: sharded logs degrade to coarse (1 shard)\n");
    } else {
        out.push_str(&format!(
            "declared key classes: {} (recommended log shards: {})\n",
            shard_keys,
            shard_keys.clamp(1, 16),
        ));
    }
    if matrix.len() <= MATRIX_RENDER_CAP && !matrix.is_empty() {
        out.push_str(&matrix.render());
    } else if !matrix.is_empty() {
        out.push_str(&format!(
            "mover matrix: {} of {} ordered pairs proven (alphabet too large to render)\n",
            matrix.proven_pairs(),
            matrix.len() * matrix.len(),
        ));
    }
    out.push_str(&facts.to_string());
    out.push('\n');
    if !diagnostics.is_empty() {
        out.push_str(&render_report(diagnostics));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::error::{Clause, Rule};
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::queue::{QueueMethod, QueueSpec};

    #[test]
    fn mover_heavy_plan_carries_discharge_facts() {
        let programs: Vec<Vec<Code<CtrMethod>>> = (0..4)
            .map(|t| vec![Code::method(CtrMethod::Add(t))])
            .collect();
        let plan = analyze(&Counter::new(), &programs);
        let facts = plan.discharge.as_ref().expect("all-mover must discharge");
        assert!(facts.discharges(Rule::Push, Clause::Ii));
        assert_eq!(plan.errors(), 0);
        assert_eq!(plan.txns, 4);
        assert!(plan.report.contains("statically discharged"), "{plan}");
    }

    #[test]
    fn conflicting_plan_has_no_discharge_but_diagnoses() {
        let programs = vec![
            vec![Code::seq(
                Code::method(QueueMethod::Enq(1)),
                Code::method(QueueMethod::Deq),
            )],
            vec![Code::method(QueueMethod::Deq)],
        ];
        let plan = analyze(&QueueSpec::new(), &programs);
        assert!(plan.discharge.is_none());
        assert!(plan.warnings() > 0, "pull-cycle expected: {plan}");
        assert!(plan.report.contains("pull-cycle"), "{plan}");
    }

    #[test]
    fn declaration_check_appends_to_plan() {
        let programs = vec![vec![Code::method(CtrMethod::Add(1))]];
        let spec = Counter::new();
        let mut plan = analyze(&spec, &programs);
        let before = plan.diagnostics.len();
        let missing_push = RulePattern::from_iter([Rule::App, Rule::Cmt]);
        let diag =
            check_declaration(&mut plan, &spec, &programs, "bogus", Some(missing_push)).unwrap();
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(plan.diagnostics.len(), before + 1);
        assert!(plan.report.contains("pattern-divergence"), "{plan}");
        assert!(check_declaration(&mut plan, &spec, &programs, "quiet", None).is_none());
    }

    #[test]
    fn shard_keys_count_distinct_declared_classes() {
        use pushpull_spec::kvmap::{KvMap, MapMethod};
        // Four distinct counter txns still share one tally: one class.
        let programs: Vec<Vec<Code<CtrMethod>>> = (0..4)
            .map(|t| vec![Code::method(CtrMethod::Add(t))])
            .collect();
        let plan = analyze(&Counter::new(), &programs);
        assert_eq!(plan.shard_keys, 1);
        assert_eq!(plan.recommended_shards(), 1);
        // Disjoint map keys: one class per key.
        let programs: Vec<Vec<Code<MapMethod>>> = (0..3)
            .map(|t| vec![Code::method(MapMethod::Put(t, 1))])
            .collect();
        let plan = analyze(&KvMap::new(), &programs);
        assert_eq!(plan.shard_keys, 3);
        assert_eq!(plan.recommended_shards(), 3);
        assert!(plan.report.contains("declared key classes: 3"), "{plan}");
        // A footprint-less method (Size) poisons the whole workload.
        let programs = vec![
            vec![Code::method(MapMethod::Put(0, 1))],
            vec![Code::method(MapMethod::Size)],
        ];
        let plan = analyze(&KvMap::new(), &programs);
        assert_eq!(plan.shard_keys, 0);
        assert_eq!(plan.recommended_shards(), 1);
        assert!(plan.report.contains("coarse"), "{plan}");
    }

    #[test]
    fn skip_lints_still_proves() {
        let programs = vec![vec![Code::method(CtrMethod::Add(1))]];
        let cfg = AnalysisConfig {
            skip_lints: true,
            ..AnalysisConfig::default()
        };
        let plan = analyze_with(&Counter::new(), &programs, &cfg);
        assert!(plan.discharge.is_some());
        assert!(plan.diagnostics.is_empty());
    }
}
