//! # pushpull-analysis
//!
//! Static analysis for the Push/Pull reproduction: a criteria prover
//! that discharges the machine's mover-loop proof obligations ahead of
//! time, and a linter for the §6 rule patterns and for transaction
//! programs themselves.
//!
//! The pipeline ([`analyze`]):
//!
//! 1. [`summary`] walks each `Code<M>` body with the paper's `step`/`fin`
//!    equations into conservative per-transaction *method footprints*;
//! 2. [`matrix`] resolves every ordered method pair of the union
//!    footprint through the spec's return-universal
//!    [`method_mover`](pushpull_core::spec::SeqSpec::method_mover)
//!    oracle, cached as a [`MoverMatrix`];
//! 3. [`discharge`] proves whichever of the four mover clauses
//!    (PUSH (i)/(ii), UNPUSH (i), PULL (iii)) the matrix supports,
//!    yielding a [`StaticDischarge`](pushpull_core::StaticDischarge)
//!    the runtime arms to skip those loops (tallying
//!    `statically_discharged` so the audit ledger still closes);
//! 4. [`lint`] runs bounded semantic exploration for never-commits and
//!    unreachable-method findings, a conflict-graph scan for potential
//!    PULL cycles, and checks driver-declared rule patterns;
//! 5. [`diagnostics`] renders it all rustc-style.
//!
//! Independently of the per-workload pipeline, [`certify`] infers the
//! ground-truth mover matrix and minimal sound footprint cover for any
//! spec with finite universes ([`infer`]), cross-checks every
//! hand-written `method_mover`/`method_keys` declaration and the two
//! footprint laws against it, and packages the result as a
//! [`SpecCertificate`](pushpull_core::SpecCertificate) — which
//! strict-mode runtimes demand before arming static discharge or
//! fine-grained shard routing ([`analyze_certified`] threads it through
//! the plan).
//!
//! The result is an [`AnalysisPlan`]; hand it to
//! `pushpull_harness::run_parallel` (or install its `discharge` on any
//! machine directly) to elide the proven checks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certify;
pub mod diagnostics;
pub mod discharge;
pub mod infer;
pub mod lint;
pub mod matrix;
pub mod plan;
pub mod summary;

pub use certify::{
    certify, certify_in, Certification, COARSE_FORCING, INCOMPLETE_MOVER, NEEDLESSLY_COARSE,
    UNCERTIFIABLE, UNSOUND_FACTORIZATION, UNSOUND_FOOTPRINT, UNSOUND_MOVER,
};
pub use diagnostics::{render_report, Diagnostic, PathStep, Severity, Span};
pub use discharge::{prove, DischargeOutcome};
pub use infer::{infer, InferredSpec};
pub use lint::{
    explore_txn, lint_declaration, lint_programs, Exploration, LintConfig, Tri, NEVER_COMMITS,
    PATTERN_DIVERGENCE, PULL_CYCLE, UNREACHABLE_METHOD,
};
pub use matrix::MoverMatrix;
pub use plan::{
    analyze, analyze_certified, analyze_with, check_declaration, AnalysisConfig, AnalysisPlan,
};
pub use summary::{max_occurrences, summarize, summarize_txn, ProgramSummary, TxnSummary};
