//! The §6 rule-pattern linter and the semantic program lints.
//!
//! Three program lints run a *bounded semantic exploration* of each
//! transaction body — configurations are `(code, possible-state-set)`
//! pairs evolved with `step`/`fin` and the spec's denotation — and one
//! declaration lint checks a driver's declared [`RulePattern`] against
//! the workload's static summary:
//!
//! * [`NEVER_COMMITS`] (error): no execution of the transaction reaches
//!   a `fin` configuration — every path gets stuck on a method that has
//!   no allowed result (e.g. a bounded spec refusing the value);
//! * [`UNREACHABLE_METHOD`] (warning): a method occurs syntactically but
//!   no execution can reach it;
//! * [`PULL_CYCLE`] (warning): transactions on different threads whose
//!   footprints mutually conflict — under a driver that PULLs
//!   uncommitted effects (§6.5) they may form a PULL dependency cycle
//!   and deadlock or cascade-abort;
//! * [`PATTERN_DIVERGENCE`] (error): a driver's declared §6 rule pattern
//!   omits rules the workload provably exercises.
//!
//! The exploration is capped (configurations and state-set size); a
//! capped transaction yields [`Tri::Unknown`] and the semantic lints
//! stay silent rather than guessing.

use std::collections::VecDeque;
use std::fmt;

use pushpull_core::lang::Code;
use pushpull_core::spec::SeqSpec;
use pushpull_core::static_facts::RulePattern;

use crate::diagnostics::{find_method, Diagnostic, Severity, Span};
use crate::matrix::MoverMatrix;
use crate::summary::ProgramSummary;

/// Lint name: a transaction that can never commit.
pub const NEVER_COMMITS: &str = "never-commits";
/// Lint name: a syntactically present but semantically unreachable method.
pub const UNREACHABLE_METHOD: &str = "unreachable-method";
/// Lint name: a potential PULL dependency cycle between transactions.
pub const PULL_CYCLE: &str = "pull-cycle";
/// Lint name: a declared rule pattern diverging from the static summary.
pub const PATTERN_DIVERGENCE: &str = "pattern-divergence";

/// Caps for the bounded semantic exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    /// Maximum `(code, state-set)` configurations explored per
    /// transaction before giving up with [`Tri::Unknown`].
    pub max_configs: usize,
    /// Maximum size of one configuration's possible-state set.
    pub max_states: usize,
    /// Maximum transactions considered by the PULL-cycle graph.
    pub max_cycle_nodes: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            max_configs: 2048,
            max_states: 256,
            max_cycle_nodes: 128,
        }
    }
}

/// Three-valued verdict of a bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Proven to hold.
    Yes,
    /// Proven not to hold (the exploration was exhaustive).
    No,
    /// The exploration hit a cap; no verdict.
    Unknown,
}

/// What a bounded exploration of one transaction found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration<M> {
    /// Can the transaction commit (reach a `fin` configuration)?
    pub commits: Tri,
    /// Methods some execution actually reaches (complete only when the
    /// exploration was exhaustive).
    pub reached: Vec<M>,
    /// Did the exploration hit a cap?
    pub capped: bool,
}

fn state_set_eq<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.contains(x))
}

/// Bounded breadth-first exploration of one transaction body against the
/// spec's denotational semantics.
pub fn explore_txn<S: SeqSpec>(
    spec: &S,
    code: &Code<S::Method>,
    cfg: &LintConfig,
) -> Exploration<S::Method> {
    let footprint = code.reachable_methods();
    let mut init: Vec<S::State> = Vec::new();
    for s in spec.initial_states() {
        if !init.contains(&s) {
            init.push(s);
        }
    }
    // One BFS configuration: a residual program plus the set of spec
    // states consistent with some path to it.
    type Config<S> = (Code<<S as SeqSpec>::Method>, Vec<<S as SeqSpec>::State>);
    let mut visited: Vec<Config<S>> = vec![(code.clone(), init.clone())];
    let mut queue: VecDeque<Config<S>> = VecDeque::new();
    queue.push_back((code.clone(), init));
    let mut reached: Vec<S::Method> = Vec::new();
    let mut can_fin = false;
    let mut capped = false;

    while let Some((c, states)) = queue.pop_front() {
        if c.fin() {
            can_fin = true;
        }
        if can_fin && reached.len() == footprint.len() {
            // Nothing left to learn.
            break;
        }
        for (m, k) in c.step() {
            let mut next: Vec<S::State> = Vec::new();
            'post: for s in &states {
                for ret in spec.results(s, &m) {
                    for s2 in spec.post_states(s, &m, &ret) {
                        if !next.contains(&s2) {
                            next.push(s2);
                            if next.len() > cfg.max_states {
                                capped = true;
                                break 'post;
                            }
                        }
                    }
                }
            }
            if next.len() > cfg.max_states {
                // Too many possible states to track: drop the branch.
                continue;
            }
            if next.is_empty() {
                // The method has no allowed observation here: stuck.
                continue;
            }
            if !reached.contains(&m) {
                reached.push(m.clone());
            }
            let config = (k, next);
            if visited
                .iter()
                .any(|(vc, vs)| *vc == config.0 && state_set_eq(vs, &config.1))
            {
                continue;
            }
            if visited.len() >= cfg.max_configs {
                capped = true;
                continue;
            }
            visited.push(config.clone());
            queue.push_back(config);
        }
    }

    let commits = if can_fin {
        Tri::Yes
    } else if capped {
        Tri::Unknown
    } else {
        Tri::No
    };
    Exploration {
        commits,
        reached,
        capped,
    }
}

/// Runs the semantic program lints over every transaction and the
/// PULL-cycle lint over the thread set.
pub fn lint_programs<S: SeqSpec>(
    spec: &S,
    programs: &[Vec<Code<S::Method>>],
    summary: &ProgramSummary<S::Method>,
    matrix: &MoverMatrix<S::Method>,
    cfg: &LintConfig,
) -> Vec<Diagnostic>
where
    S::Method: fmt::Display,
{
    let mut diags = Vec::new();
    for (thread, progs) in programs.iter().enumerate() {
        for (index, code) in progs.iter().enumerate() {
            let exp = explore_txn(spec, code, cfg);
            let span = |path| Span {
                thread,
                txn: index,
                path,
            };
            if exp.commits == Tri::No {
                diags.push(
                    Diagnostic::spanned(
                        Severity::Error,
                        NEVER_COMMITS,
                        "transaction can never commit",
                        span(Vec::new()),
                        code.to_string(),
                    )
                    .with_note(
                        "exhaustive exploration: every execution gets stuck on a \
                         method with no allowed result",
                    ),
                );
                // Every method past the stuck point is unreachable too;
                // reporting them individually would only repeat the error.
                continue;
            }
            if !exp.capped {
                for m in code.reachable_methods() {
                    if !exp.reached.contains(&m) {
                        let path = find_method(code, &m).unwrap_or_default();
                        diags.push(
                            Diagnostic::spanned(
                                Severity::Warning,
                                UNREACHABLE_METHOD,
                                format!("method `{m}` is unreachable"),
                                span(path),
                                code.to_string(),
                            )
                            .with_note("every execution is stuck before this call"),
                        );
                    }
                }
            }
        }
    }
    if let Some(d) = pull_cycle(summary, matrix, cfg) {
        diags.push(d);
    }
    diags
}

/// Looks for a cross-thread conflict cycle: transactions on different
/// threads each holding a method the other's footprint does not provably
/// move over. Under a dependent-transaction driver (§6.5) such pairs can
/// PULL each other's uncommitted effects and form a commit-dependency
/// cycle.
fn pull_cycle<M: Clone + Eq + fmt::Display>(
    summary: &ProgramSummary<M>,
    matrix: &MoverMatrix<M>,
    cfg: &LintConfig,
) -> Option<Diagnostic> {
    let txns: Vec<_> = summary.txns.iter().take(cfg.max_cycle_nodes).collect();
    let conflicts = |a: &[M], b: &[M]| a.iter().any(|m1| b.iter().any(|m2| !matrix.proven(m1, m2)));
    for (i, u) in txns.iter().enumerate() {
        for v in txns.iter().skip(i + 1) {
            if u.thread == v.thread {
                continue;
            }
            if conflicts(&u.footprint, &v.footprint) && conflicts(&v.footprint, &u.footprint) {
                let truncated = summary.txns.len() > txns.len();
                let mut d = Diagnostic::global(
                    Severity::Warning,
                    PULL_CYCLE,
                    format!(
                        "transactions (thread {}, txn {}) and (thread {}, txn {}) may \
                         form a PULL dependency cycle",
                        u.thread, u.index, v.thread, v.index
                    ),
                )
                .with_note(
                    "each footprint holds a method the other's does not provably move \
                     over; a driver that PULLs uncommitted effects (§6.5) can \
                     deadlock or cascade-abort here",
                );
                if truncated {
                    d = d.with_note(format!(
                        "only the first {} of {} transactions were examined",
                        txns.len(),
                        summary.txns.len()
                    ));
                }
                return Some(d);
            }
        }
    }
    None
}

/// Checks a driver's declared §6 rule pattern against the workload's
/// static summary: an error when the declaration omits rules the
/// workload provably exercises, and a note when the declared abort-path
/// rules cannot fire from conflicts (fully proven mover matrix).
pub fn lint_declaration<M: Clone + Eq>(
    driver: &str,
    declared: RulePattern,
    summary: &ProgramSummary<M>,
    matrix: &MoverMatrix<M>,
) -> Option<Diagnostic> {
    let missing = summary.required.difference(declared);
    if !missing.is_empty() {
        return Some(
            Diagnostic::global(
                Severity::Error,
                PATTERN_DIVERGENCE,
                format!(
                    "driver `{driver}` declares rule pattern {declared} but the \
                     workload requires {missing}",
                ),
            )
            .with_note(format!(
                "every completed run of these programs must exercise {}",
                summary.required
            )),
        );
    }
    use pushpull_core::error::Rule;
    let abort_path = RulePattern::from_iter([Rule::UnApp, Rule::UnPush, Rule::UnPull]);
    // declared ∩ abort_path, via two differences.
    let declared_abort = declared.difference(declared.difference(abort_path));
    if !declared_abort.is_empty() && matrix.all_pairs_proven() && !matrix.is_empty() {
        return Some(
            Diagnostic::global(
                Severity::Note,
                PATTERN_DIVERGENCE,
                format!(
                    "driver `{driver}` declares abort-path rules {declared_abort}, but \
                     every method pair of this workload is a proven mover",
                ),
            )
            .with_note(
                "conflicts cannot arise, so these rules can only fire under fault injection",
            ),
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use pushpull_core::error::Rule;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::queue::{QueueMethod, QueueSpec};

    #[test]
    fn bounded_queue_rejections_are_never_commits() {
        // Value 9 is outside the bound: Enq(9) has no allowed result.
        let spec = QueueSpec::bounded(vec![1, 2], 2);
        let code = Code::seq(
            Code::method(QueueMethod::Enq(9)),
            Code::method(QueueMethod::Deq),
        );
        let exp = explore_txn(&spec, &code, &LintConfig::default());
        assert_eq!(exp.commits, Tri::No);
        assert!(exp.reached.is_empty());
        let programs = vec![vec![code]];
        let summary = summarize(&programs);
        let matrix = MoverMatrix::build(&spec, &summary.footprint);
        let diags = lint_programs(&spec, &programs, &summary, &matrix, &LintConfig::default());
        assert!(
            diags
                .iter()
                .any(|d| d.lint == NEVER_COMMITS && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_method_is_flagged_with_span() {
        // The first Enq exhausts nothing, but a second Enq over capacity 1
        // has no allowed result, so the Deq after it is unreachable —
        // while the overall txn still commits via the Choice's left arm.
        let spec = QueueSpec::bounded(vec![1], 1);
        let code = Code::choice(
            Code::method(QueueMethod::Enq(1)),
            Code::seq_all(vec![
                Code::method(QueueMethod::Enq(1)),
                Code::method(QueueMethod::Enq(1)),
                Code::method(QueueMethod::Deq),
            ]),
        );
        let programs = vec![vec![code]];
        let summary = summarize(&programs);
        let matrix = MoverMatrix::build(&spec, &summary.footprint);
        let diags = lint_programs(&spec, &programs, &summary, &matrix, &LintConfig::default());
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == UNREACHABLE_METHOD)
            .collect();
        assert_eq!(unreachable.len(), 1, "{diags:?}");
        assert!(
            unreachable[0].message.contains("deq()"),
            "{}",
            unreachable[0]
        );
        assert!(unreachable[0].span.is_some());
    }

    #[test]
    fn starred_counter_commits_and_reaches_everything() {
        let spec = Counter::new();
        let code = Code::star(Code::method(CtrMethod::Add(1)));
        let exp = explore_txn(&spec, &code, &LintConfig::default());
        assert_eq!(exp.commits, Tri::Yes);
        assert_eq!(exp.reached, vec![CtrMethod::Add(1)]);
    }

    #[test]
    fn mutual_conflicts_raise_pull_cycle() {
        let spec = QueueSpec::new();
        let programs = vec![
            vec![Code::method(QueueMethod::Enq(1))],
            vec![Code::method(QueueMethod::Deq)],
        ];
        let summary = summarize(&programs);
        let matrix = MoverMatrix::build(&spec, &summary.footprint);
        let diags = lint_programs(&spec, &programs, &summary, &matrix, &LintConfig::default());
        assert!(diags.iter().any(|d| d.lint == PULL_CYCLE), "{diags:?}");
    }

    #[test]
    fn mover_heavy_threads_have_no_pull_cycle() {
        let spec = Counter::new();
        let programs = vec![
            vec![Code::method(CtrMethod::Add(1))],
            vec![Code::method(CtrMethod::Add(2))],
        ];
        let summary = summarize(&programs);
        let matrix = MoverMatrix::build(&spec, &summary.footprint);
        let diags = lint_programs(&spec, &programs, &summary, &matrix, &LintConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn declaration_missing_required_rules_is_an_error() {
        let spec = Counter::new();
        let programs = vec![vec![Code::method(CtrMethod::Add(1))]];
        let summary = summarize(&programs);
        let matrix = MoverMatrix::build(&spec, &summary.footprint);
        let declared = RulePattern::from_iter([Rule::App, Rule::Cmt]); // omits PUSH
        let d = lint_declaration("bogus", declared, &summary, &matrix).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("PUSH"), "{d}");
        // A full declaration on an all-mover workload only gets the
        // dead-abort-rules note.
        let d = lint_declaration("boosting", RulePattern::all(), &summary, &matrix).unwrap();
        assert_eq!(d.severity, Severity::Note);
    }
}
