//! Conservative per-transaction summaries of `Code<M>` programs, derived
//! by walking the syntax with the paper's `step`/`fin` equations.
//!
//! A [`TxnSummary`] records the transaction's *method footprint* (every
//! method it may invoke, via [`Code::reachable_methods`]), whether it can
//! finish without invoking any method, and whether it contains a loop.
//! [`ProgramSummary`] aggregates a whole thread set and derives the §6
//! rule-usage facts that hold for **any** driver running these programs:
//! the rules that *must* fire on every completed run ([`ProgramSummary::
//! required`]) — the baseline the rule-pattern lint checks declarations
//! against.

use pushpull_core::error::Rule;
use pushpull_core::lang::Code;
use pushpull_core::static_facts::RulePattern;

/// Conservative static facts about one transaction body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSummary<M> {
    /// Thread index the transaction runs on.
    pub thread: usize,
    /// Index of the transaction within its thread's program list.
    pub index: usize,
    /// Every method the transaction may invoke (deduplicated, in first
    /// syntactic occurrence order).
    pub footprint: Vec<M>,
    /// Methods the transaction may invoke **twice or more in one
    /// execution** (so their self-pair shows up in PUSH (i)'s own-ops
    /// mover loop). A method occurring once per execution — even one
    /// duplicated across `Choice` branches — is excluded.
    pub repeated: Vec<M>,
    /// Can the transaction commit without invoking any method (`fin`
    /// holds of the whole body)?
    pub fin_immediate: bool,
    /// Does the body contain a `(c)*` loop (so its executions are not
    /// syntactically bounded)?
    pub has_loop: bool,
    /// Grammar-node size of the body.
    pub size: usize,
}

fn has_star<M>(code: &Code<M>) -> bool {
    match code {
        Code::Skip | Code::Method(_) => false,
        Code::Seq(a, b) | Code::Choice(a, b) => has_star(a) || has_star(b),
        Code::Star(_) => true,
        Code::Tx(a) | Code::OpenTx(a) => has_star(a),
    }
}

/// The maximum number of times a single execution of `code` may invoke
/// `m`: sequencing adds, choice takes the larger branch, and a loop whose
/// body can invoke `m` makes the count unbounded (`usize::MAX`).
pub fn max_occurrences<M: PartialEq>(code: &Code<M>, m: &M) -> usize {
    match code {
        Code::Skip => 0,
        Code::Method(n) => usize::from(n == m),
        Code::Seq(a, b) => max_occurrences(a, m).saturating_add(max_occurrences(b, m)),
        Code::Choice(a, b) => max_occurrences(a, m).max(max_occurrences(b, m)),
        Code::Star(a) => {
            if max_occurrences(a, m) > 0 {
                usize::MAX
            } else {
                0
            }
        }
        Code::Tx(a) | Code::OpenTx(a) => max_occurrences(a, m),
    }
}

/// Summarizes one transaction body.
pub fn summarize_txn<M: Clone + PartialEq>(
    thread: usize,
    index: usize,
    code: &Code<M>,
) -> TxnSummary<M> {
    let footprint = code.reachable_methods();
    let repeated = footprint
        .iter()
        .filter(|m| max_occurrences(code, m) >= 2)
        .cloned()
        .collect();
    TxnSummary {
        thread,
        index,
        footprint,
        repeated,
        fin_immediate: code.fin(),
        has_loop: has_star(code),
        size: code.size(),
    }
}

/// Static facts about a whole thread set (`programs[t][i]` is thread
/// `t`'s `i`-th transaction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSummary<M> {
    /// One summary per transaction, in (thread, index) order.
    pub txns: Vec<TxnSummary<M>>,
    /// Union of all footprints (deduplicated, first-occurrence order) —
    /// the method alphabet the mover matrix ranges over.
    pub footprint: Vec<M>,
    /// Methods that can have **two live operation instances at once**
    /// anywhere in the run: the sum over all transactions of each one's
    /// per-execution occurrence bound is ≥ 2. Only these methods'
    /// self-pairs can ever reach a runtime mover loop — a rewound
    /// (aborted) instance leaves the logs before its retry re-invokes
    /// the method, so single-occurrence methods never meet themselves.
    pub multi_instance: Vec<M>,
    /// Number of syntactic open-nested scopes (`otx`) across the thread
    /// set. Nonzero means aborts can replay *compensating* transactions
    /// whose methods are spec-level inverses — methods that need not
    /// appear anywhere in the syntactic footprint, so the static
    /// alphabet no longer bounds what the runtime mover loops compare.
    pub open_scopes: usize,
    /// Number of threads.
    pub threads: usize,
    /// Rules that must fire on every run that completes all transactions,
    /// for any driver: CMT whenever a transaction exists, plus APP and
    /// PUSH whenever some transaction cannot finish methodless (every
    /// invoked operation is APPed, and CMT requires it pushed).
    pub required: RulePattern,
}

/// Summarizes a thread set.
pub fn summarize<M: Clone + PartialEq>(programs: &[Vec<Code<M>>]) -> ProgramSummary<M> {
    let mut txns = Vec::new();
    let mut footprint: Vec<M> = Vec::new();
    for (thread, progs) in programs.iter().enumerate() {
        for (index, code) in progs.iter().enumerate() {
            let s = summarize_txn(thread, index, code);
            for m in &s.footprint {
                if !footprint.contains(m) {
                    footprint.push(m.clone());
                }
            }
            txns.push(s);
        }
    }
    let multi_instance = footprint
        .iter()
        .filter(|m| {
            let total: usize = programs
                .iter()
                .flatten()
                .map(|code| max_occurrences(code, m))
                .fold(0, usize::saturating_add);
            total >= 2
        })
        .cloned()
        .collect();
    let open_scopes = programs.iter().flatten().map(count_open).sum();
    let mut required = RulePattern::new();
    if !txns.is_empty() {
        required = required.with(Rule::Cmt);
    }
    if txns.iter().any(|t| !t.fin_immediate) {
        required = required.with(Rule::App).with(Rule::Push);
    }
    ProgramSummary {
        txns,
        footprint,
        multi_instance,
        open_scopes,
        threads: programs.len(),
        required,
    }
}

/// Number of `otx` nodes anywhere in `code` (including nested ones).
fn count_open<M>(code: &Code<M>) -> usize {
    match code {
        Code::Skip | Code::Method(_) => 0,
        Code::Seq(a, b) | Code::Choice(a, b) => count_open(a) + count_open(b),
        Code::Star(a) | Code::Tx(a) => count_open(a),
        Code::OpenTx(a) => 1 + count_open(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &'static str) -> Code<&'static str> {
        Code::method(s)
    }

    #[test]
    fn txn_summary_collects_footprint_and_shape() {
        let c = Code::seq(m("a"), Code::star(Code::choice(m("b"), m("a"))));
        let s = summarize_txn(0, 0, &c);
        assert_eq!(s.footprint, vec!["a", "b"]);
        // Both may repeat: `a` runs before and inside the loop, `b` loops.
        assert_eq!(s.repeated, vec!["a", "b"]);
        assert!(!s.fin_immediate);
        assert!(s.has_loop);
        assert_eq!(s.size, c.size());
    }

    #[test]
    fn occurrence_lattice_distinguishes_choice_from_seq() {
        // One execution of (a + a) runs `a` once; (a ; a) runs it twice.
        assert_eq!(max_occurrences(&Code::choice(m("a"), m("a")), &"a"), 1);
        assert_eq!(max_occurrences(&Code::seq(m("a"), m("a")), &"a"), 2);
        assert_eq!(max_occurrences(&Code::star(m("a")), &"a"), usize::MAX);
        assert_eq!(max_occurrences(&Code::star(m("b")), &"a"), 0);
        let once = Code::tx(Code::seq(m("a"), m("b")));
        assert!(summarize_txn(0, 0, &once).repeated.is_empty());
    }

    #[test]
    fn program_summary_unions_footprints() {
        let programs = vec![
            vec![m("a"), Code::seq(m("b"), m("a"))],
            vec![Code::star(m("c"))],
        ];
        let s = summarize(&programs);
        assert_eq!(s.txns.len(), 3);
        assert_eq!(s.footprint, vec!["a", "b", "c"]);
        assert_eq!(s.threads, 2);
        // Some txn must run a method: APP+PUSH+CMT required.
        assert!(s.required.contains(Rule::App));
        assert!(s.required.contains(Rule::Push));
        assert!(s.required.contains(Rule::Cmt));
        assert!(!s.required.contains(Rule::Pull));
    }

    #[test]
    fn methodless_programs_require_only_cmt() {
        let programs: Vec<Vec<Code<&str>>> = vec![vec![Code::Skip, Code::star(m("a"))]];
        let s = summarize(&programs);
        // Both transactions can finish without running a method.
        assert_eq!(s.required.rules(), vec![Rule::Cmt]);
    }

    #[test]
    fn empty_thread_set_requires_nothing() {
        let s = summarize::<&str>(&[]);
        assert!(s.required.is_empty());
        assert!(s.footprint.is_empty());
    }
}
