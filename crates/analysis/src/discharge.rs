//! The static criteria prover: turns a mover matrix plus a program
//! summary into a [`StaticDischarge`] — the set of rule clauses whose
//! runtime mover loops are provable ahead of time.
//!
//! The four mover-loop clauses of the machine and their proof conditions:
//!
//! | clause | runtime loop | static condition |
//! |---|---|---|
//! | PUSH (i) | earlier not-pushed *own* ops ◁ the pushed op | every txn's footprint internally all-mover |
//! | PUSH (ii) | uncommitted *other-txn* ops in `G` ◁ the pushed op | all reachable ordered pairs over the union footprint |
//! | UNPUSH (i) | the unpushed op ◁ the suffix of `G` | all reachable ordered pairs over the union footprint |
//! | PULL (iii) | own local ops ◁ the pulled op | all reachable ordered pairs over the union footprint |
//!
//! PUSH (i) ranges only over operations of the *same* transaction, so it
//! is discharged per-transaction: mover-heavy cross-transaction conflicts
//! do not block it. The other three clauses may compare operations of any
//! two transactions (including committed history), so they need the full
//! alphabet proven. "Reachable" excludes self-pairs of methods that can
//! never have two live operation instances at once
//! ([`ProgramSummary::multi_instance`]): a runtime loop only ever
//! compares ops *currently in the logs*, and an aborted instance is
//! rewound out of them before its retry re-invokes the method. CMT has
//! no mover clause in this rendering — its criteria are structural
//! (everything pushed, `fin` reached) plus the `allowed`-prefix check;
//! see DESIGN.md §8.
//!
//! Soundness: a `Some(true)` cell means `m₁ ◁ m₂` holds for **every**
//! observable return pair ([`SeqSpec::method_mover`]'s contract), and the
//! runtime only ever compares operations whose methods are in the
//! footprints walked here, so an elided loop can never have failed. Debug
//! builds re-run every elided predicate and assert agreement.
//!
//! **Nesting.** Closed-nested scopes (`tx` markers, checkpoints) need no
//! per-level treatment: a closed child shares its parent's flat local
//! log and transaction identity, so the flat per-transaction and
//! cross-transaction conditions above already cover every closed level
//! exactly. Open-nested scopes (`otx`) are different in two ways. A
//! child's PUSH (i) loop still ranges over the *parent's* earlier
//! unpushed entries (one flat log), so the per-transaction condition
//! must stay flat — splitting the footprint per level would elide
//! parent-vs-child comparisons that really run. And a parent abort
//! replays *compensating* transactions built from spec-level inverses —
//! methods that need not occur anywhere in the program syntax, so the
//! static alphabet no longer bounds what later mover loops (the
//! compensation's own pushes, and every subsequent UNPUSH (i) /
//! PULL (iii) sliding across committed compensation entries in `G`)
//! compare. [`prove`] therefore refuses **all** elision for thread sets
//! containing an `otx`: every level stays exactly dynamically checked,
//! and the open-nesting guarantees come from the certified inverse law
//! ([`pushpull_core::SpecCertificate::open_nesting_certified`]) instead.

use pushpull_core::error::{Clause, Rule};
use pushpull_core::spec::SeqSpec;
use pushpull_core::static_facts::StaticDischarge;

use crate::matrix::MoverMatrix;
use crate::summary::ProgramSummary;

/// The prover's output: the discharge set plus the matrix it was proved
/// from (kept for reports and further lints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DischargeOutcome<M> {
    /// The proven obligations, ready to arm a
    /// [`GlobalState`](pushpull_core::GlobalState).
    pub facts: StaticDischarge,
    /// The cached mover matrix over the union footprint.
    pub matrix: MoverMatrix<M>,
}

/// Proves whatever mover clauses the matrix supports for these programs.
pub fn prove<S: SeqSpec>(
    spec: &S,
    summary: &ProgramSummary<S::Method>,
) -> DischargeOutcome<S::Method> {
    let matrix = MoverMatrix::build(spec, &summary.footprint);
    let mut facts = StaticDischarge::none();
    facts.proven_pairs = matrix.proven_pairs();
    facts.alphabet = matrix.len();

    // Open-nested programs can replay compensating transactions whose
    // inverse methods lie outside the syntactic alphabet proved here, so
    // no clause may be elided (see the module docs' nesting section).
    if summary.open_scopes > 0 {
        return DischargeOutcome { facts, matrix };
    }

    // PUSH (i) compares *distinct* operations of one transaction, so a
    // self-pair (m, m) only matters for methods the transaction can run
    // twice in one execution (`TxnSummary::repeated`).
    let txn_internally_proven = |t: &crate::summary::TxnSummary<S::Method>| {
        t.footprint.iter().all(|m1| {
            t.footprint
                .iter()
                .all(|m2| (m1 == m2 && !t.repeated.contains(m1)) || matrix.proven(m1, m2))
        })
    };
    if summary.txns.iter().all(txn_internally_proven) {
        facts.add(Rule::Push, Clause::I);
    }
    // Cross-transaction clauses: every ordered pair, except self-pairs
    // of methods that can never be live twice (at most one instance of
    // them is ever in the logs, so no loop can pit one against itself).
    let cross_txn_proven = summary.footprint.iter().all(|m1| {
        summary
            .footprint
            .iter()
            .all(|m2| (m1 == m2 && !summary.multi_instance.contains(m1)) || matrix.proven(m1, m2))
    });
    if cross_txn_proven {
        facts.add(Rule::Push, Clause::Ii);
        facts.add(Rule::UnPush, Clause::I);
        facts.add(Rule::Pull, Clause::Iii);
    }
    DischargeOutcome { facts, matrix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use pushpull_core::lang::Code;
    use pushpull_spec::bank::{Bank, BankMethod};
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::queue::{QueueMethod, QueueSpec};

    #[test]
    fn mover_heavy_workload_discharges_all_four_clauses() {
        let programs: Vec<Vec<Code<CtrMethod>>> = (0..3)
            .map(|t| vec![Code::method(CtrMethod::Add(t + 1))])
            .collect();
        let out = prove(&Counter::new(), &summarize(&programs));
        assert!(out.facts.discharges(Rule::Push, Clause::I));
        assert!(out.facts.discharges(Rule::Push, Clause::Ii));
        assert!(out.facts.discharges(Rule::UnPush, Clause::I));
        assert!(out.facts.discharges(Rule::Pull, Clause::Iii));
        assert_eq!(out.facts.obligations().len(), 4);
    }

    #[test]
    fn conflict_heavy_workload_discharges_nothing() {
        // Enq ◁̸ Deq, and both appear inside one transaction, so even the
        // per-transaction PUSH (i) clause is unprovable.
        let programs: Vec<Vec<Code<QueueMethod>>> = vec![
            vec![Code::seq(
                Code::method(QueueMethod::Enq(1)),
                Code::method(QueueMethod::Deq),
            )],
            vec![Code::method(QueueMethod::Deq)],
        ];
        let out = prove(&QueueSpec::new(), &summarize(&programs));
        assert!(!out.facts.any());
        assert_eq!(out.facts.alphabet, 2);
    }

    #[test]
    fn single_op_transactions_prove_push_i_vacuously() {
        // PUSH (i) only ranges over *earlier own* operations; a
        // transaction with one op has none, so conflicts across threads
        // do not block it.
        let programs: Vec<Vec<Code<QueueMethod>>> = vec![
            vec![Code::method(QueueMethod::Enq(1))],
            vec![Code::method(QueueMethod::Deq)],
        ];
        let out = prove(&QueueSpec::new(), &summarize(&programs));
        assert!(out.facts.discharges(Rule::Push, Clause::I));
        assert!(!out.facts.discharges(Rule::Push, Clause::Ii));
        assert!(!out.facts.discharges(Rule::UnPush, Clause::I));
        assert!(!out.facts.discharges(Rule::Pull, Clause::Iii));
    }

    #[test]
    fn push_i_survives_cross_transaction_conflicts() {
        // Each transfer touches two distinct accounts (internally
        // all-mover), but different transactions share accounts with
        // non-mover withdraw pairs: PUSH (i) is still provable while the
        // cross-transaction clauses are not.
        let programs: Vec<Vec<Code<BankMethod>>> = vec![
            vec![Code::seq(
                Code::method(BankMethod::Withdraw(0, 5)),
                Code::method(BankMethod::Deposit(1, 5)),
            )],
            vec![Code::seq(
                Code::method(BankMethod::Withdraw(1, 5)),
                Code::method(BankMethod::Deposit(0, 5)),
            )],
        ];
        let out = prove(&Bank::new(), &summarize(&programs));
        assert!(out.facts.discharges(Rule::Push, Clause::I));
        assert!(!out.facts.discharges(Rule::Push, Clause::Ii));
        assert!(!out.facts.discharges(Rule::Pull, Clause::Iii));
    }

    #[test]
    fn single_instance_self_pairs_do_not_block_cross_txn_clauses() {
        use pushpull_spec::kvmap::{KvMap, MapMethod};
        // Put(k,v) ◁̸ Put(k,v) in the method-level oracle, but each write
        // occurs once in the whole thread set, so no loop can ever
        // compare one against itself: all four clauses still discharge.
        let programs: Vec<Vec<Code<MapMethod>>> = (0..3)
            .map(|t| vec![Code::method(MapMethod::Put(t, 1))])
            .collect();
        let out = prove(&KvMap::new(), &summarize(&programs));
        assert!(out.facts.discharges(Rule::Push, Clause::Ii));
        assert!(out.facts.discharges(Rule::Pull, Clause::Iii));

        // Duplicating one write across threads makes its self-pair
        // reachable, and the proof collapses.
        let programs: Vec<Vec<Code<MapMethod>>> = (0..2)
            .map(|_| vec![Code::method(MapMethod::Put(7, 1))])
            .collect();
        let out = prove(&KvMap::new(), &summarize(&programs));
        assert!(!out.facts.discharges(Rule::Push, Clause::Ii));
        // PUSH (i) is still fine: within each txn the method runs once.
        assert!(out.facts.discharges(Rule::Push, Clause::I));
    }

    #[test]
    fn open_nested_programs_refuse_all_elision() {
        // The same mover-heavy counter workload that discharges all four
        // clauses flat (above) arms nothing once one transaction nests
        // an open scope: its abort path may replay Add(-k) compensations
        // the static alphabet never saw.
        let programs: Vec<Vec<Code<CtrMethod>>> = vec![
            vec![Code::tx(Code::seq(
                Code::method(CtrMethod::Add(1)),
                Code::otx(Code::method(CtrMethod::Add(2))),
            ))],
            vec![Code::method(CtrMethod::Add(3))],
        ];
        let summary = summarize(&programs);
        assert_eq!(summary.open_scopes, 1);
        let out = prove(&Counter::new(), &summary);
        assert!(!out.facts.any(), "{:?}", out.facts);
        // Closed nesting keeps the flat discharge: tx markers share the
        // parent's log and transaction, so nothing changes.
        let closed: Vec<Vec<Code<CtrMethod>>> = vec![
            vec![Code::tx(Code::seq(
                Code::method(CtrMethod::Add(1)),
                Code::tx(Code::method(CtrMethod::Add(2))),
            ))],
            vec![Code::method(CtrMethod::Add(3))],
        ];
        let summary = summarize(&closed);
        assert_eq!(summary.open_scopes, 0);
        let out = prove(&Counter::new(), &summary);
        assert!(out.facts.discharges(Rule::Push, Clause::I));
        assert!(out.facts.discharges(Rule::Push, Clause::Ii));
    }

    #[test]
    fn empty_programs_discharge_vacuously() {
        let programs: Vec<Vec<Code<CtrMethod>>> = vec![vec![Code::Skip]];
        let out = prove(&Counter::new(), &summarize(&programs));
        assert!(out.facts.any(), "empty alphabet proves vacuously");
        assert_eq!(out.facts.alphabet, 0);
    }
}
