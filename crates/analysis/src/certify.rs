//! The whole-spec certifier: machine-checked soundness certificates for
//! spec declarations.
//!
//! [`certify`] derives, from nothing but a spec's denotational semantics
//! (via [`crate::infer`]), the ground-truth method-level mover matrix and
//! the minimal sound footprint assignment, then cross-checks every
//! hand-written [`method_mover`](SeqSpec::method_mover) and
//! [`method_keys`](SeqSpec::method_keys) override — plus the two
//! footprint laws (disjointness ⇒ both-mover, single-key factorization
//! of `allowed`) — against that ground truth. Each unsound, incomplete,
//! or needlessly-coarse declaration becomes a rustc-style
//! [`Diagnostic`]; the checked facts are packaged as a serializable
//! [`SpecCertificate`] that
//! [`GlobalState`](pushpull_core::GlobalState) can demand (strict mode)
//! before it arms static discharge or fine-grained shard routing.
//!
//! Severity ladder for mover findings:
//!
//! * a `Some(true)` override the exhaustive derivation *refutes* is an
//!   **error** ([`UNSOUND_MOVER`]) — the runtime would elide checks
//!   that can fail;
//! * a refused pair (`Some(false)`/`None`) the derivation *proves* is
//!   **incomplete** ([`INCOMPLETE_MOVER`]): a **warning** when the
//!   proof is structurally certain (a method self-pair with a single
//!   observable return denotes identically in both orders, so no
//!   universe bound can explain the refusal), otherwise a **note**
//!   (exhaustiveness over a bounded universe can be *more* permissive
//!   than a sound algebraic oracle — a larger universe might refute
//!   the pair).
//!
//! Footprint findings: law violations are **errors**
//! ([`UNSOUND_FOOTPRINT`], [`UNSOUND_FACTORIZATION`]); a method
//! declaring no footprint is a **warning** ([`COARSE_FORCING`] — it
//! degrades every sharded log it touches to the coarse path); a shared
//! key class joining methods that provably never conflict is a **note**
//! ([`NEEDLESSLY_COARSE`]).

use std::fmt;
use std::sync::Arc;

use pushpull_core::certificate::SpecCertificate;
use pushpull_core::error::{Clause, Rule};
use pushpull_core::lang::Code;
use pushpull_core::op::{Op, OpId, TxnId};
use pushpull_core::spec::{
    disjoint_commute_violations, factorization_violations, observable_rets, SeqSpec,
};

use crate::diagnostics::{find_method, Diagnostic, Severity, Span};
use crate::infer::{infer, InferredSpec};
use crate::matrix::MoverMatrix;

/// A `method_mover` override claims `Some(true)` on a pair the
/// exhaustive Definition 4.1 derivation refutes.
pub const UNSOUND_MOVER: &str = "unsound-mover-override";
/// A `method_mover` override refuses a pair the exhaustive derivation
/// proves for every observable return pair.
pub const INCOMPLETE_MOVER: &str = "incomplete-mover-override";
/// Disjoint declared footprints on a pair that is not an exhaustive
/// both-mover (footprint law 1).
pub const UNSOUND_FOOTPRINT: &str = "unsound-footprint";
/// `allowed` fails to factorize over the declared single-key classes
/// (footprint law 2).
pub const UNSOUND_FACTORIZATION: &str = "unsound-factorization";
/// A method declares no footprint (`method_keys` → `None`), forcing
/// every sharded log it touches onto the coarse whole-log path.
pub const COARSE_FORCING: &str = "coarse-forcing";
/// A declared key class joins methods that provably never conflict.
pub const NEEDLESSLY_COARSE: &str = "needlessly-coarse";
/// The spec exposes no finite state/method universe to certify against.
pub const UNCERTIFIABLE: &str = "uncertifiable-spec";
/// An `inverse` verdict the exhaustive law check refutes: an
/// `Inverse(m, r)` whose round-trip `⟦ℓ · op · op⁻¹⟧ = ⟦ℓ⟧` fails, or a
/// `ReadOnly` operation that changes state.
pub const UNSOUND_INVERSE: &str = "unsound-inverse";
/// `has_inverses()` claims every operation invertible, but some
/// observable operation is `NotInvertible`.
pub const UNSOUND_INVERSE_CLAIM: &str = "unsound-inverse-claim";
/// A program opens an `otx` scope over a method with `NotInvertible`
/// operations: the open commit is guaranteed to be refused at runtime.
pub const OPEN_NESTING_REFUSED: &str = "open-nesting-refused";
/// The spec has non-invertible operations (and does not claim
/// otherwise), so open-nested scopes cannot commit methods built on
/// them.
pub const OPEN_NESTING_UNAVAILABLE: &str = "open-nesting-unavailable";

/// The four machine obligations a fully-proven matrix discharges
/// spec-wide (the same set `discharge::prove` targets per-workload).
const SPEC_OBLIGATIONS: [(Rule, Clause); 4] = [
    (Rule::Push, Clause::I),
    (Rule::Push, Clause::Ii),
    (Rule::UnPush, Clause::I),
    (Rule::Pull, Clause::Iii),
];

/// Longest factored log the factorization law is checked on. Dropped to
/// 2 for large samples so the sequence enumeration stays test-sized.
const FACTOR_LEN: usize = 3;
const FACTOR_LEN_LARGE_SAMPLE: usize = 2;
const FACTOR_SAMPLE_CAP: usize = 18;

/// The certifier's output: the checked certificate plus every finding
/// that went into its error/warning/note tallies.
#[derive(Debug, Clone)]
pub struct Certification {
    /// The machine-checked facts, ready for
    /// [`GlobalState::install_certificate`](pushpull_core::GlobalState::install_certificate).
    pub certificate: Arc<SpecCertificate>,
    /// Every finding, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Certification {
    /// Did the spec certify without errors? (Warnings and notes — e.g. a
    /// deliberately coarse `Size` footprint — do not invalidate.)
    pub fn is_valid(&self) -> bool {
        self.certificate.is_valid()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.certificate.errors
    }
}

/// Certifies `spec` with no program context (all diagnostics global).
pub fn certify<S: SeqSpec>(spec: &S, name: &str) -> Result<Certification, Box<Diagnostic>>
where
    S::Method: fmt::Display,
{
    certify_in(spec, name, &[])
}

/// Certifies `spec`, anchoring each finding at the first syntactic
/// occurrence of its method in `programs` (when it occurs at all) so the
/// report reads like compiler output over the workload's source.
pub fn certify_in<S: SeqSpec>(
    spec: &S,
    name: &str,
    programs: &[Vec<Code<S::Method>>],
) -> Result<Certification, Box<Diagnostic>>
where
    S::Method: fmt::Display,
{
    let Some(inf) = infer(spec) else {
        return Err(Box::new(
            Diagnostic::global(
                Severity::Note,
                UNCERTIFIABLE,
                format!(
                    "spec `{name}` cannot be certified: it exposes no finite \
                 state/method universe (`state_universe`/`method_universe`)"
                ),
            )
            .with_note(
                "bounded spec variants certify; unbounded overrides stay trusted-but-unchecked",
            ),
        ));
    };
    let states = spec
        .state_universe()
        .expect("infer() succeeded, so the state universe exists");
    let declared = MoverMatrix::build(spec, &inf.methods);
    let mut diags = Vec::new();

    check_mover_matrix::<S>(&inf, &declared, programs, &mut diags);
    check_footprints(spec, &states, &inf, programs, &mut diags);
    let inverse_law = check_inverses(spec, &states, &inf, programs, &mut diags);

    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    let errors = count(&diags, Severity::Error);
    let warnings = count(&diags, Severity::Warning);
    let notes = count(&diags, Severity::Note);

    // Obligations discharged spec-wide: with every ordered pair of the
    // method universe a proven mover, all four mover loops are provable
    // for any program over this spec. (Workload-specific discharge — the
    // common case — still comes from `discharge::prove`.)
    let obligations = if inf.matrix.all_pairs_proven() {
        SPEC_OBLIGATIONS
            .iter()
            .map(|(r, c)| format!("{r} {c}"))
            .collect()
    } else {
        Vec::new()
    };

    let footprints: Vec<Option<Vec<u64>>> = inf
        .methods
        .iter()
        .map(|m| spec.method_keys(m).map(|ks| ks.iter().copied().collect()))
        .collect();
    let shard_keys = if footprints.iter().any(Option::is_none) {
        0
    } else {
        let mut keys: Vec<u64> = footprints.iter().flatten().flatten().copied().collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };

    let certificate = SpecCertificate {
        spec_name: name.to_string(),
        methods: inf.methods.iter().map(ToString::to_string).collect(),
        matrix: inf.matrix.cells().to_vec(),
        footprints,
        components: inf.components.clone(),
        obligations,
        inverse_law,
        shard_keys,
        errors,
        warnings,
        notes,
    };
    Ok(Certification {
        certificate: Arc::new(certificate),
        diagnostics: diags,
    })
}

fn count(diags: &[Diagnostic], sev: Severity) -> usize {
    diags.iter().filter(|d| d.severity == sev).count()
}

/// Anchors a finding at `m`'s first occurrence in `programs`, else
/// leaves it global.
fn at_method<M: Clone + Eq + fmt::Display>(
    diag: Diagnostic,
    programs: &[Vec<Code<M>>],
    m: &M,
) -> Diagnostic {
    for (thread, txns) in programs.iter().enumerate() {
        for (txn, code) in txns.iter().enumerate() {
            if let Some(path) = find_method(code, m) {
                return Diagnostic {
                    span: Some(Span { thread, txn, path }),
                    snippet: Some(m.to_string()),
                    ..diag
                };
            }
        }
    }
    diag
}

/// Cross-checks every declared matrix cell against the exhaustive one.
fn check_mover_matrix<S: SeqSpec>(
    inf: &InferredSpec<S::Method>,
    declared: &MoverMatrix<S::Method>,
    programs: &[Vec<Code<S::Method>>],
    diags: &mut Vec<Diagnostic>,
) where
    S::Method: fmt::Display,
{
    for (i, m1) in inf.methods.iter().enumerate() {
        for (j, m2) in inf.methods.iter().enumerate() {
            let truth = inf
                .matrix
                .query(m1, m2)
                .expect("exhaustive matrix decides every cell");
            let claim = declared.query(m1, m2);
            if claim == Some(true) && !truth {
                let d = Diagnostic::global(
                    Severity::Error,
                    UNSOUND_MOVER,
                    format!(
                        "`{m1} ◁ {m2}` is declared a universal mover, but the exhaustive \
                         Definition 4.1 derivation over the spec's universe refutes it"
                    ),
                )
                .with_note(
                    "a `Some(true)` override lets the runtime elide mover checks that can \
                     fail; weaken the override (or fix the denotation)",
                );
                diags.push(at_method(d, programs, m1));
            } else if claim != Some(true) && truth {
                let structurally_certain = i == j && inf.single_ret[i];
                let (severity, why) = if structurally_certain {
                    (
                        Severity::Warning,
                        "a self-pair of a single-return method denotes identically in both \
                         orders; no universe bound can explain the refusal",
                    )
                } else {
                    (
                        Severity::Note,
                        "this may be a universe-bound artifact: a larger universe could \
                         refute the pair, so verify algebraically before promoting the \
                         override to `Some(true)`",
                    )
                };
                let d = Diagnostic::global(
                    severity,
                    INCOMPLETE_MOVER,
                    format!(
                        "`{m1} ◁ {m2}` is declared {} but holds for every observable \
                         return pair over the spec's universe",
                        match claim {
                            Some(false) => "`Some(false)`",
                            _ => "undecided (`None`)",
                        },
                    ),
                )
                .with_note(why);
                diags.push(at_method(d, programs, m1));
            }
        }
    }
}

/// Certifies the inverse oracle against the round-trip law, exhaustively
/// over every observable operation of the finite alphabet and every
/// universe state:
///
/// * `Inverse(m, r)` must satisfy `⟦ℓ · op · op⁻¹⟧ = ⟦ℓ⟧` wherever
///   `ℓ · op` is allowed;
/// * `ReadOnly` must satisfy `⟦ℓ · op⟧ = ⟦ℓ⟧` (state identity);
/// * `NotInvertible` is always sound — unless
///   [`has_inverses`](SeqSpec::has_inverses) claims otherwise, which is
///   an **error** ([`UNSOUND_INVERSE_CLAIM`]).
///
/// Returns the certificate's verdict: `Some(true)` when the spec claims
/// invertibility and the law held everywhere (strict mode may arm open
/// nesting on it), `Some(false)` when the claim was refuted, `None`
/// when the spec makes no claim — then any `otx` in `programs` whose
/// body reaches a non-invertible method draws an
/// [`OPEN_NESTING_REFUSED`] **warning** (the runtime commit *will*
/// fail), and the non-invertible alphabet is surfaced as a **note**
/// ([`OPEN_NESTING_UNAVAILABLE`]).
fn check_inverses<S: SeqSpec>(
    spec: &S,
    states: &[S::State],
    inf: &InferredSpec<S::Method>,
    programs: &[Vec<Code<S::Method>>],
    diags: &mut Vec<Diagnostic>,
) -> Option<bool>
where
    S::Method: fmt::Display,
{
    use pushpull_core::spec::OpInverse;
    use std::collections::HashSet;

    let claims = spec.has_inverses();
    let mut refuted = false;
    let mut not_invertible: Vec<S::Method> = Vec::new();
    let mut next_id = 0u64;
    for m in &inf.methods {
        for r in observable_rets(spec, states, m) {
            let op = Op::new(OpId(next_id), TxnId(0), m.clone(), r);
            next_id += 1;
            match spec.inverse(&op) {
                OpInverse::NotInvertible => {
                    if claims {
                        refuted = true;
                        let d = Diagnostic::global(
                            Severity::Error,
                            UNSOUND_INVERSE_CLAIM,
                            format!(
                                "`has_inverses()` claims every operation invertible, but \
                                 `{m}` (ret {:?}) is `NotInvertible`",
                                op.ret
                            ),
                        )
                        .with_note(
                            "an open-nested commit would trust the claim at scope entry and \
                             fail only at commit; drop the claim or complete the oracle",
                        );
                        diags.push(at_method(d, programs, m));
                    } else if !not_invertible.contains(m) {
                        not_invertible.push(m.clone());
                    }
                }
                OpInverse::ReadOnly => {
                    for s in states {
                        let start: HashSet<S::State> = std::iter::once(s.clone()).collect();
                        let fwd = spec.denote_from(&start, std::slice::from_ref(&op));
                        if !fwd.is_empty() && fwd != start {
                            refuted = true;
                            let d = Diagnostic::global(
                                Severity::Error,
                                UNSOUND_INVERSE,
                                format!(
                                    "`{m}` (ret {:?}) is declared `ReadOnly` but changes \
                                     state: a compensation would silently skip its undo",
                                    op.ret
                                ),
                            )
                            .with_note(
                                "`ReadOnly` asserts ⟦ℓ · op⟧ = ⟦ℓ⟧; return an `Inverse` \
                                 (or `NotInvertible`) for state-changing operations",
                            );
                            diags.push(at_method(d, programs, m));
                            break;
                        }
                    }
                }
                OpInverse::Inverse(im, ir) => {
                    let inv = Op::new(OpId(next_id), TxnId(0), im, ir);
                    next_id += 1;
                    for s in states {
                        let start: HashSet<S::State> = std::iter::once(s.clone()).collect();
                        let fwd = spec.denote_from(&start, std::slice::from_ref(&op));
                        if fwd.is_empty() {
                            continue; // op not allowed here
                        }
                        let round = spec.denote_from(&fwd, std::slice::from_ref(&inv));
                        if round != start {
                            refuted = true;
                            let d = Diagnostic::global(
                                Severity::Error,
                                UNSOUND_INVERSE,
                                format!(
                                    "inverse law fails for `{m}` (ret {:?}): applying the \
                                     declared inverse `{}` does not restore every pre-state",
                                    op.ret, inv.method
                                ),
                            )
                            .with_note(
                                "a parent abort replays this inverse as a compensation; an \
                                 unfaithful one corrupts the abstract state",
                            );
                            diags.push(at_method(d, programs, m));
                            break;
                        }
                    }
                }
            }
        }
    }
    if claims {
        return Some(!refuted);
    }
    if !not_invertible.is_empty() {
        // Lint: an `otx` body that reaches a non-invertible method is
        // statically doomed — its open commit must be refused.
        for m in &not_invertible {
            if programs
                .iter()
                .flatten()
                .any(|code| open_bodies_reach(code, false, m))
            {
                let d = Diagnostic::global(
                    Severity::Warning,
                    OPEN_NESTING_REFUSED,
                    format!(
                        "an open-nested (`otx`) scope invokes `{m}`, whose operations \
                         are `NotInvertible`: the open commit will be refused at runtime"
                    ),
                )
                .with_note(
                    "move the method outside the otx body, or give its operations a \
                     spec-level inverse",
                );
                diags.push(at_method(d, programs, m));
            }
        }
        let names: Vec<String> = not_invertible.iter().map(ToString::to_string).collect();
        diags.push(Diagnostic::global(
            Severity::Note,
            OPEN_NESTING_UNAVAILABLE,
            format!(
                "open nesting is unavailable over {} of {} certified method(s) \
                 ({}): their operations have no spec-level inverse",
                names.len(),
                inf.methods.len(),
                names.join(", ")
            ),
        ));
    }
    None
}

/// Does some `otx` body in `code` reach method `m`? (`inside` tracks
/// whether the walk is currently under an `otx` node.)
fn open_bodies_reach<M: PartialEq>(code: &Code<M>, inside: bool, m: &M) -> bool {
    match code {
        Code::Skip => false,
        Code::Method(n) => inside && n == m,
        Code::Seq(a, b) | Code::Choice(a, b) => {
            open_bodies_reach(a, inside, m) || open_bodies_reach(b, inside, m)
        }
        Code::Star(a) | Code::Tx(a) => open_bodies_reach(a, inside, m),
        Code::OpenTx(a) => open_bodies_reach(a, true, m),
    }
}

/// Checks the two footprint laws plus the coverage lints
/// (coarse-forcing `None` footprints, needlessly-coarse shared classes).
fn check_footprints<S: SeqSpec>(
    spec: &S,
    states: &[S::State],
    inf: &InferredSpec<S::Method>,
    programs: &[Vec<Code<S::Method>>],
    diags: &mut Vec<Diagnostic>,
) where
    S::Method: fmt::Display,
{
    // Law 1: disjoint declared footprints must commute exhaustively.
    for v in disjoint_commute_violations(spec, states, &inf.methods) {
        let d = Diagnostic::global(Severity::Error, UNSOUND_FOOTPRINT, v.to_string()).with_note(
            "disjoint footprints license shard-local mover checks; a non-commuting pair \
             routed to different shards would be reordered unsoundly",
        );
        diags.push(at_method(d, programs, &v.m1));
    }

    // Law 2: `allowed` must factorize over single-key classes. The
    // sample is every op a routed method can produce anywhere in the
    // universe (the same enumeration the machine's APP rule draws from).
    let mut sample: Vec<Op<S::Method, S::Ret>> = Vec::new();
    for m in &inf.methods {
        if spec.method_keys(m).is_some_and(|ks| ks.len() == 1) {
            for r in observable_rets(spec, states, m) {
                let id = sample.len() as u64;
                sample.push(Op::new(OpId(id), TxnId(0), m.clone(), r));
            }
        }
    }
    let max_len = if sample.len() > FACTOR_SAMPLE_CAP {
        FACTOR_LEN_LARGE_SAMPLE
    } else {
        FACTOR_LEN
    };
    for v in factorization_violations(spec, &sample, max_len) {
        let m = v.log.first().map(|op| op.method.clone());
        let d = Diagnostic::global(Severity::Error, UNSOUND_FACTORIZATION, v.to_string())
            .with_note(
                "sharded logs answer `G allows op` from per-shard committed prefixes; a \
                 log that is allowed per key class but refused whole (or vice versa) \
                 breaks that locality",
            );
        diags.push(match m {
            Some(m) => at_method(d, programs, &m),
            None => d,
        });
    }

    // Coverage: `None` footprints force the coarse path.
    for m in &inf.methods {
        if spec.method_keys(m).is_none() {
            let d = Diagnostic::global(
                Severity::Warning,
                COARSE_FORCING,
                format!(
                    "`{m}` declares no footprint (`method_keys` → `None`): every \
                     transaction invoking it degrades a sharded log to the coarse \
                     whole-log path"
                ),
            )
            .with_note("declare a key class if the method's footprint is expressible");
            diags.push(at_method(d, programs, m));
        }
    }

    // Coverage: a shared key class joining methods that provably never
    // conflict (different components of the inferred conflict graph).
    // Conflict-free methods are skipped — they commute with everything,
    // so any routing for them is sound and equally parallel.
    for (i, m1) in inf.methods.iter().enumerate() {
        for (j, m2) in inf.methods.iter().enumerate().skip(i + 1) {
            if inf.components[i] == inf.components[j]
                || inf.conflict_free[i]
                || inf.conflict_free[j]
            {
                continue;
            }
            let (Some(k1), Some(k2)) = (spec.method_keys(m1), spec.method_keys(m2)) else {
                continue;
            };
            let Some(shared) = k1.iter().find(|k| k2.contains(k)) else {
                continue;
            };
            let d = Diagnostic::global(
                Severity::Note,
                NEEDLESSLY_COARSE,
                format!(
                    "`{m1}` and `{m2}` share declared key class {shared} but provably \
                     never conflict (distinct components of the inferred conflict graph)"
                ),
            )
            .with_note("splitting their key classes would unlock disjoint-access parallelism");
            diags.push(at_method(d, programs, m1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_spec::counter::Counter;
    use pushpull_spec::kvmap::KvMap;
    use pushpull_spec::queue::QueueSpec;

    #[test]
    fn unbounded_spec_is_uncertifiable() {
        let err = certify(&Counter::new(), "counter").unwrap_err();
        assert_eq!(err.lint, UNCERTIFIABLE);
        assert_eq!(err.severity, Severity::Note);
    }

    #[test]
    fn bounded_counter_certifies_cleanly() {
        let cert = certify(&Counter::with_universe(2), "counter").unwrap();
        assert!(cert.is_valid(), "{:?}", cert.diagnostics);
        assert_eq!(cert.errors(), 0);
        assert_eq!(cert.certificate.shard_keys, 1);
        // Get conflicts with Add(k≠0): not everything is a mover, so no
        // spec-wide obligations.
        assert!(cert.certificate.obligations.is_empty());
    }

    #[test]
    fn kvmap_size_is_coarse_forcing_but_valid() {
        let cert = certify(&KvMap::bounded(vec![0, 1], vec![1]), "kvmap").unwrap();
        assert!(cert.is_valid(), "{:?}", cert.diagnostics);
        assert!(
            cert.diagnostics
                .iter()
                .any(|d| d.lint == COARSE_FORCING && d.severity == Severity::Warning),
            "Size must be flagged coarse-forcing: {:?}",
            cert.diagnostics
        );
        // Size poisons the declared cover: coarse (0 shard keys).
        assert_eq!(cert.certificate.shard_keys, 0);
    }

    #[test]
    fn queue_certifies_with_single_class() {
        let cert = certify(&QueueSpec::bounded(vec![1, 2], 2), "queue").unwrap();
        assert!(cert.is_valid(), "{:?}", cert.diagnostics);
        assert_eq!(cert.certificate.shard_keys, 1);
    }

    #[test]
    fn counter_inverse_law_certifies() {
        let cert = certify(&Counter::with_universe(2), "counter").unwrap();
        assert_eq!(cert.certificate.inverse_law, Some(true));
        assert!(cert.certificate.open_nesting_certified());
    }

    #[test]
    fn unsound_inverse_claim_is_refuted() {
        use pushpull_core::op::Op;
        use pushpull_core::spec::{KeySet, OpInverse, SeqSpec};
        use pushpull_spec::counter::{CtrMethod, CtrRet};

        /// Claims `has_inverses` but "undoes" `Add(k)` with another
        /// `Add(k)` — the round trip lands at `s + 2k`, not `s`.
        struct DoubleDown {
            inner: Counter,
        }
        impl SeqSpec for DoubleDown {
            type Method = CtrMethod;
            type Ret = CtrRet;
            type State = i64;
            fn initial_states(&self) -> Vec<i64> {
                self.inner.initial_states()
            }
            fn post_states(&self, s: &i64, m: &CtrMethod, r: &CtrRet) -> Vec<i64> {
                self.inner.post_states(s, m, r)
            }
            fn results(&self, s: &i64, m: &CtrMethod) -> Vec<CtrRet> {
                self.inner.results(s, m)
            }
            fn state_universe(&self) -> Option<Vec<i64>> {
                self.inner.state_universe()
            }
            fn method_universe(&self) -> Option<Vec<CtrMethod>> {
                self.inner.method_universe()
            }
            fn method_keys(&self, m: &CtrMethod) -> Option<KeySet> {
                self.inner.method_keys(m)
            }
            fn inverse(&self, op: &Op<CtrMethod, CtrRet>) -> OpInverse<CtrMethod, CtrRet> {
                match op.method {
                    CtrMethod::Add(0) | CtrMethod::Get => OpInverse::ReadOnly,
                    CtrMethod::Add(k) => OpInverse::Inverse(CtrMethod::Add(k), CtrRet::Ack),
                }
            }
            fn has_inverses(&self) -> bool {
                true
            }
        }

        let inner = Counter::with_universe(2);
        let cert = certify(&DoubleDown { inner }, "double-down").unwrap();
        assert_eq!(cert.certificate.inverse_law, Some(false));
        assert!(!cert.certificate.open_nesting_certified());
        assert!(!cert.is_valid());
        assert!(
            cert.diagnostics
                .iter()
                .any(|d| d.lint == UNSOUND_INVERSE && d.severity == Severity::Error),
            "{:?}",
            cert.diagnostics
        );
    }

    #[test]
    fn otx_over_non_invertible_method_is_linted() {
        use pushpull_core::lang::Code;
        use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

        let spec = RwMem::bounded(vec![Loc(0)], vec![0, 1]);
        let programs = vec![vec![Code::tx(Code::seq(
            Code::method(MemMethod::Read(Loc(0))),
            Code::otx(Code::method(MemMethod::Write(Loc(0), 1))),
        ))]];
        let cert = certify_in(&spec, "rwmem", &programs).unwrap();
        // RwMem makes no invertibility claim: verdict unchecked, but the
        // doomed otx body draws a warning and the alphabet gap a note.
        assert_eq!(cert.certificate.inverse_law, None);
        assert!(
            cert.diagnostics
                .iter()
                .any(|d| d.lint == OPEN_NESTING_REFUSED && d.severity == Severity::Warning),
            "{:?}",
            cert.diagnostics
        );
        assert!(
            cert.diagnostics
                .iter()
                .any(|d| d.lint == OPEN_NESTING_UNAVAILABLE),
            "{:?}",
            cert.diagnostics
        );
        // The same body under a *closed* marker is fine: no warning.
        let closed = vec![vec![Code::tx(Code::seq(
            Code::method(MemMethod::Read(Loc(0))),
            Code::tx(Code::method(MemMethod::Write(Loc(0), 1))),
        ))]];
        let cert = certify_in(&spec, "rwmem", &closed).unwrap();
        assert!(
            !cert
                .diagnostics
                .iter()
                .any(|d| d.lint == OPEN_NESTING_REFUSED),
            "{:?}",
            cert.diagnostics
        );
    }

    #[test]
    fn certificate_round_trips_through_text() {
        let cert = certify(&Counter::with_universe(2), "counter").unwrap();
        let text = cert.certificate.to_text();
        let back = SpecCertificate::parse(&text).expect("round-trip");
        assert_eq!(*cert.certificate, back);
    }
}
