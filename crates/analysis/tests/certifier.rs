//! Negative tests for the spec certifier: each wrapper spec seeds one
//! specific mis-declaration over a sound base spec (`SetSpec::bounded`)
//! and asserts the certifier reports exactly the expected diagnostic.
//! A final property test pins the inferred matrix to the exhaustive
//! method-level oracle on every shipped bounded spec.

use pushpull_analysis::{
    certify, infer, COARSE_FORCING, NEEDLESSLY_COARSE, UNSOUND_FOOTPRINT, UNSOUND_MOVER,
};
use pushpull_analysis::{Diagnostic, Severity};
use pushpull_core::op::Op;
use pushpull_core::spec::{method_mover_exhaustive, KeySet, SeqSpec};
use pushpull_spec::bank::Bank;
use pushpull_spec::composite::Product;
use pushpull_spec::counter::Counter;
use pushpull_spec::kvmap::KvMap;
use pushpull_spec::queue::QueueSpec;
use pushpull_spec::register::CasRegister;
use pushpull_spec::rwmem::{Loc, RwMem};
use pushpull_spec::set::{SetMethod, SetRet, SetSpec, SetState};

/// Delegates the whole sequential semantics to an inner [`SetSpec`];
/// each test wrapper overrides exactly one declaration on top.
macro_rules! delegate_set_semantics {
    () => {
        type Method = SetMethod;
        type Ret = SetRet;
        type State = SetState;

        fn initial_states(&self) -> Vec<SetState> {
            self.inner.initial_states()
        }
        fn post_states(&self, s: &SetState, m: &SetMethod, r: &SetRet) -> Vec<SetState> {
            self.inner.post_states(s, m, r)
        }
        fn results(&self, s: &SetState, m: &SetMethod) -> Vec<SetRet> {
            self.inner.results(s, m)
        }
        fn state_universe(&self) -> Option<Vec<SetState>> {
            self.inner.state_universe()
        }
        fn mover(&self, op1: &Op<SetMethod, SetRet>, op2: &Op<SetMethod, SetRet>) -> bool {
            self.inner.mover(op1, op2)
        }
        fn method_universe(&self) -> Option<Vec<SetMethod>> {
            self.inner.method_universe()
        }
    };
}

fn base() -> SetSpec {
    SetSpec::bounded(vec![1, 2])
}

fn findings<'a>(diags: &'a [Diagnostic], lint: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

/// Mis-declares `Add`'s footprint one key off, so `add(x)` is declared
/// disjoint from `contains(x)`/`remove(x)` — which it conflicts with.
struct WrongKey {
    inner: SetSpec,
}

impl SeqSpec for WrongKey {
    delegate_set_semantics!();

    fn method_mover(&self, m1: &SetMethod, m2: &SetMethod) -> Option<bool> {
        self.inner.method_mover(m1, m2)
    }

    fn method_keys(&self, m: &SetMethod) -> Option<KeySet> {
        match m {
            SetMethod::Add(x) => Some(KeySet::one(x + 100)),
            _ => self.inner.method_keys(m),
        }
    }
}

#[test]
fn wrong_key_is_an_unsound_footprint_error() {
    let cert = certify(&WrongKey { inner: base() }, "wrong-key").unwrap();
    assert!(!cert.is_valid());
    let hits = findings(&cert.diagnostics, UNSOUND_FOOTPRINT);
    assert!(
        !hits.is_empty(),
        "law 1 must be refuted:\n{:?}",
        cert.diagnostics
    );
    for d in &hits {
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("disjoint"), "{}", d.message);
    }
    // The seeded defect is on `Add`: every violation names an add pair.
    assert!(hits.iter().any(|d| d.message.contains("Add")));
}

/// Drops `Contains`'s footprint entirely: sound but coarse-forcing.
struct MissingKey {
    inner: SetSpec,
}

impl SeqSpec for MissingKey {
    delegate_set_semantics!();

    fn method_mover(&self, m1: &SetMethod, m2: &SetMethod) -> Option<bool> {
        self.inner.method_mover(m1, m2)
    }

    fn method_keys(&self, m: &SetMethod) -> Option<KeySet> {
        match m {
            SetMethod::Contains(_) => None,
            _ => self.inner.method_keys(m),
        }
    }
}

#[test]
fn missing_key_is_a_coarse_forcing_warning_not_an_error() {
    let cert = certify(&MissingKey { inner: base() }, "missing-key").unwrap();
    // Sound — the certificate is still valid — but the cover is coarse.
    assert!(cert.is_valid());
    let hits = findings(&cert.diagnostics, COARSE_FORCING);
    assert_eq!(
        hits.len(),
        2,
        "one warning per bounded element:\n{:?}",
        cert.diagnostics
    );
    for d in &hits {
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("contains"), "{}", d.message);
    }
    // A single undeclared method poisons the shard count.
    assert_eq!(cert.certificate.shard_keys, 0);
}

/// Claims `add(x) ◁ contains(x)` — refuted by the denotation (the
/// membership answer flips across the add).
struct UnsoundMover {
    inner: SetSpec,
}

impl SeqSpec for UnsoundMover {
    delegate_set_semantics!();

    fn method_mover(&self, m1: &SetMethod, m2: &SetMethod) -> Option<bool> {
        match (m1, m2) {
            (SetMethod::Add(x), SetMethod::Contains(y)) if x == y => Some(true),
            _ => self.inner.method_mover(m1, m2),
        }
    }

    fn method_keys(&self, m: &SetMethod) -> Option<KeySet> {
        self.inner.method_keys(m)
    }
}

#[test]
fn unsound_mover_override_is_an_error() {
    let cert = certify(&UnsoundMover { inner: base() }, "unsound-mover").unwrap();
    assert!(!cert.is_valid());
    let hits = findings(&cert.diagnostics, UNSOUND_MOVER);
    assert_eq!(
        hits.len(),
        2,
        "one error per bounded element:\n{:?}",
        cert.diagnostics
    );
    for d in &hits {
        assert_eq!(d.severity, Severity::Error);
        assert!(
            d.message.contains("add") && d.message.contains("contains"),
            "{}",
            d.message
        );
    }
}

/// Funnels every element into one key class: sound, but the inferred
/// conflict components show elements 1 and 2 never interfere.
struct OneClass {
    inner: SetSpec,
}

impl SeqSpec for OneClass {
    delegate_set_semantics!();

    fn method_mover(&self, m1: &SetMethod, m2: &SetMethod) -> Option<bool> {
        self.inner.method_mover(m1, m2)
    }

    fn method_keys(&self, _m: &SetMethod) -> Option<KeySet> {
        Some(KeySet::one(0))
    }
}

#[test]
fn one_class_cover_is_needlessly_coarse() {
    let cert = certify(&OneClass { inner: base() }, "one-class").unwrap();
    assert!(
        cert.is_valid(),
        "coarseness is sound:\n{:?}",
        cert.diagnostics
    );
    let hits = findings(&cert.diagnostics, NEEDLESSLY_COARSE);
    assert!(!hits.is_empty(), "{:?}", cert.diagnostics);
    for d in &hits {
        assert_eq!(d.severity, Severity::Note);
    }
    // The base spec's per-element cover draws no such note.
    let clean = certify(&base(), "set").unwrap();
    assert!(findings(&clean.diagnostics, NEEDLESSLY_COARSE).is_empty());
}

/// The inferred matrix is definitionally the exhaustive method-level
/// oracle; pin that equality on every shipped bounded spec's universe.
fn assert_inferred_matches_exhaustive<S: SeqSpec>(spec: &S, label: &str) {
    let inf = infer(spec).unwrap_or_else(|| panic!("{label}: must be finitely certifiable"));
    let universe = spec.state_universe().unwrap();
    for m1 in &inf.methods {
        for m2 in &inf.methods {
            assert_eq!(
                inf.matrix.query(m1, m2),
                Some(method_mover_exhaustive(spec, &universe, m1, m2)),
                "{label}: inferred cell {m1:?} ◁ {m2:?} diverges from the exhaustive oracle"
            );
        }
    }
}

#[test]
fn inferred_matrix_matches_exhaustive_oracle_on_every_spec() {
    assert_inferred_matches_exhaustive(&Counter::with_universe(2), "counter");
    assert_inferred_matches_exhaustive(&CasRegister::with_universe(2), "register");
    assert_inferred_matches_exhaustive(&QueueSpec::bounded(vec![1, 2], 2), "queue");
    assert_inferred_matches_exhaustive(&Bank::bounded(vec![1], 2), "bank");
    assert_inferred_matches_exhaustive(&KvMap::bounded(vec![0, 1], vec![1]), "kvmap");
    assert_inferred_matches_exhaustive(&RwMem::bounded(vec![Loc(0)], vec![0, 1]), "rwmem");
    assert_inferred_matches_exhaustive(&SetSpec::bounded(vec![1, 2]), "set");
    assert_inferred_matches_exhaustive(
        &Product::new(SetSpec::bounded(vec![1]), Counter::with_universe(2)),
        "product",
    );
}

#[test]
fn every_shipped_spec_certifies_without_errors() {
    // The acceptance bar for the whole suite: zero error-severity
    // findings on any shipped bounded spec.
    assert_eq!(
        certify(&Counter::with_universe(2), "counter")
            .unwrap()
            .errors(),
        0
    );
    assert_eq!(
        certify(&CasRegister::with_universe(2), "register")
            .unwrap()
            .errors(),
        0
    );
    assert_eq!(
        certify(&QueueSpec::bounded(vec![1, 2], 2), "queue")
            .unwrap()
            .errors(),
        0
    );
    assert_eq!(
        certify(&Bank::bounded(vec![1, 2], 2), "bank")
            .unwrap()
            .errors(),
        0
    );
    assert_eq!(
        certify(&KvMap::bounded(vec![0, 1], vec![1]), "kvmap")
            .unwrap()
            .errors(),
        0
    );
    assert_eq!(
        certify(
            &RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1, 2]),
            "rwmem"
        )
        .unwrap()
        .errors(),
        0
    );
    assert_eq!(
        certify(&SetSpec::bounded(vec![1, 2]), "set")
            .unwrap()
            .errors(),
        0
    );
    assert_eq!(
        certify(
            &Product::new(SetSpec::bounded(vec![1]), Counter::with_universe(2)),
            "product"
        )
        .unwrap()
        .errors(),
        0
    );
}
