//! Property test for the static mover matrix: on every spec with an
//! enumerable state universe, a `Some(true)` cell must be confirmed by
//! the exhaustive method-level oracle
//! ([`method_mover_exhaustive`]), which itself quantifies the dynamic
//! op-level `mover` over all observable return pairs. This is the exact
//! soundness condition the runtime elision relies on: an elided mover
//! loop compares ops whose methods the matrix proved, so the dynamic
//! check it skips could never have failed.
//!
//! `Some(false)` cells are allowed to be conservative (the hand-written
//! oracles decline some return-dependent movers the exhaustive check
//! would admit, e.g. zero-amount withdraw self-pairs), so only the
//! `Some(true)` direction is asserted — that is the only direction the
//! prover consumes.

use pushpull_analysis::MoverMatrix;
use pushpull_core::spec::{method_mover_exhaustive, SeqSpec};
use pushpull_spec::bank::{Bank, BankMethod};
use pushpull_spec::counter::{Counter, CtrMethod};
use pushpull_spec::kvmap::{KvMap, MapMethod};
use pushpull_spec::queue::{QueueMethod, QueueSpec};
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull_spec::set::{SetMethod, SetSpec};

/// Builds the matrix over `alphabet` and checks every proven cell against
/// the exhaustive oracle; returns (proven, refuted) cell counts so each
/// caller can assert its alphabet exercises both verdicts.
fn assert_sound<S: SeqSpec>(spec: &S, alphabet: &[S::Method], label: &str) -> (usize, usize) {
    let universe = spec
        .state_universe()
        .unwrap_or_else(|| panic!("{label}: bounded spec must enumerate states"));
    let matrix = MoverMatrix::build(spec, alphabet);
    let (mut proven, mut refuted) = (0, 0);
    for m1 in matrix.alphabet() {
        for m2 in matrix.alphabet() {
            match matrix.query(m1, m2) {
                Some(true) => {
                    proven += 1;
                    assert!(
                        method_mover_exhaustive(spec, &universe, m1, m2),
                        "{label}: static matrix proved {m1:?} ◁ {m2:?}, \
                         but the exhaustive oracle refutes it"
                    );
                }
                Some(false) => refuted += 1,
                None => {}
            }
        }
    }
    (proven, refuted)
}

#[test]
fn counter_matrix_is_sound() {
    let spec = Counter::with_universe(3);
    let alphabet = vec![
        CtrMethod::Add(0),
        CtrMethod::Add(1),
        CtrMethod::Add(-2),
        CtrMethod::Get,
    ];
    let (proven, refuted) = assert_sound(&spec, &alphabet, "counter");
    assert!(proven > 0 && refuted > 0);
}

#[test]
fn bank_matrix_is_sound() {
    let spec = Bank::bounded(vec![0, 1], 3);
    let alphabet = vec![
        BankMethod::Deposit(0, 1),
        BankMethod::Deposit(0, 0),
        BankMethod::Deposit(1, 2),
        BankMethod::Withdraw(0, 1),
        BankMethod::Withdraw(1, 0),
        BankMethod::Balance(0),
        BankMethod::Balance(1),
    ];
    let (proven, refuted) = assert_sound(&spec, &alphabet, "bank");
    assert!(proven > 0 && refuted > 0);
}

#[test]
fn kvmap_matrix_is_sound() {
    let spec = KvMap::bounded(vec![0, 1], vec![1, 2]);
    let alphabet = vec![
        MapMethod::Put(0, 1),
        MapMethod::Put(1, 2),
        MapMethod::Get(0),
        MapMethod::Get(1),
        MapMethod::Remove(0),
        MapMethod::ContainsKey(1),
        MapMethod::Size,
    ];
    let (proven, refuted) = assert_sound(&spec, &alphabet, "kvmap");
    assert!(proven > 0 && refuted > 0);
}

#[test]
fn rwmem_matrix_is_sound() {
    let spec = RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1]);
    let alphabet = vec![
        MemMethod::Read(Loc(0)),
        MemMethod::Read(Loc(1)),
        MemMethod::Write(Loc(0), 0),
        MemMethod::Write(Loc(0), 1),
        MemMethod::Write(Loc(1), 1),
    ];
    let (proven, refuted) = assert_sound(&spec, &alphabet, "rwmem");
    assert!(proven > 0 && refuted > 0);
}

#[test]
fn set_matrix_is_sound() {
    let spec = SetSpec::bounded(vec![0, 1]);
    let alphabet = vec![
        SetMethod::Add(0),
        SetMethod::Add(1),
        SetMethod::Remove(0),
        SetMethod::Contains(0),
        SetMethod::Contains(1),
    ];
    let (proven, refuted) = assert_sound(&spec, &alphabet, "set");
    assert!(proven > 0 && refuted > 0);
}

#[test]
fn queue_matrix_is_sound() {
    let spec = QueueSpec::bounded(vec![1, 2], 2);
    let alphabet = vec![
        QueueMethod::Enq(1),
        QueueMethod::Enq(2),
        QueueMethod::Deq,
        QueueMethod::Peek,
    ];
    let (proven, refuted) = assert_sound(&spec, &alphabet, "queue");
    assert!(proven > 0 && refuted > 0);
}

#[test]
fn default_method_mover_agrees_with_override_on_proven_cells() {
    // The trait's default derivation (exhaustive over the universe) and
    // the hand-written overrides must agree wherever the override claims
    // `Some(true)` — i.e. the override never over-approximates.
    let spec = RwMem::bounded(vec![Loc(0)], vec![0, 1]);
    let universe = spec.state_universe().unwrap();
    let pairs = [
        (MemMethod::Read(Loc(0)), MemMethod::Read(Loc(0))),
        (MemMethod::Write(Loc(0), 1), MemMethod::Write(Loc(0), 1)),
        (MemMethod::Read(Loc(0)), MemMethod::Write(Loc(0), 1)),
    ];
    for (m1, m2) in &pairs {
        if spec.method_mover(m1, m2) == Some(true) {
            assert!(method_mover_exhaustive(&spec, &universe, m1, m2));
        }
    }
}
